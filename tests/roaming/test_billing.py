"""Unit tests for wholesale billing."""

import pytest

from repro.roaming.billing import TAPRecord, WholesaleRater, WholesaleTariff
from repro.signaling.cdr import ServiceType, data_xdr, voice_cdr

VISITED = "23410"


class TestTariff:
    def test_data_rating(self):
        tariff = WholesaleTariff(data_eur_per_mb=0.004)
        record = data_xdr("d", 0.0, "21407", VISITED, 5_000_000, "apn.x")
        units, charge = tariff.rate(record)
        assert units == pytest.approx(5.0)
        assert charge == pytest.approx(0.02)

    def test_voice_rating(self):
        tariff = WholesaleTariff(voice_eur_per_min=0.03)
        record = voice_cdr("d", 0.0, "21407", VISITED, duration_s=120.0)
        units, charge = tariff.rate(record)
        assert units == pytest.approx(2.0)
        assert charge == pytest.approx(0.06)


class TestRater:
    def test_rates_only_inbound_roamers(self):
        rater = WholesaleRater(VISITED)
        records = [
            data_xdr("native", 0.0, VISITED, VISITED, 10**6, "apn"),
            data_xdr("roamer", 0.0, "21407", VISITED, 10**6, "apn"),
            data_xdr("elsewhere", 0.0, "21407", "26210", 10**6, "apn"),
        ]
        tap = rater.rate_records(records)
        assert [t.device_id for t in tap] == ["roamer"]
        assert tap[0].home_plmn == "21407"

    def test_revenue_aggregations(self):
        rater = WholesaleRater(VISITED)
        records = [
            data_xdr("a", 0.0, "21407", VISITED, 2_000_000, "apn"),
            data_xdr("a", 1.0, "21407", VISITED, 1_000_000, "apn"),
            voice_cdr("b", 2.0, "20404", VISITED, duration_s=60.0),
        ]
        tap = rater.rate_records(records)
        by_home = WholesaleRater.revenue_by_home_plmn(tap)
        by_device = WholesaleRater.revenue_per_device(tap)
        assert set(by_home) == {"21407", "20404"}
        assert by_device["a"] == pytest.approx(3 * 0.004)
        assert by_home["21407"] == pytest.approx(by_device["a"])

    def test_m2m_revenue_gap_scenario(self):
        """The paper's §6 punchline: a chatty meter that moves few bytes
        yields almost no wholesale revenue next to one roaming person."""
        rater = WholesaleRater(VISITED)
        meter = [
            data_xdr("meter", float(i), "20404", VISITED, 20_000, "smhp.x")
            for i in range(22)
        ]
        person = [data_xdr("person", 0.0, "21407", VISITED, 500_000_000, "internet.x")]
        revenue = WholesaleRater.revenue_per_device(
            rater.rate_records(meter + person)
        )
        assert revenue["person"] > 100 * revenue["meter"]

    def test_tap_record_validation(self):
        with pytest.raises(ValueError):
            TAPRecord("d", "21407", VISITED, ServiceType.DATA, units=-1.0, charge_eur=0.0)
        with pytest.raises(ValueError):
            TAPRecord("d", "21407", VISITED, ServiceType.DATA, units=1.0, charge_eur=-0.1)
