"""Tests for the roaming clearing house."""

import pytest

from repro.roaming.billing import TAPRecord, WholesaleRater
from repro.roaming.clearing import (
    ClearingHouse,
    DiscrepancyKind,
    UsageStatement,
    clearing_load_per_euro,
    statements_from_tap,
)
from repro.signaling.cdr import ServiceType


def _statement(home="21407", visited="23410", service=ServiceType.DATA,
               units=10.0, charge=0.04, n=5):
    return UsageStatement(
        home_plmn=home, visited_plmn=visited, service=service,
        units=units, charge_eur=charge, n_records=n,
    )


class TestStatements:
    def test_aggregation_from_tap(self):
        tap = [
            TAPRecord("a", "21407", "23410", ServiceType.DATA, 1.0, 0.004),
            TAPRecord("b", "21407", "23410", ServiceType.DATA, 2.0, 0.008),
            TAPRecord("c", "20404", "23410", ServiceType.DATA, 1.0, 0.004),
        ]
        statements = statements_from_tap(tap)
        assert len(statements) == 2
        lane = next(s for s in statements if s.home_plmn == "21407")
        assert lane.units == pytest.approx(3.0)
        assert lane.n_records == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            _statement(units=-1.0)


class TestReconciliation:
    def test_perfect_match_all_agreed(self):
        house = ClearingHouse()
        settlement = house.reconcile([_statement()], [_statement()])
        assert settlement.agreed_eur == pytest.approx(0.04)
        assert settlement.disputed_eur == 0.0
        assert settlement.discrepancies == []

    def test_within_tolerance_agreed(self):
        house = ClearingHouse(tolerance=0.05)
        settlement = house.reconcile(
            [_statement(charge=0.040)], [_statement(charge=0.041)]
        )
        assert settlement.discrepancies == []

    def test_amount_mismatch_disputed(self):
        house = ClearingHouse(tolerance=0.01)
        settlement = house.reconcile(
            [_statement(charge=0.10)], [_statement(charge=0.05)]
        )
        assert settlement.disputed_eur == pytest.approx(0.05)
        assert settlement.agreed_eur == pytest.approx(0.05)
        assert settlement.discrepancies[0].kind is DiscrepancyKind.AMOUNT_MISMATCH
        assert settlement.discrepancies[0].delta_eur == pytest.approx(0.05)

    def test_missing_at_home(self):
        house = ClearingHouse()
        settlement = house.reconcile([_statement()], [])
        assert settlement.disputed_eur == pytest.approx(0.04)
        assert settlement.discrepancies[0].kind is DiscrepancyKind.MISSING_AT_HOME

    def test_missing_at_visited(self):
        house = ClearingHouse()
        settlement = house.reconcile([], [_statement()])
        assert settlement.agreed_eur == 0.0
        assert settlement.discrepancies[0].kind is DiscrepancyKind.MISSING_AT_VISITED

    def test_tolerance_bounds(self):
        with pytest.raises(ValueError):
            ClearingHouse(tolerance=1.0)

    def test_dispute_rate(self):
        house = ClearingHouse(tolerance=0.0)
        settlement = house.reconcile(
            [_statement(charge=0.10)], [_statement(charge=0.05)]
        )
        assert settlement.dispute_rate == pytest.approx(0.5)

    def test_end_to_end_with_simulated_records(self, mno_dataset):
        rater = WholesaleRater(str(mno_dataset.observer.plmn))
        tap = rater.rate_records(mno_dataset.service_records)
        statements = statements_from_tap(tap)
        house = ClearingHouse()
        # Home side agrees exactly (both rated the same records).
        settlement = house.reconcile(statements, statements)
        assert settlement.disputed_eur == 0.0
        assert settlement.n_records_cleared == len(tap)


class TestClearingLoad:
    def test_m2m_lanes_have_higher_record_load(self):
        statements = [
            # an M2M lane: many tiny records
            _statement(home="20404", charge=0.01, n=1000),
            # a person lane: few fat records
            _statement(home="21407", charge=5.00, n=50),
        ]
        load = clearing_load_per_euro(statements)
        assert load["20404"] > 100 * load["21407"]

    def test_zero_money_lane_is_infinite(self):
        load = clearing_load_per_euro([_statement(charge=0.0, n=10)])
        assert load["21407"] == float("inf")
