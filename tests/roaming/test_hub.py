"""Unit tests for the IPX hub."""

import pytest

from repro.cellular.countries import default_countries
from repro.cellular.geo import GeoPoint
from repro.cellular.identifiers import PLMN
from repro.cellular.operators import Operator
from repro.cellular.rats import RAT
from repro.roaming.agreements import AgreementRegistry
from repro.roaming.hub import IPXHub, PointOfPresence

COUNTRIES = default_countries()
ES = COUNTRIES.by_iso("ES")
GB = COUNTRIES.by_iso("GB")
JP = COUNTRIES.by_iso("JP")

ALL_RATS = frozenset({RAT.GSM, RAT.UMTS, RAT.LTE})


def _hub():
    pops = [
        PointOfPresence(0, "ES", GeoPoint(ES.lat, ES.lon)),
        PointOfPresence(1, "GB", GeoPoint(GB.lat, GB.lon)),
    ]
    return IPXHub("test-hub", pops)


def _op(name, country, mnc=10, rats=ALL_RATS):
    return Operator(name=name, plmn=PLMN(country.mcc, mnc), country=country, rats=rats)


class TestMembership:
    def test_direct_and_peered(self):
        hub = _hub()
        hub.add_direct_member(_op("GB-1", GB))
        hub.add_peered_member(_op("JP-1", JP))
        assert hub.direct_countries() == {"GB"}
        assert hub.footprint_countries() == {"GB", "JP"}
        assert hub.reaches(PLMN(GB.mcc, 10))
        assert hub.reaches(PLMN(JP.mcc, 10))
        assert not hub.reaches(PLMN(ES.mcc, 10))

    def test_double_membership_rejected(self):
        hub = _hub()
        op = _op("GB-1", GB)
        hub.add_direct_member(op)
        with pytest.raises(ValueError):
            hub.add_peered_member(op)

    def test_needs_pops(self):
        with pytest.raises(ValueError):
            IPXHub("empty", [])

    def test_duplicate_pop_ids_rejected(self):
        pop = PointOfPresence(0, "ES", GeoPoint(ES.lat, ES.lon))
        with pytest.raises(ValueError):
            IPXHub("dup", [pop, pop])


class TestGeometry:
    def test_nearest_pop(self):
        hub = _hub()
        assert hub.nearest_pop(GeoPoint(GB.lat, GB.lon)).country_iso == "GB"

    def test_pops_in_country(self):
        hub = _hub()
        assert len(hub.pops_in("ES")) == 1
        assert hub.pops_in("JP") == []


class TestProvisioning:
    def test_creates_reciprocal_agreements(self):
        hub = _hub()
        home = _op("ES-Platform", ES, mnc=7)
        partner = _op("GB-1", GB)
        hub.add_direct_member(partner)
        registry = AgreementRegistry()
        added = hub.provision_platform_agreements(registry, home)
        assert added == 2
        assert registry.allows(home.plmn, partner.plmn, RAT.LTE)
        assert registry.allows(partner.plmn, home.plmn, RAT.LTE)
        assert registry.get(home.plmn, partner.plmn).via_hub

    def test_respects_rat_intersection(self):
        hub = _hub()
        home = _op("ES-Platform", ES, mnc=7)
        legacy = _op("GB-2", GB, mnc=20, rats=frozenset({RAT.GSM, RAT.UMTS}))
        hub.add_direct_member(legacy)
        registry = AgreementRegistry()
        hub.provision_platform_agreements(registry, home)
        assert registry.allows(home.plmn, legacy.plmn, RAT.UMTS)
        assert not registry.allows(home.plmn, legacy.plmn, RAT.LTE)

    def test_skips_existing_and_excluded(self):
        hub = _hub()
        home = _op("ES-Platform", ES, mnc=7)
        partner = _op("GB-1", GB)
        excluded = _op("GB-2", GB, mnc=20)
        hub.add_direct_member(partner)
        hub.add_direct_member(excluded)
        registry = AgreementRegistry()
        registry.add_reciprocal(home.plmn, partner.plmn, rats=frozenset({RAT.GSM}))
        added = hub.provision_platform_agreements(
            registry, home, exclude={excluded.plmn}
        )
        assert added == 0
        # The pre-existing bilateral deal was left untouched.
        assert not registry.allows(home.plmn, partner.plmn, RAT.LTE)

    def test_never_self_agreement(self):
        hub = _hub()
        home = _op("ES-Platform", ES, mnc=7)
        hub.add_direct_member(home)
        registry = AgreementRegistry()
        assert hub.provision_platform_agreements(registry, home) == 0
