"""Unit tests for steering-of-roaming policies."""

import pytest

from repro.cellular.countries import default_countries
from repro.cellular.identifiers import PLMN
from repro.cellular.operators import Operator
from repro.roaming.steering import (
    FailureDrivenSteering,
    RandomSteering,
    SteeringState,
    StickySteering,
)

GB = default_countries().by_iso("GB")
OPS = [
    Operator(name=f"GB-{mnc}", plmn=PLMN(GB.mcc, mnc), country=GB)
    for mnc in (10, 20, 30)
]


class TestStickySteering:
    def test_initial_choice_sticks(self, rng):
        policy = StickySteering(failure_threshold=3)
        state = SteeringState()
        first = policy.select(OPS, state, rng)
        for _ in range(10):
            state.record_outcome(True)
            assert policy.select(OPS, state, rng).plmn == first.plmn
        assert state.switches == 0

    def test_switches_after_failure_streak(self, rng):
        policy = StickySteering(failure_threshold=2)
        state = SteeringState()
        first = policy.select(OPS, state, rng)
        state.record_outcome(False)
        assert policy.select(OPS, state, rng).plmn == first.plmn
        state.record_outcome(False)  # second consecutive failure
        second = policy.select(OPS, state, rng)
        assert second.plmn != first.plmn
        assert state.switches == 1

    def test_success_resets_streak(self, rng):
        policy = StickySteering(failure_threshold=2)
        state = SteeringState()
        first = policy.select(OPS, state, rng)
        state.record_outcome(False)
        state.record_outcome(True)
        state.record_outcome(False)
        assert policy.select(OPS, state, rng).plmn == first.plmn

    def test_switches_when_current_unavailable(self, rng):
        policy = StickySteering()
        state = SteeringState()
        policy.select([OPS[0]], state, rng)
        choice = policy.select(OPS[1:], state, rng)
        assert choice.plmn != OPS[0].plmn
        assert state.switches == 1

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            StickySteering(failure_threshold=0)

    def test_empty_candidates_rejected(self, rng):
        with pytest.raises(ValueError):
            StickySteering().select([], SteeringState(), rng)


class TestFailureDrivenSteering:
    def test_stays_on_success(self, rng):
        policy = FailureDrivenSteering()
        state = SteeringState()
        first = policy.select(OPS, state, rng)
        state.record_outcome(True)
        assert policy.select(OPS, state, rng).plmn == first.plmn

    def test_moves_on_any_failure(self, rng):
        policy = FailureDrivenSteering()
        state = SteeringState()
        first = policy.select(OPS, state, rng)
        state.record_outcome(False)
        assert policy.select(OPS, state, rng).plmn != first.plmn
        assert state.switches == 1

    def test_round_robin_covers_all_candidates(self, rng):
        policy = FailureDrivenSteering()
        state = SteeringState()
        seen = set()
        for _ in range(6):
            choice = policy.select(OPS, state, rng)
            seen.add(choice.plmn)
            state.record_outcome(False)
        assert seen == {op.plmn for op in OPS}


class TestRandomSteering:
    def test_full_stickiness_never_switches(self, rng):
        policy = RandomSteering(stickiness=1.0)
        state = SteeringState()
        first = policy.select(OPS, state, rng)
        for _ in range(20):
            assert policy.select(OPS, state, rng).plmn == first.plmn
        assert state.switches == 0

    def test_zero_stickiness_churns(self, rng):
        policy = RandomSteering(stickiness=0.0)
        state = SteeringState()
        for _ in range(60):
            policy.select(OPS, state, rng)
        # With 3 candidates, ~2/3 of re-selections switch.
        assert state.switches > 20

    def test_stickiness_bounds(self):
        with pytest.raises(ValueError):
            RandomSteering(stickiness=1.5)


class TestSwitchAccounting:
    def test_switch_counter_only_on_changes(self, rng):
        policy = RandomSteering(stickiness=0.0)
        state = SteeringState()
        changes = 0
        last = None
        for _ in range(50):
            choice = policy.select(OPS, state, rng)
            if last is not None and choice.plmn != last:
                changes += 1
            last = choice.plmn
        assert state.switches == changes
