"""Unit tests for roaming traffic configurations (HR/LBO/IHBO)."""

import pytest

from repro.cellular.geo import GeoPoint, haversine_km
from repro.roaming.configs import (
    RoamingConfig,
    pick_config_for_distance,
    user_plane_path_km,
)

DEVICE = GeoPoint(-25.0, 134.0)    # roaming in Australia
HOME_GW = GeoPoint(40.4, -3.7)     # home PGW in Spain
HUB_POP = GeoPoint(1.35, 103.8)    # hub PoP in Singapore


class TestUserPlanePath:
    def test_lbo_is_zero(self):
        assert user_plane_path_km(RoamingConfig.LOCAL_BREAKOUT, DEVICE, HOME_GW) == 0.0

    def test_hr_is_full_detour(self):
        expected = haversine_km(DEVICE, HOME_GW)
        assert user_plane_path_km(
            RoamingConfig.HOME_ROUTED, DEVICE, HOME_GW
        ) == pytest.approx(expected)

    def test_ihbo_uses_pop(self):
        expected = haversine_km(DEVICE, HUB_POP)
        assert user_plane_path_km(
            RoamingConfig.IPX_HUB_BREAKOUT, DEVICE, HOME_GW, HUB_POP
        ) == pytest.approx(expected)

    def test_ihbo_requires_pop(self):
        with pytest.raises(ValueError):
            user_plane_path_km(RoamingConfig.IPX_HUB_BREAKOUT, DEVICE, HOME_GW)

    def test_hr_worse_than_ihbo_for_far_destinations(self):
        hr = user_plane_path_km(RoamingConfig.HOME_ROUTED, DEVICE, HOME_GW)
        ihbo = user_plane_path_km(
            RoamingConfig.IPX_HUB_BREAKOUT, DEVICE, HOME_GW, HUB_POP
        )
        assert hr > ihbo


class TestPickConfig:
    def test_nearby_stays_home_routed(self):
        nearby = GeoPoint(48.8, 2.3)  # Paris, home gateway in Spain
        assert (
            pick_config_for_distance(nearby, HOME_GW, HUB_POP)
            is RoamingConfig.HOME_ROUTED
        )

    def test_far_breaks_out_at_hub(self):
        assert (
            pick_config_for_distance(DEVICE, HOME_GW, HUB_POP)
            is RoamingConfig.IPX_HUB_BREAKOUT
        )

    def test_no_pop_forces_home_routed(self):
        assert (
            pick_config_for_distance(DEVICE, HOME_GW, None)
            is RoamingConfig.HOME_ROUTED
        )

    def test_threshold_is_respected(self):
        assert (
            pick_config_for_distance(DEVICE, HOME_GW, HUB_POP, hr_threshold_km=1e9)
            is RoamingConfig.HOME_ROUTED
        )
