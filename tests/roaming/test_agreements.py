"""Unit tests for roaming agreements."""

import pytest

from repro.cellular.identifiers import PLMN
from repro.cellular.rats import RAT
from repro.roaming.agreements import AgreementRegistry, RoamingAgreement

A = PLMN(214, 7)
B = PLMN(234, 10)
C = PLMN(262, 10)


class TestRoamingAgreement:
    def test_self_agreement_rejected(self):
        with pytest.raises(ValueError):
            RoamingAgreement(home=A, visited=A)

    def test_empty_rats_rejected(self):
        with pytest.raises(ValueError):
            RoamingAgreement(home=A, visited=B, rats=frozenset())

    def test_covers(self):
        agreement = RoamingAgreement(home=A, visited=B, rats=frozenset({RAT.GSM}))
        assert agreement.covers(RAT.GSM)
        assert not agreement.covers(RAT.LTE)


class TestAgreementRegistry:
    def test_directedness(self):
        registry = AgreementRegistry([RoamingAgreement(home=A, visited=B)])
        assert registry.allows(A, B, RAT.GSM)
        assert not registry.allows(B, A, RAT.GSM)

    def test_reciprocal(self):
        registry = AgreementRegistry()
        registry.add_reciprocal(A, B)
        assert registry.allows(A, B, RAT.LTE)
        assert registry.allows(B, A, RAT.LTE)
        assert len(registry) == 2

    def test_duplicate_rejected(self):
        registry = AgreementRegistry([RoamingAgreement(home=A, visited=B)])
        with pytest.raises(ValueError):
            registry.add(RoamingAgreement(home=A, visited=B))

    def test_rat_limited_agreement(self):
        registry = AgreementRegistry()
        registry.add_reciprocal(A, B, rats=frozenset({RAT.GSM, RAT.UMTS}))
        assert registry.allows(A, B, RAT.UMTS)
        assert not registry.allows(A, B, RAT.LTE)

    def test_partners_of(self):
        registry = AgreementRegistry()
        registry.add_reciprocal(A, B)
        registry.add(RoamingAgreement(home=A, visited=C))
        assert registry.partners_of(A) == {B, C}
        assert registry.partners_of(B) == {A}

    def test_hub_mediated_count(self):
        registry = AgreementRegistry()
        registry.add_reciprocal(A, B, via_hub=True)
        registry.add_reciprocal(A, C, via_hub=False)
        assert registry.hub_mediated_count() == 2

    def test_get_missing_returns_none(self):
        assert AgreementRegistry().get(A, B) is None
