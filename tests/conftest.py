"""Shared fixtures: one small world and one small dataset per session.

Dataset generation is the expensive part of the suite, so the ecosystem,
the M2M-platform dataset, the MNO dataset and the pipeline result are
all session-scoped.  Tests that need different parameters build their
own small instances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ecosystem import Ecosystem, EcosystemConfig, build_default_ecosystem
from repro.mno import MNOConfig, simulate_mno_dataset
from repro.pipeline import PipelineResult, run_pipeline
from repro.platform_m2m import PlatformConfig, simulate_m2m_dataset


@pytest.fixture(scope="session")
def eco() -> Ecosystem:
    return build_default_ecosystem(EcosystemConfig(uk_sites=40, seed=11))


@pytest.fixture(scope="session")
def m2m_dataset(eco):
    return simulate_m2m_dataset(eco, PlatformConfig(n_devices=250, seed=5))


@pytest.fixture(scope="session")
def mno_dataset(eco):
    return simulate_mno_dataset(eco, MNOConfig(n_devices=600, seed=9))


@pytest.fixture(scope="session")
def pipeline(eco, mno_dataset) -> PipelineResult:
    return run_pipeline(mno_dataset, eco)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(123)
