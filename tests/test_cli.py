"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestSimulateM2M:
    def test_writes_jsonl(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        code = main(
            ["--uk-sites", "10", "simulate-m2m", "--devices", "40", "--out", str(out)]
        )
        assert code == 0
        lines = out.read_text().strip().splitlines()
        assert lines
        row = json.loads(lines[0])
        assert {"device_id", "ts", "sim_plmn", "visited_plmn"} <= set(row)
        assert "simulated 40 devices" in capsys.readouterr().out

    def test_no_out_still_reports(self, capsys):
        assert main(["--uk-sites", "10", "simulate-m2m", "--devices", "20"]) == 0
        assert "transactions" in capsys.readouterr().out


class TestSimulateMNO:
    def test_writes_dataset_dir(self, tmp_path, capsys):
        out = tmp_path / "mno"
        code = main(
            ["--uk-sites", "10", "simulate-mno", "--devices", "60", "--out", str(out)]
        )
        assert code == 0
        assert (out / "radio_events.jsonl").exists()
        assert (out / "service_records.jsonl").exists()


class TestClassify:
    def test_prints_shares_and_validation(self, capsys):
        code = main(["--uk-sites", "10", "classify", "--devices", "150"])
        assert code == 0
        out = capsys.readouterr().out
        assert "class shares" in out
        assert "accuracy" in out


class TestFigure:
    @pytest.mark.parametrize("name", ["fig2", "fig3"])
    def test_platform_figures(self, name, capsys):
        code = main(
            ["--uk-sites", "10", "figure", name, "--devices", "80"]
        )
        assert code == 0
        assert name in capsys.readouterr().out

    @pytest.mark.parametrize("name", ["fig6", "fig9", "fig11"])
    def test_mno_figures(self, name, capsys):
        code = main(
            ["--uk-sites", "10", "figure", name, "--devices", "300"]
        )
        assert code == 0
        assert name in capsys.readouterr().out


class TestExport:
    def test_writes_catalog_csvs(self, tmp_path, capsys):
        out = tmp_path / "catalog"
        code = main(
            ["--uk-sites", "10", "export", "--devices", "80", "--out", str(out)]
        )
        assert code == 0
        assert (out / "catalog_days.csv").exists()
        assert (out / "catalog_summaries.csv").exists()

    def test_exported_summaries_readable(self, tmp_path):
        from repro.datasets.export import read_summaries

        out = tmp_path / "catalog"
        main(["--uk-sites", "10", "export", "--devices", "60", "--out", str(out)])
        summaries = read_summaries(out / "catalog_summaries.csv")
        assert len(summaries) > 0


class TestKeywords:
    def test_discovery_report_printed(self, capsys):
        code = main(
            ["--uk-sites", "10", "keywords", "--devices", "200", "--min-devices", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "candidate keywords" in out
        assert "auto-mapped" in out


class TestSaveConfig:
    def test_writes_three_configs(self, tmp_path):
        out = tmp_path / "cfg"
        code = main(["save-config", "--out", str(out)])
        assert code == 0
        for name in ("ecosystem.json", "platform.json", "mno.json"):
            assert (out / name).exists()

    def test_saved_configs_load(self, tmp_path):
        from repro.configio import load_config

        out = tmp_path / "cfg"
        main(["save-config", "--out", str(out), "--devices", "123"])
        platform = load_config(out / "platform.json")
        assert platform.n_devices == 123


class TestFigurePlot:
    def test_fig6_plot_renders_heatmap(self, capsys):
        code = main(
            ["--uk-sites", "10", "figure", "fig6", "--devices", "250", "--plot"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "shade scale" in out

    def test_fig3_plot_renders_ecdf(self, capsys):
        code = main(
            ["--uk-sites", "10", "figure", "fig3", "--devices", "120", "--plot"]
        )
        assert code == 0
        assert "ECDF" in capsys.readouterr().out


class TestReport:
    def test_report_written(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        code = main(
            ["--uk-sites", "10", "report", "--devices", "200", "--out", str(out)]
        )
        assert code == 0
        text = out.read_text()
        for section in (
            "reproduction report",
            "Fig. 2", "Fig. 3", "Fig. 5", "Fig. 6", "Fig. 7",
            "Fig. 8", "Fig. 9", "Fig. 10", "Fig. 11", "Fig. 12",
        ):
            assert section in text

    def test_report_to_stdout(self, capsys):
        code = main(["--uk-sites", "10", "report", "--devices", "150"])
        assert code == 0
        assert "Fig. 11" in capsys.readouterr().out
