"""Service chaos: SIGKILL the daemon anywhere, restart, same catalog.

Each kill case runs the daemon in a subprocess, murders it at a named
seam — just before a batch's WAL append, inside the checkpoint-rename
window, or externally mid-stream after N durable acks — and verifies the
child actually died by SIGKILL.  The parent then restarts the daemon
in-process with ``resume=True``, re-sends only the batches that were
*never acknowledged*, and asserts the final catalog digest equals an
uninterrupted reference build: no acknowledged batch is ever lost, and
re-sent unacked batches dedupe instead of double-ingesting.

The overload storm runs in-process: a saturated queue must shed (typed,
with retry guidance), stay bounded, and still converge to the exact
reference catalog once clients honor the backpressure contract.

Marked ``service_chaos`` and excluded from tier-1; CI runs it as a
dedicated job: ``pytest -m service_chaos``.
"""

import asyncio
import json
import os
import resource
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.catalog import CatalogBuilder
from repro.core.roaming import RoamingLabeler
from repro.ecosystem import EcosystemConfig, build_default_ecosystem
from repro.faults.crash import tear_journal_tail
from repro.mno import MNOConfig, simulate_mno_dataset
from repro.parallel.health import TORN_CHECKPOINT
from repro.service import CatalogClient, CatalogDaemon, ServiceConfig, catalog_digest
from repro.service.client import ServiceUnavailable

from tests.service.conftest import dataset_batches

pytestmark = pytest.mark.service_chaos

REPO_ROOT = Path(__file__).resolve().parents[2]
UK_SITES = 30
DEVICES = 30

#: Kill seams: before the WAL append of batch ``seq``; inside the
#: rename window of unit ``seq``; externally after ``seq`` acks.
KILL_AT_BATCH = "batch"
KILL_AT_RENAME = "rename"
KILL_EXTERNAL = "external"

CHILD_SCRIPT = """
import asyncio
import os
import signal
import sys

from repro.ecosystem import EcosystemConfig, build_default_ecosystem
from repro.service import CatalogDaemon, ServiceConfig

mode, kill_seq, ckpt, uk_sites = sys.argv[1:5]
kill_seq = int(kill_seq)
eco = build_default_ecosystem(EcosystemConfig(uk_sites=int(uk_sites), seed=11))


def _die():
    os.kill(os.getpid(), signal.SIGKILL)


on_batch = None
before_replace = None
if mode == "batch":
    def on_batch(batch_id, seq):
        if seq == kill_seq:
            _die()
elif mode == "rename":
    def before_replace(target):
        if target.name == "day_%03d.shard_000.ckpt" % kill_seq:
            _die()


async def main():
    daemon = CatalogDaemon(
        eco,
        ckpt,
        ServiceConfig(snapshot_interval_s=0.2),
        on_batch=on_batch,
        before_replace=before_replace,
    )
    await daemon.start()
    print(daemon.port, flush=True)
    await daemon.serve_until_stopped()


asyncio.run(main())
raise SystemExit("daemon exited without being killed")
"""

_CACHE = {}


def _eco():
    if "eco" not in _CACHE:
        _CACHE["eco"] = build_default_ecosystem(
            EcosystemConfig(uk_sites=UK_SITES, seed=11)
        )
    return _CACHE["eco"]


def _batches(seed):
    key = ("batches", seed)
    if key not in _CACHE:
        dataset = simulate_mno_dataset(
            _eco(), MNOConfig(n_devices=DEVICES, seed=seed)
        )
        _CACHE[key] = (dataset, dataset_batches(dataset))
    return _CACHE[key]


def _reference_digest(seed):
    key = ("digest", seed)
    if key not in _CACHE:
        dataset, _ = _batches(seed)
        eco = _eco()
        builder = CatalogBuilder(
            eco.tac_db, eco.uk_sectors, RoamingLabeler(eco.operators, eco.uk_mno)
        )
        _CACHE[key] = catalog_digest(
            *builder.build(dataset.radio_events, dataset.service_records)
        )
    return _CACHE[key]


def _spawn_daemon(mode, kill_seq, ckpt):
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    stderr_path = Path(ckpt).parent / "daemon_stderr.log"
    stderr = open(stderr_path, "w", encoding="utf-8")
    proc = subprocess.Popen(
        [sys.executable, "-c", CHILD_SCRIPT,
         mode, str(kill_seq), str(ckpt), str(UK_SITES)],
        env=env,
        stdout=subprocess.PIPE,
        stderr=stderr,
        text=True,
    )
    port_line = proc.stdout.readline().strip()
    assert port_line, (
        f"daemon never announced a port; stderr:\n"
        f"{stderr_path.read_text(encoding='utf-8')}"
    )
    return proc, int(port_line), stderr_path


def _assert_sigkilled(proc, stderr_path):
    returncode = proc.wait(timeout=60)
    proc.stdout.close()
    assert returncode == -signal.SIGKILL, (
        f"child exited {returncode}, expected SIGKILL; "
        f"stderr:\n{stderr_path.read_text(encoding='utf-8')}"
    )


def _ingest_until_death(client, batches, kill_after=None, proc=None):
    """Send batches until the daemon dies; returns the acked batch ids."""
    acked = set()
    for batch_id, rows in batches:
        if kill_after is not None and len(acked) == kill_after:
            os.kill(proc.pid, signal.SIGKILL)
            break
        try:
            response = client.ingest(batch_id, rows)
        except ServiceUnavailable:
            break
        if response.get("status") == "ok":
            acked.add(batch_id)
    return acked


async def _resume_request(port, payload):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        await writer.drain()
        line = await reader.readline()
    finally:
        writer.close()
    return json.loads(line.decode("utf-8"))


def _resume_and_finish(ckpt, batches, acked):
    """Restart in-process, re-send only unacked batches, return digest."""

    async def scenario():
        daemon = CatalogDaemon(
            _eco(), str(ckpt), ServiceConfig(snapshot_interval_s=0.2), resume=True
        )
        await daemon.start()
        try:
            replayed = daemon.health.batches_replayed
            for batch_id, rows in batches:
                if batch_id in acked:
                    continue
                response = await _resume_request(
                    daemon.port,
                    {"op": "ingest", "batch_id": batch_id, "rows": rows},
                )
                assert response["status"] == "ok", response
            answer = await _resume_request(daemon.port, {"op": "digest"})
            return answer["digest"], replayed
        finally:
            await daemon.stop()

    return asyncio.run(scenario())


@pytest.mark.parametrize("seed", [3, 5, 7])
@pytest.mark.parametrize("mode,kill_seq", [
    (KILL_AT_BATCH, 0),      # die before the first batch is durable
    (KILL_AT_BATCH, 2),      # die mid-stream, some batches acked
    (KILL_AT_RENAME, 1),     # die inside the rename window
    (KILL_EXTERNAL, 3),      # die right after the 3rd durable ack
])
def test_kill_anywhere_recovers_identical_catalog(tmp_path, mode, kill_seq, seed):
    _, batches = _batches(seed)
    assert len(batches) > kill_seq + 1
    ckpt = tmp_path / "wal"
    proc, port, stderr_path = _spawn_daemon(
        KILL_AT_BATCH if mode == KILL_EXTERNAL else mode, -1 if mode == KILL_EXTERNAL else kill_seq, ckpt
    )
    client = CatalogClient("127.0.0.1", port, timeout_s=30.0)
    acked = _ingest_until_death(
        client,
        batches,
        kill_after=kill_seq if mode == KILL_EXTERNAL else None,
        proc=proc,
    )
    _assert_sigkilled(proc, stderr_path)
    if mode != KILL_EXTERNAL:
        # Batches sent before the kill seam all acked.
        assert len(acked) == kill_seq

    digest, replayed = _resume_and_finish(ckpt, batches, acked)
    # No lost acked batch: everything acknowledged replayed from the WAL.
    assert replayed >= len(acked)
    assert digest == _reference_digest(seed)


@pytest.mark.parametrize("seed", [3, 5])
def test_resend_everything_after_kill_still_converges(tmp_path, seed):
    """Re-sending *all* batches (acked included) dedupes to the same bytes."""
    _, batches = _batches(seed)
    ckpt = tmp_path / "wal"
    proc, port, stderr_path = _spawn_daemon(KILL_AT_BATCH, 2, ckpt)
    client = CatalogClient("127.0.0.1", port, timeout_s=30.0)
    _ingest_until_death(client, batches)
    _assert_sigkilled(proc, stderr_path)
    digest, _ = _resume_and_finish(ckpt, batches, acked=set())
    assert digest == _reference_digest(seed)


def test_torn_wal_tail_is_reported_on_restart(tmp_path):
    """A crash mid-journal-write surfaces as a torn-checkpoint incident."""
    seed = 3
    _, batches = _batches(seed)
    ckpt = tmp_path / "wal"

    async def first_life():
        daemon = CatalogDaemon(
            _eco(), str(ckpt), ServiceConfig(snapshot_interval_s=0.2)
        )
        await daemon.start()
        try:
            for batch_id, rows in batches[:3]:
                response = await _resume_request(
                    daemon.port,
                    {"op": "ingest", "batch_id": batch_id, "rows": rows},
                )
                assert response["status"] == "ok"
        finally:
            await daemon.stop()

    asyncio.run(first_life())
    tear_journal_tail(ckpt)

    async def second_life():
        daemon = CatalogDaemon(
            _eco(), str(ckpt), ServiceConfig(snapshot_interval_s=0.2), resume=True
        )
        await daemon.start()
        try:
            incidents = daemon.health.run_health.incidents
            kinds = [i.kind for i in incidents]
            assert TORN_CHECKPOINT in kinds
            # The torn batch was never acked from the client's view once
            # the tail is discarded; re-sending every batch converges.
            for batch_id, rows in batches:
                response = await _resume_request(
                    daemon.port,
                    {"op": "ingest", "batch_id": batch_id, "rows": rows},
                )
                assert response["status"] == "ok"
            answer = await _resume_request(daemon.port, {"op": "digest"})
            return answer["digest"]
        finally:
            await daemon.stop()

    digest = asyncio.run(second_life())
    assert digest == _reference_digest(seed)


def test_ingest_storm_sheds_bounded_and_converges(tmp_path):
    """An overload storm sheds typed rejections, stays bounded, recovers."""
    seed = 3
    rss_before_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    _, day_batches = _batches(seed)
    # Shard each day batch into micro-batches so the storm has enough
    # independent clients to saturate a 4-deep queue.
    storm = []
    for batch_id, rows in day_batches:
        for start in range(0, len(rows), 200):
            storm.append((f"{batch_id}/{start}", rows[start:start + 200]))
    assert len(storm) > 12

    async def scenario():
        config = ServiceConfig(
            queue_high_watermark=4,
            queue_low_watermark=1,
            shed_retry_after_s=0.05,
            snapshot_interval_s=0.2,
        )
        daemon = CatalogDaemon(_eco(), str(tmp_path / "wal"), config)
        await daemon.start()
        max_depth = 0

        async def send_with_retry(batch_id, rows):
            nonlocal max_depth
            for _ in range(200):
                max_depth = max(max_depth, daemon.queue.depth)
                response = await _resume_request(
                    daemon.port,
                    {"op": "ingest", "batch_id": batch_id, "rows": rows},
                )
                if response["status"] == "ok":
                    return response
                assert response["status"] in ("shed", "retry"), response
                await asyncio.sleep(float(response.get("retry_after_s", 0.05)))
            raise AssertionError(f"batch {batch_id} never acked")

        try:
            await asyncio.gather(
                *(send_with_retry(batch_id, rows) for batch_id, rows in storm)
            )
            # Backpressure engaged: typed sheds, episodic saturation.
            assert daemon.queue.n_shed > 0
            assert 1 <= daemon.queue.n_saturations <= daemon.queue.n_shed
            health = daemon.health.healthz()
            assert health["shed_batches"] == daemon.queue.n_shed
            assert health["queue_saturations"] == daemon.queue.n_saturations
            # Bounded by construction: the queue never grew past the
            # high watermark.
            assert max_depth <= config.queue_high_watermark
            assert daemon.health.batches_acked == len(storm)
            answer = await _resume_request(daemon.port, {"op": "digest"})
            return answer["digest"]
        finally:
            await daemon.stop()

    digest = asyncio.run(scenario())
    assert digest == _reference_digest(seed)
    rss_after_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    assert rss_after_kb - rss_before_kb < 512 * 1024  # < 512 MiB growth
