"""SIGKILL kill-matrix: murder the run anywhere, resume, same bytes.

Each case launches a subprocess that runs the durable pipeline with a
:class:`~repro.faults.crash.KillSwitch` armed at one seam — before the
first unit publishes, mid-day between two shards, at a day boundary, or
inside the checkpoint-rename window — and verifies the child actually
died by SIGKILL (nothing cleaned up, exactly like an OOM kill).  The
parent then resumes the checkpoint directory in-process and asserts the
result is identical to an uninterrupted serial run, and that the
journal proves completed units were never re-executed.

Marked ``durability`` and excluded from the tier-1 run (like ``chaos``);
CI runs it as a dedicated job: ``pytest -m durability``.
"""

import dataclasses
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.ecosystem import EcosystemConfig, build_default_ecosystem
from repro.faults.crash import KILL_AT_DAY, KILL_AT_RENAME, KILL_AT_UNIT
from repro.mno import MNOConfig, simulate_mno_dataset
from repro.parallel.transport import (
    SHM_DIR,
    _pid_alive,
    cleanup_stale_segments,
    owner_pid,
)
from repro.pipeline import run_pipeline
from repro.runtime import run_durable_pipeline
from repro.runtime.checkpoint import MANIFEST_NAME
from repro.signaling.cdr import ServiceRecord, ServiceType

pytestmark = pytest.mark.durability

REPO_ROOT = Path(__file__).resolve().parents[2]
DEVICES = 100
UK_SITES = 30

CHILD_SCRIPT = """
import dataclasses
import sys

from repro.ecosystem import EcosystemConfig, build_default_ecosystem
from repro.faults.crash import KillSwitch
from repro.mno import MNOConfig, simulate_mno_dataset
from repro.runtime import run_durable_pipeline
from repro.signaling.cdr import ServiceRecord, ServiceType

(
    point, day, shard, ckpt, devices, seed, workers, lenient, columnar, ooc,
) = sys.argv[1:11]
eco = build_default_ecosystem(EcosystemConfig(uk_sites={uk_sites}, seed=11))
dataset = simulate_mno_dataset(
    eco, MNOConfig(n_devices=int(devices), seed=int(seed))
)
if lenient == "1":
    poison = ServiceRecord(
        device_id="poison-kill",
        timestamp=1000.0,
        sim_plmn="26202",
        visited_plmn="20801",
        service=ServiceType.VOICE,
        duration_s=30.0,
    )
    dataset = dataclasses.replace(
        dataset, service_records=dataset.service_records + [poison]
    )
switch = KillSwitch(point=point, day=int(day), shard=int(shard))
run_durable_pipeline(
    dataset,
    eco,
    checkpoint_dir=ckpt,
    n_workers=int(workers),
    lenient=lenient == "1",
    columnar=columnar == "1",
    out_of_core=ooc == "1",
    on_unit=switch.on_unit,
    on_day=switch.on_day,
    before_replace=switch.before_replace,
)
raise SystemExit("kill switch never fired")
""".format(uk_sites=UK_SITES)

_ECO_CACHE = {}
_DATASET_CACHE = {}
_BASELINE_CACHE = {}


def _eco():
    if "eco" not in _ECO_CACHE:
        _ECO_CACHE["eco"] = build_default_ecosystem(
            EcosystemConfig(uk_sites=UK_SITES, seed=11)
        )
    return _ECO_CACHE["eco"]


def _dataset(seed, lenient):
    key = (seed, lenient)
    if key not in _DATASET_CACHE:
        dataset = simulate_mno_dataset(
            _eco(), MNOConfig(n_devices=DEVICES, seed=seed)
        )
        if lenient:
            poison = ServiceRecord(
                device_id="poison-kill",
                timestamp=1000.0,
                sim_plmn="26202",
                visited_plmn="20801",
                service=ServiceType.VOICE,
                duration_s=30.0,
            )
            dataset = dataclasses.replace(
                dataset, service_records=dataset.service_records + [poison]
            )
        _DATASET_CACHE[key] = dataset
    return _DATASET_CACHE[key]


def _baseline(seed, lenient):
    key = (seed, lenient)
    if key not in _BASELINE_CACHE:
        _BASELINE_CACHE[key] = run_pipeline(
            _dataset(seed, lenient), _eco(), lenient=lenient, n_workers=1
        )
    return _BASELINE_CACHE[key]


def _run_child_until_killed(
    ckpt, point, day, shard, seed, workers, lenient, columnar, out_of_core=False
):
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    # Redirect to files rather than pipes: the child's orphaned pool
    # workers inherit the output fds and would keep a pipe open long
    # after the SIGKILL, stalling any read-until-EOF wait.
    stderr_path = Path(ckpt).parent / "child_stderr.log"
    with open(stderr_path, "w", encoding="utf-8") as stderr:
        proc = subprocess.Popen(
            [
                sys.executable, "-c", CHILD_SCRIPT,
                point, str(day), str(shard), str(ckpt), str(DEVICES), str(seed),
                str(workers), "1" if lenient else "0", "1" if columnar else "0",
                "1" if out_of_core else "0",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=stderr,
        )
        returncode = proc.wait(timeout=300)
    assert returncode == -signal.SIGKILL, (
        f"child exited {returncode}, expected SIGKILL; "
        f"stderr:\n{stderr_path.read_text(encoding='utf-8')}"
    )
    _assert_no_stale_exchange_segments()


def _assert_no_stale_exchange_segments():
    """The killed child published zero-copy exchange segments when it
    ran columnar with workers; none of them may survive it.  The child's
    resource tracker unlinks them asynchronously after the SIGKILL, so
    poll briefly, then fall back to the stale sweep before failing."""
    if not os.path.isdir(SHM_DIR):  # pragma: no cover - POSIX CI
        return
    deadline = time.monotonic() + 10.0
    while True:
        stale = [
            name
            for name in os.listdir(SHM_DIR)
            if (pid := owner_pid(name)) is not None
            and pid != os.getpid()
            and not _pid_alive(pid)
        ]
        if not stale:
            return
        if time.monotonic() >= deadline:
            break
        time.sleep(0.2)
        cleanup_stale_segments()
    raise AssertionError(f"stale exchange segments survived the kill: {stale}")


def _resume_and_check(ckpt, seed, lenient, columnar, out_of_core=False):
    result = run_durable_pipeline(
        _dataset(seed, lenient),
        _eco(),
        checkpoint_dir=ckpt,
        resume=True,
        n_workers=1,
        lenient=lenient,
        columnar=columnar,
        out_of_core=out_of_core,
    )
    baseline = _baseline(seed, lenient)
    assert result.day_records == baseline.day_records
    assert result.summaries == baseline.summaries
    assert list(result.summaries) == list(baseline.summaries)
    assert result.classifications == baseline.classifications
    assert list(result.classifications) == list(baseline.classifications)
    if lenient:
        assert "poison-kill" not in result.summaries
        ours, theirs = result.degradation, baseline.degradation
        assert ours.n_devices_total == theirs.n_devices_total
        assert dict(ours.n_failed_by_stage) == dict(theirs.n_failed_by_stage)
    return result


def _journal_attempt_sets(ckpt):
    from repro.runtime.checkpoint import CheckpointStore

    doc = json.loads((Path(ckpt) / MANIFEST_NAME).read_text(encoding="utf-8"))
    store = CheckpointStore(
        ckpt, doc["payload"]["fingerprint"], n_shards=1, resume=True
    )
    entries = store.journal_entries()
    store.close()
    by_attempt = {}
    for entry in entries:
        by_attempt.setdefault(entry["attempt"], set()).add(
            (entry["day"], entry["shard"])
        )
    return by_attempt


#: (kill point, day, shard) — first unit, mid-day shard, day boundary,
#: and inside the rename window.
KILL_SPECS = [
    (KILL_AT_UNIT, 0, 0),
    (KILL_AT_UNIT, 3, 1),
    (KILL_AT_DAY, 2, 0),
    (KILL_AT_RENAME, 3, 0),
]


@pytest.mark.parametrize("seed", [3, 5, 7])
@pytest.mark.parametrize("point,day,shard", KILL_SPECS)
def test_kill_matrix_resume_is_byte_identical(tmp_path, point, day, shard, seed):
    ckpt = tmp_path / "ckpt"
    _run_child_until_killed(
        ckpt, point, day, shard, seed, workers=2, lenient=False, columnar=False
    )
    _resume_and_check(ckpt, seed, lenient=False, columnar=False)
    by_attempt = _journal_attempt_sets(ckpt)
    # Units completed before the kill are never re-executed on resume.
    assert not by_attempt.get(0, set()) & by_attempt.get(1, set())


@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("lenient", [False, True])
@pytest.mark.parametrize("columnar", [False, True])
def test_kill_sweep_modes_and_workers(tmp_path, workers, lenient, columnar):
    ckpt = tmp_path / "ckpt"
    _run_child_until_killed(
        ckpt, KILL_AT_UNIT, 2, 0, seed=3,
        workers=workers, lenient=lenient, columnar=columnar,
    )
    _resume_and_check(ckpt, seed=3, lenient=lenient, columnar=columnar)


@pytest.mark.parametrize("point,day,shard", KILL_SPECS)
def test_kill_matrix_out_of_core(tmp_path, point, day, shard):
    """Out-of-core kill coverage at the spill seams.

    ``KILL_AT_UNIT`` dies between the worker's spill-write and the
    parent's adopt (the staged ``*.tmp`` exists, unpublished);
    ``KILL_AT_RENAME`` dies inside the adopt's rename window itself.
    Resume must sweep every stale staging file, re-execute exactly the
    unpublished units, close every mmap reader, and produce the same
    bytes.
    """
    from repro.runtime.spill import open_reader_count

    ckpt = tmp_path / "ckpt"
    _run_child_until_killed(
        ckpt, point, day, shard, seed=3,
        workers=2, lenient=False, columnar=False, out_of_core=True,
    )
    _resume_and_check(ckpt, seed=3, lenient=False, columnar=False, out_of_core=True)
    assert open_reader_count() == 0
    stale = list(Path(ckpt).rglob("*.tmp"))
    assert stale == [], f"stale spill staging files survived resume: {stale}"
    by_attempt = _journal_attempt_sets(ckpt)
    assert not by_attempt.get(0, set()) & by_attempt.get(1, set())


def test_kill_out_of_core_lenient_resumes_in_memory(tmp_path):
    """Cross-mode recovery: an out-of-core run killed mid-flight resumes
    on the in-memory path (and vice-versa block format is identical)."""
    ckpt = tmp_path / "ckpt"
    _run_child_until_killed(
        ckpt, KILL_AT_UNIT, 2, 0, seed=3,
        workers=2, lenient=True, columnar=False, out_of_core=True,
    )
    _resume_and_check(ckpt, seed=3, lenient=True, columnar=False, out_of_core=False)
