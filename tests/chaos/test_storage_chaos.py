"""Storage chaos: every fault class, at every seam, across seeds.

The acceptance bar for the storage-fault layer: for each fault class
(``enospc``/``eio-write``/``short-write``/``fsync-fail``/``rename-fail``
at the write/publish/journal seams, ``bit-rot`` at rest, ``eio-read``
at the fold seam) and three plan seeds, a strict run either absorbs the
fault under its retry budget or aborts typed with a consistent store —
and resume-then-scrub always converges to the **byte-identical**
catalog digest of an uninterrupted run.  Lenient runs never crash: they
quarantine the sick unit and converge on the next resume.

Excluded from tier-1 by the ``storage_chaos`` marker; CI runs it as its
own job with ``pytest -m storage_chaos``.
"""

import os
import subprocess
import sys

import pytest

from repro.ecosystem import EcosystemConfig, build_default_ecosystem
from repro.faults.fsfault import (
    BIT_ROT,
    EIO_READ,
    EIO_WRITE,
    ENOSPC,
    FSFAULT_PLAN_ENV,
    FSYNC_FAIL,
    RENAME_FAIL,
    SHORT_WRITE,
    FsFault,
    FsFaultPlan,
    install,
)
from repro.mno import MNOConfig, simulate_mno_dataset
from repro.parallel.health import STORAGE_FAULT, UNIT_QUARANTINED
from repro.pipeline import run_pipeline
from repro.runtime import run_durable_pipeline
from repro.runtime.checkpoint import StorageAbort
from repro.runtime.scrub import recompute_from_dataset, scrub_store
from repro.runtime.serialize import CheckpointCorruption
from repro.service import catalog_digest

pytestmark = pytest.mark.storage_chaos

SEEDS = (0, 1, 2)
WRITE_FAULTS = (ENOSPC, EIO_WRITE, SHORT_WRITE, FSYNC_FAIL, RENAME_FAIL)
N_DEVICES = 60


@pytest.fixture(scope="module")
def eco():
    return build_default_ecosystem(EcosystemConfig(uk_sites=30, seed=11))


@pytest.fixture(scope="module")
def dataset(eco):
    return simulate_mno_dataset(eco, MNOConfig(n_devices=N_DEVICES, seed=3))


@pytest.fixture(scope="module")
def baseline_digest(eco, dataset):
    result = run_pipeline(dataset, eco, n_workers=1)
    return catalog_digest(result.day_records, result.summaries)


def digest(result):
    return catalog_digest(result.day_records, result.summaries)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("kind", WRITE_FAULTS)
def test_transient_write_faults_are_absorbed(
    tmp_path, eco, dataset, baseline_digest, kind, seed
):
    """Faults inside the retry budget never change the result."""
    plan = FsFaultPlan(
        seed=seed, faults=(FsFault(kind, match="shard", times=2),)
    )
    with install(plan) as injector:
        result = run_durable_pipeline(
            dataset, eco, checkpoint_dir=tmp_path / "ckpt", n_workers=1
        )
    assert injector.n_fired == 2
    assert digest(result) == baseline_digest
    # Every absorbed fault left a typed incident, not silence.
    kinds = {i.kind for i in result.health.storage_incidents}
    assert kinds == {STORAGE_FAULT}
    assert scrub_store(tmp_path / "ckpt").ok


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("kind", (ENOSPC, EIO_WRITE, RENAME_FAIL))
def test_persistent_fault_aborts_typed_then_resume_converges(
    tmp_path, eco, dataset, baseline_digest, kind, seed
):
    """Exhausted retries abort typed; the store resumes to the same bytes."""
    ckpt = tmp_path / "ckpt"
    plan = FsFaultPlan(
        seed=seed, faults=(FsFault(kind, match="day_002", times=-1),)
    )
    with install(plan):
        with pytest.raises(StorageAbort) as excinfo:
            run_durable_pipeline(dataset, eco, checkpoint_dir=ckpt, n_workers=1)
    assert excinfo.value.day == 2
    assert "can be resumed" in str(excinfo.value)
    # No torn state: the interrupted store already scrubs clean.
    report = scrub_store(ckpt)
    assert not report.damaged and not report.n_stray_tmp
    result = run_durable_pipeline(
        dataset, eco, checkpoint_dir=ckpt, resume=True, n_workers=1
    )
    assert digest(result) == baseline_digest
    assert scrub_store(ckpt).ok


@pytest.mark.parametrize("seed", SEEDS)
def test_lenient_quarantines_sick_unit_then_converges(
    tmp_path, eco, dataset, baseline_digest, seed
):
    ckpt = tmp_path / "ckpt"
    plan = FsFaultPlan(
        seed=seed, faults=(FsFault(ENOSPC, match="day_001", times=-1),)
    )
    with install(plan):
        degraded = run_durable_pipeline(
            dataset, eco, checkpoint_dir=ckpt, n_workers=1, lenient=True
        )
    kinds = {i.kind for i in degraded.health.storage_incidents}
    assert UNIT_QUARANTINED in kinds
    # The sick unit is absent from the degraded catalog, not wrong.
    assert digest(degraded) != baseline_digest
    result = run_durable_pipeline(
        dataset, eco, checkpoint_dir=ckpt, resume=True, n_workers=1, lenient=True
    )
    assert digest(result) == baseline_digest


@pytest.mark.parametrize("seed", SEEDS)
def test_bit_rot_at_rest_is_scrubbed_back_to_identical_bytes(
    tmp_path, eco, dataset, baseline_digest, seed
):
    ckpt = tmp_path / "ckpt"
    plan = FsFaultPlan(
        seed=seed,
        faults=(FsFault(BIT_ROT, match="day_001.shard_000", flips=3, times=1),),
    )
    with install(plan):
        result = run_durable_pipeline(
            dataset, eco, checkpoint_dir=ckpt, n_workers=1
        )
    # Rot is silent at write time: the in-memory run is untouched...
    assert digest(result) == baseline_digest
    # ...but the scrubber catches the at-rest damage,
    report = scrub_store(ckpt)
    assert [u.damage for u in report.damaged] == ["bit-rot"]
    # heals it byte-identically from the original inputs,
    healed = scrub_store(
        ckpt, repair=True, recompute=recompute_from_dataset(dataset)
    )
    assert healed.n_recomputed == 1 and healed.healthy_after_scrub
    assert scrub_store(ckpt).ok
    # and a resume folding the healed store reproduces the digest.
    resumed = run_durable_pipeline(
        dataset, eco, checkpoint_dir=ckpt, resume=True, n_workers=1
    )
    assert digest(resumed) == baseline_digest


@pytest.mark.parametrize("seed", SEEDS)
def test_read_eio_at_the_fold_seam(
    tmp_path, eco, dataset, baseline_digest, seed
):
    """Out-of-core folds hit the read seam: strict aborts, lenient degrades."""
    strict = tmp_path / "strict"
    plan = FsFaultPlan(
        seed=seed,
        faults=(FsFault(EIO_READ, match="day_001.shard_000", times=-1),),
    )
    with install(plan):
        with pytest.raises(CheckpointCorruption):
            run_durable_pipeline(
                dataset, eco, checkpoint_dir=strict, n_workers=1,
                out_of_core=True,
            )
    resumed = run_durable_pipeline(
        dataset, eco, checkpoint_dir=strict, resume=True, n_workers=1,
        out_of_core=True,
    )
    assert digest(resumed) == baseline_digest

    lenient = tmp_path / "lenient"
    with install(plan):
        degraded = run_durable_pipeline(
            dataset, eco, checkpoint_dir=lenient, n_workers=1,
            out_of_core=True, lenient=True,
        )
    kinds = {i.kind for i in degraded.health.storage_incidents}
    assert kinds == {STORAGE_FAULT, UNIT_QUARANTINED}
    converged = run_durable_pipeline(
        dataset, eco, checkpoint_dir=lenient, resume=True, n_workers=1,
        out_of_core=True, lenient=True,
    )
    assert digest(converged) == baseline_digest


@pytest.mark.parametrize("seed", SEEDS)
def test_worker_staging_fault_degrades_to_blob_shipping(
    tmp_path, eco, dataset, baseline_digest, seed
):
    """A sick spill volume slows the run instead of crashing it."""
    # Worker staging names carry the writer's pid; matching on it spares
    # the parent's own ``.ckpt.tmp`` publishes (n_workers=1 runs the
    # worker in-process, so the pid is ours).
    plan = FsFaultPlan(
        seed=seed,
        faults=(FsFault(EIO_WRITE, match=f".ckpt.{os.getpid()}", times=-1),),
    )
    with install(plan):
        result = run_durable_pipeline(
            dataset, eco, checkpoint_dir=tmp_path / "ckpt", n_workers=1,
            out_of_core=True,
        )
    assert digest(result) == baseline_digest
    shipped = [
        i for i in result.health.storage_incidents
        if "shipped to parent" in i.detail
    ]
    assert shipped, "expected the blob-shipping degradation to be recorded"
    assert scrub_store(tmp_path / "ckpt").ok


CHILD_SCRIPT = """
import sys

from repro.ecosystem import EcosystemConfig, build_default_ecosystem
from repro.mno import MNOConfig, simulate_mno_dataset
from repro.runtime import run_durable_pipeline
from repro.runtime.checkpoint import StorageAbort

eco = build_default_ecosystem(EcosystemConfig(uk_sites=30, seed=11))
dataset = simulate_mno_dataset(eco, MNOConfig(n_devices=int(sys.argv[2]), seed=3))
try:
    run_durable_pipeline(dataset, eco, checkpoint_dir=sys.argv[1], n_workers=1)
except StorageAbort as exc:
    print(f"aborted: day={exc.day}")
    sys.exit(17)
sys.exit(0)
"""


def test_env_plan_reaches_subprocesses(tmp_path, eco, dataset, baseline_digest):
    """``REPRO_FSFAULT_PLAN`` arms whole process trees, not just installs."""
    ckpt = tmp_path / "ckpt"
    plan = FsFaultPlan(
        seed=0, faults=(FsFault(ENOSPC, match="day_002", times=-1),)
    )
    env = dict(os.environ)
    env[FSFAULT_PLAN_ENV] = plan.to_json()
    env["PYTHONPATH"] = "src"
    child = subprocess.run(
        [sys.executable, "-c", CHILD_SCRIPT, str(ckpt), str(N_DEVICES)],
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert child.returncode == 17, child.stderr
    assert "aborted: day=2" in child.stdout
    # This process never saw the plan; the resume runs clean.
    result = run_durable_pipeline(
        dataset, eco, checkpoint_dir=ckpt, resume=True, n_workers=1
    )
    assert digest(result) == baseline_digest
    assert scrub_store(ckpt).ok
