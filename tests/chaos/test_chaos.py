"""Chaos suite: invariants that must hold across a grid of fault plans.

Every test here is parametrized over ``plan kind × seed`` (9 grid
points).  The invariants are the contract of the robustness layer:

* injection is byte-deterministic for a (plan, input) pair;
* lenient ingest accounts for every physical row exactly once;
* HLR validation *never raises* on damaged streams, and its cancel
  accounting always sums;
* ``run_pipeline(lenient=True)`` *never raises* on damaged datasets,
  returns a DegradationReport, and keeps coverage high.

Excluded from tier-1 by the ``chaos`` marker (see pyproject); CI runs it
as its own job with ``pytest -m chaos``.
"""

import dataclasses

import pytest

from repro.datasets.io import ingest_transactions, write_transactions
from repro.faults import (
    FaultPlan,
    OutageWindow,
    TRANSACTION_SCHEMA,
    inject_jsonl,
    inject_radio_events,
    inject_service_records,
    inject_transactions,
)
from repro.pipeline import run_pipeline
from repro.signaling.cdr import ServiceRecord, ServiceType
from repro.signaling.hlr import validate_stream

pytestmark = pytest.mark.chaos

SEEDS = (0, 1, 2)


def make_plan(kind, seed):
    if kind == "stream":
        return FaultPlan(
            seed=seed, drop_rate=0.05, duplicate_rate=0.03, reorder_rate=0.05
        )
    if kind == "corrupt":
        return FaultPlan(seed=seed, corrupt_rate=0.08, truncate_fraction=0.02)
    return FaultPlan(
        seed=seed,
        drop_rate=0.02,
        outages=(OutageWindow(start_s=100_000.0, end_s=250_000.0),),
    )


GRID = [
    (kind, seed)
    for kind in ("stream", "corrupt", "outage")
    for seed in SEEDS
]


def grid_params():
    return pytest.mark.parametrize(
        ("kind", "seed"), GRID, ids=[f"{k}-s{s}" for k, s in GRID]
    )


@grid_params()
def test_file_injection_is_byte_deterministic(tmp_path, m2m_dataset, kind, seed):
    plan = make_plan(kind, seed)
    src = tmp_path / "clean.jsonl"
    write_transactions(src, m2m_dataset.transactions[:2000])
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    report_a = inject_jsonl(src, a, plan, TRANSACTION_SCHEMA)
    report_b = inject_jsonl(src, b, plan, TRANSACTION_SCHEMA)
    assert a.read_bytes() == b.read_bytes()
    assert report_a == report_b


@grid_params()
def test_lenient_ingest_accounts_for_every_row(tmp_path, m2m_dataset, kind, seed):
    plan = make_plan(kind, seed)
    src = tmp_path / "clean.jsonl"
    dst = tmp_path / "dirty.jsonl"
    write_transactions(src, m2m_dataset.transactions[:2000])
    inject_jsonl(src, dst, plan, TRANSACTION_SCHEMA)
    records, report = ingest_transactions(dst, lenient=True)
    assert report.n_ok == len(records)
    assert report.n_ok + report.n_quarantined == report.n_rows
    assert report.coverage > 0.5
    for error in report.errors:
        assert error.kind.value in ("parse", "schema", "semantic")


@grid_params()
def test_hlr_validation_survives_damaged_streams(m2m_dataset, kind, seed):
    plan = make_plan(kind, seed)
    damaged, _ = inject_transactions(m2m_dataset.transactions, plan)
    report = validate_stream(damaged)  # must never raise
    assert (
        report.n_coherent_cancels
        + report.n_cancels_never_registered
        + report.n_cancels_of_current
        == report.n_cancel_locations
    )
    assert 0.0 <= report.cancel_coherence <= 1.0
    if plan.drop_rate > 0 and report.n_incoherent_cancels:
        # drops manifest as cancels for never-seen registrations,
        # reorders as cancels naming the live one; both are counted
        assert (
            report.n_cancels_never_registered + report.n_cancels_of_current
            == report.n_incoherent_cancels
        )


def poison_record(device_id):
    return ServiceRecord(
        device_id=device_id,
        timestamp=1000.0,
        sim_plmn="26202",
        visited_plmn="20801",
        service=ServiceType.VOICE,
        duration_s=30.0,
    )


@grid_params()
def test_lenient_pipeline_never_raises(eco, mno_dataset, kind, seed):
    plan = make_plan(kind, seed)
    events, _ = inject_radio_events(mno_dataset.radio_events, plan)
    records, _ = inject_service_records(mno_dataset.service_records, plan)
    dirty = dataclasses.replace(
        mno_dataset,
        radio_events=events,
        service_records=records + [poison_record(f"poison-{kind}-{seed}")],
    )
    result = run_pipeline(dirty, eco, lenient=True)
    report = result.degradation
    assert report is not None
    assert report.n_devices_total > 0
    assert report.coverage > 0.9
    assert result.summaries
    assert result.classifications
    assert report.n_devices_ok == len(result.classifications)
    # the poison device is quarantined, not fatal
    assert f"poison-{kind}-{seed}" not in result.summaries


@grid_params()
def test_degraded_population_stays_calibrated(eco, mno_dataset, kind, seed):
    """Bounded faults must not collapse the classified population."""
    plan = make_plan(kind, seed)
    events, _ = inject_radio_events(mno_dataset.radio_events, plan)
    records, _ = inject_service_records(mno_dataset.service_records, plan)
    dirty = dataclasses.replace(
        mno_dataset, radio_events=events, service_records=records
    )
    clean_result = run_pipeline(mno_dataset, eco)
    dirty_result = run_pipeline(dirty, eco, lenient=True)
    n_clean = len(clean_result.classifications)
    n_dirty = len(dirty_result.classifications)
    # drop_rate <= 5% on records can only lose devices whose *every*
    # record dropped; the classified population stays within 10%.
    assert n_dirty >= 0.9 * n_clean
