"""Per-device quarantine in run_pipeline's lenient mode."""

import dataclasses

import pytest

from repro.pipeline import MAX_EXEMPLAR_FAILURES, run_pipeline
from repro.signaling.cdr import ServiceRecord, ServiceType


def poison_record(device_id, timestamp=1000.0):
    """A device seen only via a foreign CDR with a foreign SIM.

    Its roaming label would be I:A (foreign SIM on a foreign network),
    which the labeler rejects as unobservable — the catalog's summarize
    stage raises for exactly this device.
    """
    return ServiceRecord(
        device_id=device_id,
        timestamp=timestamp,
        sim_plmn="26202",
        visited_plmn="20801",
        service=ServiceType.VOICE,
        duration_s=30.0,
    )


def with_poison(dataset, n=1):
    extra = [poison_record(f"poison-{i}", 1000.0 + i) for i in range(n)]
    return dataclasses.replace(
        dataset, service_records=dataset.service_records + extra
    )


def test_strict_mode_still_raises(eco, mno_dataset):
    with pytest.raises(ValueError):
        run_pipeline(with_poison(mno_dataset), eco)


def test_lenient_quarantines_the_poison_device(eco, mno_dataset):
    result = run_pipeline(with_poison(mno_dataset), eco, lenient=True)
    report = result.degradation
    assert report is not None
    assert report.n_failed_by_stage == {"summary": 1}
    assert report.n_devices_failed == 1
    assert 0.0 < report.coverage < 1.0
    assert not report.ok
    assert "poison-0" not in result.summaries
    assert "poison-0" not in result.classifications
    assert report.exemplars[0].device_id == "poison-0"
    assert "I:A" in report.exemplars[0].error


def test_lenient_matches_strict_on_clean_data(eco, mno_dataset):
    strict = run_pipeline(mno_dataset, eco)
    lenient = run_pipeline(mno_dataset, eco, lenient=True)
    assert strict.degradation is None
    assert lenient.degradation is not None
    assert lenient.degradation.ok
    assert lenient.degradation.coverage == 1.0
    assert lenient.day_records == strict.day_records
    assert lenient.summaries == strict.summaries
    assert lenient.classifications == strict.classifications


def test_survivors_are_unaffected_by_the_poison(eco, mno_dataset):
    clean = run_pipeline(mno_dataset, eco, lenient=True)
    dirty = run_pipeline(with_poison(mno_dataset), eco, lenient=True)
    assert dirty.summaries == clean.summaries
    assert dirty.classifications == clean.classifications


def test_exemplars_are_capped_but_counts_are_not(eco, mno_dataset):
    n_poison = MAX_EXEMPLAR_FAILURES + 3
    result = run_pipeline(with_poison(mno_dataset, n=n_poison), eco, lenient=True)
    report = result.degradation
    assert report.n_failed_by_stage == {"summary": n_poison}
    assert len(report.exemplars) == MAX_EXEMPLAR_FAILURES


def test_degradation_accounting_sums(eco, mno_dataset):
    result = run_pipeline(with_poison(mno_dataset, n=2), eco, lenient=True)
    report = result.degradation
    assert report.n_devices_ok + report.n_devices_failed == report.n_devices_total
    assert report.n_devices_ok == len(result.classifications)
