"""Tests for config JSON round-trips."""

import json

import pytest

from repro.configio import (
    config_from_dict,
    load_config,
    save_config,
    to_dict,
)
from repro.ecosystem import EcosystemConfig
from repro.mno.config import MNOConfig
from repro.platform_m2m.config import PlatformConfig


class TestEcosystemConfig:
    def test_round_trip(self, tmp_path):
        config = EcosystemConfig(uk_sites=50, mvnos_on_study_mno=3, seed=99)
        path = tmp_path / "eco.json"
        save_config(path, config)
        restored = load_config(path)
        assert restored == config


class TestPlatformConfig:
    def test_round_trip_with_fleets(self, tmp_path):
        config = PlatformConfig(n_devices=777, seed=5)
        path = tmp_path / "platform.json"
        save_config(path, config)
        restored = load_config(path)
        assert restored.n_devices == 777
        assert restored.steering_mix == config.steering_mix
        assert set(restored.fleets) == set(config.fleets)
        es = restored.fleets["ES"]
        assert es.share == config.fleets["ES"].share
        assert es.vertical_mix == dict(config.fleets["ES"].vertical_mix)

    def test_restored_config_simulates_identically(self, tmp_path, eco):
        from repro.platform_m2m import simulate_m2m_dataset

        config = PlatformConfig(n_devices=60, seed=8)
        path = tmp_path / "platform.json"
        save_config(path, config)
        restored = load_config(path)
        a = simulate_m2m_dataset(eco, config)
        b = simulate_m2m_dataset(eco, restored)
        assert a.n_transactions == b.n_transactions
        assert [t.timestamp for t in a.transactions[:50]] == [
            t.timestamp for t in b.transactions[:50]
        ]


class TestMNOConfig:
    def test_round_trip(self, tmp_path):
        config = MNOConfig(n_devices=333, seed=4)
        path = tmp_path / "mno.json"
        save_config(path, config)
        restored = load_config(path)
        assert restored.n_devices == 333
        assert restored.seed == 4
        assert len(restored.segments) == len(config.segments)

    def test_segment_fingerprint_mismatch_detected(self, tmp_path):
        config = MNOConfig(n_devices=10)
        payload = to_dict(config)
        payload["segment_fingerprint"] = "deadbeef0000"
        with pytest.raises(ValueError):
            config_from_dict(payload)


class TestErrors:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            config_from_dict({"__kind__": "Mystery"})

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            to_dict(object())

    def test_file_is_valid_json(self, tmp_path):
        path = tmp_path / "x.json"
        save_config(path, EcosystemConfig())
        payload = json.loads(path.read_text())
        assert payload["__kind__"] == "EcosystemConfig"
