"""Tests for config JSON round-trips."""

import json

import pytest

from repro.configio import (
    config_from_dict,
    load_config,
    save_config,
    to_dict,
)
from repro.ecosystem import EcosystemConfig
from repro.faults import CorruptionKind, FaultPlan, OutageWindow
from repro.mno.config import MNOConfig
from repro.platform_m2m.config import PlatformConfig
from repro.signaling.procedures import ResultCode


class TestEcosystemConfig:
    def test_round_trip(self, tmp_path):
        config = EcosystemConfig(uk_sites=50, mvnos_on_study_mno=3, seed=99)
        path = tmp_path / "eco.json"
        save_config(path, config)
        restored = load_config(path)
        assert restored == config


class TestPlatformConfig:
    def test_round_trip_with_fleets(self, tmp_path):
        config = PlatformConfig(n_devices=777, seed=5)
        path = tmp_path / "platform.json"
        save_config(path, config)
        restored = load_config(path)
        assert restored.n_devices == 777
        assert restored.steering_mix == config.steering_mix
        assert set(restored.fleets) == set(config.fleets)
        es = restored.fleets["ES"]
        assert es.share == config.fleets["ES"].share
        assert es.vertical_mix == dict(config.fleets["ES"].vertical_mix)

    def test_restored_config_simulates_identically(self, tmp_path, eco):
        from repro.platform_m2m import simulate_m2m_dataset

        config = PlatformConfig(n_devices=60, seed=8)
        path = tmp_path / "platform.json"
        save_config(path, config)
        restored = load_config(path)
        a = simulate_m2m_dataset(eco, config)
        b = simulate_m2m_dataset(eco, restored)
        assert a.n_transactions == b.n_transactions
        assert [t.timestamp for t in a.transactions[:50]] == [
            t.timestamp for t in b.transactions[:50]
        ]


class TestMNOConfig:
    def test_round_trip(self, tmp_path):
        config = MNOConfig(n_devices=333, seed=4)
        path = tmp_path / "mno.json"
        save_config(path, config)
        restored = load_config(path)
        assert restored.n_devices == 333
        assert restored.seed == 4
        assert len(restored.segments) == len(config.segments)

    def test_segment_fingerprint_mismatch_detected(self, tmp_path):
        config = MNOConfig(n_devices=10)
        payload = to_dict(config)
        payload["segment_fingerprint"] = "deadbeef0000"
        with pytest.raises(ValueError):
            config_from_dict(payload)


class TestFaultPlan:
    def test_round_trip(self, tmp_path):
        plan = FaultPlan(
            seed=7,
            drop_rate=0.02,
            duplicate_rate=0.01,
            reorder_rate=0.03,
            reorder_window=6,
            corrupt_rate=0.05,
            corruptions=(CorruptionKind.BAD_PLMN, CorruptionKind.GARBAGE_LINE),
            truncate_fraction=0.1,
            outages=(
                OutageWindow(
                    start_s=10.0,
                    end_s=20.0,
                    plmn="26202",
                    result=ResultCode.ROAMING_NOT_ALLOWED,
                ),
                OutageWindow(start_s=100.0, end_s=200.0),
            ),
        )
        path = tmp_path / "plan.json"
        save_config(path, plan)
        assert load_config(path) == plan

    def test_restored_plan_injects_identically(self, tmp_path):
        from repro.datasets.io import write_transactions
        from repro.faults import TRANSACTION_SCHEMA, inject_jsonl
        from repro.signaling.procedures import MessageType, SignalingTransaction

        plan = FaultPlan(seed=13, drop_rate=0.2, corrupt_rate=0.3)
        save_config(tmp_path / "plan.json", plan)
        restored = load_config(tmp_path / "plan.json")
        src = tmp_path / "clean.jsonl"
        write_transactions(
            src,
            [
                SignalingTransaction(
                    device_id=f"d{i}",
                    timestamp=float(i),
                    sim_plmn="21407",
                    visited_plmn="23410",
                    message_type=MessageType.UPDATE_LOCATION,
                    result=ResultCode.OK,
                )
                for i in range(40)
            ],
        )
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        inject_jsonl(src, a, plan, TRANSACTION_SCHEMA)
        inject_jsonl(src, b, restored, TRANSACTION_SCHEMA)
        assert a.read_bytes() == b.read_bytes()


class TestErrors:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            config_from_dict({"__kind__": "Mystery"})

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            to_dict(object())

    def test_file_is_valid_json(self, tmp_path):
        path = tmp_path / "x.json"
        save_config(path, EcosystemConfig())
        payload = json.loads(path.read_text())
        assert payload["__kind__"] == "EcosystemConfig"
