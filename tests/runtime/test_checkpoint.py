"""CheckpointStore semantics: atomicity, validation, journal recovery."""

import json

import pytest

from repro.faults.crash import make_manifest_stale
from repro.runtime.checkpoint import (
    JOURNAL_NAME,
    MANIFEST_NAME,
    CheckpointStore,
    atomic_write_bytes,
    atomic_write_text,
)
from repro.runtime.serialize import (
    CheckpointCorruption,
    CheckpointError,
    StaleManifestError,
)

FP = {"source": "test", "days": [0, 1], "lenient": False}


def test_atomic_write_replaces_and_leaves_no_temp(tmp_path):
    target = tmp_path / "artifact.bin"
    atomic_write_bytes(target, b"one")
    atomic_write_bytes(target, b"two")
    assert target.read_bytes() == b"two"
    assert list(tmp_path.glob("*.tmp")) == []


def test_atomic_write_text_round_trips(tmp_path):
    target = tmp_path / "artifact.json"
    atomic_write_text(target, '{"k": 1}')
    assert json.loads(target.read_text(encoding="utf-8")) == {"k": 1}


def test_before_replace_hook_sees_destination(tmp_path):
    seen = []
    atomic_write_bytes(tmp_path / "unit.ckpt", b"x", before_replace=seen.append)
    assert [p.name for p in seen] == ["unit.ckpt"]


def test_fresh_store_then_resume_round_trip(tmp_path):
    with CheckpointStore(tmp_path, FP, n_shards=2) as store:
        assert store.attempt == 0
        store.save_unit(0, 0, b"block")
        store.mark_complete(0, 0)
        assert store.is_journaled(0, 0)
        assert not store.is_journaled(0, 1)
    with CheckpointStore(tmp_path, FP, n_shards=2, resume=True) as store:
        assert store.attempt == 1
        assert store.is_journaled(0, 0)
        assert store.load_unit(0, 0) == b"block"
        assert store.journal_entries() == [{"day": 0, "shard": 0, "attempt": 0}]


def test_existing_manifest_without_resume_refuses(tmp_path):
    CheckpointStore(tmp_path, FP, n_shards=1).close()
    with pytest.raises(CheckpointError, match="resume=True"):
        CheckpointStore(tmp_path, FP, n_shards=1)


def test_resume_adopts_recorded_shard_count(tmp_path):
    CheckpointStore(tmp_path, FP, n_shards=4).close()
    store = CheckpointStore(tmp_path, FP, n_shards=2, resume=True)
    assert store.n_shards == 4
    store.close()


def test_fingerprint_mismatch_raises_stale(tmp_path):
    CheckpointStore(tmp_path, FP, n_shards=1).close()
    other = dict(FP, lenient=True)
    with pytest.raises(StaleManifestError, match="lenient"):
        CheckpointStore(tmp_path, other, n_shards=1, resume=True)


def test_stale_version_injector_raises(tmp_path):
    CheckpointStore(tmp_path, FP, n_shards=1).close()
    make_manifest_stale(tmp_path, mode="version")
    with pytest.raises(StaleManifestError, match="version"):
        CheckpointStore(tmp_path, FP, n_shards=1, resume=True)


def test_stale_fingerprint_injector_raises(tmp_path):
    CheckpointStore(tmp_path, FP, n_shards=1).close()
    make_manifest_stale(tmp_path, mode="fingerprint")
    with pytest.raises(StaleManifestError, match="differing keys"):
        CheckpointStore(tmp_path, FP, n_shards=1, resume=True)


def test_corrupted_manifest_raises_corruption(tmp_path):
    CheckpointStore(tmp_path, FP, n_shards=1).close()
    manifest = tmp_path / MANIFEST_NAME
    doc = json.loads(manifest.read_text(encoding="utf-8"))
    doc["payload"]["n_shards"] = 99  # payload no longer matches its crc
    atomic_write_text(manifest, json.dumps(doc))
    with pytest.raises(CheckpointCorruption, match="checksum"):
        CheckpointStore(tmp_path, FP, n_shards=1, resume=True)


def test_unparseable_manifest_raises_corruption(tmp_path):
    CheckpointStore(tmp_path, FP, n_shards=1).close()
    atomic_write_text(tmp_path / MANIFEST_NAME, "{not json")
    with pytest.raises(CheckpointCorruption, match="unreadable"):
        CheckpointStore(tmp_path, FP, n_shards=1, resume=True)


def test_torn_journal_tail_is_discarded(tmp_path):
    with CheckpointStore(tmp_path, FP, n_shards=2) as store:
        store.save_unit(0, 0, b"a")
        store.mark_complete(0, 0)
        store.save_unit(0, 1, b"b")
        store.mark_complete(0, 1)
    journal = tmp_path / JOURNAL_NAME
    with open(journal, "a", encoding="utf-8") as fh:
        fh.write('{"day": 1, "shard": 0, "att')  # torn mid-line
    store = CheckpointStore(tmp_path, FP, n_shards=2, resume=True)
    assert store.is_journaled(0, 0) and store.is_journaled(0, 1)
    assert not store.is_journaled(1, 0)
    store.close()


def test_journal_line_with_bad_crc_stops_replay(tmp_path):
    with CheckpointStore(tmp_path, FP, n_shards=2) as store:
        store.mark_complete(0, 0)
    journal = tmp_path / JOURNAL_NAME
    lines = journal.read_text(encoding="utf-8").splitlines()
    doc = json.loads(lines[0])
    doc["shard"] = 1  # entry no longer matches its crc
    with open(journal, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(doc) + "\n")
    store = CheckpointStore(tmp_path, FP, n_shards=2, resume=True)
    assert store.is_journaled(0, 0)
    assert not store.is_journaled(0, 1)
    store.close()


def test_missing_unit_block_raises_corruption(tmp_path):
    with CheckpointStore(tmp_path, FP, n_shards=1) as store:
        store.mark_complete(0, 0)  # journaled but never saved
        with pytest.raises(CheckpointCorruption, match="no block file"):
            store.load_unit(0, 0)


def test_stray_temp_files_cleaned_on_open(tmp_path):
    with CheckpointStore(tmp_path, FP, n_shards=1) as store:
        stray = store.unit_path(0, 0).with_name("day_000.shard_000.ckpt.tmp")
        stray.write_bytes(b"partial")
    store = CheckpointStore(tmp_path, FP, n_shards=1, resume=True)
    assert not stray.exists()
    store.close()


def test_adopt_unit_rename_failure_unlinks_staged_tmp(tmp_path):
    from repro.faults.fsfault import RENAME_FAIL, FsFault, FsFaultPlan, install

    with CheckpointStore(tmp_path, FP, n_shards=1) as store:
        staged = store.unit_path(0, 0).with_name("day_000.shard_000.ckpt.tmp")
        staged.write_bytes(b"worker-written block")
        with install(FsFaultPlan(faults=(FsFault(RENAME_FAIL),))):
            with pytest.raises(OSError):
                store.adopt_unit(0, 0, staged)
        # The failed adoption strands neither the staged temp nor a
        # half-published target.
        assert not staged.exists()
        assert not store.unit_path(0, 0).exists()
        # A retried adoption from re-staged bytes then succeeds.
        staged.write_bytes(b"worker-written block")
        store.adopt_unit(0, 0, staged)
        assert store.load_unit(0, 0) == b"worker-written block"


def test_save_unit_write_fault_leaves_no_torn_state(tmp_path):
    from repro.faults.fsfault import ENOSPC, FsFault, FsFaultPlan, install

    with CheckpointStore(tmp_path, FP, n_shards=1) as store:
        with install(FsFaultPlan(faults=(FsFault(ENOSPC),))):
            with pytest.raises(OSError):
                store.save_unit(0, 0, b"payload")
        assert not store.unit_path(0, 0).exists()
        assert list(tmp_path.rglob("*.tmp")) == []
        store.save_unit(0, 0, b"payload")
        assert store.load_unit(0, 0) == b"payload"
