"""Runtime-suite fixtures: one small world, datasets sized for sweeps.

The durable-execution tests run the pipeline many times (equality
sweeps across worker counts × data planes × strict/lenient), so the
dataset here is deliberately smaller than the session-wide one.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.ecosystem import EcosystemConfig, build_default_ecosystem
from repro.mno import MNOConfig, simulate_mno_dataset
from repro.signaling.cdr import ServiceRecord, ServiceType


@pytest.fixture(scope="session")
def small_eco():
    return build_default_ecosystem(EcosystemConfig(uk_sites=30, seed=11))


@pytest.fixture(scope="session")
def small_dataset(small_eco):
    return simulate_mno_dataset(small_eco, MNOConfig(n_devices=120, seed=3))


def poison_record(device_id: str) -> ServiceRecord:
    """A record whose device can never be summarized (foreign SIM on a
    foreign network inside the observer's trace) — the canonical lenient
    -mode quarantine trigger shared with the chaos suite."""
    return ServiceRecord(
        device_id=device_id,
        timestamp=1000.0,
        sim_plmn="26202",
        visited_plmn="20801",
        service=ServiceType.VOICE,
        duration_s=30.0,
    )


@pytest.fixture(scope="session")
def poisoned_dataset(small_dataset):
    return dataclasses.replace(
        small_dataset,
        service_records=small_dataset.service_records
        + [poison_record("poison-runtime")],
    )
