"""The fsio seam: fault-aware primitives never leave partial state."""

import errno

import pytest

from repro.faults.fsfault import (
    BIT_ROT,
    EIO_READ,
    EIO_WRITE,
    ENOSPC,
    FSYNC_FAIL,
    RENAME_FAIL,
    SHORT_WRITE,
    FsFault,
    FsFaultPlan,
    install,
)
from repro.runtime import fsio


def test_write_read_round_trip(tmp_path):
    path = tmp_path / "blob.bin"
    assert fsio.write_file_bytes(path, b"payload") == len(b"payload")
    assert fsio.read_file_bytes(path) == b"payload"


def test_enospc_leaves_no_partial_file(tmp_path):
    path = tmp_path / "blob.bin"
    with install(FsFaultPlan(faults=(FsFault(ENOSPC),))):
        with pytest.raises(OSError) as excinfo:
            fsio.write_file_bytes(path, b"payload")
    assert excinfo.value.errno == errno.ENOSPC
    assert not path.exists()


def test_eio_write_leaves_no_partial_file(tmp_path):
    path = tmp_path / "blob.bin"
    with install(FsFaultPlan(faults=(FsFault(EIO_WRITE),))):
        with pytest.raises(OSError) as excinfo:
            fsio.write_file_bytes(path, b"payload")
    assert excinfo.value.errno == errno.EIO
    assert not path.exists()


def test_short_write_is_cleaned_up_not_left_torn(tmp_path):
    path = tmp_path / "blob.bin"
    with install(FsFaultPlan(faults=(FsFault(SHORT_WRITE),))):
        with pytest.raises(OSError):
            fsio.write_file_bytes(path, b"0123456789abcdef")
    # The prefix really was written, then the failed call removed it:
    # callers retry into a clean slot, never append onto a torn tail.
    assert not path.exists()


def test_fsync_fault_propagates_and_cleans(tmp_path):
    path = tmp_path / "blob.bin"
    with install(FsFaultPlan(faults=(FsFault(FSYNC_FAIL),))):
        with pytest.raises(OSError):
            fsio.write_file_bytes(path, b"payload")
    assert not path.exists()


def test_bit_rot_persists_damaged_bytes_silently(tmp_path):
    path = tmp_path / "blob.bin"
    data = bytes(range(256))
    with install(FsFaultPlan(seed=5, faults=(FsFault(BIT_ROT, flips=3),))):
        n = fsio.write_file_bytes(path, data)
    assert n == len(data)  # the write "succeeded"
    on_disk = fsio.read_file_bytes(path)
    assert len(on_disk) == len(data)
    assert on_disk != data


def test_read_fault_raises_after_clean_write(tmp_path):
    path = tmp_path / "blob.bin"
    fsio.write_file_bytes(path, b"payload")
    with install(FsFaultPlan(faults=(FsFault(EIO_READ),))):
        with pytest.raises(OSError) as excinfo:
            fsio.read_file_bytes(path)
    assert excinfo.value.errno == errno.EIO
    assert fsio.read_file_bytes(path) == b"payload"


def test_check_read_probe_covers_mmap_path(tmp_path):
    path = tmp_path / "blob.bin"
    fsio.write_file_bytes(path, b"payload")
    fsio.check_read(path)  # no fault: silent
    with install(FsFaultPlan(faults=(FsFault(EIO_READ),))):
        with pytest.raises(OSError):
            fsio.check_read(path)


def test_replace_file_unlinks_source_on_rename_fault(tmp_path):
    source = tmp_path / "unit.ckpt.tmp"
    target = tmp_path / "unit.ckpt"
    fsio.write_file_bytes(source, b"staged")
    with install(FsFaultPlan(faults=(FsFault(RENAME_FAIL),))):
        with pytest.raises(OSError):
            fsio.replace_file(source, target)
    # The staged temp never outlives the failed adoption.
    assert not source.exists()
    assert not target.exists()


def test_replace_file_succeeds_without_faults(tmp_path):
    source = tmp_path / "unit.ckpt.tmp"
    target = tmp_path / "unit.ckpt"
    fsio.write_file_bytes(source, b"staged")
    fsio.replace_file(source, target)
    assert not source.exists()
    assert fsio.read_file_bytes(target) == b"staged"


def test_append_text_applies_write_faults(tmp_path):
    path = tmp_path / "journal.jsonl"
    handle = fsio.open_append(path)
    try:
        fsio.append_text(handle, path, "line-1\n")
        with install(FsFaultPlan(faults=(FsFault(ENOSPC),))):
            with pytest.raises(OSError):
                fsio.append_text(handle, path, "line-2\n")
        fsio.append_text(handle, path, "line-3\n")
        fsio.fsync_handle(handle, path)
    finally:
        handle.close()
    assert fsio.read_file_bytes(path) == b"line-1\nline-3\n"


def test_fsync_handle_fault(tmp_path):
    path = tmp_path / "journal.jsonl"
    handle = fsio.open_append(path)
    try:
        with install(FsFaultPlan(faults=(FsFault(FSYNC_FAIL),))):
            with pytest.raises(OSError):
                fsio.fsync_handle(handle, path)
    finally:
        handle.close()


def test_fsync_dir_swallows_but_exercises_injected_faults(tmp_path):
    # Directory fsync is best-effort (not all filesystems support it):
    # the injected fault fires — covering the swallow path — but never
    # propagates.
    with install(
        FsFaultPlan(faults=(FsFault(FSYNC_FAIL, match=tmp_path.name),))
    ) as injector:
        fsio.fsync_dir(tmp_path)
        assert injector.n_fired == 1
    fsio.fsync_dir(tmp_path)  # no fault: silent
