"""Checkpoint block framing: round trips are exact, corruption is loud."""

import pytest

from repro.runtime.serialize import (
    BLOCK_VERSION,
    MAGIC,
    CheckpointCorruption,
    pack_day_block,
    unpack_day_block,
)


def _day_zero_rows(dataset):
    radio = [e for e in dataset.radio_events if e.timestamp < 86400.0]
    service = [r for r in dataset.service_records if r.timestamp < 86400.0]
    return radio, service


def test_round_trip_preserves_rows(small_dataset):
    radio, service = _day_zero_rows(small_dataset)
    blob = pack_day_block(radio, service)
    events_c, records_c, quarantine = unpack_day_block(blob)
    assert quarantine == []
    assert list(events_c.iter_rows()) == radio
    assert list(records_c.iter_rows()) == service


def test_round_trip_preserves_quarantine(small_dataset):
    radio, service = _day_zero_rows(small_dataset)
    entries = [
        ("dev-a", "summary", "ValueError: label I:A is unobservable"),
        ("dev-b", "catalog", "KeyError: 'missing'"),
    ]
    blob = pack_day_block(radio, service, entries)
    _, _, quarantine = unpack_day_block(blob)
    assert quarantine == entries


def test_empty_block_round_trips():
    blob = pack_day_block([], [])
    events_c, records_c, quarantine = unpack_day_block(blob)
    assert list(events_c.iter_rows()) == []
    assert list(records_c.iter_rows()) == []
    assert quarantine == []


def test_pack_is_deterministic(small_dataset):
    radio, service = _day_zero_rows(small_dataset)
    assert pack_day_block(radio, service) == pack_day_block(radio, service)


def test_truncation_detected(small_dataset):
    radio, service = _day_zero_rows(small_dataset)
    blob = pack_day_block(radio, service)
    with pytest.raises(CheckpointCorruption):
        unpack_day_block(blob[: len(blob) // 2])


def test_single_flipped_byte_detected(small_dataset):
    radio, service = _day_zero_rows(small_dataset)
    blob = bytearray(pack_day_block(radio, service))
    blob[len(blob) // 2] ^= 0xFF
    with pytest.raises(CheckpointCorruption):
        unpack_day_block(bytes(blob))


def test_bad_magic_detected(small_dataset):
    radio, service = _day_zero_rows(small_dataset)
    blob = pack_day_block(radio, service)
    assert blob.startswith(MAGIC)
    with pytest.raises(CheckpointCorruption):
        unpack_day_block(b"XXXX" + blob[4:])


def test_unknown_version_detected(small_dataset):
    radio, service = _day_zero_rows(small_dataset)
    blob = bytearray(pack_day_block(radio, service))
    assert BLOCK_VERSION == 1
    blob[4] = 99  # version field follows the 4-byte magic
    with pytest.raises(CheckpointCorruption):
        unpack_day_block(bytes(blob))
