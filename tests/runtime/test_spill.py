"""Out-of-core spill layer: zero-copy attach, LRU window, corruption.

Three contracts under test:

- :class:`BlockReader` attaches a spilled unit zero-copy (or via the
  streamed fallback) with identical rows, and every torn/corrupt/short
  block raises :class:`CheckpointCorruption` naming the ``(day, shard)``;
- :class:`ReplayWindow` keeps the open-reader population within its
  shard/byte budgets (eviction actually closes mappings — that is what
  bounds RSS) while never evicting the unit just attached;
- ``run_durable_pipeline(out_of_core=True)`` is byte-identical to the
  in-memory path across worker counts, strict/lenient, ephemeral and
  durable spill stores, cross-mode resume, and torn-unit recovery —
  with no reader leaked and no stale staging file left behind.
"""

from pathlib import Path

import pytest

from repro.columnar.blocks import CheckpointCorruption
from repro.faults.crash import tear_day_checkpoint
from repro.parallel.health import TORN_CHECKPOINT
from repro.pipeline import run_pipeline
from repro.runtime import run_durable_pipeline
from repro.runtime.checkpoint import UNITS_DIRNAME
from repro.runtime.run import _day_slices
from repro.runtime.serialize import pack_day_block, unpack_day_block
from repro.runtime.spill import (
    SPILL_NO_MMAP_ENV,
    BlockReader,
    ReplayWindow,
    open_reader_count,
)

from tests.runtime.test_durable_run import assert_same_result


@pytest.fixture(scope="module")
def plain_result(small_eco, small_dataset):
    return run_pipeline(small_dataset, small_eco, n_workers=1)


@pytest.fixture(scope="module")
def plain_lenient(small_eco, poisoned_dataset):
    return run_pipeline(poisoned_dataset, small_eco, lenient=True, n_workers=1)


@pytest.fixture()
def unit_file(tmp_path, small_dataset):
    """One day's records packed as a framed block on disk."""
    day, (radio, service) = sorted(_day_slices(small_dataset).items())[0]
    blob = pack_day_block(radio, service)
    path = tmp_path / f"day_{day:03d}.shard_000.ckpt"
    path.write_bytes(blob)
    return path, day, blob


def test_block_reader_attaches_zero_copy(unit_file):
    path, day, blob = unit_file
    events_ref, records_ref, _ = unpack_day_block(blob)
    with BlockReader(path, day, 0) as reader:
        events, records, quarantine = reader.attach()
        assert open_reader_count() == 1
        # Zero-copy: numeric columns are views over the mapping.
        assert isinstance(events.timestamps, memoryview)
        assert isinstance(records.timestamps, memoryview)
        assert quarantine == []
        assert events.to_rows() == events_ref.to_rows()
        assert records.to_rows() == records_ref.to_rows()
        # Idempotent: a second attach returns the same stores.
        assert reader.attach()[0] is events
        assert open_reader_count() == 1
    assert open_reader_count() == 0
    assert reader.events is None and reader.records is None


def test_streamed_fallback_is_identical(unit_file, monkeypatch):
    path, day, blob = unit_file
    with BlockReader(path, day, 0) as mapped:
        mapped_rows = mapped.attach()[0].to_rows()
    monkeypatch.setenv(SPILL_NO_MMAP_ENV, "1")
    with BlockReader(path, day, 0) as streamed:
        events, records, _ = streamed.attach()
        # Fallback materializes real columns, not views.
        assert not isinstance(events.timestamps, memoryview)
        assert events.to_rows() == mapped_rows
        assert open_reader_count() == 1
    assert open_reader_count() == 0


@pytest.mark.parametrize("use_mmap", [True, False])
def test_truncated_tail_names_the_unit(unit_file, monkeypatch, use_mmap):
    if not use_mmap:
        monkeypatch.setenv(SPILL_NO_MMAP_ENV, "1")
    path, day, blob = unit_file
    path.write_bytes(blob[: len(blob) - 7])
    reader = BlockReader(path, day, 3)
    with pytest.raises(CheckpointCorruption) as excinfo:
        reader.attach()
    assert f"day={day}" in str(excinfo.value)
    assert "shard=3" in str(excinfo.value)
    assert open_reader_count() == 0


@pytest.mark.parametrize("use_mmap", [True, False])
def test_flipped_body_byte_fails_crc(unit_file, monkeypatch, use_mmap):
    if not use_mmap:
        monkeypatch.setenv(SPILL_NO_MMAP_ENV, "1")
    path, day, blob = unit_file
    corrupt = bytearray(blob)
    corrupt[-1] ^= 0xFF
    path.write_bytes(bytes(corrupt))
    with pytest.raises(CheckpointCorruption) as excinfo:
        BlockReader(path, day, 0).attach()
    assert f"day={day}" in str(excinfo.value)
    assert open_reader_count() == 0


@pytest.mark.parametrize("length", [0, 3, 11])
def test_short_file_is_corruption_not_crash(unit_file, length):
    # Shorter than the frame header — including the empty file, where
    # mmap itself refuses to map and the streamed fallback validates.
    path, day, blob = unit_file
    path.write_bytes(blob[:length])
    with pytest.raises(CheckpointCorruption):
        BlockReader(path, day, 0).attach()
    assert open_reader_count() == 0


def test_missing_file_is_corruption(tmp_path):
    with pytest.raises(CheckpointCorruption) as excinfo:
        BlockReader(tmp_path / "absent.ckpt", 5, 2).attach()
    assert "day=5" in str(excinfo.value) and "shard=2" in str(excinfo.value)
    assert open_reader_count() == 0


@pytest.fixture()
def shard_files(tmp_path, small_dataset):
    """Six single-shard unit files for window tests."""
    day, (radio, service) = sorted(_day_slices(small_dataset).items())[0]
    paths = {}
    for shard in range(6):
        blob = pack_day_block(radio[shard::6], service[shard::6])
        path = tmp_path / f"day_{day:03d}.shard_{shard:03d}.ckpt"
        path.write_bytes(blob)
        paths[shard] = path
    return day, paths


def test_window_evicts_lru_and_closes_readers(shard_files):
    day, paths = shard_files
    with ReplayWindow(max_resident_shards=2) as window:
        window.attach(paths[0], day, 0)
        window.attach(paths[1], day, 1)
        # Bump shard 0 to most-recently-used, then overflow.
        window.attach(paths[0], day, 0)
        window.attach(paths[2], day, 2)
        assert window.resident_shards == 2
        assert open_reader_count() == 2
        assert list(window.resident_keys()) == [(day, 0), (day, 2)]
    assert open_reader_count() == 0


def test_window_byte_budget_never_evicts_current(shard_files):
    day, paths = shard_files
    # A byte budget smaller than any one unit: the just-attached unit
    # must survive anyway, alone.
    with ReplayWindow(max_resident_shards=10, max_resident_bytes=1) as window:
        window.attach(paths[0], day, 0)
        assert window.resident_shards == 1
        window.attach(paths[1], day, 1)
        assert window.resident_shards == 1
        assert list(window.resident_keys()) == [(day, 1)]
    assert open_reader_count() == 0


def test_window_rejects_empty_budget():
    with pytest.raises(ValueError):
        ReplayWindow(max_resident_shards=0)


def _no_stale_spill_files(checkpoint_dir) -> bool:
    return not list(Path(checkpoint_dir).rglob("*.tmp"))


@pytest.mark.parametrize("n_workers", [1, 2])
def test_out_of_core_equals_plain_strict(
    tmp_path, small_eco, small_dataset, plain_result, n_workers
):
    result = run_durable_pipeline(
        small_dataset,
        small_eco,
        checkpoint_dir=tmp_path / "ckpt",
        n_workers=n_workers,
        out_of_core=True,
        max_resident_shards=1,
    )
    assert_same_result(result, plain_result)
    assert result.health is not None and result.health.ok
    assert open_reader_count() == 0
    assert _no_stale_spill_files(tmp_path / "ckpt")


@pytest.mark.parametrize("n_workers", [1, 2])
def test_out_of_core_equals_plain_lenient(
    tmp_path, small_eco, poisoned_dataset, plain_lenient, n_workers
):
    result = run_durable_pipeline(
        poisoned_dataset,
        small_eco,
        checkpoint_dir=tmp_path / "ckpt",
        n_workers=n_workers,
        lenient=True,
        out_of_core=True,
    )
    assert_same_result(result, plain_lenient)
    assert result.degradation is not None
    assert plain_lenient.degradation is not None
    assert (
        result.degradation.n_failed_by_stage
        == plain_lenient.degradation.n_failed_by_stage
    )
    assert open_reader_count() == 0


def test_out_of_core_without_checkpoint_dir(small_eco, small_dataset, plain_result):
    """Ephemeral spill: no directory supplied, none left behind."""
    import glob
    import tempfile

    before = set(glob.glob(str(Path(tempfile.gettempdir()) / "repro_spill_*")))
    result = run_durable_pipeline(
        small_dataset, small_eco, checkpoint_dir=None, out_of_core=True
    )
    after = set(glob.glob(str(Path(tempfile.gettempdir()) / "repro_spill_*")))
    assert_same_result(result, plain_result)
    assert after == before
    assert open_reader_count() == 0


def test_streamed_fallback_pipeline_is_identical(
    tmp_path, small_eco, small_dataset, plain_result, monkeypatch
):
    monkeypatch.setenv(SPILL_NO_MMAP_ENV, "1")
    result = run_durable_pipeline(
        small_dataset,
        small_eco,
        checkpoint_dir=tmp_path / "ckpt",
        out_of_core=True,
    )
    assert_same_result(result, plain_result)
    assert open_reader_count() == 0


@pytest.mark.parametrize("first_out_of_core", [False, True])
def test_cross_mode_resume(
    tmp_path, small_eco, small_dataset, plain_result, first_out_of_core
):
    """A checkpoint written in either mode resumes in the other."""
    run_durable_pipeline(
        small_dataset,
        small_eco,
        checkpoint_dir=tmp_path,
        out_of_core=first_out_of_core,
    )
    result = run_durable_pipeline(
        small_dataset,
        small_eco,
        checkpoint_dir=tmp_path,
        resume=True,
        out_of_core=not first_out_of_core,
    )
    assert_same_result(result, plain_result)
    assert open_reader_count() == 0


def test_out_of_core_resume_after_torn_unit(
    tmp_path, small_eco, small_dataset, plain_result
):
    run_durable_pipeline(
        small_dataset, small_eco, checkpoint_dir=tmp_path, out_of_core=True
    )
    torn_day = sorted(_day_slices(small_dataset))[1]
    tear_day_checkpoint(tmp_path, torn_day, 0)
    result = run_durable_pipeline(
        small_dataset,
        small_eco,
        checkpoint_dir=tmp_path,
        resume=True,
        out_of_core=True,
    )
    assert_same_result(result, plain_result)
    assert result.health is not None
    assert any(
        incident.kind == TORN_CHECKPOINT for incident in result.health.incidents
    )
    assert open_reader_count() == 0
    assert _no_stale_spill_files(tmp_path)


def test_stale_spill_staging_swept_on_resume(
    tmp_path, small_eco, small_dataset, plain_result
):
    """A SIGKILL between spill-write and adopt leaves a ``*.tmp`` stray;
    the store's resume-time temp sweep must remove it."""
    run_durable_pipeline(
        small_dataset, small_eco, checkpoint_dir=tmp_path, out_of_core=True
    )
    stray = Path(tmp_path) / UNITS_DIRNAME / "day_000.shard_000.ckpt.99999.tmp"
    stray.write_bytes(b"half a spilled block")
    result = run_durable_pipeline(
        small_dataset,
        small_eco,
        checkpoint_dir=tmp_path,
        resume=True,
        out_of_core=True,
    )
    assert_same_result(result, plain_result)
    assert not stray.exists()
    assert _no_stale_spill_files(tmp_path)


def test_replay_window_attach_read_eio_leaks_no_reader(unit_file):
    from repro.faults.fsfault import EIO_READ, FsFault, FsFaultPlan, install

    path, day, blob = unit_file
    window = ReplayWindow(max_resident_shards=4)
    before = open_reader_count()
    plan = FsFaultPlan(faults=(FsFault(EIO_READ, match=path.name, times=-1),))
    with install(plan):
        with pytest.raises(CheckpointCorruption) as excinfo:
            window.attach(path, day, 0)
    # The injected device error is contained as a named-unit corruption
    # (both the mmap probe and the streamed fallback hit the seam) and
    # the window tracks nothing for the failed unit.
    assert f"day={day}" in str(excinfo.value)
    assert window.resident_shards == 0
    assert open_reader_count() == before
    # The fault was transient: the very next attach succeeds.
    events, records, _ = window.attach(path, day, 0)
    expected_events, expected_records, _ = unpack_day_block(blob)
    assert events.to_rows() == expected_events.to_rows()
    assert records.to_rows() == expected_records.to_rows()
    window.close()
    assert open_reader_count() == before


def test_replay_window_attach_bit_rot_leaks_no_reader(unit_file):
    path, day, blob = unit_file
    damaged = bytearray(blob)
    damaged[-25] ^= 0xFF
    path.write_bytes(bytes(damaged))
    window = ReplayWindow(max_resident_shards=4)
    before = open_reader_count()
    with pytest.raises(CheckpointCorruption):
        window.attach(path, day, 0)
    assert window.resident_shards == 0
    assert open_reader_count() == before
