"""Durable pipeline contract: kill → resume → byte-identical results."""

import pytest

from repro.datasets.io import IngestReport
from repro.faults.crash import tear_day_checkpoint, tear_journal_tail
from repro.parallel.health import TORN_CHECKPOINT
from repro.pipeline import run_pipeline
from repro.runtime import run_durable_pipeline
from repro.runtime.checkpoint import JOURNAL_NAME, MANIFEST_NAME, UNITS_DIRNAME
from repro.runtime.run import _day_slices


def assert_same_result(result, baseline):
    assert result.day_records == baseline.day_records
    assert result.summaries == baseline.summaries
    assert list(result.summaries) == list(baseline.summaries)
    assert result.classifications == baseline.classifications
    assert list(result.classifications) == list(baseline.classifications)


@pytest.fixture(scope="module")
def plain_result(small_eco, small_dataset):
    return run_pipeline(small_dataset, small_eco, n_workers=1)


@pytest.fixture(scope="module")
def plain_lenient(small_eco, poisoned_dataset):
    return run_pipeline(poisoned_dataset, small_eco, lenient=True, n_workers=1)


@pytest.mark.parametrize("n_workers", [1, 2])
@pytest.mark.parametrize("columnar", [False, True])
def test_durable_equals_plain_strict(
    tmp_path, small_eco, small_dataset, plain_result, n_workers, columnar
):
    result = run_durable_pipeline(
        small_dataset,
        small_eco,
        checkpoint_dir=tmp_path / "ckpt",
        n_workers=n_workers,
        columnar=columnar,
    )
    assert_same_result(result, plain_result)
    assert result.health is not None and result.health.ok


def test_durable_without_persistence_equals_plain(
    small_eco, small_dataset, plain_result
):
    result = run_durable_pipeline(small_dataset, small_eco, checkpoint_dir=None)
    assert_same_result(result, plain_result)


def test_checkpoint_layout_on_disk(tmp_path, small_eco, small_dataset):
    run_durable_pipeline(
        small_dataset, small_eco, checkpoint_dir=tmp_path, n_workers=2
    )
    assert (tmp_path / MANIFEST_NAME).exists()
    assert (tmp_path / JOURNAL_NAME).exists()
    n_days = len(_day_slices(small_dataset))
    units = list((tmp_path / UNITS_DIRNAME).glob("*.ckpt"))
    assert len(units) == n_days * 2  # n_shards follows n_workers


@pytest.mark.parametrize("columnar", [False, True])
def test_lenient_durable_equals_serial(
    tmp_path, small_eco, poisoned_dataset, plain_lenient, columnar
):
    result = run_durable_pipeline(
        poisoned_dataset,
        small_eco,
        checkpoint_dir=tmp_path / "ckpt",
        lenient=True,
        n_workers=2,
        columnar=columnar,
    )
    assert_same_result(result, plain_lenient)
    assert "poison-runtime" not in result.summaries
    ours, theirs = result.degradation, plain_lenient.degradation
    assert ours.n_devices_total == theirs.n_devices_total
    assert ours.n_devices_ok == theirs.n_devices_ok
    assert dict(ours.n_failed_by_stage) == dict(theirs.n_failed_by_stage)
    assert [
        (f.device_id, f.stage, f.error) for f in ours.exemplars
    ] == [(f.device_id, f.stage, f.error) for f in theirs.exemplars]


def test_interrupt_then_resume_is_identical(
    tmp_path, small_eco, small_dataset, plain_result
):
    class Interrupt(RuntimeError):
        pass

    def bomb(day):
        if day == 2:
            raise Interrupt

    with pytest.raises(Interrupt):
        run_durable_pipeline(
            small_dataset,
            small_eco,
            checkpoint_dir=tmp_path,
            n_workers=2,
            on_day=bomb,
        )
    # Resume at a *different* worker count: the recorded shard count is
    # adopted, so completed units stay addressable.
    result = run_durable_pipeline(
        small_dataset,
        small_eco,
        checkpoint_dir=tmp_path,
        resume=True,
        n_workers=1,
    )
    assert_same_result(result, plain_result)

    # The journal proves completed units were never re-executed: the
    # first attempt's units and the resume's units are disjoint.
    from repro.runtime.checkpoint import CheckpointStore

    store = CheckpointStore(
        tmp_path, _recorded_fingerprint(tmp_path), n_shards=2, resume=True
    )
    entries = store.journal_entries()
    store.close()
    first = {(e["day"], e["shard"]) for e in entries if e["attempt"] == 0}
    second = {(e["day"], e["shard"]) for e in entries if e["attempt"] == 1}
    assert first and second
    assert not first & second
    assert {day for day, _ in first} == {0, 1, 2}
    assert min(day for day, _ in second) >= 2


def _recorded_fingerprint(directory):
    import json
    from pathlib import Path

    doc = json.loads(
        (Path(directory) / MANIFEST_NAME).read_text(encoding="utf-8")
    )
    return doc["payload"]["fingerprint"]


def test_torn_checkpoint_reexecutes_only_that_unit(
    tmp_path, small_eco, small_dataset, plain_result
):
    run_durable_pipeline(
        small_dataset, small_eco, checkpoint_dir=tmp_path, n_workers=2
    )
    tear_day_checkpoint(tmp_path, day=1, shard=0)
    result = run_durable_pipeline(
        small_dataset,
        small_eco,
        checkpoint_dir=tmp_path,
        resume=True,
        n_workers=2,
    )
    assert_same_result(result, plain_result)
    assert result.health.torn_checkpoints == 1
    kinds = [i.kind for i in result.health.incidents]
    assert TORN_CHECKPOINT in kinds

    from repro.runtime.checkpoint import CheckpointStore

    store = CheckpointStore(
        tmp_path, _recorded_fingerprint(tmp_path), n_shards=2, resume=True
    )
    redone = {
        (e["day"], e["shard"])
        for e in store.journal_entries()
        if e["attempt"] == 1
    }
    store.close()
    assert redone == {(1, 0)}


def test_torn_journal_tail_resumes_and_reports(
    tmp_path, small_eco, small_dataset, plain_result
):
    run_durable_pipeline(
        small_dataset, small_eco, checkpoint_dir=tmp_path, n_workers=2
    )
    tear_journal_tail(tmp_path)

    result = run_durable_pipeline(
        small_dataset,
        small_eco,
        checkpoint_dir=tmp_path,
        resume=True,
        n_workers=2,
    )
    assert_same_result(result, plain_result)

    # The discard is loud, not silent: one TORN_CHECKPOINT incident
    # naming the journal, counted alongside torn unit blocks.
    assert result.health.torn_checkpoints == 1
    torn = [i for i in result.health.incidents if i.kind == TORN_CHECKPOINT]
    assert len(torn) == 1
    assert "journal torn tail" in torn[0].detail

    # Exactly the discarded completion re-executed, on a later attempt.
    from repro.runtime.checkpoint import CheckpointStore

    store = CheckpointStore(
        tmp_path, _recorded_fingerprint(tmp_path), n_shards=2, resume=True
    )
    entries = store.journal_entries()
    store.close()
    redone = [e for e in entries if e["attempt"] > 0]
    assert len(redone) == 1
    n_days = len(_day_slices(small_dataset))
    assert len(entries) == n_days * 2  # full coverage restored


def test_day_source_feeds_and_reports(tmp_path, small_eco, small_dataset):
    slices = _day_slices(small_dataset)
    per_day_report = {
        day: IngestReport(path=f"day_{day}", n_rows=10, n_ok=10)
        for day in slices
    }

    def source(day):
        radio, service = slices[day]
        return radio, service, per_day_report[day]

    baseline = run_pipeline(small_dataset, small_eco, lenient=True, n_workers=1)
    result = run_durable_pipeline(
        small_dataset,
        small_eco,
        checkpoint_dir=tmp_path,
        lenient=True,
        day_source=source,
        days=sorted(slices),
    )
    assert_same_result(result, baseline)
    assert result.degradation.ingest is not None
    assert result.degradation.ingest.n_rows == 10 * len(slices)


def test_run_pipeline_dispatches_to_durable(
    tmp_path, small_eco, small_dataset, plain_result
):
    result = run_pipeline(
        small_dataset, small_eco, n_workers=1, checkpoint_dir=tmp_path
    )
    assert_same_result(result, plain_result)
    assert result.health is not None
    assert (tmp_path / MANIFEST_NAME).exists()


def test_resume_requires_checkpoint_dir(small_eco, small_dataset):
    with pytest.raises(ValueError, match="checkpoint_dir"):
        run_pipeline(small_dataset, small_eco, resume=True)
