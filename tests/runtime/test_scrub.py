"""At-rest scrubbing: classify torn/rotted/missing units, heal, converge."""

import json
import shutil

import pytest

from repro.faults.fsfault import EIO_READ, FsFault, FsFaultPlan, install
from repro.pipeline import run_pipeline
from repro.runtime import run_durable_pipeline
from repro.runtime.checkpoint import (
    JOURNAL_NAME,
    MANIFEST_NAME,
    UNITS_DIRNAME,
    CheckpointError,
)
from repro.runtime.scrub import (
    DAMAGE_BIT_ROT,
    DAMAGE_MISSING,
    DAMAGE_READ_ERROR,
    DAMAGE_TORN_TAIL,
    recompute_from_dataset,
    scrub_store,
)
from repro.service.wal import BatchLog
from tests.runtime.test_durable_run import assert_same_result

N_SHARDS = 2


@pytest.fixture(scope="module")
def baseline(small_eco, small_dataset):
    return run_pipeline(small_dataset, small_eco, n_workers=1)


@pytest.fixture(scope="module")
def pristine_store(tmp_path_factory, small_eco, small_dataset):
    """One completed durable run; tests copy it rather than re-running."""
    root = tmp_path_factory.mktemp("scrub") / "ckpt"
    run_durable_pipeline(
        small_dataset,
        small_eco,
        checkpoint_dir=root,
        n_workers=N_SHARDS,
    )
    return root


@pytest.fixture
def store(pristine_store, tmp_path):
    copy = tmp_path / "ckpt"
    shutil.copytree(pristine_store, copy)
    return copy


def unit_paths(store):
    return sorted((store / UNITS_DIRNAME).glob("*.ckpt"))


def flip_byte(path, offset=-30):
    data = bytearray(path.read_bytes())
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))


def test_clean_store_scrubs_healthy(store):
    report = scrub_store(store)
    assert report.ok and report.healthy_after_scrub
    assert report.n_journaled_units > 0
    assert report.n_verified_ok == report.n_journaled_units
    assert report.damaged == []
    assert "healthy" in report.format()


def test_scrub_refuses_a_non_store_directory(tmp_path):
    with pytest.raises(CheckpointError, match="not a store"):
        scrub_store(tmp_path)


def test_torn_tail_classified(store):
    victim = unit_paths(store)[0]
    victim.write_bytes(victim.read_bytes()[: victim.stat().st_size // 2])
    report = scrub_store(store)
    assert [u.damage for u in report.damaged] == [DAMAGE_TORN_TAIL]
    assert not report.ok
    assert report.n_verified_ok == report.n_journaled_units - 1


def test_bit_rot_classified(store):
    flip_byte(unit_paths(store)[1])
    report = scrub_store(store)
    assert [u.damage for u in report.damaged] == [DAMAGE_BIT_ROT]


def test_missing_unit_classified(store):
    unit_paths(store)[2].unlink()
    report = scrub_store(store)
    assert [u.damage for u in report.damaged] == [DAMAGE_MISSING]


def test_read_error_classified_not_raised(store):
    victim = unit_paths(store)[0]
    plan = FsFaultPlan(faults=(FsFault(EIO_READ, match=victim.name, times=-1),))
    with install(plan):
        report = scrub_store(store)
    assert [u.damage for u in report.damaged] == [DAMAGE_READ_ERROR]
    assert "injected" in report.damaged[0].detail


def test_corrupt_manifest_reported_walk_continues(store):
    (store / MANIFEST_NAME).write_text("not json", encoding="utf-8")
    report = scrub_store(store)
    assert report.manifest_error
    assert not report.ok and not report.healthy_after_scrub
    # Units are self-validating; the walk still verified all of them.
    assert report.n_verified_ok == report.n_journaled_units > 0


def test_stray_tmp_counted_and_swept_on_repair(store):
    stray = store / UNITS_DIRNAME / "day_000.shard_000.ckpt.tmp"
    stray.write_bytes(b"staged then abandoned")
    assert scrub_store(store).n_stray_tmp == 1
    report = scrub_store(store, repair=True)
    assert report.n_stray_tmp == 1
    assert not stray.exists()
    assert scrub_store(store).ok


def test_torn_journal_tail_counted_and_truncated_on_repair(store):
    journal = store / JOURNAL_NAME
    journal.write_bytes(journal.read_bytes() + b'{"day": 9, "sh')
    assert scrub_store(store).n_torn_journal_lines == 1
    report = scrub_store(store, repair=True)
    assert report.n_torn_journal_lines == 1 and report.healthy_after_scrub
    after = scrub_store(store)
    assert after.ok and after.n_verified_ok == report.n_verified_ok


def test_repair_recomputes_byte_identical_units(store, small_dataset):
    victims = unit_paths(store)[:3]
    originals = [v.read_bytes() for v in victims]
    flip_byte(victims[0])
    victims[1].write_bytes(originals[1][:10])
    victims[2].unlink()
    report = scrub_store(
        store, repair=True, recompute=recompute_from_dataset(small_dataset)
    )
    assert report.n_recomputed == 3 and report.n_marked_for_rerun == 0
    assert report.healthy_after_scrub
    # Units are pure: the rebuilt blocks match the originals byte for byte.
    assert [v.read_bytes() for v in victims] == originals
    assert scrub_store(store).ok


def test_repair_verifies_recomputed_bytes(store):
    """A recompute that returns garbage is rejected, not installed."""
    victim = unit_paths(store)[0]
    flip_byte(victim)
    report = scrub_store(store, repair=True, recompute=lambda d, s, n: b"junk")
    assert report.n_recomputed == 0 and report.n_marked_for_rerun == 1
    assert not victim.exists()


def test_marked_for_rerun_converges_on_resume(
    store, small_eco, small_dataset, baseline
):
    flip_byte(unit_paths(store)[0])
    unit_paths(store)[3].unlink()
    report = scrub_store(store, repair=True)
    assert report.n_marked_for_rerun == 2
    assert report.healthy_after_scrub  # nothing unresolved remains
    result = run_durable_pipeline(
        small_dataset,
        small_eco,
        checkpoint_dir=store,
        resume=True,
        n_workers=N_SHARDS,
    )
    assert_same_result(result, baseline)
    assert scrub_store(store).ok


def test_recompute_from_dataset_bounds(small_dataset):
    recompute = recompute_from_dataset(small_dataset)
    assert recompute(0, 5, 2) is None  # shard out of range
    assert recompute(0, 0, 0) is None  # no shard count recorded
    assert recompute(0, 0, N_SHARDS) is not None
    # Lenient stores need the run's builder for per-unit validation.
    assert recompute_from_dataset(small_dataset, lenient=True)(0, 0, 2) is None


def test_wal_store_scrubs_through_the_envelope(tmp_path, small_dataset):
    wal_dir = tmp_path / "wal"
    log = BatchLog(wal_dir)
    radio = small_dataset.radio_events[:40]
    service = small_dataset.service_records[:40]
    for i in range(3):
        log.append(f"batch-{i}", radio, service)
    log.close()
    assert scrub_store(wal_dir).n_verified_ok == 3

    flip_byte(sorted((wal_dir / UNITS_DIRNAME).glob("*.ckpt"))[1])
    report = scrub_store(wal_dir)
    assert [u.damage for u in report.damaged] == [DAMAGE_BIT_ROT]

    # Repair never recomputes WAL batches (their inputs are gone); the
    # damaged unit is dropped so replay stops tripping over it.
    healed = scrub_store(
        wal_dir, repair=True, recompute=lambda d, s, n: b"irrelevant"
    )
    assert healed.n_recomputed == 0 and healed.n_marked_for_rerun == 1
    replayed = BatchLog(wal_dir, resume=True).replay()
    assert [b.batch_id for b in replayed] == ["batch-0", "batch-2"]


def test_report_json_payload(store):
    flip_byte(unit_paths(store)[0])
    report = scrub_store(store)
    payload = json.loads(report.to_json())
    assert payload["n_damaged"] == 1
    assert payload["damaged"][0]["damage"] == DAMAGE_BIT_ROT
    assert payload["ok"] is False
    assert payload["directory"] == str(store)


def test_cli_scrub_exit_codes(store, capsys):
    from repro.cli import main

    assert main(["scrub", "--checkpoint-dir", str(store)]) == 0
    flip_byte(unit_paths(store)[0])
    assert main(["scrub", "--checkpoint-dir", str(store), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out.splitlines()[-1])
    assert payload["n_damaged"] == 1
    # Repair without recompute marks the unit for re-execution: healthy.
    assert main(["scrub", "--checkpoint-dir", str(store), "--repair"]) == 0
    assert main(["scrub", "--checkpoint-dir", str(store / "nowhere")]) == 2


def test_cli_scrub_repair_recompute_matches_run(store, capsys):
    from repro.cli import main

    victim = unit_paths(store)[0]
    original = victim.read_bytes()
    flip_byte(victim)
    # The store was built from small_eco/small_dataset; mirror its knobs.
    exit_code = main(
        [
            "--uk-sites", "30", "--eco-seed", "11",
            "scrub", "--checkpoint-dir", str(store),
            "--repair", "--recompute", "--devices", "120", "--seed", "3",
        ]
    )
    assert exit_code == 0
    assert victim.read_bytes() == original
