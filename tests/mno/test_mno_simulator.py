"""Tests for the MNO event simulator."""

from collections import defaultdict


from repro.cellular.rats import RAT
from repro.mno import MNOConfig, simulate_mno_dataset
from repro.signaling.probes import ProbeArray


class TestDatasetStructure:
    def test_ground_truth_covers_population(self, mno_dataset):
        # Every device that produced records has ground truth.
        assert mno_dataset.device_ids <= set(mno_dataset.ground_truth)

    def test_records_time_ordered(self, mno_dataset):
        radio_ts = [e.timestamp for e in mno_dataset.radio_events]
        service_ts = [r.timestamp for r in mno_dataset.service_records]
        assert radio_ts == sorted(radio_ts)
        assert service_ts == sorted(service_ts)

    def test_timestamps_within_window(self, mno_dataset):
        window_s = mno_dataset.window_days * 86400.0
        assert all(0 <= e.timestamp < window_s for e in mno_dataset.radio_events)

    def test_sector_ids_resolve_in_catalog(self, mno_dataset):
        for event in mno_dataset.radio_events[:2000]:
            sector = mno_dataset.sector_catalog.by_id(event.sector_id)
            assert sector.rat is event.interface.rat

    def test_outbound_roamers_have_no_radio_events(self, mno_dataset):
        outbound = {
            d
            for d, g in mno_dataset.ground_truth.items()
            if g.profile.endswith("outbound")
        }
        assert outbound
        radio_devices = {e.device_id for e in mno_dataset.radio_events}
        assert not outbound & radio_devices

    def test_outbound_roamers_do_have_service_records(self, mno_dataset):
        outbound = {
            d
            for d, g in mno_dataset.ground_truth.items()
            if g.profile.endswith("outbound")
        }
        service_devices = {r.device_id for r in mno_dataset.service_records}
        assert outbound & service_devices

    def test_probe_array_sees_every_radio_event(self, mno_dataset):
        # The Fig.-4 deployment (MME+MSC+SGSN) has full interface coverage.
        array = ProbeArray()
        sample = mno_dataset.radio_events[:5000]
        assert array.observe(sample) == len(sample)

    def test_voice_apn_invariant(self, mno_dataset):
        for record in mno_dataset.service_records[:5000]:
            if record.is_voice:
                assert record.apn is None


class TestDeterminism:
    def test_same_seed_reproduces(self, eco):
        a = simulate_mno_dataset(eco, MNOConfig(n_devices=120, seed=5))
        b = simulate_mno_dataset(eco, MNOConfig(n_devices=120, seed=5))
        assert len(a.radio_events) == len(b.radio_events)
        assert len(a.service_records) == len(b.service_records)
        assert a.device_ids == b.device_ids


class TestBehaviouralInvariants:
    def test_rat_usage_respects_plan(self, mno_dataset):
        # Devices marked 2G-only in ground truth must never appear on
        # 3G/4G interfaces: roaming SMIP meters are the canonical case.
        roaming_meters = {
            d for d, g in mno_dataset.ground_truth.items() if g.smip_roaming
        }
        for event in mno_dataset.radio_events:
            if event.device_id in roaming_meters:
                assert event.rat is RAT.GSM

    def test_smip_native_uses_dedicated_sim_range(self, mno_dataset):
        natives = {
            d for d, g in mno_dataset.ground_truth.items() if g.smip_native
        }
        for event in mno_dataset.radio_events:
            if event.device_id in natives:
                assert event.sim_plmn == str(mno_dataset.observer.plmn)

    def test_voice_only_machines_send_no_data(self, mno_dataset):
        voice_only = {
            d
            for d, g in mno_dataset.ground_truth.items()
            if g.profile.startswith("voice_only")
        }
        assert voice_only
        for record in mno_dataset.service_records:
            if record.device_id in voice_only:
                assert record.is_voice

    def test_summary_counts(self, mno_dataset):
        summary = mno_dataset.summary()
        assert summary["devices"] > 0
        assert summary["radio_events"] == len(mno_dataset.radio_events)


class TestSessionStructure:
    def test_first_event_of_device_day_is_attach(self, mno_dataset):
        from collections import defaultdict
        from repro.signaling.procedures import MessageType

        first = {}
        last = {}
        counts = defaultdict(int)
        for event in mno_dataset.radio_events:
            key = (event.device_id, event.day)
            counts[key] += 1
            if key not in first or event.timestamp < first[key].timestamp:
                first[key] = event
            if key not in last or event.timestamp >= last[key].timestamp:
                last[key] = event
        checked = 0
        for key, event in first.items():
            if counts[key] >= 2:
                assert event.event_type is MessageType.ATTACH
                assert last[key].event_type is MessageType.DETACH
                checked += 1
            if checked > 500:
                break
        assert checked > 50

    def test_mid_session_dominated_by_rau(self, mno_dataset):
        from collections import Counter
        from repro.signaling.procedures import MessageType

        counter = Counter(e.event_type for e in mno_dataset.radio_events)
        assert counter[MessageType.ROUTING_AREA_UPDATE] > counter[MessageType.AUTHENTICATION]
