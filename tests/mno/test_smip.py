"""Tests for SMIP helpers and the §4.4 inference."""


from repro.mno.smip import (
    identify_smip_roaming,
    imsi_in_smip_range,
    smip_devices,
    smip_manufacturer_breakdown,
)
from repro.cellular.identifiers import IMSI, PLMN


class TestRange:
    def test_boundaries(self):
        plmn = PLMN(234, 10)
        assert imsi_in_smip_range(IMSI(plmn, 500_000_000))
        assert imsi_in_smip_range(IMSI(plmn, 599_999_999))
        assert not imsi_in_smip_range(IMSI(plmn, 499_999_999))
        assert not imsi_in_smip_range(IMSI(plmn, 600_000_000))


class TestGroundTruthSelectors:
    def test_partition_nonempty_and_disjoint(self, mno_dataset):
        native, roaming = smip_devices(mno_dataset.ground_truth)
        assert native and roaming
        assert not native & roaming


class TestInference:
    def test_identify_smip_roaming_matches_ground_truth(self, pipeline, eco):
        inferred = identify_smip_roaming(
            pipeline.summaries, home_plmn=str(eco.nl_iot_operator.plmn)
        )
        _, truth = smip_devices(pipeline.dataset.ground_truth)
        # The APN+home-operator inference should recover essentially all
        # data-active roaming meters and nothing else.
        truth_with_data = {
            d for d in truth if pipeline.summaries[d].apns
        }
        assert inferred == truth_with_data

    def test_inferred_meters_map_to_module_makers(self, pipeline, eco):
        inferred = identify_smip_roaming(
            pipeline.summaries, home_plmn=str(eco.nl_iot_operator.plmn)
        )
        makers = smip_manufacturer_breakdown(pipeline.summaries, inferred)
        # The paper's validation: only Gemalto and Telit appear.
        assert set(makers) <= {"Gemalto", "Telit"}
        assert sum(makers.values()) > 0

    def test_wrong_home_plmn_yields_nothing(self, pipeline):
        assert identify_smip_roaming(pipeline.summaries, home_plmn="99999") == set()
