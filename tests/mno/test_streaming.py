"""Tests for the streaming (day-by-day) MNO simulator."""

import pytest

from repro.mno import MNOConfig
from repro.mno.streaming import StreamingMNOSimulator


@pytest.fixture(scope="module")
def streaming(request):
    eco = request.getfixturevalue("eco")
    return StreamingMNOSimulator(eco, MNOConfig(n_devices=200, seed=13))


class TestStreaming:
    def test_batches_cover_the_window(self, streaming):
        batches = list(streaming.days())
        assert [b.day for b in batches] == list(range(streaming.config.window_days))

    def test_batch_events_belong_to_their_day(self, streaming):
        batch = streaming.generate_day(3)
        for event in batch.radio_events:
            assert event.day == 3
        for record in batch.service_records:
            assert record.day == 3

    def test_batch_sorted(self, streaming):
        batch = streaming.generate_day(5)
        ts = [e.timestamp for e in batch.radio_events]
        assert ts == sorted(ts)

    def test_only_scheduled_devices_emit(self, streaming):
        day = 7
        batch = streaming.generate_day(day)
        scheduled = streaming.active_devices_on(day)
        emitted = {e.device_id for e in batch.radio_events}
        emitted |= {r.device_id for r in batch.service_records}
        assert emitted <= scheduled

    def test_day_out_of_window_rejected(self, streaming):
        with pytest.raises(ValueError):
            streaming.generate_day(streaming.config.window_days)
        with pytest.raises(ValueError):
            streaming.generate_day(-1)

    def test_ground_truth_covers_population(self, streaming):
        truth = streaming.ground_truth()
        assert len(truth) == streaming.config.n_devices

    def test_total_volume_comparable_to_batch_simulator(self, request):
        """Streaming and batch modes draw from the same model, so the
        total record volume agrees statistically (same config, different
        RNG consumption order)."""
        from repro.mno import simulate_mno_dataset

        eco = request.getfixturevalue("eco")
        config = MNOConfig(n_devices=200, seed=13)
        streamed = sum(
            b.n_records for b in StreamingMNOSimulator(eco, config).days()
        )
        batch_ds = simulate_mno_dataset(eco, config)
        batch = len(batch_ds.radio_events) + len(batch_ds.service_records)
        assert streamed == pytest.approx(batch, rel=0.25)

    def test_streaming_is_self_deterministic(self, request):
        eco = request.getfixturevalue("eco")
        config = MNOConfig(n_devices=100, seed=17)
        a = StreamingMNOSimulator(eco, config).generate_day(2)
        b = StreamingMNOSimulator(eco, config).generate_day(2)
        assert a.n_records == b.n_records
        assert [e.timestamp for e in a.radio_events[:20]] == [
            e.timestamp for e in b.radio_events[:20]
        ]
