"""Day-partition JSONL round trip and lenient re-reads of dirty partitions."""

import pytest

from repro.mno import day_partition_paths, load_day_batch, write_day_batch
from repro.mno.streaming import DayBatch
from repro.signaling.cdr import ServiceRecord, ServiceType
from repro.signaling.events import RadioEvent, RadioInterface
from repro.signaling.procedures import MessageType, ResultCode


def make_batch(day=3):
    base = day * 86400.0
    events = [
        RadioEvent(
            device_id=f"dev-{i}",
            timestamp=base + i,
            sim_plmn="23410",
            tac=35236081,
            sector_id=i % 5,
            interface=RadioInterface.S1,
            event_type=MessageType.ATTACH,
            result=ResultCode.OK,
        )
        for i in range(6)
    ]
    records = [
        ServiceRecord(
            device_id=f"dev-{i}",
            timestamp=base + 100.0 + i,
            sim_plmn="23410",
            visited_plmn="23410",
            service=ServiceType.DATA,
            bytes_total=512,
            apn="iot.example",
        )
        for i in range(4)
    ]
    return DayBatch(day=day, radio_events=events, service_records=records)


def test_partition_paths_are_day_stamped(tmp_path):
    radio, service = day_partition_paths(tmp_path, 7)
    assert radio.name == "radio_07.jsonl"
    assert service.name == "service_07.jsonl"


def test_round_trip_preserves_the_batch(tmp_path):
    batch = make_batch()
    write_day_batch(tmp_path, batch)
    loaded, report = load_day_batch(tmp_path, batch.day)
    assert loaded.radio_events == batch.radio_events
    assert loaded.service_records == batch.service_records
    assert report.ok
    assert report.n_rows == batch.n_records


def test_strict_load_raises_on_a_dirty_partition(tmp_path):
    batch = make_batch()
    radio_path, _ = write_day_batch(tmp_path, batch)
    with open(radio_path, "a", encoding="utf-8") as handle:
        handle.write("{torn\n")
    with pytest.raises(ValueError):
        load_day_batch(tmp_path, batch.day)


def test_lenient_load_quarantines_and_resorts(tmp_path):
    batch = make_batch()
    radio_path, service_path = write_day_batch(tmp_path, batch)
    with open(radio_path, "a", encoding="utf-8") as handle:
        handle.write("{torn\n")
    # append an out-of-order (but valid) service row to exercise re-sort
    early = ServiceRecord(
        device_id="dev-early",
        timestamp=batch.day * 86400.0 + 1.0,
        sim_plmn="23410",
        visited_plmn="23410",
        service=ServiceType.VOICE,
        duration_s=10.0,
    )
    from repro.datasets.io import service_record_to_dict
    import json

    with open(service_path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(service_record_to_dict(early)) + "\n")

    loaded, report = load_day_batch(tmp_path, batch.day, lenient=True)
    assert report.n_quarantined == 1
    assert report.counts_by_kind == {"parse": 1}
    assert len(loaded.radio_events) == len(batch.radio_events)
    timestamps = [r.timestamp for r in loaded.service_records]
    assert timestamps == sorted(timestamps)
    assert loaded.service_records[0].device_id == "dev-early"
