"""Tests for GGSN pools and the SMIP isolation analysis."""

import pytest

from repro.mno.ggsn import (
    GGSNDeployment,
    GGSNPool,
    IsolationBenefit,
    isolation_benefit,
    pool_load_profile,
)
from repro.signaling.cdr import data_xdr, voice_cdr

PLMN = "23410"


def _session(apn, hour=2.0, device="d"):
    return data_xdr(device, hour * 3600.0, PLMN, PLMN, 1000, apn)


class TestPools:
    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            GGSNPool("p", capacity_per_hour=0)

    def test_dedicated_matching(self):
        pool = GGSNPool("meters", 100, ("smhp.",))
        assert pool.serves_apn("smhp.rwe.com.mnc004.mcc204.gprs")
        assert not pool.serves_apn("internet.op.com")


class TestDeployment:
    def test_needs_shared_pool(self):
        with pytest.raises(ValueError):
            GGSNDeployment([GGSNPool("meters", 100, ("smhp.",))])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            GGSNDeployment([GGSNPool("a", 1), GGSNPool("a", 2)])

    def test_dedicated_routing(self):
        deployment = GGSNDeployment(
            [GGSNPool("meters", 100, ("smhp.",)), GGSNPool("shared", 100)]
        )
        assert deployment.route("smhp.rwe.com").name == "meters"
        assert deployment.route("internet.op.com").name == "shared"
        assert deployment.route(None).name == "shared"

    def test_hash_routing_deterministic_and_spread(self):
        deployment = GGSNDeployment(
            [GGSNPool("s0", 100), GGSNPool("s1", 100)]
        )
        apns = [f"apn{i}.op.com" for i in range(40)]
        first = [deployment.route(a).name for a in apns]
        second = [deployment.route(a).name for a in apns]
        assert first == second
        assert len(set(first)) == 2  # both pools used


class TestLoadProfile:
    def test_hourly_binning(self):
        deployment = GGSNDeployment([GGSNPool("shared", 100)])
        records = [
            _session("a.op", hour=0.5),
            _session("a.op", hour=0.9),
            _session("a.op", hour=1.5),
            voice_cdr("d", 100.0, PLMN, PLMN, 10.0),  # voice ignored
        ]
        loads = pool_load_profile(deployment, records, window_days=1)
        profile = loads["shared"].hourly_sessions
        assert profile[0] == 2
        assert profile[1] == 1
        assert profile.sum() == 3

    def test_overload_detection(self):
        deployment = GGSNDeployment([GGSNPool("shared", capacity_per_hour=1)])
        records = [_session("a.op", hour=0.1, device=f"d{i}") for i in range(5)]
        loads = pool_load_profile(deployment, records, window_days=1)
        assert loads["shared"].overload_hours == 1
        assert loads["shared"].utilization == pytest.approx(5.0)

    def test_window_validation(self):
        deployment = GGSNDeployment([GGSNPool("shared", 100)])
        with pytest.raises(ValueError):
            pool_load_profile(deployment, [], window_days=0)


class TestIsolationBenefit:
    def test_hand_built_batch_scenario(self):
        # Meters all report at 02:00; consumers spread over the day.
        records = [
            _session("smhp.rwe.com", hour=2.1, device=f"m{i}") for i in range(50)
        ] + [
            _session("internet.op.com", hour=float(h) + 0.5, device=f"c{h}_{i}")
            for h in range(24)
            for i in range(3)
        ]
        benefit = isolation_benefit(records, window_days=1, shared_pools=1)
        assert benefit.meter_pool_peak == 50
        assert benefit.meter_pool_peak_hour == 2
        assert benefit.shared_peak_without_isolation > benefit.shared_peak_with_isolation
        assert benefit.peak_increase_without_isolation > 1.0

    def test_on_simulated_dataset(self, mno_dataset):
        """The simulated meters' nightly batch must load consumer pools
        when isolation is removed — the §4.4 rationale."""
        benefit = isolation_benefit(
            mno_dataset.service_records, mno_dataset.window_days
        )
        assert benefit.meter_pool_peak > 0
        # The meter pool peaks in the nightly reporting window.
        assert benefit.meter_pool_peak_hour in (0, 1, 2, 3, 4)
        assert (
            benefit.shared_peak_without_isolation
            >= benefit.shared_peak_with_isolation
        )

    def test_benefit_math(self):
        benefit = IsolationBenefit(100.0, 150.0, 80.0, 2)
        assert benefit.peak_increase_without_isolation == pytest.approx(0.5)
        zero = IsolationBenefit(0.0, 10.0, 10.0, 2)
        assert zero.peak_increase_without_isolation == float("inf")
