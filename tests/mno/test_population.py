"""Tests for the MNO population synthesizer."""

from collections import Counter

import pytest

from repro.core.apn import classify_apn, APNKind
from repro.devices.device import SimProvenance
from repro.mno.config import APNBehavior, MNOConfig, default_segments
from repro.mno.population import PopulationBuilder
from repro.mno.smip import imsi_in_smip_range


@pytest.fixture(scope="module")
def population(request):
    eco = request.getfixturevalue("eco")
    config = MNOConfig(n_devices=800, seed=21)
    return config, PopulationBuilder(eco, config).build()


class TestSegmentTable:
    def test_fractions_sum_to_one(self):
        assert sum(s.fraction for s in default_segments()) == pytest.approx(1.0)

    def test_config_rejects_bad_fractions(self):
        segments = default_segments()[:3]
        with pytest.raises(ValueError):
            MNOConfig(segments=segments)

    def test_config_rejects_duplicate_names(self):
        segments = default_segments()
        with pytest.raises(ValueError):
            MNOConfig(segments=segments + [segments[0]])


class TestPopulationCounts:
    def test_total_count_exact(self, population):
        config, planned = population
        assert len(planned) == config.n_devices

    def test_segment_fractions_respected(self, population):
        config, planned = population
        counts = Counter(p.segment.name for p in planned)
        for segment in config.segments:
            expected = segment.fraction * config.n_devices
            assert counts[segment.name] == pytest.approx(expected, abs=2)


class TestIdentity:
    def test_device_ids_unique(self, population):
        _, planned = population
        ids = [p.device_id for p in planned]
        assert len(set(ids)) == len(ids)

    def test_smip_native_in_dedicated_imsi_range(self, population):
        _, planned = population
        for plan in planned:
            in_range = imsi_in_smip_range(plan.device.imsi)
            assert in_range == plan.segment.smip_native

    def test_smip_roaming_all_from_nl_iot(self, population):
        _, planned = population
        roaming_meters = [p for p in planned if p.segment.smip_roaming]
        assert roaming_meters
        assert all(
            p.device.home_operator.name == "NL-IoT" for p in roaming_meters
        )

    def test_smip_roaming_hardware_is_gemalto_or_telit(self, population):
        _, planned = population
        for plan in planned:
            if plan.segment.smip_roaming:
                assert plan.device.model.manufacturer in ("Gemalto", "Telit")

    def test_provenance_matches_operator(self, population):
        _, planned = population
        for plan in planned:
            home = plan.device.home_operator
            if plan.segment.provenance is SimProvenance.HOME:
                assert home.country.iso == "GB" and not home.is_mvno
            elif plan.segment.provenance is SimProvenance.MVNO:
                assert home.is_mvno
            elif plan.segment.provenance is SimProvenance.NATIONAL:
                assert home.country.iso == "GB" and not home.is_mvno
            else:
                assert home.country.iso != "GB"


class TestAPNs:
    def test_energy_roaming_apns_classify_m2m(self, population):
        _, planned = population
        for plan in planned:
            if plan.segment.apn is APNBehavior.ENERGY_ROAMING and plan.apns:
                kind, vertical, _ = classify_apn(plan.apns[0])
                assert kind is APNKind.M2M

    def test_energy_apns_embed_nl_plmn(self, population):
        _, planned = population
        samples = [
            p.apns[0]
            for p in planned
            if p.segment.smip_roaming and p.apns
        ]
        assert samples
        assert all(apn.endswith(".mnc004.mcc204.gprs") for apn in samples)

    def test_voice_only_devices_have_no_apn(self, population):
        _, planned = population
        for plan in planned:
            if plan.segment.apn is APNBehavior.NONE:
                assert plan.apns == []
                assert not plan.uses_data

    def test_consumer_apns_are_consumer(self, population):
        _, planned = population
        for plan in planned:
            if plan.segment.apn is APNBehavior.CONSUMER and plan.apns:
                kind, _, _ = classify_apn(plan.apns[0])
                assert kind is APNKind.CONSUMER


class TestBehaviour:
    def test_rats_subset_of_model_bands(self, population):
        _, planned = population
        for plan in planned:
            assert plan.rats_used <= plan.device.model.bands

    def test_every_device_uses_some_service(self, population):
        _, planned = population
        assert all(p.uses_voice or p.uses_data for p in planned)

    def test_active_days_within_window(self, population):
        config, planned = population
        for plan in planned:
            assert plan.active_days.min() >= 0
            assert plan.active_days.max() < config.window_days

    def test_outbound_devices_have_foreign_visited_plmn(self, population):
        _, planned = population
        outbound = [p for p in planned if p.segment.outbound]
        assert outbound
        for plan in outbound:
            assert plan.mobility is None
            assert plan.outbound_visited_plmn is not None
            assert not plan.outbound_visited_plmn.startswith("234")

    def test_ground_truth_class_matches_segment(self, population):
        _, planned = population
        for plan in planned:
            assert plan.device.device_class is plan.segment.device_class
