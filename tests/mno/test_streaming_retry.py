"""load_day_batch_with_retry: transient I/O retries keep full accounting."""

import numpy as np
import pytest

import repro.mno.streaming as streaming
from repro.faults.retry import RetryError, RetryPolicy
from repro.mno import MNOConfig
from repro.mno.streaming import (
    StreamingMNOSimulator,
    load_day_batch,
    load_day_batch_with_retry,
    write_day_batch,
)


@pytest.fixture(scope="module")
def day_batch(eco):
    sim = StreamingMNOSimulator(eco, MNOConfig(n_devices=60, seed=3))
    return sim.generate_day(0)


@pytest.fixture()
def partition_dir(tmp_path, day_batch):
    write_day_batch(tmp_path, day_batch)
    return tmp_path


def test_clean_load_matches_plain_loader(partition_dir):
    plain_batch, plain_report = load_day_batch(partition_dir, 0)
    batch, report = load_day_batch_with_retry(partition_dir, 0)
    assert batch.radio_events == plain_batch.radio_events
    assert batch.service_records == plain_batch.service_records
    assert report.n_rows == plain_report.n_rows
    assert report.n_ok == plain_report.n_ok


def test_transient_failure_retries_and_keeps_partial_report(
    partition_dir, day_batch, monkeypatch
):
    plain_batch, plain_report = load_day_batch(partition_dir, 0)
    calls = {"n": 0}
    real = streaming.ingest_service_records

    def flaky(path, lenient=False):
        calls["n"] += 1
        if calls["n"] == 1:
            raise OSError("transient mount hiccup")
        return real(path, lenient=lenient)

    monkeypatch.setattr(streaming, "ingest_service_records", flaky)
    batch, report = load_day_batch_with_retry(partition_dir, 0)
    assert calls["n"] == 2
    assert batch.radio_events == plain_batch.radio_events
    assert batch.service_records == plain_batch.service_records
    # The failed attempt's radio read is merged in, not dropped: both
    # reads of the radio partition are accounted for.
    assert report.n_rows == plain_report.n_rows + len(day_batch.radio_events)
    assert report.n_ok == plain_report.n_ok + len(day_batch.radio_events)


def test_persistent_failure_exhausts_policy(tmp_path):
    policy = RetryPolicy(max_attempts=3)
    with pytest.raises(RetryError):
        load_day_batch_with_retry(tmp_path / "missing", 0, policy=policy)


def test_non_io_errors_are_not_retried(partition_dir, monkeypatch):
    calls = {"n": 0}

    def broken(path, lenient=False):
        calls["n"] += 1
        raise ValueError("schema bug, not an I/O fault")

    monkeypatch.setattr(streaming, "ingest_radio_events", broken)
    with pytest.raises(ValueError, match="schema bug"):
        load_day_batch_with_retry(partition_dir, 0)
    assert calls["n"] == 1


def test_retry_never_sleeps(partition_dir, monkeypatch):
    def no_sleep(_seconds):
        raise AssertionError("retry loop must not sleep")

    monkeypatch.setattr("time.sleep", no_sleep)
    calls = {"n": 0}
    real = streaming.ingest_service_records

    def flaky(path, lenient=False):
        calls["n"] += 1
        if calls["n"] < 3:
            raise OSError("transient")
        return real(path, lenient=lenient)

    monkeypatch.setattr(streaming, "ingest_service_records", flaky)
    batch, _ = load_day_batch_with_retry(
        partition_dir, 0, rng=np.random.default_rng(7)
    )
    assert batch.n_records > 0
