"""Unit tests for the one-file reproduction report."""

import pytest

from repro.reporting import build_report


class TestBuildReport:
    @pytest.fixture(scope="class")
    def report(self, m2m_dataset, pipeline, eco):
        return build_report(m2m_dataset, pipeline, eco)

    def test_all_figure_sections_present(self, report):
        for section in (
            "Fig. 2", "Fig. 3", "Fig. 5", "Fig. 6", "Fig. 7",
            "Fig. 8", "Fig. 9", "Fig. 10", "Fig. 11", "Fig. 12",
        ):
            assert section in report, section

    def test_markdown_structure(self, report):
        lines = report.splitlines()
        assert lines[0].startswith("# ")
        assert any(line.startswith("## The M2M platform") for line in lines)
        assert any(line.startswith("## The visited MNO") for line in lines)
        # Tables render with separator rows.
        assert any(line.startswith("|---") for line in lines)
        # ASCII plots are fenced.
        assert report.count("```") % 2 == 0
        assert report.count("```") >= 4

    def test_contains_paper_reference_values(self, report):
        # The report always juxtaposes measured against paper numbers.
        for anchor in ("62%", "71.1%", "74.7%", "77.4%", "4.5x", "~10x"):
            assert anchor in report, anchor

    def test_custom_title(self, m2m_dataset, pipeline, eco):
        text = build_report(m2m_dataset, pipeline, eco, title="My run")
        assert text.startswith("# My run")

    def test_classifier_validation_included(self, report):
        assert "Classifier validation" in report
        assert "accuracy" in report
