"""Documentation quality gates.

Every public module, class and function in the library must carry a
docstring — enforced here so the guarantee survives refactors — and the
repo-level documents must stay in sync with the code they describe.
"""

import importlib
import inspect
import pkgutil
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parents[1]


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


ALL_MODULES = list(_iter_modules())


class TestDocstrings:
    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=lambda m: m.__name__
    )
    def test_module_docstring(self, module):
        assert module.__doc__, f"{module.__name__} lacks a module docstring"

    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=lambda m: m.__name__
    )
    def test_public_callables_documented(self, module):
        undocumented = []
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export; documented at home
            if not inspect.getdoc(obj):
                undocumented.append(name)
        assert not undocumented, (
            f"{module.__name__}: undocumented public items {undocumented}"
        )


class TestRepoDocsInSync:
    def test_design_lists_every_bench(self):
        design = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
        bench_dir = REPO_ROOT / "benchmarks"
        core_benches = {
            p.name
            for p in bench_dir.glob("test_bench_fig*.py")
        }
        for bench in core_benches:
            assert bench in design, f"DESIGN.md does not reference {bench}"

    def test_experiments_covers_all_figures(self):
        experiments = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        for fig in ("FIG2", "FIG3", "FIG5", "FIG6", "FIG7", "FIG8", "FIG9",
                    "FIG10", "FIG11", "FIG12", "CLS"):
            assert fig in experiments, f"EXPERIMENTS.md missing {fig}"

    def test_readme_examples_exist(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        examples_dir = REPO_ROOT / "examples"
        for line in readme.splitlines():
            if "python examples/" in line:
                script = line.split("python examples/")[1].split()[0]
                assert (examples_dir / script).exists(), f"README references missing {script}"

    def test_examples_all_mentioned_in_readme(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for script in (REPO_ROOT / "examples").glob("*.py"):
            assert script.name in readme or script.name == "__init__.py", (
                f"example {script.name} not mentioned in README.md"
            )


class TestAPIDocs:
    def test_api_md_is_current(self):
        """docs/API.md must match what the generator would produce now."""
        import sys

        sys.path.insert(0, str(REPO_ROOT / "tools"))
        try:
            import gen_api_docs
        finally:
            sys.path.pop(0)
        expected = gen_api_docs.generate()
        actual = (REPO_ROOT / "docs" / "API.md").read_text(encoding="utf-8")
        assert actual == expected, (
            "docs/API.md is stale; regenerate with python tools/gen_api_docs.py"
        )

    def test_api_md_covers_core_modules(self):
        api = (REPO_ROOT / "docs" / "API.md").read_text(encoding="utf-8")
        for module in (
            "repro.core.classifier",
            "repro.platform_m2m.simulator",
            "repro.mno.simulator",
            "repro.analysis.platform",
        ):
            assert f"## `{module}`" in api
