"""Every codec × every corruption kind, in both ingest modes.

Strict reads must raise with the file and line number; lenient reads
must quarantine the bad row into the right taxonomy bucket and keep the
clean rows.
"""

import json

import numpy as np
import pytest

from repro.datasets.io import (
    IngestErrorKind,
    ingest_jsonl,
    ingest_radio_events,
    ingest_service_records,
    ingest_transactions,
    radio_event_to_dict,
    read_jsonl,
    service_record_to_dict,
    transaction_to_dict,
    write_jsonl,
)
from repro.faults import (
    CorruptionKind,
    RADIO_EVENT_SCHEMA,
    SERVICE_RECORD_SCHEMA,
    TRANSACTION_SCHEMA,
)
from repro.faults.inject import corrupt_row
from repro.signaling.cdr import ServiceRecord, ServiceType
from repro.signaling.events import RadioEvent, RadioInterface
from repro.signaling.procedures import MessageType, ResultCode, SignalingTransaction


def sample_transactions():
    return [
        SignalingTransaction(
            device_id=f"dev-{i}",
            timestamp=float(i),
            sim_plmn="21407",
            visited_plmn="23410",
            message_type=MessageType.UPDATE_LOCATION,
            result=ResultCode.OK,
        )
        for i in range(4)
    ]


def sample_radio_events():
    return [
        RadioEvent(
            device_id=f"dev-{i}",
            timestamp=float(i),
            sim_plmn="23410",
            tac=35236081,
            sector_id=3,
            interface=RadioInterface.S1,
            event_type=MessageType.ATTACH,
            result=ResultCode.OK,
        )
        for i in range(4)
    ]


def sample_service_records():
    return [
        ServiceRecord(
            device_id=f"dev-{i}",
            timestamp=float(i),
            sim_plmn="21407",
            visited_plmn="23410",
            service=ServiceType.DATA,
            bytes_total=100,
            apn="iot.example",
        )
        for i in range(4)
    ]


#: codec name -> (records, to_dict, ingest, row schema)
CODECS = {
    "transaction": (
        sample_transactions, transaction_to_dict, ingest_transactions,
        TRANSACTION_SCHEMA,
    ),
    "radio_event": (
        sample_radio_events, radio_event_to_dict, ingest_radio_events,
        RADIO_EVENT_SCHEMA,
    ),
    "service_record": (
        sample_service_records, service_record_to_dict, ingest_service_records,
        SERVICE_RECORD_SCHEMA,
    ),
}

#: Which taxonomy bucket each corruption kind must land in.
EXPECTED_KIND = {
    CorruptionKind.GARBAGE_LINE: IngestErrorKind.PARSE,
    CorruptionKind.MISSING_FIELD: IngestErrorKind.SCHEMA,
    CorruptionKind.BAD_ENUM: IngestErrorKind.SCHEMA,
    CorruptionKind.BAD_PLMN: IngestErrorKind.SEMANTIC,
    CorruptionKind.BAD_TIMESTAMP: IngestErrorKind.SEMANTIC,
}

BAD_LINE_NO = 2  # the corrupted row sits on line 2 of each fixture file


def write_with_corruption(tmp_path, codec, kind):
    """Clean rows with row 2 corrupted; returns the file path."""
    make, to_dict, _, schema = CODECS[codec]
    rows = [to_dict(r) for r in make()]
    damaged = corrupt_row(rows[1], kind, schema, np.random.default_rng(0))
    path = tmp_path / f"{codec}_{kind.value}.jsonl"
    lines = []
    for index, row in enumerate(rows):
        payload = damaged if index == 1 else row
        lines.append(
            payload if isinstance(payload, str)
            else json.dumps(payload, separators=(",", ":"))
        )
    path.write_text("".join(line + "\n" for line in lines), encoding="utf-8")
    return path


@pytest.mark.parametrize("codec", sorted(CODECS))
@pytest.mark.parametrize("kind", list(CorruptionKind))
def test_strict_raises_with_location(tmp_path, codec, kind):
    path = write_with_corruption(tmp_path, codec, kind)
    ingest = CODECS[codec][2]
    with pytest.raises((ValueError, KeyError, TypeError)) as excinfo:
        ingest(path)
    assert f"{path}:{BAD_LINE_NO}]" in str(excinfo.value)


@pytest.mark.parametrize("codec", sorted(CODECS))
@pytest.mark.parametrize("kind", list(CorruptionKind))
def test_lenient_quarantines_into_the_right_bucket(tmp_path, codec, kind):
    path = write_with_corruption(tmp_path, codec, kind)
    make, _, ingest, _ = CODECS[codec]
    records, report = ingest(path, lenient=True)
    clean = make()
    assert records == [clean[0], *clean[2:]]
    assert report.n_rows == len(clean)
    assert report.n_ok == len(clean) - 1
    assert report.n_quarantined == 1
    assert report.counts_by_kind == {EXPECTED_KIND[kind].value: 1}
    error = report.errors[0]
    assert error.line_no == BAD_LINE_NO
    assert error.path == str(path)
    assert error.excerpt


@pytest.mark.parametrize("codec", sorted(CODECS))
def test_clean_file_round_trips_both_modes(tmp_path, codec):
    make, to_dict, ingest, _ = CODECS[codec]
    records = make()
    path = tmp_path / "clean.jsonl"
    write_jsonl(path, [to_dict(r) for r in records])
    strict_records, strict_report = ingest(path)
    lenient_records, lenient_report = ingest(path, lenient=True)
    assert strict_records == lenient_records == records
    assert strict_report.ok and lenient_report.ok
    assert strict_report.coverage == 1.0


def test_read_jsonl_skips_blank_lines(tmp_path):
    path = tmp_path / "gaps.jsonl"
    path.write_text('{"a":1}\n\n   \n{"a":2}\n\n', encoding="utf-8")
    assert list(read_jsonl(path)) == [{"a": 1}, {"a": 2}]
    rows, report = ingest_jsonl(path)
    assert rows == [{"a": 1}, {"a": 2}]
    assert report.n_rows == 2


def test_read_jsonl_decode_error_names_file_and_line(tmp_path):
    path = tmp_path / "torn.jsonl"
    path.write_text('{"a":1}\n{"a": TORN\n{"a":3}\n', encoding="utf-8")
    with pytest.raises(json.JSONDecodeError) as excinfo:
        list(read_jsonl(path))
    assert f"{path}:2]" in str(excinfo.value)


def test_truncated_tail_quarantines_as_parse(tmp_path):
    """A file torn mid-record (crashed writer) loses only the torn row."""
    path = tmp_path / "cut.jsonl"
    rows = [transaction_to_dict(t) for t in sample_transactions()]
    text = "\n".join(json.dumps(r) for r in rows)
    path.write_text(text[: len(text) - 15], encoding="utf-8")
    records, report = ingest_transactions(path, lenient=True)
    assert len(records) == len(rows) - 1
    assert report.counts_by_kind == {"parse": 1}
    assert report.errors[0].line_no == len(rows)


def test_report_merge_combines_counts(tmp_path):
    good = tmp_path / "good.jsonl"
    bad = tmp_path / "bad.jsonl"
    write_jsonl(good, [transaction_to_dict(t) for t in sample_transactions()])
    bad.write_text("not json\n", encoding="utf-8")
    _, report_good = ingest_transactions(good, lenient=True)
    _, report_bad = ingest_transactions(bad, lenient=True)
    merged = report_good.merge(report_bad)
    assert merged.n_rows == report_good.n_rows + 1
    assert merged.n_quarantined == 1
    assert "+" in merged.path
    assert 0.0 < merged.coverage < 1.0
