"""Round-trip tests for the devices-catalog CSV export."""

import pytest

from repro.datasets.export import (
    read_day_records,
    read_summaries,
    write_day_records,
    write_summaries,
)


class TestDayRecordRoundTrip:
    def test_full_round_trip(self, pipeline, tmp_path):
        path = tmp_path / "catalog_days.csv"
        sample = pipeline.day_records[:500]
        assert write_day_records(path, sample) == len(sample)
        restored = read_day_records(path)
        assert len(restored) == len(sample)
        for original, back in zip(sample, restored):
            assert back.device_id == original.device_id
            assert back.day == original.day
            assert back.n_events == original.n_events
            assert back.apns == original.apns
            assert back.radio_flags == original.radio_flags
            assert back.on_home_network == original.on_home_network

    def test_mobility_round_trip(self, pipeline, tmp_path):
        with_mobility = [r for r in pipeline.day_records if r.mobility][:50]
        assert with_mobility
        path = tmp_path / "catalog_mob.csv"
        write_day_records(path, with_mobility)
        restored = read_day_records(path)
        for original, back in zip(with_mobility, restored):
            assert back.mobility is not None
            assert back.mobility.gyration_km == pytest.approx(
                original.mobility.gyration_km, abs=1e-3
            )
            assert back.mobility.n_sectors == original.mobility.n_sectors

    def test_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError):
            read_day_records(path)


class TestSummaryRoundTrip:
    def test_full_round_trip_with_tac_join(self, pipeline, tmp_path):
        path = tmp_path / "summaries.csv"
        summaries = list(pipeline.summaries.values())
        assert write_summaries(path, summaries) == len(summaries)
        restored = read_summaries(path, tac_db=pipeline.dataset.tac_db)
        assert set(restored) == set(pipeline.summaries)
        for device_id, original in pipeline.summaries.items():
            back = restored[device_id]
            assert str(back.label) == str(original.label)
            assert back.active_days == original.active_days
            assert back.bytes_total == original.bytes_total
            assert back.apns == original.apns
            # TAC join reproduces the model reference.
            assert (back.model is None) == (original.model is None)
            if original.model is not None:
                assert back.model.tac == original.model.tac

    def test_classification_survives_round_trip(self, pipeline, tmp_path):
        """The exported catalog is a faithful classifier input."""
        from repro.core.classifier import DeviceClassifier

        path = tmp_path / "summaries.csv"
        write_summaries(path, pipeline.summaries.values())
        restored = read_summaries(path, tac_db=pipeline.dataset.tac_db)
        again = DeviceClassifier().classify(restored)
        assert {d: c.label for d, c in again.items()} == {
            d: c.label for d, c in pipeline.classifications.items()
        }

    def test_without_tac_db_models_absent(self, pipeline, tmp_path):
        path = tmp_path / "summaries.csv"
        write_summaries(path, pipeline.summaries.values())
        restored = read_summaries(path)
        assert all(s.model is None for s in restored.values())
