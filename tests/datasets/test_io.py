"""Round-trip tests for JSONL serialization."""


from repro.datasets.io import (
    radio_event_from_dict,
    radio_event_to_dict,
    read_jsonl,
    read_radio_events,
    read_service_records,
    read_transactions,
    service_record_from_dict,
    service_record_to_dict,
    transaction_from_dict,
    transaction_to_dict,
    write_jsonl,
    write_radio_events,
    write_service_records,
    write_transactions,
)
from repro.signaling.cdr import data_xdr, voice_cdr
from repro.signaling.events import RadioEvent, RadioInterface
from repro.signaling.procedures import MessageType, ResultCode, SignalingTransaction


def _txn():
    return SignalingTransaction(
        device_id="abc",
        timestamp=12.5,
        sim_plmn="21407",
        visited_plmn="23410",
        message_type=MessageType.AUTHENTICATION,
        result=ResultCode.ROAMING_NOT_ALLOWED,
    )


def _event():
    return RadioEvent(
        device_id="abc",
        timestamp=99.0,
        sim_plmn="23410",
        tac=35000001,
        sector_id=4,
        interface=RadioInterface.IU_CS,
        event_type=MessageType.ROUTING_AREA_UPDATE,
        result=ResultCode.OK,
    )


class TestDictRoundTrips:
    def test_transaction(self):
        txn = _txn()
        assert transaction_from_dict(transaction_to_dict(txn)) == txn

    def test_radio_event(self):
        event = _event()
        assert radio_event_from_dict(radio_event_to_dict(event)) == event

    def test_voice_record(self):
        record = voice_cdr("d", 1.0, "21407", "23410", 33.0)
        assert service_record_from_dict(service_record_to_dict(record)) == record

    def test_data_record_with_apn(self):
        record = data_xdr("d", 1.0, "21407", "23410", 777, "internet.op.com")
        assert service_record_from_dict(service_record_to_dict(record)) == record

    def test_data_record_without_apn(self):
        record = data_xdr("d", 1.0, "21407", "23410", 777, None)
        restored = service_record_from_dict(service_record_to_dict(record))
        assert restored.apn is None


class TestFileRoundTrips:
    def test_transactions_file(self, tmp_path):
        path = tmp_path / "txns.jsonl"
        txns = [_txn(), _txn()]
        assert write_transactions(path, txns) == 2
        assert read_transactions(path) == txns

    def test_radio_events_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        events = [_event()]
        write_radio_events(path, events)
        assert read_radio_events(path) == events

    def test_service_records_file(self, tmp_path):
        path = tmp_path / "records.jsonl"
        records = [
            voice_cdr("d", 1.0, "21407", "23410", 33.0),
            data_xdr("d", 2.0, "21407", "23410", 42, "apn.x"),
        ]
        write_service_records(path, records)
        assert read_service_records(path) == records

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "x.jsonl"
        write_jsonl(path, [{"a": 1}])
        with open(path, "a") as handle:
            handle.write("\n\n")
        assert list(read_jsonl(path)) == [{"a": 1}]

    def test_simulated_dataset_round_trip(self, tmp_path, m2m_dataset):
        path = tmp_path / "m2m.jsonl"
        sample = m2m_dataset.transactions[:500]
        write_transactions(path, sample)
        assert read_transactions(path) == sample
