"""Tests for dataset sampling and its biases."""

import numpy as np
import pytest

from repro.analysis.platform import fig3_dynamics
from repro.datasets.sampling import (
    per_device_count_bias,
    sample_devices,
    sample_transactions,
)


class TestTransactionSampling:
    def test_rate_one_is_identity(self, m2m_dataset):
        sampled = sample_transactions(m2m_dataset, 1.0)
        assert sampled.n_transactions == m2m_dataset.n_transactions

    def test_rate_thins_proportionally(self, m2m_dataset):
        sampled = sample_transactions(m2m_dataset, 0.3, seed=1)
        ratio = sampled.n_transactions / m2m_dataset.n_transactions
        assert ratio == pytest.approx(0.3, abs=0.02)

    def test_ground_truth_restricted_to_survivors(self, m2m_dataset):
        sampled = sample_transactions(m2m_dataset, 0.05, seed=1)
        assert set(sampled.ground_truth) == sampled.device_ids

    def test_rate_bounds(self, m2m_dataset):
        with pytest.raises(ValueError):
            sample_transactions(m2m_dataset, 0.0)
        with pytest.raises(ValueError):
            sample_transactions(m2m_dataset, 1.5)

    def test_quiet_devices_drop_out(self, m2m_dataset):
        sampled = sample_transactions(m2m_dataset, 0.02, seed=1)
        assert sampled.n_devices < m2m_dataset.n_devices


class TestDeviceSampling:
    def test_keeps_whole_devices(self, m2m_dataset):
        sampled = sample_devices(m2m_dataset, 0.4, seed=2)
        original_counts = {}
        for txn in m2m_dataset.transactions:
            original_counts[txn.device_id] = original_counts.get(txn.device_id, 0) + 1
        sampled_counts = {}
        for txn in sampled.transactions:
            sampled_counts[txn.device_id] = sampled_counts.get(txn.device_id, 0) + 1
        for device_id, count in sampled_counts.items():
            assert count == original_counts[device_id]

    def test_device_count_scales(self, m2m_dataset):
        sampled = sample_devices(m2m_dataset, 0.5, seed=2)
        ratio = sampled.n_devices / m2m_dataset.n_devices
        assert ratio == pytest.approx(0.5, abs=0.1)

    def test_deterministic(self, m2m_dataset):
        a = sample_devices(m2m_dataset, 0.5, seed=3)
        b = sample_devices(m2m_dataset, 0.5, seed=3)
        assert a.device_ids == b.device_ids


class TestBias:
    def test_device_sampling_is_unbiased(self, m2m_dataset):
        sampled = sample_devices(m2m_dataset, 0.5, seed=4)
        bias = per_device_count_bias(m2m_dataset, sampled)
        assert all(ratio == 1.0 for ratio in bias.values())

    def test_transaction_sampling_biases_counts(self, m2m_dataset):
        sampled = sample_transactions(m2m_dataset, 0.3, seed=4)
        bias = per_device_count_bias(m2m_dataset, sampled)
        assert np.mean(list(bias.values())) == pytest.approx(0.3, abs=0.1)

    def test_fig3_shrinks_under_txn_sampling_not_device_sampling(self, m2m_dataset):
        """The methodological point: per-device statistics are not
        robust to transaction sampling, only to device sampling.  The
        median is the right comparator — a heavy-tailed mean over a few
        dozen surviving devices swings with whether a flooder survived.
        """
        full = fig3_dynamics(m2m_dataset)
        txn_sampled = fig3_dynamics(sample_transactions(m2m_dataset, 0.3, seed=5))
        dev_sampled = fig3_dynamics(sample_devices(m2m_dataset, 0.5, seed=5))
        assert txn_sampled.records_all.median < 0.6 * full.records_all.median
        assert dev_sampled.records_all.median == pytest.approx(
            full.records_all.median, rel=0.4
        )
