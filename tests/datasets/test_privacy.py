"""Tests for the privacy lint — and a lint of our own exports."""

import pytest

from repro.cellular.identifiers import IMEI, IMSI, PLMN
from repro.datasets.export import write_day_records, write_summaries
from repro.datasets.io import write_radio_events, write_service_records, write_transactions
from repro.datasets.privacy import (
    PrivacyFinding,
    assert_clean,
    scan_export_dir,
    scan_text,
)


class TestScanText:
    def test_detects_raw_imei(self):
        imei = str(IMEI(tac=35000001, serial=123456))
        findings = scan_text(f"device imei={imei} attached")
        assert any(f.kind == "imei" and f.value == imei for f in findings)

    def test_detects_raw_imsi(self):
        imsi = str(IMSI(plmn=PLMN(204, 4), msin=500000001))
        findings = scan_text(f"sim {imsi}")
        assert any(f.kind == "imsi" for f in findings)

    def test_detects_msisdn(self):
        findings = scan_text("call +447911123456 back")
        assert any(f.kind == "msisdn" for f in findings)

    def test_plmn_codes_are_fine(self):
        findings = scan_text('{"sim_plmn": "20404", "visited_plmn": "23410"}')
        assert findings == []

    def test_short_and_long_digit_runs_ignored(self):
        assert scan_text("1234567890123456") == []  # 16 digits
        assert scan_text("12345678901234") == []    # 14 digits

    def test_line_numbers(self):
        imsi = str(IMSI(plmn=PLMN(204, 4), msin=1))
        findings = scan_text(f"ok\n{imsi}\n", source="x")
        assert findings[0].line_number == 2
        assert findings[0].source == "x"

    def test_redaction_hides_tail(self):
        finding = PrivacyFinding("imsi", "204040000000001", 1, "x")
        assert finding.redacted() == "20404" + "*" * 10


class TestAssertClean:
    def test_passes_on_empty(self):
        assert_clean([])

    def test_raises_with_redacted_values(self):
        finding = PrivacyFinding("imsi", "204040000000001", 3, "f.jsonl")
        with pytest.raises(ValueError) as excinfo:
            assert_clean([finding])
        assert "204040000000001" not in str(excinfo.value)
        assert "20404**********" in str(excinfo.value)


class TestOurExportsAreClean:
    def test_record_exports_pass_the_lint(self, tmp_path, mno_dataset, m2m_dataset):
        """The executable ethics appendix: nothing we export carries an
        identifier that maps back to a subscriber."""
        write_transactions(tmp_path / "m2m.jsonl", m2m_dataset.transactions[:5000])
        write_radio_events(tmp_path / "radio.jsonl", mno_dataset.radio_events[:5000])
        write_service_records(
            tmp_path / "services.jsonl", mno_dataset.service_records[:5000]
        )
        findings = scan_export_dir(tmp_path)
        assert_clean(findings)

    def test_catalog_exports_pass_the_lint(self, tmp_path, pipeline):
        write_day_records(tmp_path / "days.csv", pipeline.day_records[:2000])
        write_summaries(tmp_path / "summaries.csv", pipeline.summaries.values())
        assert_clean(scan_export_dir(tmp_path))

    def test_lint_catches_a_deliberate_leak(self, tmp_path):
        leaky = tmp_path / "leak.jsonl"
        imsi = str(IMSI(plmn=PLMN(204, 4), msin=42))
        leaky.write_text(f'{{"imsi": "{imsi}"}}\n')
        findings = scan_export_dir(tmp_path)
        assert findings
        with pytest.raises(ValueError):
            assert_clean(findings)
