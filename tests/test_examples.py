"""Smoke tests for every example script.

Each example's ``main()`` runs at reduced scale (via the
``REPRO_EXAMPLE_DEVICES`` environment variable) so examples cannot rot
as the library evolves.  Output is captured and sanity-checked for the
study's headline phrases.
"""

import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"

#: (script, device count, phrase that must appear in the output)
CASES = [
    ("quickstart.py", "400", "device classes"),
    ("m2m_platform_study.py", "250", "Fig. 3: device-level dynamics"),
    ("smart_meter_study.py", "600", "Fig. 11: SMIP native vs roaming"),
    ("classifier_ablation.py", "400", "full method"),
    ("roaming_economics.py", "400", "wholesale revenue"),
    ("sunset_and_transparency.py", "400", "legacy-RAT sunset impact"),
    ("operator_toolkit.py", "300", "GGSN isolation planning"),
]


def _load_module(script: str):
    path = EXAMPLES_DIR / script
    spec = importlib.util.spec_from_file_location(script[:-3], path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("script, devices, phrase", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, devices, phrase, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_EXAMPLE_DEVICES", devices)
    module = _load_module(script)
    module.main()
    out = capsys.readouterr().out
    assert phrase in out
    assert "Traceback" not in out


def test_every_example_has_a_smoke_case():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    covered = {script for script, _, _ in CASES}
    assert scripts == covered, f"uncovered examples: {scripts - covered}"
