"""Robustness: headline statistics must be stable across random seeds.

A reproduction whose conclusions flip with the seed would be worthless;
these tests sweep seeds at small scale and bound the variation of the
statistics every bench relies on.
"""

import numpy as np
import pytest

from repro.analysis.platform import platform_stats
from repro.analysis.population import population_shares
from repro.core.classifier import ClassLabel
from repro.core.validation import validate_classification
from repro.mno import MNOConfig, simulate_mno_dataset
from repro.pipeline import run_pipeline
from repro.platform_m2m import PlatformConfig, simulate_m2m_dataset

SEEDS = (101, 202, 303)


@pytest.fixture(scope="module")
def mno_runs(request):
    eco = request.getfixturevalue("eco")
    runs = []
    for seed in SEEDS:
        dataset = simulate_mno_dataset(eco, MNOConfig(n_devices=400, seed=seed))
        runs.append((dataset, run_pipeline(dataset, eco, compute_mobility=False)))
    return runs


class TestMNOSeedStability:
    def test_class_shares_stable(self, mno_runs):
        m2m = [
            population_shares(result).class_shares[ClassLabel.M2M]
            for _, result in mno_runs
        ]
        assert np.ptp(m2m) < 0.06

    def test_classifier_accuracy_stable(self, mno_runs):
        accuracies = [
            validate_classification(result.classifications, ds.ground_truth).accuracy
            for ds, result in mno_runs
        ]
        assert min(accuracies) > 0.93
        assert np.ptp(accuracies) < 0.05

    def test_inbound_m2m_dominance_always_holds(self, mno_runs):
        from repro.analysis.population import fig6_class_vs_label

        for _, result in mno_runs:
            fig6 = fig6_class_vs_label(result)
            assert fig6.share_of_label("I:H", ClassLabel.M2M) > 0.5


class TestPlatformSeedStability:
    def test_failed_only_share_stable(self, eco):
        shares = []
        for seed in SEEDS:
            dataset = simulate_m2m_dataset(
                eco, PlatformConfig(n_devices=300, seed=seed)
            )
            shares.append(platform_stats(dataset, eco.countries).failed_only_fraction)
        assert all(0.3 < s < 0.5 for s in shares)
        assert np.ptp(shares) < 0.1

    def test_es_dominance_always_holds(self, eco):
        for seed in SEEDS:
            dataset = simulate_m2m_dataset(
                eco, PlatformConfig(n_devices=300, seed=seed)
            )
            stats = platform_stats(dataset, eco.countries)
            largest = max(stats.per_hmno.values(), key=lambda h: h.device_share)
            assert largest.iso == "ES"
