"""Tests for GSMA-style transparency declarations and detection."""

import pytest

from repro.core.transparency import (
    IMSIRange,
    M2MDeclaration,
    TransparencyDetector,
    TransparencyRegistry,
    coverage_report,
    default_declarations,
)
from repro.core.classifier import Classification, ClassificationStep, ClassLabel
from repro.datasets.containers import GroundTruthEntry
from repro.devices.device import DeviceClass, SimProvenance

NL = "20404"


class TestIMSIRange:
    def test_contains(self):
        r = IMSIRange(lo=204040_500000000, hi=204040_599999999)
        assert r.contains("204040500000000")
        assert r.contains("204040599999999")
        assert not r.contains("204040600000000")

    def test_rejects_short_values(self):
        with pytest.raises(ValueError):
            IMSIRange(lo=1, hi=2)

    def test_non_digit_input(self):
        r = IMSIRange(lo=204040_500000000, hi=204040_599999999)
        assert not r.contains("not-an-imsi-15ch")


class TestDeclaration:
    def test_must_declare_something(self):
        with pytest.raises(ValueError):
            M2MDeclaration(home_plmn=NL)

    def test_apn_prefix_match(self):
        d = M2MDeclaration(home_plmn=NL, apn_prefixes=frozenset({"smhp."}))
        assert d.matches_apn("smhp.centricaplc.com.mnc004.mcc204.gprs")
        assert not d.matches_apn("internet.op.com")

    def test_bad_plmn_rejected(self):
        with pytest.raises(ValueError):
            M2MDeclaration(home_plmn="12", apn_prefixes=frozenset({"x"}))


class TestDetector:
    def _summaries(self, pipeline):
        return pipeline.summaries

    def test_detects_declared_meters(self, pipeline, eco):
        registry = default_declarations(
            str(eco.nl_iot_operator.plmn),
            [str(op.plmn) for op in eco.platform_hmnos.values()],
        )
        detector = TransparencyDetector(registry)
        detected = detector.detect_by_apn(pipeline.summaries)
        assert detected
        # Everything detected is genuinely M2M.
        for device_id in detected:
            assert (
                pipeline.dataset.ground_truth[device_id].device_class
                is DeviceClass.M2M
            )

    def test_detection_limited_to_declaring_homes(self, pipeline, eco):
        registry = default_declarations(
            str(eco.nl_iot_operator.plmn),
            [str(op.plmn) for op in eco.platform_hmnos.values()],
        )
        detected = TransparencyDetector(registry).detect_by_apn(pipeline.summaries)
        declaring = registry.declaring_operators()
        for device_id in detected:
            assert pipeline.summaries[device_id].sim_plmn in declaring

    def test_imsi_range_detection(self):
        registry = TransparencyRegistry(
            [
                M2MDeclaration(
                    home_plmn=NL,
                    imsi_ranges=(IMSIRange(204040 * 10**9, 204040 * 10**9 + 999),),
                )
            ]
        )
        detector = TransparencyDetector(registry)
        detected = detector.detect_by_imsi(
            {"a": "204040000000500", "b": "204040000001500", "c": "214070000000001"}
        )
        assert detected == {"a"}


class TestCoverage:
    def _world(self):
        truth = {
            "m1": GroundTruthEntry("m1", DeviceClass.M2M, SimProvenance.INTERNATIONAL),
            "m2": GroundTruthEntry("m2", DeviceClass.M2M, SimProvenance.INTERNATIONAL),
            "s1": GroundTruthEntry("s1", DeviceClass.SMART, SimProvenance.HOME),
        }
        cls = {
            "m1": Classification(ClassLabel.M2M, ClassificationStep.APN_KEYWORD),
            "m2": Classification(ClassLabel.M2M_MAYBE, ClassificationStep.NO_EVIDENCE),
            "s1": Classification(ClassLabel.SMART, ClassificationStep.OS_CONSUMER_APN),
        }
        return truth, cls

    def test_coverage_math(self):
        truth, cls = self._world()
        report = coverage_report({"m1"}, cls, truth)
        assert report.n_true_m2m == 2
        assert report.transparency_recall == 0.5
        assert report.transparency_precision == 1.0
        assert report.classifier_recall == 0.5
        assert report.both_agree == 0.5

    def test_empty_truth_rejected(self):
        _, cls = self._world()
        with pytest.raises(ValueError):
            coverage_report(set(), cls, {})

    def test_transparency_undercovers_classifier(self, pipeline, eco):
        """The paper's premise: declarations alone miss most M2M because
        most home operators do not declare."""
        registry = default_declarations(
            str(eco.nl_iot_operator.plmn),
            [str(op.plmn) for op in eco.platform_hmnos.values()],
        )
        detected = TransparencyDetector(registry).detect_by_apn(pipeline.summaries)
        report = coverage_report(
            detected, pipeline.classifications, pipeline.dataset.ground_truth
        )
        assert report.transparency_recall < report.classifier_recall
        assert report.transparency_precision == 1.0
