"""Unit tests for the devices-catalog builder, on hand-built records."""

import pytest

from repro.cellular.rats import RAT
from repro.core.catalog import CatalogBuilder
from repro.core.roaming import RoamingLabeler
from repro.ecosystem import EcosystemConfig, build_default_ecosystem
from repro.signaling.cdr import data_xdr, voice_cdr
from repro.signaling.events import RadioEvent, RadioInterface
from repro.signaling.procedures import MessageType, ResultCode


@pytest.fixture(scope="module")
def world():
    eco = build_default_ecosystem(EcosystemConfig(uk_sites=10, seed=2))
    labeler = RoamingLabeler(eco.operators, eco.uk_mno)
    builder = CatalogBuilder(eco.tac_db, eco.uk_sectors, labeler)
    return eco, builder


def _event(eco, device_id="d1", day=0, hour=1.0, interface=RadioInterface.GB,
           result=ResultCode.OK, sim_plmn=None, tac=None, sector=None):
    if sector is None:
        sector = next(
            s.sector_id for s in eco.uk_sectors if s.rat is interface.rat
        )
    if tac is None:
        tac = next(iter(eco.tac_db)).tac
    return RadioEvent(
        device_id=device_id,
        timestamp=day * 86400.0 + hour * 3600.0,
        sim_plmn=sim_plmn or str(eco.uk_mno.plmn),
        tac=tac,
        sector_id=sector,
        interface=interface,
        event_type=MessageType.ATTACH,
        result=result,
    )


class TestDayRecords:
    def test_counts_split_by_day(self, world):
        eco, builder = world
        events = [
            _event(eco, day=0), _event(eco, day=0, hour=2.0), _event(eco, day=1)
        ]
        records = builder.build_day_records(events, [])
        assert [r.day for r in records] == [0, 1]
        assert records[0].n_events == 2
        assert records[1].n_events == 1

    def test_radio_flags_only_from_successes(self, world):
        eco, builder = world
        events = [
            _event(eco, interface=RadioInterface.GB),
            _event(eco, interface=RadioInterface.S1, result=ResultCode.SYSTEM_FAILURE),
        ]
        records = builder.build_day_records(events, [])
        flags = records[0].radio_flags
        assert flags.has(RAT.GSM)
        assert not flags.has(RAT.LTE)
        assert records[0].n_failed_events == 1

    def test_voice_and_data_flags_split(self, world):
        eco, builder = world
        events = [
            _event(eco, interface=RadioInterface.A),      # 2G voice
            _event(eco, interface=RadioInterface.IU_PS),  # 3G data
        ]
        records = builder.build_day_records(events, [])
        record = records[0]
        assert record.voice_flags.rats == {RAT.GSM}
        assert record.data_flags.rats == {RAT.UMTS}
        assert record.radio_flags.rats == {RAT.GSM, RAT.UMTS}

    def test_service_records_aggregate(self, world):
        eco, builder = world
        plmn = str(eco.uk_mno.plmn)
        services = [
            voice_cdr("d1", 100.0, plmn, plmn, duration_s=60.0),
            data_xdr("d1", 200.0, plmn, plmn, 5000, "internet.op.com"),
            data_xdr("d1", 300.0, plmn, plmn, 3000, "web.op.net"),
        ]
        records = builder.build_day_records([], services)
        record = records[0]
        assert record.n_calls == 1
        assert record.voice_minutes == pytest.approx(1.0)
        assert record.n_data_sessions == 2
        assert record.bytes_total == 8000
        assert record.apns == {"internet.op.com", "web.op.net"}


class TestSummaries:
    def test_label_home_native(self, world):
        eco, builder = world
        _, summaries = builder.build([_event(eco)], [])
        assert str(summaries["d1"].label) == "H:H"

    def test_label_inbound_roamer(self, world):
        eco, builder = world
        _, summaries = builder.build(
            [_event(eco, sim_plmn=str(eco.nl_iot_operator.plmn))], []
        )
        assert str(summaries["d1"].label) == "I:H"

    def test_label_outbound_roamer_from_cdrs_only(self, world):
        eco, builder = world
        home = str(eco.uk_mno.plmn)
        abroad = "21410"
        services = [voice_cdr("out1", 100.0, home, abroad, 30.0)]
        _, summaries = builder.build([], services)
        assert str(summaries["out1"].label) == "H:A"
        assert summaries["out1"].model is None  # no radio events -> no TAC

    def test_tac_join(self, world):
        eco, builder = world
        model = next(iter(eco.tac_db))
        _, summaries = builder.build([_event(eco, tac=model.tac)], [])
        assert summaries["d1"].model is model
        assert summaries["d1"].manufacturer == model.manufacturer

    def test_unknown_tac_gives_no_model(self, world):
        eco, builder = world
        _, summaries = builder.build([_event(eco, tac=99999999)], [])
        assert summaries["d1"].model is None

    def test_active_days_counted(self, world):
        eco, builder = world
        events = [_event(eco, day=d) for d in (0, 3, 7)]
        _, summaries = builder.build(events, [])
        assert summaries["d1"].active_days == 3

    def test_mobility_computed_for_radio_devices(self, world):
        eco, builder = world
        sectors = [s.sector_id for s in eco.uk_sectors if s.rat is RAT.GSM][:2]
        events = [
            _event(eco, hour=1.0, sector=sectors[0]),
            _event(eco, hour=2.0, sector=sectors[1]),
        ]
        _, summaries = builder.build(events, [])
        assert summaries["d1"].mean_gyration_km is not None

    def test_mobility_skipped_when_disabled(self, world):
        eco, _ = world
        labeler = RoamingLabeler(eco.operators, eco.uk_mno)
        builder = CatalogBuilder(
            eco.tac_db, eco.uk_sectors, labeler, compute_mobility=False
        )
        _, summaries = builder.build([_event(eco)], [])
        assert summaries["d1"].mean_gyration_km is None

    def test_summary_unions_flags_across_days(self, world):
        eco, builder = world
        events = [
            _event(eco, day=0, interface=RadioInterface.GB),
            _event(eco, day=1, interface=RadioInterface.S1),
        ]
        _, summaries = builder.build(events, [])
        assert summaries["d1"].radio_flags.rats == {RAT.GSM, RAT.LTE}

    def test_signaling_per_day(self, world):
        eco, builder = world
        events = [_event(eco, day=0), _event(eco, day=0, hour=3.0), _event(eco, day=1)]
        _, summaries = builder.build(events, [])
        assert summaries["d1"].signaling_per_day() == pytest.approx(1.5)
