"""Unit tests for roaming-label assignment."""

import pytest

from repro.core.roaming import (
    OBSERVABLE_LABELS,
    RoamingLabel,
    RoamingLabeler,
    SimOrigin,
    VisitedSide,
)


@pytest.fixture(scope="module")
def labeler(eco=None):
    from repro.ecosystem import EcosystemConfig, build_default_ecosystem

    eco = build_default_ecosystem(EcosystemConfig(uk_sites=5, seed=1))
    return RoamingLabeler(eco.operators, eco.uk_mno), eco


class TestRoamingLabel:
    def test_string_form(self):
        label = RoamingLabel(SimOrigin.INTERNATIONAL, VisitedSide.HOME)
        assert str(label) == "I:H"

    def test_parse_round_trip(self):
        for label in OBSERVABLE_LABELS:
            assert RoamingLabel.parse(str(label)) == label

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            RoamingLabel.parse("X:Y")
        with pytest.raises(ValueError):
            RoamingLabel.parse("IH")

    def test_unobservable_labels_rejected(self):
        with pytest.raises(ValueError):
            RoamingLabel(SimOrigin.INTERNATIONAL, VisitedSide.ABROAD)
        with pytest.raises(ValueError):
            RoamingLabel(SimOrigin.NATIONAL, VisitedSide.ABROAD)

    def test_exactly_six_observable_labels(self):
        assert len(OBSERVABLE_LABELS) == 6
        assert len({str(l) for l in OBSERVABLE_LABELS}) == 6

    def test_predicates(self):
        native = RoamingLabel(SimOrigin.HOME, VisitedSide.HOME)
        inbound = RoamingLabel(SimOrigin.INTERNATIONAL, VisitedSide.HOME)
        outbound = RoamingLabel(SimOrigin.HOME, VisitedSide.ABROAD)
        assert native.is_native and not native.is_inbound_roamer
        assert inbound.is_inbound_roamer and not inbound.is_native
        assert outbound.is_outbound_roamer


class TestRoamingLabeler:
    def test_home_sim(self, labeler):
        lab, eco = labeler
        assert lab.sim_origin(str(eco.uk_mno.plmn)) is SimOrigin.HOME

    def test_hosted_mvno_sim_is_virtual(self, labeler):
        lab, eco = labeler
        mvno = eco.mvnos_of_study_mno()[0]
        assert lab.sim_origin(str(mvno.plmn)) is SimOrigin.VIRTUAL

    def test_other_uk_operator_is_national(self, labeler):
        lab, eco = labeler
        other = [
            op
            for op in eco.operators.mnos_in_country("GB")
            if op.plmn != eco.uk_mno.plmn
        ][0]
        assert lab.sim_origin(str(other.plmn)) is SimOrigin.NATIONAL

    def test_foreign_sim_is_international(self, labeler):
        lab, eco = labeler
        assert lab.sim_origin(str(eco.nl_iot_operator.plmn)) is SimOrigin.INTERNATIONAL

    def test_unknown_foreign_plmn_still_international(self, labeler):
        lab, _ = labeler
        assert lab.sim_origin("99999") is SimOrigin.INTERNATIONAL

    def test_visited_home_vs_abroad(self, labeler):
        lab, eco = labeler
        assert lab.visited_side(str(eco.uk_mno.plmn)) is VisitedSide.HOME
        assert lab.visited_side("21410") is VisitedSide.ABROAD

    def test_mvno_attachment_counts_as_home(self, labeler):
        lab, eco = labeler
        mvno = eco.mvnos_of_study_mno()[0]
        assert lab.visited_side(str(mvno.plmn)) is VisitedSide.HOME

    def test_full_label(self, labeler):
        lab, eco = labeler
        label = lab.label(str(eco.nl_iot_operator.plmn), str(eco.uk_mno.plmn))
        assert str(label) == "I:H"

    def test_mvno_cannot_observe(self, labeler):
        _, eco = labeler
        mvno = eco.mvnos_of_study_mno()[0]
        with pytest.raises(ValueError):
            RoamingLabeler(eco.operators, mvno)
