"""Tests for the keyword-discovery tooling."""

import pytest

from repro.core.apn import energy_meter_apn
from repro.core.catalog import DeviceSummary
from repro.core.classifier import ClassLabel, DeviceClassifier
from repro.core.keywords import (
    KeywordCandidate,
    auto_map_candidates,
    build_inventory,
    candidate_keywords,
    discovery_report,
    known_vertical_lookup,
)
from repro.core.roaming import RoamingLabel, SimOrigin, VisitedSide
from repro.devices.device import IoTVertical

LABEL = RoamingLabel(SimOrigin.HOME, VisitedSide.HOME)


def _summary(device_id, apns):
    return DeviceSummary(
        device_id=device_id, sim_plmn="23410", label=LABEL,
        active_days=1, apns=frozenset(apns),
    )


def _population(n_meters=5, n_consumers=5, n_novel=4):
    summaries = {}
    for i in range(n_meters):
        summaries[f"m{i}"] = _summary(f"m{i}", [energy_meter_apn("rwe", 204, 4)])
    for i in range(n_consumers):
        summaries[f"c{i}"] = _summary(f"c{i}", ["internet.gbmno1.com"])
    for i in range(n_novel):
        # A vertical our inventory has never heard of.
        summaries[f"n{i}"] = _summary(f"n{i}", ["vendingmach.snackco.net"])
    return summaries


class TestCandidates:
    def test_finds_vertical_tokens(self):
        candidates = candidate_keywords(_population().values(), min_devices=3)
        tokens = {c.token for c in candidates}
        assert "smhp" in tokens or "rwe" in tokens
        assert "vendingmach" in tokens

    def test_filters_consumer_and_noise(self):
        candidates = candidate_keywords(_population().values(), min_devices=2)
        tokens = {c.token for c in candidates}
        assert "internet" not in tokens  # consumer
        assert "com" not in tokens       # structural noise
        assert "gprs" not in tokens

    def test_min_devices_threshold(self):
        population = _population(n_novel=2)
        tokens = {
            c.token
            for c in candidate_keywords(population.values(), min_devices=3)
        }
        assert "vendingmach" not in tokens

    def test_ranked_by_support(self):
        candidates = candidate_keywords(
            _population(n_meters=10, n_novel=3).values(), min_devices=2
        )
        assert candidates[0].n_devices >= candidates[-1].n_devices

    def test_candidate_validation(self):
        with pytest.raises(ValueError):
            KeywordCandidate(token="x", n_devices=0, n_apns=1, example_apn="a")


class TestAutoMapping:
    def test_known_tokens_mapped(self):
        assert known_vertical_lookup("rwe") is IoTVertical.SMART_METER
        assert known_vertical_lookup("telematics") is IoTVertical.CONNECTED_CAR
        assert known_vertical_lookup("vendingmach") is None

    def test_split_known_unknown(self):
        candidates = candidate_keywords(_population().values(), min_devices=3)
        mapped, unknown = auto_map_candidates(candidates)
        assert any(v is IoTVertical.SMART_METER for v in mapped.values())
        assert any(c.token == "vendingmach" for c in unknown)


class TestInventoryBuilding:
    def test_discovered_inventory_drives_classifier(self):
        """End-to-end: discover -> research -> classify the new vertical."""
        population = _population()
        candidates = candidate_keywords(population.values(), min_devices=3)
        mapped, unknown = auto_map_candidates(candidates)
        # The analyst "researches" the unknown token.
        for candidate in unknown:
            if candidate.token == "vendingmach":
                mapped[candidate.token] = IoTVertical.PAYMENT
        from repro.core.classifier import ClassifierConfig

        inventory = build_inventory(mapped)
        classifier = DeviceClassifier(ClassifierConfig(inventory=inventory))
        result = classifier.classify(population)
        assert result["n0"].label is ClassLabel.M2M
        assert result["n0"].vertical is IoTVertical.PAYMENT

    def test_report_readable(self):
        text = discovery_report(_population().values(), min_devices=3)
        assert "candidate keywords" in text
        assert "vendingmach" in text


class TestOnSimulatedData:
    def test_discovery_recovers_simulator_verticals(self, pipeline):
        candidates = candidate_keywords(
            pipeline.summaries.values(), min_devices=5
        )
        mapped, _ = auto_map_candidates(candidates)
        verticals = set(mapped.values())
        assert IoTVertical.SMART_METER in verticals