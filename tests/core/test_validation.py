"""Unit tests for classifier validation scoring."""

import pytest

from repro.core.classifier import Classification, ClassificationStep, ClassLabel
from repro.core.validation import validate_classification
from repro.datasets.containers import GroundTruthEntry
from repro.devices.device import DeviceClass, SimProvenance


def _cls(label):
    return Classification(label=label, step=ClassificationStep.APN_KEYWORD)


def _truth(device_id, device_class):
    return GroundTruthEntry(
        device_id=device_id,
        device_class=device_class,
        provenance=SimProvenance.HOME,
    )


class TestValidation:
    def test_perfect_classification(self):
        predicted = {"a": _cls(ClassLabel.M2M), "b": _cls(ClassLabel.SMART)}
        truth = {"a": _truth("a", DeviceClass.M2M), "b": _truth("b", DeviceClass.SMART)}
        report = validate_classification(predicted, truth)
        assert report.accuracy == 1.0
        assert report.abstention_rate == 0.0
        assert report.per_class[ClassLabel.M2M].f1 == 1.0

    def test_misclassification_counted(self):
        predicted = {"a": _cls(ClassLabel.SMART)}
        truth = {"a": _truth("a", DeviceClass.M2M)}
        report = validate_classification(predicted, truth)
        assert report.accuracy == 0.0
        assert report.per_class[ClassLabel.M2M].recall == 0.0
        assert report.per_class[ClassLabel.SMART].precision == 0.0

    def test_abstention_excluded_from_accuracy(self):
        predicted = {
            "a": _cls(ClassLabel.M2M),
            "b": _cls(ClassLabel.M2M_MAYBE),
        }
        truth = {
            "a": _truth("a", DeviceClass.M2M),
            "b": _truth("b", DeviceClass.M2M),
        }
        report = validate_classification(predicted, truth)
        assert report.accuracy == 1.0
        assert report.abstention_rate == pytest.approx(0.5)
        # The abstained device does not hurt recall.
        assert report.per_class[ClassLabel.M2M].recall == 1.0

    def test_devices_missing_truth_skipped(self):
        predicted = {"a": _cls(ClassLabel.M2M), "ghost": _cls(ClassLabel.SMART)}
        truth = {"a": _truth("a", DeviceClass.M2M)}
        report = validate_classification(predicted, truth)
        assert report.n_devices == 1

    def test_confusion_matrix_entries(self):
        predicted = {
            "a": _cls(ClassLabel.M2M),
            "b": _cls(ClassLabel.FEAT),
        }
        truth = {
            "a": _truth("a", DeviceClass.M2M),
            "b": _truth("b", DeviceClass.SMART),
        }
        report = validate_classification(predicted, truth)
        assert report.confusion[(ClassLabel.M2M, ClassLabel.M2M)] == 1
        assert report.confusion[(ClassLabel.SMART, ClassLabel.FEAT)] == 1

    def test_format_is_readable(self):
        predicted = {"a": _cls(ClassLabel.M2M)}
        truth = {"a": _truth("a", DeviceClass.M2M)}
        text = validate_classification(predicted, truth).format()
        assert "accuracy" in text
        assert "m2m" in text

    def test_empty_inputs(self):
        report = validate_classification({}, {})
        assert report.n_devices == 0
        assert report.accuracy == 0.0


class TestAccuracyByStep:
    def test_per_step_accuracy_on_pipeline(self, pipeline):
        from repro.core.validation import accuracy_by_step

        by_step = accuracy_by_step(
            pipeline.classifications, pipeline.dataset.ground_truth
        )
        assert by_step
        for step, (n, accuracy) in by_step.items():
            assert n > 0
            assert 0.0 <= accuracy <= 1.0
        # Direct APN evidence is (near-)perfect.
        n, accuracy = by_step["apn_keyword"]
        assert accuracy > 0.99

    def test_confidence_ordering_justified(self, pipeline):
        """HIGH-confidence steps must not be less accurate than the
        propagation step on this population."""
        from repro.core.validation import accuracy_by_step

        by_step = accuracy_by_step(
            pipeline.classifications, pipeline.dataset.ground_truth
        )
        apn_accuracy = by_step["apn_keyword"][1]
        if "property_propagation" in by_step:
            assert apn_accuracy >= by_step["property_propagation"][1] - 0.02

    def test_empty_inputs(self):
        from repro.core.validation import accuracy_by_step

        assert accuracy_by_step({}, {}) == {}
