"""Unit tests for mobility-metric computation from radio events."""

import pytest

from repro.cellular.rats import RAT
from repro.core.mobility import (
    average_gyration,
    daily_mobility,
    MobilityMetrics,
    sector_dwell_weights,
)
from repro.cellular.geo import GeoPoint
from repro.ecosystem import EcosystemConfig, build_default_ecosystem
from repro.signaling.events import RadioEvent, RadioInterface
from repro.signaling.procedures import MessageType, ResultCode


@pytest.fixture(scope="module")
def eco():
    return build_default_ecosystem(EcosystemConfig(uk_sites=10, seed=2))


def _event(sector_id, ts):
    return RadioEvent(
        device_id="d",
        timestamp=ts,
        sim_plmn="23410",
        tac=35000001,
        sector_id=sector_id,
        interface=RadioInterface.GB,
        event_type=MessageType.ATTACH,
        result=ResultCode.OK,
    )


class TestDwellWeights:
    def test_empty(self):
        assert sector_dwell_weights([]) == {}

    def test_gap_capping(self):
        events = [_event(1, 0.0), _event(2, 10 * 3600.0)]
        dwell = sector_dwell_weights(events, max_gap_s=3600.0, min_dwell_s=60.0)
        assert dwell[1] == 3600.0  # capped, not 10 hours
        assert dwell[2] == 60.0    # trailing event gets the floor

    def test_min_dwell_floor(self):
        events = [_event(1, 0.0), _event(2, 1.0)]
        dwell = sector_dwell_weights(events, min_dwell_s=60.0)
        assert dwell[1] == 60.0

    def test_accumulates_per_sector(self):
        events = [_event(1, 0.0), _event(1, 600.0), _event(2, 1200.0)]
        dwell = sector_dwell_weights(events, min_dwell_s=60.0)
        assert dwell[1] == 1200.0

    def test_unsorted_input_handled(self):
        events = [_event(2, 1200.0), _event(1, 0.0), _event(1, 600.0)]
        assert sector_dwell_weights(events)[1] == 1200.0


class TestDailyMobility:
    def test_single_sector_zero_gyration(self, eco):
        sector = next(iter(eco.uk_sectors))
        metrics = daily_mobility([_event(sector.sector_id, 0.0)], eco.uk_sectors)
        assert metrics is not None
        assert metrics.gyration_km == pytest.approx(0.0, abs=1e-9)
        assert metrics.n_sectors == 1

    def test_two_sectors_positive_gyration(self, eco):
        gsm = [s for s in eco.uk_sectors if s.rat is RAT.GSM]
        events = [_event(gsm[0].sector_id, 0.0), _event(gsm[-1].sector_id, 600.0)]
        metrics = daily_mobility(events, eco.uk_sectors)
        assert metrics.gyration_km > 0.0
        assert metrics.n_sectors == 2

    def test_no_events_returns_none(self, eco):
        assert daily_mobility([], eco.uk_sectors) is None

    def test_unknown_sectors_skipped(self, eco):
        sector = next(iter(eco.uk_sectors))
        events = [_event(sector.sector_id, 0.0), _event(10**6, 600.0)]
        metrics = daily_mobility(events, eco.uk_sectors)
        assert metrics.n_sectors == 1

    def test_all_unknown_returns_none(self, eco):
        assert daily_mobility([_event(10**6, 0.0)], eco.uk_sectors) is None


class TestAverageGyration:
    def test_empty(self):
        assert average_gyration([]) is None

    def test_mean(self):
        point = GeoPoint(0.0, 0.0)
        metrics = [
            MobilityMetrics(point, 1.0, 1),
            MobilityMetrics(point, 3.0, 1),
        ]
        assert average_gyration(metrics) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MobilityMetrics(GeoPoint(0, 0), -1.0, 1)
        with pytest.raises(ValueError):
            MobilityMetrics(GeoPoint(0, 0), 0.0, 0)
