"""Unit tests for the multi-step classifier, on hand-built summaries."""

import pytest

from repro.cellular.rats import RAT
from repro.cellular.tac_db import DeviceModel, DeviceOS, GSMALabel
from repro.core.apn import energy_meter_apn
from repro.core.classifier import (
    ClassificationStep,
    ClassifierConfig,
    ClassLabel,
    DeviceClassifier,
    class_shares,
    rank_apns,
)
from repro.core.catalog import DeviceSummary
from repro.core.roaming import RoamingLabel, SimOrigin, VisitedSide

LABEL = RoamingLabel(SimOrigin.HOME, VisitedSide.HOME)

MODULE = DeviceModel(
    tac=86000001,
    manufacturer="Gemalto",
    brand="Gemalto",
    model_name="M1",
    os=DeviceOS.RTOS,
    bands=frozenset({RAT.GSM}),
    label=GSMALabel.MODULE,
)
PHONE = DeviceModel(
    tac=35000001,
    manufacturer="Samsung",
    brand="Samsung",
    model_name="S1",
    os=DeviceOS.ANDROID,
    bands=frozenset({RAT.GSM, RAT.UMTS, RAT.LTE}),
    label=GSMALabel.SMARTPHONE,
)
FEATURE = DeviceModel(
    tac=35000002,
    manufacturer="Nokia",
    brand="Nokia",
    model_name="F1",
    os=DeviceOS.PROPRIETARY,
    bands=frozenset({RAT.GSM}),
    label=GSMALabel.FEATURE_PHONE,
)
LONGTAIL = DeviceModel(
    tac=86000002,
    manufacturer="Vendor001",
    brand="Vendor001",
    model_name="X0",
    os=DeviceOS.NONE,
    bands=frozenset({RAT.GSM}),
    label=GSMALabel.UNKNOWN,
)


def _summary(device_id, apns=(), model=None, n_calls=0):
    return DeviceSummary(
        device_id=device_id,
        sim_plmn="23410",
        label=LABEL,
        active_days=5,
        apns=frozenset(apns),
        model=model,
        n_calls=n_calls,
    )


ENERGY_APN = energy_meter_apn("centricaplc", 204, 4)


class TestStepOne:
    def test_validated_apn_marks_m2m(self):
        summaries = {"a": _summary("a", [ENERGY_APN], MODULE)}
        result = DeviceClassifier().classify(summaries)
        assert result["a"].label is ClassLabel.M2M
        assert result["a"].step is ClassificationStep.APN_KEYWORD
        assert result["a"].matched_keyword == "centricaplc"

    def test_vertical_attached(self):
        summaries = {"a": _summary("a", [ENERGY_APN], MODULE)}
        result = DeviceClassifier().classify(summaries)
        assert result["a"].vertical is not None


class TestStepTwo:
    def test_propagates_to_same_model_without_apn(self):
        summaries = {
            "seed": _summary("seed", [ENERGY_APN], MODULE),
            "silent": _summary("silent", [], MODULE, n_calls=3),
        }
        result = DeviceClassifier().classify(summaries)
        assert result["silent"].label is ClassLabel.M2M
        assert result["silent"].step is ClassificationStep.PROPERTY_PROPAGATION

    def test_no_propagation_across_models(self):
        summaries = {
            "seed": _summary("seed", [ENERGY_APN], MODULE),
            "other": _summary("other", [], LONGTAIL, n_calls=3),
        }
        result = DeviceClassifier().classify(summaries)
        assert result["other"].label is ClassLabel.M2M_MAYBE

    def test_disabled_propagation_leaves_maybe(self):
        config = ClassifierConfig(use_property_propagation=False)
        summaries = {
            "seed": _summary("seed", [ENERGY_APN], MODULE),
            "silent": _summary("silent", [], MODULE, n_calls=3),
        }
        result = DeviceClassifier(config).classify(summaries)
        assert result["silent"].label is ClassLabel.M2M_MAYBE


class TestPersonRules:
    def test_smartphone_os_plus_consumer_apn(self):
        summaries = {"p": _summary("p", ["payandgo.op.com"], PHONE)}
        result = DeviceClassifier().classify(summaries)
        assert result["p"].label is ClassLabel.SMART
        assert result["p"].step is ClassificationStep.OS_CONSUMER_APN

    def test_feature_phone_label(self):
        summaries = {"f": _summary("f", ["internet.op.com"], FEATURE)}
        result = DeviceClassifier().classify(summaries)
        assert result["f"].label is ClassLabel.FEAT

    def test_feature_phone_without_apn_still_feat(self):
        summaries = {"f": _summary("f", [], FEATURE, n_calls=5)}
        result = DeviceClassifier().classify(summaries)
        assert result["f"].label is ClassLabel.FEAT

    def test_smartphone_os_without_consumer_apn_falls_back_smart(self):
        summaries = {"p": _summary("p", ["data.op"], PHONE)}
        result = DeviceClassifier().classify(summaries)
        assert result["p"].label is ClassLabel.SMART
        assert result["p"].step is ClassificationStep.GSMA_LABEL

    def test_consumer_apn_without_catalog_row_is_feat(self):
        # The paper's literal rule: consumer APN and no smartphone-OS
        # evidence -> feature phone.
        summaries = {"x": _summary("x", ["internet.op.com"], None)}
        result = DeviceClassifier().classify(summaries)
        assert result["x"].label is ClassLabel.FEAT


class TestResidue:
    def test_voice_only_longtail_is_maybe(self):
        summaries = {"v": _summary("v", [], LONGTAIL, n_calls=4)}
        result = DeviceClassifier().classify(summaries)
        assert result["v"].label is ClassLabel.M2M_MAYBE

    def test_no_model_no_apn_is_maybe(self):
        summaries = {"v": _summary("v", [], None, n_calls=4)}
        result = DeviceClassifier().classify(summaries)
        assert result["v"].label is ClassLabel.M2M_MAYBE
        assert result["v"].step is ClassificationStep.NO_EVIDENCE

    def test_module_with_generic_apn_is_maybe_without_seed(self):
        summaries = {"m": _summary("m", ["data.op"], MODULE)}
        result = DeviceClassifier().classify(summaries)
        assert result["m"].label is ClassLabel.M2M_MAYBE


class TestAblationToggles:
    def test_apn_step_disabled_kills_m2m(self):
        config = ClassifierConfig(use_apn_keywords=False)
        summaries = {"a": _summary("a", [ENERGY_APN], MODULE)}
        result = DeviceClassifier(config).classify(summaries)
        assert result["a"].label is ClassLabel.M2M_MAYBE

    def test_gsma_rules_disabled_leaves_maybe(self):
        config = ClassifierConfig(use_gsma_rules=False)
        summaries = {"p": _summary("p", ["data.op"], PHONE)}
        result = DeviceClassifier(config).classify(summaries)
        assert result["p"].label is ClassLabel.M2M_MAYBE


class TestHelpers:
    def test_rank_apns(self):
        summaries = {
            "a": _summary("a", ["apn1", "apn2"]),
            "b": _summary("b", ["apn1"]),
        }
        ranked = rank_apns(summaries.values())
        assert ranked[0] == ("apn1", 2)

    def test_class_shares_sum_to_one(self):
        summaries = {
            "a": _summary("a", [ENERGY_APN], MODULE),
            "p": _summary("p", ["internet.op.com"], PHONE),
        }
        shares = class_shares(DeviceClassifier().classify(summaries))
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_class_shares_empty(self):
        assert all(v == 0.0 for v in class_shares({}).values())


class TestConfidence:
    def test_step_confidence_mapping(self):
        from repro.core.classifier import (
            Classification,
            ClassificationStep,
            Confidence,
        )

        assert Classification(
            ClassLabel.M2M, ClassificationStep.APN_KEYWORD
        ).confidence is Confidence.HIGH
        assert Classification(
            ClassLabel.M2M, ClassificationStep.PROPERTY_PROPAGATION
        ).confidence is Confidence.MEDIUM
        assert Classification(
            ClassLabel.M2M_MAYBE, ClassificationStep.NO_EVIDENCE
        ).confidence is Confidence.LOW

    def test_every_step_has_a_confidence(self):
        from repro.core.classifier import Classification, ClassificationStep

        for step in ClassificationStep:
            assert Classification(ClassLabel.SMART, step).confidence is not None
