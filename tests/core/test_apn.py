"""Unit tests for APN parsing, classification and generation."""

import pytest

from repro.core.apn import (
    APNKind,
    AUTOMOTIVE_BRANDS,
    ENERGY_COMPANIES,
    KeywordInventory,
    classify_apn,
    connected_car_apn,
    consumer_apn,
    default_keyword_inventory,
    energy_meter_apn,
    generic_operator_apn,
    parse_apn,
    platform_iot_apn,
    vertical_apn,
)
from repro.devices.device import IoTVertical


class TestParseAPN:
    def test_paper_example(self):
        parsed = parse_apn("smhp.centricaplc.com.mnc004.mcc204.gprs")
        assert parsed.network_id == "smhp.centricaplc.com"
        assert parsed.mcc == 204
        assert parsed.mnc == 4

    def test_ni_only(self):
        parsed = parse_apn("internet.operator.com")
        assert parsed.network_id == "internet.operator.com"
        assert not parsed.has_operator_id

    def test_round_trip(self):
        original = "smhp.rwe.com.mnc004.mcc204.gprs"
        assert str(parse_apn(original)) == original

    def test_case_insensitive(self):
        assert parse_apn("INTERNET.OP.COM").network_id == "internet.op.com"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_apn("")

    def test_three_digit_mnc(self):
        parsed = parse_apn("x.y.mnc004.mcc310.gprs")
        assert parsed.mcc == 310


class TestKeywordInventory:
    def test_default_size_matches_paper_scale(self):
        # The paper distilled 26 keywords; we carry a comparable table.
        inventory = default_keyword_inventory()
        assert 20 <= len(inventory) <= 32

    def test_longest_match_wins(self):
        inventory = default_keyword_inventory()
        keyword, vertical = inventory.match("intelligent.m2m.gdsp")
        assert keyword == "intelligent.m2m"

    def test_no_collision_with_consumer_terms(self):
        with pytest.raises(ValueError):
            KeywordInventory({"internet": IoTVertical.OTHER})
        with pytest.raises(ValueError):
            KeywordInventory({"we": IoTVertical.OTHER})  # inside "web"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            KeywordInventory({})

    def test_no_match_returns_none(self):
        assert default_keyword_inventory().match("data.operator") is None


class TestClassifyAPN:
    def test_energy_apn_is_smart_meter(self):
        kind, vertical, keyword = classify_apn(
            energy_meter_apn("rwe", 204, 4)
        )
        assert kind is APNKind.M2M
        assert vertical is IoTVertical.SMART_METER
        # Both the company name and the "smhp" prefix are valid hits.
        assert keyword in ("rwe", "smhp")

    def test_car_apn(self):
        kind, vertical, _ = classify_apn(connected_car_apn("scania"))
        assert kind is APNKind.M2M
        assert vertical is IoTVertical.CONNECTED_CAR

    def test_platform_apn(self):
        kind, vertical, keyword = classify_apn(platform_iot_apn())
        assert kind is APNKind.M2M
        assert keyword == "intelligent.m2m"

    def test_consumer_apns(self):
        for choice in range(5):
            kind, vertical, _ = classify_apn(consumer_apn("gbmno1", choice))
            assert kind is APNKind.CONSUMER
            assert vertical is None

    def test_generic_apns_are_unknown(self):
        for choice in range(4):
            kind, _, keyword = classify_apn(generic_operator_apn("gbmno1", choice))
            assert kind is APNKind.UNKNOWN
            assert keyword is None

    def test_all_vertical_generators_classify_m2m(self):
        for vertical in IoTVertical:
            for choice in range(3):
                kind, got, _ = classify_apn(vertical_apn(vertical, choice))
                assert kind is APNKind.M2M, (vertical, choice)


class TestGenerators:
    def test_energy_apn_embeds_home_network(self):
        apn = energy_meter_apn("elster", 204, 4)
        assert apn.endswith(".mnc004.mcc204.gprs")

    def test_unknown_company_rejected(self):
        with pytest.raises(ValueError):
            energy_meter_apn("enron", 204, 4)

    def test_unknown_brand_rejected(self):
        with pytest.raises(ValueError):
            connected_car_apn("delorean")

    def test_company_and_brand_tables_nonempty(self):
        assert len(ENERGY_COMPANIES) == 5  # the paper's five energy firms
        assert len(AUTOMOTIVE_BRANDS) >= 3
