"""Failure-injection tests: malformed inputs must fail loudly, partial
inputs must degrade gracefully — never silently corrupt an analysis."""

import json

import pytest

from repro.core.catalog import CatalogBuilder
from repro.core.roaming import RoamingLabeler
from repro.datasets.io import read_radio_events, read_transactions, write_jsonl
from repro.ecosystem import EcosystemConfig, build_default_ecosystem
from repro.roaming.billing import WholesaleRater
from repro.roaming.clearing import ClearingHouse, UsageStatement, statements_from_tap
from repro.signaling.cdr import data_xdr
from repro.signaling.events import RadioEvent, RadioInterface
from repro.signaling.procedures import MessageType, ResultCode


@pytest.fixture(scope="module")
def world():
    eco = build_default_ecosystem(EcosystemConfig(uk_sites=5, seed=2))
    labeler = RoamingLabeler(eco.operators, eco.uk_mno)
    return eco, CatalogBuilder(eco.tac_db, eco.uk_sectors, labeler)


class TestCorruptFiles:
    def test_truncated_json_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"device_id": "a", "ts": 1.0, "sim_pl')
        with pytest.raises(json.JSONDecodeError):
            read_transactions(path)

    def test_wrong_schema_raises_key_error(self, tmp_path):
        path = tmp_path / "wrong.jsonl"
        write_jsonl(path, [{"some": "other", "schema": 1}])
        with pytest.raises(KeyError):
            read_radio_events(path)

    def test_invalid_enum_value_raises(self, tmp_path):
        path = tmp_path / "enum.jsonl"
        write_jsonl(
            path,
            [{
                "device_id": "d", "ts": 1.0, "sim_plmn": "23410",
                "visited_plmn": "23410", "type": "teleport", "result": "OK",
            }],
        )
        with pytest.raises(ValueError):
            read_transactions(path)

    def test_out_of_domain_value_raises(self, tmp_path):
        path = tmp_path / "neg.jsonl"
        write_jsonl(
            path,
            [{
                "device_id": "d", "ts": -5.0, "sim_plmn": "23410",
                "visited_plmn": "23410", "type": "attach", "result": "OK",
            }],
        )
        with pytest.raises(ValueError):
            read_transactions(path)


class TestPartialVisibility:
    def _event(self, eco, sector_id, device="d"):
        return RadioEvent(
            device_id=device, timestamp=0.0, sim_plmn=str(eco.uk_mno.plmn),
            tac=35000001, sector_id=sector_id, interface=RadioInterface.GB,
            event_type=MessageType.ATTACH, result=ResultCode.OK,
        )

    def test_unknown_sector_degrades_mobility_not_counts(self, world):
        eco, builder = world
        good = next(s.sector_id for s in eco.uk_sectors)
        events = [self._event(eco, good), self._event(eco, 10**7)]
        _, summaries = builder.build(events, [])
        summary = summaries["d"]
        assert summary.n_events == 2           # counting survives
        assert summary.mean_gyration_km is not None  # mobility from the known one

    def test_all_unknown_sectors_drop_mobility_only(self, world):
        eco, builder = world
        events = [self._event(eco, 10**7)]
        _, summaries = builder.build(events, [])
        assert summaries["d"].n_events == 1
        assert summaries["d"].mean_gyration_km is None

    def test_conflicting_sim_plmn_first_wins(self, world):
        """A device ID colliding across SIMs is attributed to the first
        SIM observed — documented, deterministic behaviour."""
        eco, builder = world
        good = next(s.sector_id for s in eco.uk_sectors)
        first = self._event(eco, good)
        second = RadioEvent(
            device_id="d", timestamp=1.0, sim_plmn="21410", tac=35000001,
            sector_id=good, interface=RadioInterface.GB,
            event_type=MessageType.ATTACH, result=ResultCode.OK,
        )
        _, summaries = builder.build([first, second], [])
        assert summaries["d"].sim_plmn == str(eco.uk_mno.plmn)


class TestClearingUnderCorruption:
    def test_inflated_home_books_detected(self, world):
        eco, _ = world
        rater = WholesaleRater(str(eco.uk_mno.plmn))
        records = [
            data_xdr("a", 0.0, "21410", str(eco.uk_mno.plmn), 10**7, "apn.x")
        ]
        visited = statements_from_tap(rater.rate_records(records))
        # The home operator "loses" 40% of the usage.
        home = [
            UsageStatement(
                home_plmn=s.home_plmn, visited_plmn=s.visited_plmn,
                service=s.service, units=s.units * 0.6,
                charge_eur=s.charge_eur * 0.6, n_records=s.n_records,
            )
            for s in visited
        ]
        settlement = ClearingHouse(tolerance=0.05).reconcile(visited, home)
        assert settlement.discrepancies
        assert settlement.disputed_eur > 0

    def test_empty_books_both_sides(self):
        settlement = ClearingHouse().reconcile([], [])
        assert settlement.agreed_eur == 0.0
        assert settlement.n_lanes == 0
