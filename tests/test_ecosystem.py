"""Integration tests for the assembled ecosystem."""


from repro.cellular.identifiers import PLMN
from repro.cellular.rats import RAT
from repro.ecosystem import (
    HUB_DIRECT_ISOS,
    PLATFORM_HMNO_ISOS,
    EcosystemConfig,
    build_default_ecosystem,
)


class TestWorldStructure:
    def test_named_actors_exist(self, eco):
        assert eco.uk_mno.country.iso == "GB"
        assert not eco.uk_mno.is_mvno
        assert eco.nl_iot_operator.plmn == PLMN(204, 4)
        assert set(eco.platform_hmnos) == set(PLATFORM_HMNO_ISOS)

    def test_two_mnos_per_country(self, eco):
        for country in eco.countries:
            assert len(eco.operators.mnos_in_country(country.iso)) >= 2

    def test_mvnos_hosted_by_study_mno(self, eco):
        mvnos = eco.mvnos_of_study_mno()
        assert len(mvnos) == eco.config.mvnos_on_study_mno
        assert all(m.host_plmn == eco.uk_mno.plmn for m in mvnos)

    def test_hub_direct_footprint(self, eco):
        assert eco.hub.direct_countries() == set(HUB_DIRECT_ISOS)
        # ~40 PoPs across 19 countries, like the paper's carrier.
        assert len(eco.hub.pops) == 2 * len(HUB_DIRECT_ISOS)

    def test_hub_reaches_everywhere(self, eco):
        for country in eco.countries:
            assert country.iso in eco.hub.footprint_countries()


class TestAgreements:
    def test_eu_mesh(self, eco):
        es = eco.operators.by_plmn(PLMN(214, 10))
        fr = eco.operators.by_plmn(PLMN(208, 10))
        assert eco.agreements.allows(es.plmn, fr.plmn, RAT.GSM)
        assert eco.agreements.allows(fr.plmn, es.plmn, RAT.GSM)

    def test_platform_hmnos_reach_all_hub_members(self, eco):
        es_platform = eco.platform_hmnos["ES"]
        partners = eco.agreements.partners_of(es_platform.plmn)
        # Every non-MVNO operator except itself should be reachable.
        n_mnos = sum(1 for op in eco.operators if not op.is_mvno)
        assert len(partners) >= n_mnos - 5

    def test_nl_iot_can_roam_into_uk(self, eco):
        assert eco.agreements.allows(
            eco.nl_iot_operator.plmn, eco.uk_mno.plmn, RAT.GSM
        )

    def test_lte_laggards_have_no_lte_agreements(self, eco):
        es_platform = eco.platform_hmnos["ES"]
        laggards = [
            op
            for op in eco.operators
            if not op.is_mvno and RAT.LTE not in op.rats
        ]
        assert laggards, "the world should contain 4G laggards"
        for op in laggards:
            assert not eco.agreements.allows(es_platform.plmn, op.plmn, RAT.LTE)


class TestCandidates:
    def test_candidate_vmnos_respect_rat(self, eco):
        es_platform = eco.platform_hmnos["ES"]
        for iso in ("GB", "FR", "AU"):
            for candidate in eco.candidate_vmnos(es_platform, iso, RAT.LTE):
                assert candidate.supports(RAT.LTE)
                assert eco.agreements.allows(
                    es_platform.plmn, candidate.plmn, RAT.LTE
                )

    def test_candidates_exclude_self(self, eco):
        es_platform = eco.platform_hmnos["ES"]
        candidates = eco.candidate_vmnos(es_platform, "ES", RAT.GSM)
        assert all(c.plmn != es_platform.plmn for c in candidates)


class TestSectorsAndDeterminism:
    def test_uk_sectors_sized_by_config(self, eco):
        assert len(eco.uk_sectors) == eco.config.uk_sites * 3

    def test_same_seed_same_world(self):
        a = build_default_ecosystem(EcosystemConfig(uk_sites=10, seed=3))
        b = build_default_ecosystem(EcosystemConfig(uk_sites=10, seed=3))
        pos_a = [(s.sector_id, s.position.lat) for s in a.uk_sectors]
        pos_b = [(s.sector_id, s.position.lat) for s in b.uk_sectors]
        assert pos_a == pos_b

    def test_different_seed_different_sectors(self):
        a = build_default_ecosystem(EcosystemConfig(uk_sites=10, seed=3))
        b = build_default_ecosystem(EcosystemConfig(uk_sites=10, seed=4))
        assert [s.position.lat for s in a.uk_sectors] != [
            s.position.lat for s in b.uk_sectors
        ]
