"""Injector behavior: determinism, counts, and typed-stream outage flips."""

import numpy as np
import pytest

from repro.datasets.io import read_transactions, write_transactions
from repro.faults import (
    CorruptionKind,
    FaultPlan,
    OutageWindow,
    TRANSACTION_SCHEMA,
    inject_jsonl,
    inject_radio_events,
    inject_rows,
    inject_transactions,
)
from repro.faults.inject import (
    corrupt_row,
    drop_items,
    duplicate_items,
    reorder_items,
)
from repro.signaling.events import RadioEvent, RadioInterface
from repro.signaling.procedures import MessageType, ResultCode, SignalingTransaction


def make_transactions(n=50):
    return [
        SignalingTransaction(
            device_id=f"dev-{i % 7}",
            timestamp=float(i) * 10.0,
            sim_plmn="21407",
            visited_plmn="23410",
            message_type=MessageType.UPDATE_LOCATION,
            result=ResultCode.OK if i % 3 else ResultCode.SYSTEM_FAILURE,
        )
        for i in range(n)
    ]


def make_rows(n=50):
    from repro.datasets.io import transaction_to_dict

    return [transaction_to_dict(t) for t in make_transactions(n)]


class TestGenericFaults:
    def test_drop_counts_and_determinism(self):
        items = list(range(200))
        kept1, dropped1 = drop_items(items, 0.25, np.random.default_rng(7))
        kept2, dropped2 = drop_items(items, 0.25, np.random.default_rng(7))
        assert kept1 == kept2 and dropped1 == dropped2
        assert len(kept1) + dropped1 == len(items)
        assert 0 < dropped1 < len(items)

    def test_drop_rate_zero_is_identity(self):
        items = list(range(10))
        kept, dropped = drop_items(items, 0.0, np.random.default_rng(0))
        assert kept == items and dropped == 0

    def test_duplicates_are_adjacent(self):
        items = list(range(100))
        out, n_dup = duplicate_items(items, 0.3, np.random.default_rng(3))
        assert len(out) == len(items) + n_dup
        assert n_dup > 0
        # every duplicate sits right after its original
        seen = set()
        for prev, curr in zip(out, out[1:]):
            if curr in seen:
                assert curr == prev
            seen.add(curr)

    def test_reorder_displacement_is_bounded(self):
        items = list(range(300))
        window = 4
        out, n_moved = reorder_items(items, 0.2, window, np.random.default_rng(9))
        assert sorted(out) == items
        assert n_moved > 0
        for position, value in enumerate(out):
            # A single swap moves an item at most `window` back; forward
            # displacement can chain across swaps but stays local.
            assert value - position <= window
            assert position - value <= 2 * window

    def test_reorder_tiny_inputs_are_safe(self):
        assert reorder_items([1], 1.0, 4, np.random.default_rng(0)) == ([1], 0)
        assert reorder_items([], 1.0, 4, np.random.default_rng(0)) == ([], 0)


class TestCorruptRow:
    ROW = {
        "device_id": "d",
        "ts": 5.0,
        "sim_plmn": "21407",
        "visited_plmn": "23410",
        "type": "update_location",
        "result": "ok",
    }

    def corrupt(self, kind):
        return corrupt_row(
            self.ROW, kind, TRANSACTION_SCHEMA, np.random.default_rng(1)
        )

    def test_garbage_line_is_not_json(self):
        out = self.corrupt(CorruptionKind.GARBAGE_LINE)
        assert isinstance(out, str)
        with pytest.raises(ValueError):
            import json

            json.loads(out)

    def test_bad_plmn_hits_a_plmn_field(self):
        out = self.corrupt(CorruptionKind.BAD_PLMN)
        assert any(
            not str(out[field]).isdigit()
            for field in TRANSACTION_SCHEMA.plmn_fields
        )

    def test_bad_timestamp_goes_negative(self):
        out = self.corrupt(CorruptionKind.BAD_TIMESTAMP)
        assert out["ts"] < 0

    def test_bad_enum_is_unknown_value(self):
        out = self.corrupt(CorruptionKind.BAD_ENUM)
        assert "__corrupt__" in (out["type"], out["result"])

    def test_missing_field_removes_a_required_field(self):
        out = self.corrupt(CorruptionKind.MISSING_FIELD)
        assert len(out) == len(self.ROW) - 1

    def test_original_row_is_untouched(self):
        before = dict(self.ROW)
        self.corrupt(CorruptionKind.BAD_PLMN)
        assert self.ROW == before


class TestInjectRows:
    def test_deterministic_for_a_seed(self):
        plan = FaultPlan(
            seed=11, drop_rate=0.1, duplicate_rate=0.1, reorder_rate=0.1,
            corrupt_rate=0.2,
        )
        out1, rep1 = inject_rows(make_rows(), plan, TRANSACTION_SCHEMA)
        out2, rep2 = inject_rows(make_rows(), plan, TRANSACTION_SCHEMA)
        assert out1 == out2
        assert rep1 == rep2
        assert rep1.n_faults > 0

    def test_noop_plan_is_identity(self):
        rows = make_rows()
        out, report = inject_rows(rows, FaultPlan(), TRANSACTION_SCHEMA)
        assert out == rows
        assert report.n_faults == 0
        assert report.n_input == report.n_output == len(rows)


class TestInjectJsonl:
    def test_byte_identical_across_runs(self, tmp_path):
        src = tmp_path / "clean.jsonl"
        write_transactions(src, make_transactions())
        plan = FaultPlan(
            seed=5, drop_rate=0.1, corrupt_rate=0.2, truncate_fraction=0.05
        )
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        rep_a = inject_jsonl(src, a, plan, TRANSACTION_SCHEMA)
        rep_b = inject_jsonl(src, b, plan, TRANSACTION_SCHEMA)
        assert a.read_bytes() == b.read_bytes()
        assert rep_a == rep_b

    def test_truncation_cuts_bytes(self, tmp_path):
        src = tmp_path / "clean.jsonl"
        write_transactions(src, make_transactions())
        dst = tmp_path / "cut.jsonl"
        report = inject_jsonl(
            src, dst, FaultPlan(truncate_fraction=0.5), TRANSACTION_SCHEMA
        )
        assert report.n_truncated_bytes > 0
        assert dst.stat().st_size < src.stat().st_size

    def test_noop_plan_round_trips(self, tmp_path):
        src, dst = tmp_path / "clean.jsonl", tmp_path / "copy.jsonl"
        txns = make_transactions()
        write_transactions(src, txns)
        inject_jsonl(src, dst, FaultPlan(), TRANSACTION_SCHEMA)
        assert read_transactions(dst) == txns


class TestTypedStreams:
    def test_outage_flips_successful_updates(self):
        txns = make_transactions()
        window = OutageWindow(start_s=100.0, end_s=300.0)
        out, report = inject_transactions(txns, FaultPlan(outages=(window,)))
        assert report.n_outage_flipped > 0
        for txn in out:
            if window.covers(txn.timestamp):
                assert txn.result is window.result
        # outside the window nothing changed
        untouched = [t for t in out if not window.covers(t.timestamp)]
        original = [t for t in txns if not window.covers(t.timestamp)]
        assert untouched == original

    def test_outage_respects_plmn_scope(self):
        txns = make_transactions()
        window = OutageWindow(start_s=0.0, end_s=1e9, plmn="99999")
        out, report = inject_transactions(txns, FaultPlan(outages=(window,)))
        assert report.n_outage_flipped == 0
        assert out == txns

    def test_radio_event_stream_faults(self):
        events = [
            RadioEvent(
                device_id=f"dev-{i}",
                timestamp=float(i),
                sim_plmn="23410",
                tac=35236081,
                sector_id=1,
                interface=RadioInterface.S1,
                event_type=MessageType.ATTACH,
                result=ResultCode.OK,
            )
            for i in range(100)
        ]
        plan = FaultPlan(seed=2, drop_rate=0.2, duplicate_rate=0.1)
        out1, rep1 = inject_radio_events(events, plan)
        out2, rep2 = inject_radio_events(events, plan)
        assert out1 == out2
        assert rep1.n_dropped > 0 and rep1.n_duplicated > 0
        assert rep1.n_output == len(events) - rep1.n_dropped + rep1.n_duplicated
