"""RetryPolicy math, schedule horizons, and call_with_retry semantics."""

import numpy as np
import pytest

from repro.faults import RetryError, RetryPolicy, backoff_schedule, call_with_retry


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=100.0, max_delay_s=50.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_delay_grows_then_caps(self):
        policy = RetryPolicy(
            base_delay_s=10.0, multiplier=2.0, max_delay_s=50.0, jitter=0.0
        )
        rng = np.random.default_rng(0)
        delays = [policy.delay_s(k, rng) for k in range(6)]
        assert delays[:3] == [10.0, 20.0, 40.0]
        assert all(d == 50.0 for d in delays[3:])

    def test_jitter_bounds(self):
        policy = RetryPolicy(
            base_delay_s=100.0, multiplier=1.0, max_delay_s=100.0, jitter=0.5
        )
        rng = np.random.default_rng(1)
        for _ in range(200):
            delay = policy.delay_s(0, rng)
            assert 50.0 <= delay <= 100.0

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay_s(-1, np.random.default_rng(0))


class TestBackoffSchedule:
    def test_deterministic_and_increasing(self):
        policy = RetryPolicy(base_delay_s=30.0, max_attempts=6)
        a = backoff_schedule(policy, np.random.default_rng(4), start_s=100.0)
        b = backoff_schedule(policy, np.random.default_rng(4), start_s=100.0)
        assert a == b
        assert len(a) == policy.max_attempts
        assert a == sorted(a)
        assert a[0] > 100.0

    def test_horizon_stops_schedule(self):
        policy = RetryPolicy(base_delay_s=30.0, jitter=0.0, max_attempts=6)
        full = backoff_schedule(policy, np.random.default_rng(0), start_s=0.0)
        cut = backoff_schedule(
            policy, np.random.default_rng(0), start_s=0.0, horizon_s=full[2]
        )
        assert cut == full[:2]
        assert all(at < full[2] for at in cut)


class TestCallWithRetry:
    def test_succeeds_after_failures(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("flap")
            return "done"

        result = call_with_retry(
            flaky, RetryPolicy(max_attempts=5), np.random.default_rng(0)
        )
        assert result == "done"
        assert calls["n"] == 3

    def test_raises_retry_error_when_exhausted(self):
        def always_fails():
            raise OSError("down")

        with pytest.raises(RetryError) as excinfo:
            call_with_retry(
                always_fails, RetryPolicy(max_attempts=4), np.random.default_rng(0)
            )
        assert excinfo.value.attempts == 4
        assert isinstance(excinfo.value.last_error, OSError)

    def test_unlisted_exceptions_propagate(self):
        def wrong_kind():
            raise KeyError("not retryable")

        with pytest.raises(KeyError):
            call_with_retry(
                wrong_kind,
                RetryPolicy(max_attempts=3),
                np.random.default_rng(0),
                retry_on=(OSError,),
            )

    def test_rng_consumption_is_observer_independent(self):
        """Delays are drawn whether or not on_retry watches them."""

        def fail_twice_factory():
            calls = {"n": 0}

            def fn():
                calls["n"] += 1
                if calls["n"] < 3:
                    raise OSError("flap")
                return calls["n"]

            return fn

        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        observed = []
        call_with_retry(fail_twice_factory(), RetryPolicy(), rng_a)
        call_with_retry(
            fail_twice_factory(),
            RetryPolicy(),
            rng_b,
            on_retry=lambda attempt, delay, exc: observed.append(delay),
        )
        assert len(observed) == 2
        assert rng_a.random() == rng_b.random()

    def test_observed_delays_follow_policy(self):
        policy = RetryPolicy(base_delay_s=10.0, multiplier=2.0, jitter=0.0)
        observed = []

        def always_fails():
            raise OSError("down")

        with pytest.raises(RetryError):
            call_with_retry(
                always_fails,
                policy,
                np.random.default_rng(0),
                on_retry=lambda attempt, delay, exc: observed.append(delay),
            )
        assert observed[:3] == [10.0, 20.0, 40.0]


class TestPolicyEdges:
    def test_validation_messages_name_the_offending_value(self):
        with pytest.raises(ValueError, match=r"base_delay_s must be > 0, got 0\.0"):
            RetryPolicy(base_delay_s=0.0)
        with pytest.raises(ValueError, match=r"multiplier must be >= 1, got 0\.5"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(
            ValueError, match=r"max_delay_s=50\.0 < base_delay_s=100\.0"
        ):
            RetryPolicy(base_delay_s=100.0, max_delay_s=50.0)
        with pytest.raises(ValueError, match=r"jitter must be in \[0, 1\], got 1\.5"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError, match=r"max_attempts must be >= 1, got 0"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match=r"attempt must be >= 0, got -1"):
            RetryPolicy().delay_s(-1, np.random.default_rng(0))

    def test_single_attempt_policy_never_retries(self):
        policy = RetryPolicy(max_attempts=1)
        calls = {"n": 0}

        def always_fails():
            calls["n"] += 1
            raise OSError("down")

        with pytest.raises(RetryError) as excinfo:
            call_with_retry(always_fails, policy, np.random.default_rng(0))
        assert calls["n"] == 1
        assert excinfo.value.attempts == 1
        # One attempt means at most one scheduled retry timestamp.
        schedule = backoff_schedule(policy, np.random.default_rng(0))
        assert len(schedule) == 1

    def test_zero_jitter_is_deterministic_and_spares_the_rng(self):
        policy = RetryPolicy(base_delay_s=10.0, multiplier=2.0, jitter=0.0)
        rng = np.random.default_rng(9)
        untouched = np.random.default_rng(9)
        delays = [policy.delay_s(k, rng) for k in range(4)]
        assert delays == [10.0, 20.0, 40.0, 80.0]
        # jitter=0.0 must not draw from the generator at all, so callers
        # swapping jitter on/off keep the rest of their draws aligned.
        assert rng.random() == untouched.random()

    def test_cap_binds_late_schedule_entries(self):
        policy = RetryPolicy(
            base_delay_s=10.0,
            multiplier=2.0,
            max_delay_s=35.0,
            jitter=0.0,
            max_attempts=6,
        )
        schedule = backoff_schedule(policy, np.random.default_rng(0))
        gaps = [b - a for a, b in zip(schedule, schedule[1:])]
        # 10, 20 uncapped; every later gap sits exactly on the cap.
        assert gaps[0] == pytest.approx(20.0)
        assert gaps[1:] == pytest.approx([35.0, 35.0, 35.0, 35.0])
        assert schedule[0] == pytest.approx(10.0)
