"""FsFaultPlan/FsFaultInjector: budgets, matching, determinism, env."""

import os

import pytest

from repro.faults.fsfault import (
    BIT_ROT,
    EIO_READ,
    ENOSPC,
    FAULT_KINDS,
    FSFAULT_PLAN_ENV,
    FSYNC_FAIL,
    RENAME_FAIL,
    SHORT_WRITE,
    FsFault,
    FsFaultInjector,
    FsFaultPlan,
    active,
    install,
)


def test_plan_json_round_trip():
    plan = FsFaultPlan(
        seed=7,
        faults=(
            FsFault(ENOSPC, match="journal", times=2),
            FsFault(BIT_ROT, match="day_001", flips=5),
        ),
    )
    assert FsFaultPlan.from_json(plan.to_json()) == plan


def test_unknown_kind_and_zero_budget_rejected():
    with pytest.raises(ValueError, match="unknown fsfault kind"):
        FsFault("sparks")
    with pytest.raises(ValueError, match="nonzero"):
        FsFault(ENOSPC, times=0)
    with pytest.raises(ValueError, match="flips"):
        FsFault(BIT_ROT, flips=0)


def test_write_fault_budget_is_consumed():
    injector = FsFaultInjector(FsFaultPlan(faults=(FsFault(ENOSPC, times=2),)))
    assert injector.write_fault("a/unit.ckpt") is not None
    assert injector.write_fault("a/unit.ckpt") is not None
    assert injector.write_fault("a/unit.ckpt") is None
    assert injector.n_fired == 2


def test_persistent_fault_never_exhausts():
    injector = FsFaultInjector(FsFaultPlan(faults=(FsFault(ENOSPC, times=-1),)))
    for _ in range(10):
        assert injector.write_fault("x") is not None
    assert injector.n_fired == 10


def test_match_filters_by_path_substring():
    injector = FsFaultInjector(
        FsFaultPlan(faults=(FsFault(ENOSPC, match="day_003.shard_001", times=-1),))
    )
    assert injector.write_fault("store/units/day_002.shard_001.ckpt.tmp") is None
    assert injector.write_fault("store/units/day_003.shard_001.ckpt.tmp") is not None


def test_read_fsync_rename_probes_raise_typed_oserror():
    injector = FsFaultInjector(
        FsFaultPlan(
            faults=(
                FsFault(EIO_READ),
                FsFault(FSYNC_FAIL),
                FsFault(RENAME_FAIL),
            )
        )
    )
    with pytest.raises(OSError) as excinfo:
        injector.read_fault("unit.ckpt")
    assert "injected eio-read" in str(excinfo.value)
    with pytest.raises(OSError):
        injector.fsync_fault("journal.jsonl")
    with pytest.raises(OSError):
        injector.rename_fault("unit.ckpt")
    # write-kind probes never consult the read/fsync/rename budgets.
    assert injector.write_fault("unit.ckpt") is None


def test_enospc_error_carries_errno():
    injector = FsFaultInjector(FsFaultPlan(faults=(FsFault(ENOSPC),)))
    fault = injector.write_fault("f")
    assert fault is not None and fault.kind == ENOSPC


def test_rot_is_deterministic_per_plan_and_file():
    data = bytes(range(256)) * 4
    fault = FsFault(BIT_ROT, flips=4)
    one = FsFaultInjector(FsFaultPlan(seed=3, faults=(fault,)))
    two = FsFaultInjector(FsFaultPlan(seed=3, faults=(fault,)))
    other_seed = FsFaultInjector(FsFaultPlan(seed=4, faults=(fault,)))
    assert one.rot("a.ckpt", data, fault) == two.rot("a.ckpt", data, fault)
    assert one.rot("a.ckpt", data, fault) != data
    assert one.rot("a.ckpt", data, fault) != one.rot("b.ckpt", data, fault)
    assert one.rot("a.ckpt", data, fault) != other_seed.rot("a.ckpt", data, fault)


def test_rot_spares_the_frame_header():
    data = bytes(200)
    fault = FsFault(BIT_ROT, flips=8)
    injector = FsFaultInjector(FsFaultPlan(seed=0, faults=(fault,)))
    rotted = injector.rot("unit.ckpt", data, fault)
    assert rotted[:20] == data[:20]
    assert rotted != data


def test_install_is_scoped_and_restores_previous():
    assert active() is None
    plan = FsFaultPlan(faults=(FsFault(ENOSPC),))
    with install(plan) as outer:
        assert active() is outer
        with install(FsFaultPlan(faults=(FsFault(EIO_READ),))) as inner:
            assert active() is inner
        assert active() is outer
    assert active() is None


def test_env_plan_activates_and_caches_budgets(monkeypatch):
    plan = FsFaultPlan(seed=1, faults=(FsFault(ENOSPC, times=1),))
    monkeypatch.setenv(FSFAULT_PLAN_ENV, plan.to_json())
    injector = active()
    assert injector is not None
    assert injector.write_fault("x") is not None
    # The same injector (and its spent budget) persists across calls.
    assert active() is injector
    assert active().write_fault("x") is None
    monkeypatch.delenv(FSFAULT_PLAN_ENV)
    assert active() is None


def test_every_kind_is_in_the_catalog():
    assert set(FAULT_KINDS) == {
        "enospc", "eio-write", "eio-read", "fsync-fail",
        "short-write", "bit-rot", "rename-fail",
    }
    assert SHORT_WRITE in FAULT_KINDS
