"""FaultPlan / OutageWindow semantics and substream determinism."""

import pytest

from repro.faults import CorruptionKind, FaultPlan, OutageWindow
from repro.signaling.procedures import ResultCode


class TestOutageWindow:
    def test_validates_ordering(self):
        with pytest.raises(ValueError):
            OutageWindow(start_s=10.0, end_s=10.0)
        with pytest.raises(ValueError):
            OutageWindow(start_s=10.0, end_s=5.0)

    def test_covers_is_half_open(self):
        window = OutageWindow(start_s=10.0, end_s=20.0)
        assert not window.covers(9.999)
        assert window.covers(10.0)
        assert window.covers(19.999)
        assert not window.covers(20.0)

    def test_affects_filters_by_plmn(self):
        window = OutageWindow(start_s=0.0, end_s=10.0, plmn="23410")
        assert window.affects(5.0, "23410")
        assert not window.affects(5.0, "26202")
        # A window without a plmn hits every network.
        everywhere = OutageWindow(start_s=0.0, end_s=10.0)
        assert everywhere.affects(5.0, "26202")

    def test_default_result_is_a_failure(self):
        window = OutageWindow(start_s=0.0, end_s=1.0)
        assert not window.result.is_success


class TestFaultPlan:
    def test_rejects_bad_rates(self):
        for field in ("drop_rate", "duplicate_rate", "reorder_rate", "corrupt_rate"):
            with pytest.raises(ValueError):
                FaultPlan(**{field: 1.5})
            with pytest.raises(ValueError):
                FaultPlan(**{field: -0.1})
        with pytest.raises(ValueError):
            FaultPlan(reorder_window=0)
        with pytest.raises(ValueError):
            FaultPlan(truncate_fraction=2.0)

    def test_injects_anything(self):
        assert not FaultPlan().injects_anything
        assert FaultPlan(drop_rate=0.1).injects_anything
        assert FaultPlan(
            outages=(OutageWindow(start_s=0.0, end_s=1.0),)
        ).injects_anything

    def test_substreams_are_independent(self):
        """Enabling one injector must not shift another's draws."""
        drop_only = FaultPlan(seed=42, drop_rate=0.5)
        drop_and_corrupt = FaultPlan(seed=42, drop_rate=0.5, corrupt_rate=0.5)
        a = drop_only.drop_rng().random(16)
        b = drop_and_corrupt.drop_rng().random(16)
        assert (a == b).all()

    def test_substreams_differ_from_each_other(self):
        plan = FaultPlan(seed=42, drop_rate=0.5, duplicate_rate=0.5)
        assert (plan.drop_rng().random(16) != plan.duplicate_rng().random(16)).any()

    def test_seed_changes_streams(self):
        a = FaultPlan(seed=1, drop_rate=0.5).drop_rng().random(16)
        b = FaultPlan(seed=2, drop_rate=0.5).drop_rng().random(16)
        assert (a != b).any()

    def test_outage_at_matches_time_and_plmn(self):
        plan = FaultPlan(
            outages=(
                OutageWindow(start_s=0.0, end_s=10.0, plmn="23410"),
                OutageWindow(
                    start_s=50.0,
                    end_s=60.0,
                    result=ResultCode.ROAMING_NOT_ALLOWED,
                ),
            )
        )
        assert plan.outage_at(5.0, "23410") is plan.outages[0]
        assert plan.outage_at(5.0, "26202") is None
        assert plan.outage_at(55.0, "26202") is plan.outages[1]
        assert plan.outage_at(30.0, "23410") is None

    def test_all_corruption_kinds_enabled_by_default(self):
        assert set(FaultPlan().corruptions) == set(CorruptionKind)
