"""Tests for the NB-IoT roaming extension (§8)."""

import pytest

from repro.devices.device import DeviceClass
from repro.nbiot import (
    NBIoTAttachRecord,
    NBIoTDeployment,
    detect_iot_by_rat,
    detection_coverage_curve,
    eligible_devices,
    full_deployment,
    migrate_fleet,
)


class TestDeployment:
    def test_trial_requires_both_ends_enabled(self):
        deployment = NBIoTDeployment()
        deployment.enable("20404")
        with pytest.raises(ValueError):
            deployment.run_trial("20404", "23410")
        deployment.enable("23410")
        deployment.run_trial("20404", "23410")
        assert deployment.roaming_possible("20404", "23410")

    def test_trials_are_directed(self):
        deployment = NBIoTDeployment()
        deployment.enable("20404")
        deployment.enable("23410")
        deployment.run_trial("20404", "23410")
        assert not deployment.roaming_possible("23410", "20404")

    def test_native_needs_only_enablement(self):
        deployment = NBIoTDeployment()
        deployment.enable("23410")
        assert deployment.roaming_possible("23410", "23410")

    def test_record_validation(self):
        with pytest.raises(ValueError):
            NBIoTAttachRecord("d", -1.0, "20404", "23410")
        with pytest.raises(ValueError):
            NBIoTAttachRecord("d", 0.0, "20404", "23410", rat="LTE")


class TestMigration:
    def test_eligibility_is_m2m_lpwa(self, pipeline):
        eligible = eligible_devices(pipeline)
        assert eligible
        for device_id in eligible:
            truth = pipeline.dataset.ground_truth[device_id]
            assert truth.device_class is DeviceClass.M2M

    def test_zero_fraction_migrates_nothing(self, pipeline):
        deployment = full_deployment(pipeline)
        records, migrated = migrate_fleet(pipeline, deployment, 0.0)
        assert records == [] and migrated == set()

    def test_full_fraction_migrates_all_eligible(self, pipeline):
        deployment = full_deployment(pipeline)
        _, migrated = migrate_fleet(pipeline, deployment, 1.0)
        assert migrated == eligible_devices(pipeline)

    def test_no_trials_no_roaming_migration(self, pipeline):
        deployment = NBIoTDeployment()
        deployment.enable(str(pipeline.labeler.observer.plmn))
        _, migrated = migrate_fleet(pipeline, deployment, 1.0)
        # Only native-SIM devices can use NB-IoT without a trial.
        observer = str(pipeline.labeler.observer.plmn)
        for device_id in migrated:
            assert pipeline.summaries[device_id].sim_plmn == observer

    def test_migration_deterministic(self, pipeline):
        deployment = full_deployment(pipeline)
        _, a = migrate_fleet(pipeline, deployment, 0.5, seed=3)
        _, b = migrate_fleet(pipeline, deployment, 0.5, seed=3)
        assert a == b

    def test_fraction_bounds(self, pipeline):
        deployment = full_deployment(pipeline)
        with pytest.raises(ValueError):
            migrate_fleet(pipeline, deployment, 1.5)


class TestDetection:
    def test_detector_is_exact_on_migrated(self, pipeline):
        deployment = full_deployment(pipeline)
        records, migrated = migrate_fleet(pipeline, deployment, 0.6, seed=1)
        assert detect_iot_by_rat(records) == migrated

    def test_coverage_curve_monotone(self, pipeline):
        deployment = full_deployment(pipeline)
        curve = detection_coverage_curve(
            pipeline, deployment, fractions=(0.0, 0.3, 0.6, 1.0), seed=1
        )
        shares = [p.detected_share_of_m2m for p in curve]
        assert shares[0] == 0.0
        assert shares == sorted(shares)
        # Full migration makes the LPWA share of M2M trivially visible.
        assert shares[-1] > 0.5
