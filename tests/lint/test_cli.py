"""CLI behavior: exit codes, output formats, and the repo-tree gate."""

import json
from pathlib import Path

from repro.lint.cli import JSON_SCHEMA_VERSION, MAX_EXIT_CODE, main

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


def test_repo_src_tree_is_clean(capsys):
    """The committed tree must satisfy its own invariants."""
    exit_code = main([str(REPO_ROOT / "src")])
    output = capsys.readouterr().out
    assert exit_code == 0, f"lint findings on src:\n{output}"
    assert "0 finding(s)" in output


def test_exit_code_counts_findings(capsys):
    exit_code = main([str(FIXTURES / "rng" / "bad_import_random.py")])
    assert exit_code == 2
    assert MAX_EXIT_CODE == 100


def test_clean_file_exits_zero(capsys):
    assert main([str(FIXTURES / "rng" / "good_seeded.py")]) == 0


def test_json_schema_is_stable(capsys):
    exit_code = main(
        [str(FIXTURES / "ident" / "bad_slicing.py"), "--format", "json"]
    )
    document = json.loads(capsys.readouterr().out)
    assert exit_code == 3
    assert document["version"] == JSON_SCHEMA_VERSION
    assert document["files_checked"] == 1
    assert document["summary"] == {"total": 3, "by_rule": {"ID001": 3}}
    assert len(document["findings"]) == 3
    for finding in document["findings"]:
        assert set(finding) == {
            "path",
            "line",
            "col",
            "rule",
            "severity",
            "message",
            "fix_hint",
        }
        assert finding["rule"] == "ID001"
        assert finding["severity"] == "error"
    # Findings are sorted by (path, line, col, ...).
    keys = [(f["path"], f["line"], f["col"]) for f in document["findings"]]
    assert keys == sorted(keys)


def test_json_output_on_clean_tree(capsys):
    exit_code = main(
        [str(FIXTURES / "rng" / "good_seeded.py"), "--format", "json"]
    )
    document = json.loads(capsys.readouterr().out)
    assert exit_code == 0
    assert document["findings"] == []
    assert document["summary"] == {"total": 0, "by_rule": {}}


def test_select_and_ignore_flags(capsys):
    bad_dir = str(FIXTURES / "rng")
    assert main([bad_dir, "--select", "RNG001"]) == 2
    capsys.readouterr()
    assert main([bad_dir, "--ignore", "RNG001,RNG002,RNG003"]) == 0


def test_directory_scan_covers_every_fixture(capsys):
    exit_code = main([str(FIXTURES)])
    assert exit_code == sum(
        (2, 3, 2, 4, 2, 3, 3, 2, 2, 2, 2, 1, 4, 4, 4, 3, 4, 4, 3, 3, 2, 8, 3, 3, 5)
    )  # every bad fixture's finding count


def test_directory_scan_matches_per_file_counts(capsys):
    """Whole-directory scan == sum of per-file scans (no cross-file bleed)."""
    from tests.lint.test_rules import BAD_FIXTURES

    expected = sum(n for counts in BAD_FIXTURES.values() for n in counts.values())
    assert main([str(FIXTURES)]) == expected


def test_list_rules_mentions_every_rule(capsys):
    assert main(["--list-rules"]) == 0
    output = capsys.readouterr().out
    for rule_id in ("RNG001", "TIME001", "ID001", "NOQA001", "API001"):
        assert rule_id in output


def test_text_output_carries_fix_hints(capsys):
    main([str(FIXTURES / "ident" / "bad_slicing.py")])
    output = capsys.readouterr().out
    assert "hint:" in output
    assert "ID001" in output
