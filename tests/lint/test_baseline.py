"""Baseline/ratchet: budgets, positional suppression, CLI round trip."""

import json
from pathlib import Path

import pytest

from repro.lint import apply_baseline, lint_file, load_baseline, write_baseline
from repro.lint.baseline import BASELINE_VERSION, render_baseline
from repro.lint.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
BAD_RNG = FIXTURES / "rng" / "bad_import_random.py"


def test_missing_file_is_an_empty_baseline(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == {}


def test_version_mismatch_is_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "counts": {}}), encoding="utf-8")
    with pytest.raises(ValueError, match="baseline version"):
        load_baseline(path)


def test_roundtrip_through_write_and_load(tmp_path):
    findings = lint_file(BAD_RNG)
    path = tmp_path / "baseline.json"
    write_baseline(findings, path)
    baseline = load_baseline(path)
    assert sum(baseline.values()) == len(findings)
    kept, suppressed = apply_baseline(findings, baseline)
    assert kept == []
    assert suppressed == len(findings)


def test_budget_suppresses_positionally(tmp_path):
    findings = lint_file(BAD_RNG)
    assert len(findings) == 2
    key = f"{findings[0].path}::{findings[0].rule_id}"
    kept, suppressed = apply_baseline(findings, {key: 1})
    # First finding (deterministic sort order) absorbed, second reported.
    assert suppressed == 1
    assert kept == [findings[1]]


def test_growth_beyond_the_budget_surfaces(tmp_path):
    findings = lint_file(BAD_RNG)
    baseline = {f"{findings[0].path}::{findings[0].rule_id}": 100}
    kept, suppressed = apply_baseline(findings, baseline)
    assert kept == []
    assert suppressed == len(findings)  # budget is a cap, not a count


def test_render_is_deterministic():
    findings = lint_file(BAD_RNG)
    assert render_baseline(findings) == render_baseline(list(reversed(findings)))


def test_cli_update_then_gate(tmp_path, capsys):
    baseline = tmp_path / "lint-baseline.json"
    # Ratchet step 1: accept the current findings.
    assert main([str(BAD_RNG), "--baseline", str(baseline), "--update-baseline"]) == 0
    assert "baseline updated" in capsys.readouterr().out
    # Gated run is now clean and says what it suppressed.
    assert main([str(BAD_RNG), "--baseline", str(baseline)]) == 0
    assert "baselined" in capsys.readouterr().out


def test_cli_baseline_does_not_hide_new_findings(tmp_path, capsys):
    baseline = tmp_path / "lint-baseline.json"
    assert main([str(BAD_RNG), "--baseline", str(baseline), "--update-baseline"]) == 0
    capsys.readouterr()
    # A second bad file is not in the budget: its findings gate the run.
    exit_code = main(
        [str(BAD_RNG), str(FIXTURES / "rng" / "bad_unseeded.py"),
         "--baseline", str(baseline)]
    )
    assert exit_code == 2  # the two RNG003 findings from the new file


def test_cli_update_baseline_requires_baseline_path(capsys):
    with pytest.raises(SystemExit):
        main([str(BAD_RNG), "--update-baseline"])


def test_repo_baseline_file_is_empty_and_current():
    """The checked-in baseline accepts nothing: the tree is clean."""
    repo_root = Path(__file__).resolve().parents[2]
    doc = json.loads((repo_root / "lint-baseline.json").read_text(encoding="utf-8"))
    assert doc["version"] == BASELINE_VERSION
    assert doc["counts"] == {}
