"""Fixture: a real finding silenced by noqa — must trigger nothing."""


def home_mcc(sim_plmn: str) -> int:
    """The slice below is exempted, so no ID001 (and no NOQA001)."""
    return int(sim_plmn[:3])  # repro: noqa[ID001]
