"""Fixture: a suppression with nothing to silence — NOQA001 (twice)."""


def clean() -> int:
    """Stale exemptions on perfectly clean lines."""
    a = 1  # repro: noqa[ID001]
    b = 2  # repro: noqa
    return a + b
