"""Fixture: per-row dataclass payloads across the pool seam — PERF003."""

from typing import List, Tuple

from repro.parallel.pool import map_shards
from repro.parallel.sharding import shard_mno_records
from repro.signaling.cdr import ServiceRecord
from repro.signaling.events import RadioEvent


def fan_out_direct(radio, service, n_workers):
    """Row-shard call fed straight into the seam — PERF003."""
    return map_shards(_count, shard_mno_records(radio, service, n_workers), n_workers)


def fan_out_bound(radio, service, n_workers):
    """Name bound to row-list shards — PERF003."""
    shards = shard_mno_records(radio, service, n_workers)
    return map_shards(_count, shards, n_workers)


def fan_out_annotated(n_workers):
    """Payload annotated as per-row dataclass lists — PERF003."""
    payloads: List[Tuple[List[RadioEvent], List[ServiceRecord]]] = []
    return map_shards(_count, payloads, n_workers)


def _count(shard):
    return len(shard)
