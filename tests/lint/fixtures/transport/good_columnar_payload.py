"""Fixture: columnar descriptors are the sanctioned seam payload."""

from repro.parallel.pool import map_shards
from repro.parallel.sharding import shard_columnar_records
from repro.parallel.transport import attach_shard, publish_shards


def fan_out_columnar(events, records, n_workers):
    """Descriptors in, packed blocks out — clean."""
    shards = shard_columnar_records(events, records, n_workers)
    with publish_shards(shards) as exchange:
        return map_shards(_attach_and_count, exchange.descriptors, n_workers)


def _attach_and_count(descriptor):
    events, records = attach_shard(descriptor)
    return len(events) + len(records)
