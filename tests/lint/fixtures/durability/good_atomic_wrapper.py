"""Wrappers that route through the sanctioned atomic writers — clean."""

from repro.runtime.checkpoint import atomic_write_text


def _save_text(path, payload):
    atomic_write_text(path, payload)


def _persist(path, payload):
    _save_text(path, payload)


def flush_manifest(manifest_path, payload):
    _save_text(manifest_path, payload)


def flush_checkpoint(ckpt_path, payload):
    _persist(ckpt_path, payload)
