"""Fixture: durable artifacts written without the atomic discipline."""

import json
from pathlib import Path


def save_manifest(manifest_path: Path, doc: dict) -> None:
    manifest_path.write_text(json.dumps(doc), encoding="utf-8")


def append_journal(journal_path: Path, entry: dict) -> None:
    with open(journal_path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry) + "\n")


def publish_checkpoint(checkpoint_path: Path, blob: bytes) -> None:
    checkpoint_path.write_bytes(blob)


def write_baseline(directory: Path, report: dict) -> None:
    with open(directory / "BENCH_baseline.json", mode="w") as fh:
        json.dump(report, fh)
