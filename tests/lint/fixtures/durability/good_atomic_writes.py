"""Fixture: durable artifacts routed through the sanctioned atomic writers."""

import json
from pathlib import Path

from repro.runtime.checkpoint import atomic_write_bytes, atomic_write_text


def save_manifest(manifest_path: Path, doc: dict) -> None:
    atomic_write_text(manifest_path, json.dumps(doc))


def publish_checkpoint(checkpoint_path: Path, blob: bytes) -> None:
    atomic_write_bytes(checkpoint_path, blob)


def read_manifest(manifest_path: Path) -> dict:
    # Reads are fine: only mutation needs the rename discipline.
    with open(manifest_path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def export_csv(out_path: Path, rows: list) -> None:
    # Ordinary exports are out of scope — not a durable artifact name.
    out_path.write_text("\n".join(rows), encoding="utf-8")
