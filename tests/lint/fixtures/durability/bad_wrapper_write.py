"""Torn writes laundered through helper wrappers — each call is DUR001.

The helpers themselves never mention an artifact name, so the per-file
check cannot see them; the project index's raw-writer fixpoint follows
the parameter through the wrapper chain.
"""


def _save_text(path, payload):
    path.write_text(payload, encoding="utf-8")


def _persist(path, payload):
    _save_text(path, payload)  # second hop in the wrapper chain


def flush_manifest(manifest_path, payload):
    _save_text(manifest_path, payload)


def flush_checkpoint(ckpt_path, payload):
    _persist(ckpt_path, payload)


def flush_journal(journal_path, lines):
    _persist(journal_path, "\n".join(lines))
