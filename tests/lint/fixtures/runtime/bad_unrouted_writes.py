"""Fixture: storage I/O bypassing the fault-aware fsio seam (FS001)."""

import os
from pathlib import Path


def persist_blob(path, data):
    with open(path, "wb") as handle:
        handle.write(data)
        os.fsync(handle.fileno())


def persist_fd(fd, data):
    os.write(fd, data)


def publish(tmp, target):
    os.replace(tmp, target)


def stamp(path):
    Path(path).write_text("done", encoding="utf-8")
