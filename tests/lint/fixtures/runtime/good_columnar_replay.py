"""PERF004 clean twin: fold the columns directly, no row round-trip."""

from typing import Any, Sequence


def replay_fold(
    day_events: Any,
    batch_events: Any,
    indices: Sequence[int],
    builder: Any,
) -> None:
    day_events.extend_from(batch_events, indices)
    builder.update(0, day_events)
