"""Fixture: storage I/O routed through the fsio seam (FS001-clean)."""

from repro.runtime import fsio


def persist_blob(path, data):
    return fsio.write_file_bytes(path, data)


def publish(tmp, target):
    fsio.replace_file(tmp, target)
    fsio.fsync_dir(target.parent)


def load(path):
    return fsio.read_file_bytes(path)


def read_config(path):
    # Read-only open stays out of scope: a raw read cannot tear state.
    with open(path) as handle:
        return handle.read()
