"""PERF004 fixture: materializing rows on the replay/fold path."""

from typing import Any, List


def replay_fold(events_store: Any, records_store: Any, builder: Any) -> None:
    radio_rows: List[Any] = events_store.to_rows()
    for record in records_store.iter_rows():
        radio_rows.append(record)
    builder.update(0, radio_rows, records_store.to_rows())
