"""Fixture: raw process pools outside the ``repro.parallel`` seam."""

import concurrent.futures
import multiprocessing  # PERF001: multiprocessing import
from concurrent.futures import ProcessPoolExecutor  # PERF001: executor import
from multiprocessing import Pool  # PERF001: multiprocessing import


def fan_out_executor(items):
    """Raw executor via module attribute — PERF001."""
    with concurrent.futures.ProcessPoolExecutor() as pool:
        return list(pool.map(str, items))


def fan_out_pool(items):
    """Raw multiprocessing pool (import already flagged above)."""
    del multiprocessing
    with Pool() as pool:
        return list(pool.map(str, items))


def fan_out_imported(items):
    """Directly-imported executor (import already flagged above)."""
    with ProcessPoolExecutor() as pool:
        return list(pool.map(str, items))
