"""Fixture: wall-clock reads in a simulation package — TIME001 (four)."""

import time
from datetime import date, datetime


def stamp() -> float:
    """Every flavour of host-clock read."""
    datetime.now()
    datetime.utcnow()
    date.today()
    return time.time()
