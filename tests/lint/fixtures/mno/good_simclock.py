"""Fixture: simulation time derived from config — must trigger nothing."""


def event_time(day_index: int, seconds_into_day: float) -> float:
    """Simulation timestamps flow from the configured window."""
    return day_index * 86400.0 + seconds_into_day
