"""Fixture: bare and swallowed exception handlers — EXC001 (twice)."""


def risky() -> int:
    """A bare except and a handler that does nothing."""
    try:
        return 1
    except:
        return 0


def swallow() -> int:
    """Swallowing a typed exception is just as silent."""
    try:
        return 1
    except ValueError:
        pass
    return 0
