"""Fixture: config dataclass hygiene — CFG001 (twice)."""

from dataclasses import dataclass


@dataclass
class SimulatorConfig:
    """A field with no default and an un-annotated class attribute."""

    n_devices: int
    window_days = 22
    seed: int = 7
