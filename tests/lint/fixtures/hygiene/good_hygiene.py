"""Fixture: clean defaults, excepts and config — must trigger nothing."""

from dataclasses import dataclass
from typing import List, Optional


@dataclass
class SimulatorConfig:
    """Every field annotated and defaulted."""

    n_devices: int = 6000
    seed: int = 7


def collect(values: Optional[List[int]] = None) -> List[int]:
    """None-default plus a handler that actually handles."""
    try:
        return list(values or [])
    except TypeError as exc:
        raise ValueError("values must be iterable") from exc
