"""Fixture: mutable default arguments — DEF001 (three findings)."""


def collect(values=[], mapping={}, *, tags=set()):
    """One finding per mutable default."""
    return values, mapping, tags
