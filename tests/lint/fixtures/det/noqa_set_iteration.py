"""A deliberate unordered emit, suppressed with a justified noqa."""

import json


def merge(samples):
    out = []
    # Sampling diagnostics: order genuinely does not matter downstream,
    # the consumer re-sorts before comparison.
    for sample in set(samples):  # repro: noqa[DET001]
        out.append(sample)
    return json.dumps(out)
