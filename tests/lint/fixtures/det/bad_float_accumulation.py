"""Float accumulation in hash/filesystem order — every site is DET003."""

import json


def merge(volumes):
    return sum(set(volumes))  # rounding depends on hash order


def to_json(shards):
    total_bytes = sum(s.nbytes for s in set(shards))
    return json.dumps({"total": total_bytes})


def render_json(root, weights):
    weighted = 0.0
    for path in root.iterdir():  # filesystem order
        weighted += weights[path.stem]
    return json.dumps(weighted)
