"""Unordered iteration feeding serialized output — every loop here is DET001."""

import json


def merge(reports):
    out = []
    seen = set(reports)
    for report in seen:  # hash order leaks into the merged list
        out.append(report)
    return out


def render_json(rows):
    labels = {row.label for row in rows}
    ordered = [label for label in labels]  # materializes hash order
    return json.dumps(ordered)


def _collect_days(root):
    days = []
    for path in root.glob("*.parquet"):  # filesystem order
        days.append(path.stem)
    return days


def to_json(root):
    return json.dumps({day: 1 for day in set(_collect_days(root))})
