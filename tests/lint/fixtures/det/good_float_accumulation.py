"""Order-pinned or order-independent accumulation — clean."""

import json
import math


def merge(volumes):
    return sum(sorted(set(volumes)))  # accumulation order is pinned


def to_json(shards):
    total_bytes = math.fsum(s.nbytes for s in set(shards))
    n_shards = sum(1 for s in set(shards))  # integer counting is safe
    return json.dumps({"total": total_bytes, "shards": n_shards})


def render_json(root, weights):
    weighted = 0.0
    for path in sorted(root.iterdir()):
        weighted += weights[path.stem]
    return json.dumps(weighted)
