"""Ordered (or order-insensitive) iteration on serialized paths — clean."""

import json


def merge(reports):
    out = []
    for report in sorted(set(reports)):  # sorted() pins the order
        out.append(report)
    return out


def render_json(rows):
    labels = {row.label for row in rows}
    return json.dumps(sorted(labels))  # consumer erases hash order


def _collect_days(root):
    days = []
    for path in sorted(root.glob("*.parquet")):  # fs order pinned
        days.append(path.stem)
    return days


def to_json(root, wanted):
    hits = set()
    for day in _collect_days(root):
        if day in wanted:
            hits.add(day)  # .add into a set is order-insensitive
    return json.dumps(sorted(day for day in hits))
