"""Stable, domain-keyed ordering — the reproducible counterparts."""

import json


def order_devices(devices):
    return sorted(devices, key=lambda d: d.device_id)


def order_records(records):
    records.sort(key=lambda r: (r.day, r.name))
    return records


def merge(shards):
    flat = sorted(set(shards))  # sorted() materializes deterministically
    return flat


def render_json(sessions):
    table = {}
    for session in sessions:
        table[session.device_id] = session.day
    return json.dumps(table, sort_keys=True)
