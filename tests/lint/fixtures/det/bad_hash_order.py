"""id()/hash() driven ordering and keying — every site here is DET002."""

import json


def order_devices(devices):
    return sorted(devices, key=id)  # allocator order, never reproducible


def order_records(records):
    records.sort(key=lambda r: hash(r.name))  # salted per process
    return records


def merge(shards):
    flat = list(set(shards))  # materializes hash order on a merge path
    return flat


def render_json(sessions):
    table = {}
    for session in sessions:
        table[id(session)] = session.day  # key differs per process
    return json.dumps(sorted(table.values()))
