"""Fixture: does not parse — SYNTAX001."""

def broken(:
    return
