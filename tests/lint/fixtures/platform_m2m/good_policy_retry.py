"""Fixture: retries modeled through repro.faults.retry are fine."""

import numpy as np

from repro.faults.retry import RetryPolicy, backoff_schedule, call_with_retry


def reattach_storm(policy: RetryPolicy, seed: int):
    rng = np.random.default_rng(seed)
    return list(backoff_schedule(policy, rng, start_s=0.0, horizon_s=3600.0))


def attach_with_policy(device, networks, policy: RetryPolicy, seed: int):
    rng = np.random.default_rng(seed)
    for network in networks:
        try:
            return call_with_retry(
                lambda: device.attach(network),
                policy,
                rng,
                retry_on=(ConnectionError,),
            )
        except ConnectionError:
            continue
    return None


def drain_backlog(queue):
    # A loop that breaks out of a try for reasons other than retrying
    # (here: normal completion) is not a retry loop.
    drained = []
    while True:
        try:
            drained.append(queue.pop())
        except IndexError:
            break
    return drained
