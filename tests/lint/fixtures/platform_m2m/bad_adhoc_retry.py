"""Fixture: hand-rolled retry loops a simulation package must not contain."""


def attach_with_continue(device, networks):
    delay = 1.0
    for network in networks:
        try:
            device.attach(network)
        except ConnectionError:
            delay *= 2.0
            continue
        return network
    return None


def attach_until_success(device, network):
    delay = 1.0
    while delay < 64.0:
        try:
            device.attach(network)
            break
        except ConnectionError:
            delay *= 2.0
    return delay
