"""SVC001 fixtures: orphaned tasks and blocking calls on the event loop."""

import asyncio
import os
import socket
import subprocess
import time


async def spawn_and_forget(coro):
    # Dropped task handle: unsupervised, may be garbage-collected.
    asyncio.create_task(coro)
    asyncio.ensure_future(coro)


async def blocking_sleep():
    time.sleep(1.0)  # stalls the whole event loop


async def blocking_file_io(path):
    handle = open(path, "rb")  # sync file I/O inside async def
    data = handle.read()
    handle.close()
    return data


async def blocking_socket_and_fsync(fd):
    conn = socket.create_connection(("localhost", 80))
    conn.close()
    os.fsync(fd)
    subprocess.run(["true"])
