"""Clean service async code: supervised tasks, off-loop blocking work."""

import asyncio
import time


async def supervised_spawn(coro, registry):
    # Handle retained: the supervisor (or the dict) owns the task.
    task = asyncio.get_running_loop().create_task(coro)
    registry["worker"] = task
    await task


async def offloaded_io(path):
    # Blocking file I/O pushed off the event loop.
    return await asyncio.to_thread(_read_file, path)


async def async_sleep_is_fine():
    await asyncio.sleep(0.1)


def _read_file(path):
    # Sync helpers may block freely: they run in worker threads.
    with open(path, "rb") as handle:
        return handle.read()


def sync_sleep_is_fine():
    time.sleep(0.01)
