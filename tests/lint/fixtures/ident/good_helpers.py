"""Fixture: identifier parsing through the helpers — must trigger nothing."""

from repro.cellular.identifiers import mcc_of, plmn_candidates


def home_mcc(sim_plmn: str, imsi: str) -> int:
    """The sanctioned pattern: helpers own the digit layout."""
    candidates = plmn_candidates(imsi)
    ranges = (imsi, imsi)
    _ = ranges[0]  # plain container indexing stays legal
    return mcc_of(sim_plmn) if candidates else 0
