"""Fixture: ad-hoc identifier slicing — ID001 (three findings)."""


def home_mcc(sim_plmn: str, imsi: str) -> int:
    """Digit-position slicing of PLMN and IMSI strings."""
    candidates = (imsi[:5], imsi[:6])
    return int(sim_plmn[:3]) if candidates else 0
