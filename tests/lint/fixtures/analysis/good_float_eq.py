"""Fixture: tolerance-based float comparison — must trigger nothing."""


def check(share: float) -> bool:
    """Epsilon comparison, and int equality stays legal."""
    count = 3
    return abs(share - 0.5) < 1e-9 and count == 3
