"""Fixture: float equality in analysis code — FLT001 (twice)."""


def check(share: float) -> bool:
    """Exact comparisons against float literals."""
    if share == 0.5:
        return True
    return share != 1.0
