"""Fixture: stdlib random import — must trigger RNG001 (twice)."""

import random

from random import shuffle


def draw() -> float:
    """Use the banned module so the imports are not dead code."""
    shuffle([])
    return random.random()
