"""Fixture: disciplined RNG use — must trigger nothing."""

import numpy as np


def make_rng(seed: int) -> np.random.Generator:
    """A Generator seeded from config is the sanctioned pattern."""
    return np.random.default_rng(seed)


def draw(rng: np.random.Generator) -> float:
    """Draw through the passed-in Generator."""
    return float(rng.uniform())
