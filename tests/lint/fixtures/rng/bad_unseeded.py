"""Fixture: unseeded default_rng — must trigger RNG003 (twice)."""

import numpy as np
from numpy.random import default_rng


def make_rngs() -> tuple:
    """Both spellings of an unseeded Generator."""
    return np.random.default_rng(), default_rng()
