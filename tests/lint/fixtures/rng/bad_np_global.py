"""Fixture: numpy global-state RNG — must trigger RNG002 (three times)."""

import numpy as np
from numpy.random import randint


def draw() -> float:
    """Seed and draw through the legacy global-state API."""
    np.random.seed(7)
    randint(10)
    return float(np.random.uniform())
