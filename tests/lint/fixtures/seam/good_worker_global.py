"""Seam-safe shared state: context channel and frozen constants."""

from repro.parallel.pool import get_context, map_shards

_COLUMNS = ("device_id", "day", "bytes_up")  # immutable, never mutated


def classify(shard):
    seen = get_context()["seen_keys"]  # pickled once per worker, explicit
    return [row for row in shard if row.key not in seen]


def project(shard):
    return [[getattr(row, col) for col in _COLUMNS] for row in shard]


def run(shards, rows):
    seen_keys = {row.key for row in rows}
    return map_shards(
        classify, shards, n_workers=4, context={"seen_keys": seen_keys}
    )


def run_projection(shards):
    return map_shards(project, shards, n_workers=4)
