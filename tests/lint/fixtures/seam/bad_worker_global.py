"""Pool worker reading mutated module globals — both reads are SEAM002."""

from repro.parallel.pool import map_shards

_SEEN_KEYS = set()
_LIMITS = {"max_rows": 1000}


def classify(shard):
    limit = _LIMITS["max_rows"]  # stale copy in pooled workers
    return [row for row in shard[:limit] if row.key not in _SEEN_KEYS]


def run(shards, rows):
    _SEEN_KEYS.update(row.key for row in rows)
    _LIMITS["max_rows"] = len(rows)
    return map_shards(classify, shards, n_workers=4)
