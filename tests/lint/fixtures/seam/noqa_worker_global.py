"""A deliberate worker global read, suppressed with a justified noqa."""

from repro.parallel.pool import map_shards

_PROBE_COUNTS = {}


def probe(shard):
    # Diagnostics only: the count is advisory and never serialized, so
    # pooled/in-process divergence is acceptable here.
    return len(shard) + len(_PROBE_COUNTS)  # repro: noqa[SEAM002]


def run(shards):
    _PROBE_COUNTS["runs"] = _PROBE_COUNTS.get("runs", 0) + 1
    return map_shards(probe, shards, n_workers=4)
