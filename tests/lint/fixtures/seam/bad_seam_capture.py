"""Unsafe values shipped across map_shards — every site here is SEAM001."""

from repro.parallel.pool import map_shards


def run_lambda(shards):
    # Works under n_workers=1 (no pickling), dies in the pooled path.
    return map_shards(lambda shard: len(shard), shards, n_workers=4)


def run_nested(shards):
    def task(shard):
        return len(shard)

    # Nested functions cannot be pickled by qualified name.
    return map_shards(task, shards, n_workers=4)


def run_then_mutate(shards, extra):
    results = map_shards(_count, shards, n_workers=4)
    # Pooled path pickled the old list; in-process fallback sees this.
    shards.append(extra)
    return results


def _count(shard):
    return len(shard)
