"""Seam-safe fan-out: module-level task, arguments frozen before submit."""

from repro.parallel.pool import map_shards


def run(shards, extra):
    staged = list(shards)
    staged.append(extra)  # all mutation happens before submit
    return map_shards(_count, staged, n_workers=4)


def _count(shard):
    return len(shard)
