"""Fixture: per-row dataclass construction in core loops — PERF002 (four findings)."""

from repro.signaling import cdr
from repro.signaling.cdr import ServiceRecord
from repro.signaling.events import RadioEvent


def rebuild_rows(store):
    """For loop rebuilding a dataclass per row."""
    rows = []
    for i in range(len(store.device_ids)):
        rows.append(RadioEvent(  # PERF002: per-iteration construction
            device_id=store.pools.devices.lookup(store.device_ids[i]),
            timestamp=store.timestamps[i],
            sim_plmn="26202",
            tac=35000000,
            sector_id=store.sector_ids[i],
            interface=None,
            event_type=None,
            result=None,
        ))
    return rows


def drain_queue(queue):
    """While loop constructing a record per item."""
    out = []
    while queue:
        payload = queue.pop()
        out.append(ServiceRecord(**payload))  # PERF002
    return out


def comprehension(timestamps):
    """List comprehension is a loop too."""
    return [RadioEvent(device_id="d", timestamp=ts) for ts in timestamps]  # PERF002


def nested(blocks):
    """Nested loops flag the call site once, not once per depth."""
    out = []
    for block in blocks:
        for payload in block:
            out.append(cdr.ServiceRecord(**payload))  # PERF002 (single finding)
    return out
