"""Fixture: columnar scanning and boundary materialization — PERF002-clean."""

from repro.signaling.events import RadioEvent


def scan_columns(device_ids, results, success_table):
    """Hot loop over interned int columns: no row objects anywhere."""
    failed = 0
    for dev, res in zip(device_ids, results):
        if not success_table[res]:
            failed += dev
    return failed


def materialize_one(store, index):
    """Boundary adapter: a single row built outside any loop is fine."""
    return RadioEvent(
        device_id=store.pools.devices.lookup(store.device_ids[index]),
        timestamp=store.timestamps[index],
        sim_plmn="26202",
        tac=35000000,
        sector_id=store.sector_ids[index],
        interface=None,
        event_type=None,
        result=None,
    )


def rows_via_adapter(store, indices):
    """Delegating to the store's own adapter keeps the loop columnar."""
    return store.rows_at(indices)
