"""Fixture: inside a ``parallel`` package the pool seam is allowed."""

from concurrent.futures import ProcessPoolExecutor


def map_shards(fn, shards, n_workers):
    """The audited seam itself may create process pools."""
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(fn, shards))
