"""Whole-program index: call graph, seams, writer fixpoint, and cache."""

import ast
import json
from pathlib import Path

from repro.lint import (
    ModuleIndex,
    ProjectIndex,
    build_module_index,
    lint_file,
    lint_paths,
    module_name_for,
)


def _shard(root: Path, name: str, source: str) -> ModuleIndex:
    """Write ``repro/<name>.py`` under ``root`` and build its shard."""
    path = root / "repro" / f"{name}.py"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return build_module_index(path, source, ast.parse(source))


class TestModuleNames:
    def test_anchors_at_the_repro_package(self):
        assert module_name_for("src/repro/core/catalog.py") == "repro.core.catalog"
        assert module_name_for("/abs/src/repro/lint/cli.py") == "repro.lint.cli"

    def test_package_init_maps_to_the_package(self):
        assert module_name_for("src/repro/lint/__init__.py") == "repro.lint"

    def test_paths_outside_the_package_stay_stable(self):
        assert module_name_for("tools/gen_api_docs.py") == "tools.gen_api_docs"


class TestCallGraph:
    def test_serialized_reachable_crosses_modules(self, tmp_path):
        alpha = _shard(
            tmp_path,
            "alpha",
            "def gather(items):\n"
            "    return [x for x in items]\n"
            "\n"
            "def untouched(items):\n"
            "    return items\n",
        )
        omega = _shard(
            tmp_path,
            "omega",
            "import json\n"
            "from repro.alpha import gather\n"
            "\n"
            "def render_json(items):\n"
            "    return json.dumps(gather(items))\n",
        )
        project = ProjectIndex([alpha, omega])
        assert "repro.omega.render_json" in project.serialized_reachable
        assert "repro.alpha.gather" in project.serialized_reachable
        assert "repro.alpha.untouched" not in project.serialized_reachable

    def test_worker_discovery_crosses_modules(self, tmp_path):
        alpha = _shard(tmp_path, "alpha", "def work(shard):\n    return len(shard)\n")
        omega = _shard(
            tmp_path,
            "omega",
            "from repro.alpha import work\n"
            "from repro.parallel.pool import map_shards\n"
            "\n"
            "def run(shards):\n"
            "    return map_shards(work, shards, n_workers=2)\n",
        )
        project = ProjectIndex([alpha, omega])
        assert "repro.alpha.work" in project.worker_functions

    def test_raw_writer_fixpoint_follows_wrapper_chains(self, tmp_path):
        alpha = _shard(
            tmp_path,
            "alpha",
            "def save(path, text):\n"
            "    path.write_text(text)\n",
        )
        omega = _shard(
            tmp_path,
            "omega",
            "from repro.alpha import save\n"
            "\n"
            "def persist(path, text):\n"
            "    save(path, text)\n",
        )
        writers = ProjectIndex([alpha, omega]).raw_writer_params
        assert writers["repro.alpha.save"] == {0}
        assert writers["repro.omega.persist"] == {0}

    def test_mutated_globals_cross_module_boundaries(self, tmp_path):
        alpha = _shard(tmp_path, "alpha", "_CACHE = {}\n")
        omega = _shard(
            tmp_path,
            "omega",
            "from repro.alpha import _CACHE\n"
            "\n"
            "def poke():\n"
            "    _CACHE['k'] = 1\n",
        )
        project = ProjectIndex([alpha, omega])
        assert "repro.alpha._CACHE" in project.mutable_globals
        assert "repro.alpha._CACHE" in project.mutated_globals


class TestShardSerialization:
    SOURCE = (
        "import json\n"
        "_TABLE = {}\n"
        "\n"
        "def merge(a, b):\n"
        "    _TABLE.update(a)\n"
        "    return json.dumps([a, b])\n"
    )

    def test_round_trips_through_json(self, tmp_path):
        shard = _shard(tmp_path, "alpha", self.SOURCE)
        wire = json.loads(json.dumps(shard.to_json()))
        assert ModuleIndex.from_json(wire) == shard

    def test_fingerprint_is_stable_and_fact_sensitive(self, tmp_path):
        before = ProjectIndex([_shard(tmp_path, "alpha", self.SOURCE)]).fingerprint()
        again = ProjectIndex(
            [_shard(tmp_path / "copy", "alpha", self.SOURCE)]
        ).fingerprint()
        assert before == again
        moved = ProjectIndex(
            [_shard(tmp_path / "new", "alpha", self.SOURCE + "\ndef to_json(x):\n    return x\n")]
        ).fingerprint()
        assert moved != before


class TestInterproceduralLint:
    def test_det001_needs_the_whole_program(self, tmp_path):
        """The helper alone is clean; with its caller it is a finding."""
        src = tmp_path / "repro"
        src.mkdir()
        helper = src / "alpha.py"
        helper.write_text(
            "def gather(items):\n"
            "    return [x for x in set(items)]\n",
            encoding="utf-8",
        )
        (src / "omega.py").write_text(
            "import json\n"
            "from repro.alpha import gather\n"
            "\n"
            "def render_json(items):\n"
            "    return json.dumps(gather(items))\n",
            encoding="utf-8",
        )
        assert lint_file(helper) == []  # not reachable in isolation
        result = lint_paths([src])
        assert [(f.rule_id, Path(f.path).name) for f in result.findings] == [
            ("DET001", "alpha.py")
        ]

    def test_seam002_needs_the_whole_program(self, tmp_path):
        src = tmp_path / "repro"
        src.mkdir()
        worker = src / "alpha.py"
        worker.write_text(
            "_CACHE = {}\n"
            "\n"
            "def work(shard):\n"
            "    return _CACHE.get(shard)\n",
            encoding="utf-8",
        )
        (src / "omega.py").write_text(
            "from repro.alpha import _CACHE, work\n"
            "from repro.parallel.pool import map_shards\n"
            "\n"
            "def run(shards):\n"
            "    _CACHE['runs'] = 1\n"
            "    return map_shards(work, shards, n_workers=2)\n",
            encoding="utf-8",
        )
        assert lint_file(worker) == []  # no seam, no mutation in isolation
        result = lint_paths([src])
        assert [(f.rule_id, Path(f.path).name) for f in result.findings] == [
            ("SEAM002", "alpha.py")
        ]


class TestIncrementalCache:
    def _tree(self, tmp_path):
        src = tmp_path / "repro"
        src.mkdir()
        (src / "alpha.py").write_text(
            "def helper(items):\n    return sorted(items)\n", encoding="utf-8"
        )
        (src / "omega.py").write_text(
            "import json\n"
            "\n"
            "def render_json(items):\n"
            "    return json.dumps(items)\n",
            encoding="utf-8",
        )
        return src

    def test_warm_run_rebuilds_nothing(self, tmp_path):
        src = self._tree(tmp_path)
        cache = tmp_path / "cache"
        cold = lint_paths([src], cache_dir=cache)
        assert sorted(cold.indexed_modules) == ["repro.alpha", "repro.omega"]
        assert cold.cached_modules == []
        assert cold.files_reanalyzed == 2

        warm = lint_paths([src], cache_dir=cache)
        assert warm.indexed_modules == []
        assert sorted(warm.cached_modules) == ["repro.alpha", "repro.omega"]
        assert warm.files_reanalyzed == 0
        assert warm.findings == cold.findings
        assert warm.files_checked == cold.files_checked

    def test_touching_one_file_rebuilds_only_its_shard(self, tmp_path):
        src = self._tree(tmp_path)
        cache = tmp_path / "cache"
        lint_paths([src], cache_dir=cache)

        # Comment-only edit: the shard must rebuild (content hash moved)
        # but the derived cross-module facts — hence every *other*
        # module's findings — stay cached.
        alpha = src / "alpha.py"
        alpha.write_text("# touched\n" + alpha.read_text(encoding="utf-8"),
                         encoding="utf-8")
        third = lint_paths([src], cache_dir=cache)
        assert third.indexed_modules == ["repro.alpha"]
        assert third.cached_modules == ["repro.omega"]
        assert third.files_reanalyzed == 1

    def test_cross_module_fact_change_invalidates_cached_findings(self, tmp_path):
        src = self._tree(tmp_path)
        cache = tmp_path / "cache"
        lint_paths([src], cache_dir=cache)

        # Adding a sink to alpha moves the project fingerprint, so
        # omega's findings must be recomputed even though its bytes are
        # unchanged.
        alpha = src / "alpha.py"
        alpha.write_text(
            alpha.read_text(encoding="utf-8") + "\ndef merge(a, b):\n    return a + b\n",
            encoding="utf-8",
        )
        moved = lint_paths([src], cache_dir=cache)
        assert moved.indexed_modules == ["repro.alpha"]
        assert moved.cached_modules == ["repro.omega"]
        assert moved.files_reanalyzed == 2

    def test_cached_findings_are_still_reported(self, tmp_path):
        src = tmp_path / "repro"
        src.mkdir()
        (src / "alpha.py").write_text(
            "import json\n"
            "\n"
            "def render_json(items):\n"
            "    return json.dumps(list(set(items)))\n",
            encoding="utf-8",
        )
        cache = tmp_path / "cache"
        cold = lint_paths([src], cache_dir=cache)
        warm = lint_paths([src], cache_dir=cache)
        assert [f.rule_id for f in cold.findings] == ["DET002"]
        assert warm.findings == cold.findings
        assert warm.files_reanalyzed == 0
