"""Run the external toolchain (ruff, mypy) against the repo when available.

The reference container does not ship ruff or mypy, so these tests skip
there; in environments that install the ``dev`` extra (CI does) they keep
the `pyproject.toml` configuration honest.
"""

from __future__ import annotations

import shutil
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean() -> None:
    """`ruff check` over all first-party code reports nothing."""
    proc = subprocess.run(
        ["ruff", "check", "src", "tests", "tools", "benchmarks", "examples"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_clean() -> None:
    """`mypy` (configured via pyproject.toml) reports nothing."""
    proc = subprocess.run(
        ["mypy"], cwd=REPO_ROOT, capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
