"""Each fixture under ``fixtures/`` triggers exactly its intended rule."""

from collections import Counter
from pathlib import Path

import pytest

from repro.lint import lint_file, lint_source

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture path (relative to FIXTURES) -> expected {rule_id: count}.
BAD_FIXTURES = {
    "rng/bad_import_random.py": {"RNG001": 2},
    "rng/bad_np_global.py": {"RNG002": 3},
    "rng/bad_unseeded.py": {"RNG003": 2},
    "mno/bad_wallclock.py": {"TIME001": 4},
    "analysis/bad_float_eq.py": {"FLT001": 2},
    "ident/bad_slicing.py": {"ID001": 3},
    "hygiene/bad_mutable_default.py": {"DEF001": 3},
    "hygiene/bad_excepts.py": {"EXC001": 2},
    "hygiene/bad_config.py": {"CFG001": 2},
    "platform_m2m/bad_adhoc_retry.py": {"RETRY001": 2},
    "perf/bad_process_pool.py": {"PERF001": 4},
    "durability/bad_torn_writes.py": {"DUR001": 4},
    "durability/bad_wrapper_write.py": {"DUR001": 3},
    "core/bad_row_loop.py": {"PERF002": 4},
    "noqa/unused.py": {"NOQA001": 2},
    "broken/bad_syntax.py": {"SYNTAX001": 1},
    "det/bad_set_iteration.py": {"DET001": 4},
    "det/bad_hash_order.py": {"DET002": 4},
    "det/bad_float_accumulation.py": {"DET003": 3},
    "seam/bad_seam_capture.py": {"SEAM001": 3},
    "seam/bad_worker_global.py": {"SEAM002": 2},
    "service/bad_async_hygiene.py": {"SVC001": 7, "FS001": 1},
    "transport/bad_row_payload.py": {"PERF003": 3},
    "runtime/bad_row_replay.py": {"PERF004": 3},
    "runtime/bad_unrouted_writes.py": {"FS001": 5},
}

GOOD_FIXTURES = [
    "rng/good_seeded.py",
    "mno/good_simclock.py",
    "analysis/good_float_eq.py",
    "ident/good_helpers.py",
    "hygiene/good_hygiene.py",
    "platform_m2m/good_policy_retry.py",
    "parallel/good_pool_seam.py",
    "durability/good_atomic_writes.py",
    "durability/good_atomic_wrapper.py",
    "core/good_columnar_scan.py",
    "noqa/suppressed.py",
    "det/good_sorted_iteration.py",
    "det/good_stable_order.py",
    "det/good_float_accumulation.py",
    "det/noqa_set_iteration.py",
    "seam/good_seam_capture.py",
    "seam/good_worker_global.py",
    "seam/noqa_worker_global.py",
    "service/good_async_hygiene.py",
    "transport/good_columnar_payload.py",
    "runtime/good_columnar_replay.py",
    "runtime/good_storage_writes.py",
]


@pytest.mark.parametrize("relpath", sorted(BAD_FIXTURES))
def test_bad_fixture_triggers_exactly_its_rule(relpath):
    findings = lint_file(FIXTURES / relpath)
    observed = Counter(f.rule_id for f in findings)
    assert dict(observed) == BAD_FIXTURES[relpath]


@pytest.mark.parametrize("relpath", GOOD_FIXTURES)
def test_good_fixture_is_clean(relpath):
    findings = lint_file(FIXTURES / relpath)
    assert findings == []


def test_every_fixture_is_accounted_for():
    on_disk = {
        p.relative_to(FIXTURES).as_posix()
        for p in FIXTURES.rglob("*.py")
    }
    assert on_disk == set(BAD_FIXTURES) | set(GOOD_FIXTURES)


def test_api_drift_detected(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "API.md").write_text(
        "# API reference\n\n- `documented_fn(x)` — does things.\n",
        encoding="utf-8",
    )
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    init = pkg / "__init__.py"
    init.write_text(
        '"""Pkg."""\n\n__all__ = ["documented_fn", "ghost_fn"]\n',
        encoding="utf-8",
    )
    findings = lint_file(init)
    assert [f.rule_id for f in findings] == ["API001"]
    assert "ghost_fn" in findings[0].message


def test_api_drift_silent_without_api_md(tmp_path):
    init = tmp_path / "__init__.py"
    init.write_text('"""Pkg."""\n\n__all__ = ["ghost_fn"]\n', encoding="utf-8")
    assert lint_file(init) == []


def test_identifier_slicing_allowed_in_identifiers_module():
    source = "def f(plmn: str) -> str:\n    return plmn[:3]\n"
    allowed = lint_source(source, path="src/repro/cellular/identifiers.py")
    banned = lint_source(source, path="src/repro/cellular/geo.py")
    assert allowed == []
    assert [f.rule_id for f in banned] == ["ID001"]


def test_wall_clock_allowed_outside_simulators():
    source = "import time\n\n\ndef f() -> float:\n    return time.time()\n"
    outside = lint_source(source, path="src/repro/analysis/report.py")
    inside = lint_source(source, path="src/repro/signaling/probes.py")
    assert outside == []
    assert [f.rule_id for f in inside] == ["TIME001"]


def test_seeded_default_rng_is_clean():
    source = (
        "import numpy as np\n\n\n"
        "def f(seed: int):\n    return np.random.default_rng(seed)\n"
    )
    assert lint_source(source, path="src/repro/mno/x.py") == []
