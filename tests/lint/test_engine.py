"""Engine behavior: suppressions, rule selection, finding ordering."""

import pytest

from repro.lint import Severity, all_rules, get_rule, lint_source

SLICE = "def f(imsi: str) -> str:\n    return imsi[:5]{comment}\n"


def _lint(source, path="src/repro/core/x.py", **kwargs):
    return lint_source(source, path=path, **kwargs)


class TestSuppression:
    def test_targeted_noqa_silences_the_rule(self):
        findings = _lint(SLICE.format(comment="  # repro: noqa[ID001]"))
        assert findings == []

    def test_bare_noqa_silences_everything_on_the_line(self):
        findings = _lint(SLICE.format(comment="  # repro: noqa"))
        assert findings == []

    def test_noqa_for_the_wrong_rule_does_not_silence(self):
        findings = _lint(SLICE.format(comment="  # repro: noqa[RNG001]"))
        rule_ids = sorted(f.rule_id for f in findings)
        # The slice still fires and the mismatched suppression is stale.
        assert rule_ids == ["ID001", "NOQA001"]

    def test_comma_separated_ids(self):
        findings = _lint(SLICE.format(comment="  # repro: noqa[RNG001, ID001]"))
        assert findings == []

    def test_unused_suppression_warns(self):
        findings = _lint("x = 1  # repro: noqa[ID001]\n")
        assert [f.rule_id for f in findings] == ["NOQA001"]
        assert findings[0].severity is Severity.WARNING
        assert "ID001" in findings[0].message

    def test_noqa_in_docstring_is_not_a_directive(self):
        source = '"""Examples use `# repro: noqa[ID001]` inline."""\n'
        assert _lint(source) == []

    def test_unused_suppression_can_itself_be_ignored(self):
        findings = _lint("x = 1  # repro: noqa[ID001]\n", ignore=["NOQA001"])
        assert findings == []

    def test_comma_separated_ids_tolerate_arbitrary_whitespace(self):
        findings = _lint(
            SLICE.format(comment="  # repro: noqa[ RNG001 ,ID001 , RNG002 ]")
        )
        assert findings == []

    def test_noqa_inside_multi_line_string_is_not_a_directive(self):
        source = (
            "TEMPLATE = '''\n"
            "code example:  # repro: noqa[ID001]\n"
            "and also:  # repro: noqa\n"
            "'''\n"
        )
        # Neither line is a real comment: no suppression is registered,
        # so no stale-suppression warning fires either.
        assert _lint(source) == []

    def test_stale_suppression_not_reported_when_rule_selected_away(self):
        # --select that omits NOQA001 must not smuggle the warning in.
        findings = _lint("x = 1  # repro: noqa[ID001]\n", select=["ID001"])
        assert findings == []

    def test_ignoring_a_rule_makes_its_suppressions_stale(self):
        # With ID001 ignored the directive silences nothing, and the
        # stale-suppression warning says so.
        findings = _lint(
            SLICE.format(comment="  # repro: noqa[ID001]"), ignore=["ID001"]
        )
        assert [f.rule_id for f in findings] == ["NOQA001"]


class TestSelection:
    BOTH = (
        "import random\n\n\n"
        "def f(imsi: str) -> str:\n    return imsi[:5]\n"
    )

    def test_select_runs_only_named_rules(self):
        findings = _lint(self.BOTH, select=["RNG001"])
        assert [f.rule_id for f in findings] == ["RNG001"]

    def test_ignore_drops_named_rules(self):
        findings = _lint(self.BOTH, ignore=["RNG001"])
        assert [f.rule_id for f in findings] == ["ID001"]

    def test_unknown_rule_id_raises(self):
        with pytest.raises(ValueError, match="BOGUS999"):
            _lint("x = 1\n", select=["BOGUS999"])

    def test_syntax_errors_respect_selection(self):
        findings = _lint("def broken(:\n", select=["RNG001"])
        assert findings == []
        findings = _lint("def broken(:\n")
        assert [f.rule_id for f in findings] == ["SYNTAX001"]


class TestCatalog:
    def test_rule_ids_are_unique_and_sorted(self):
        rule_ids = [rule.rule_id for rule in all_rules()]
        assert rule_ids == sorted(rule_ids)
        assert len(rule_ids) == len(set(rule_ids))

    def test_every_rule_carries_metadata(self):
        for rule in all_rules():
            assert rule.rule_id and rule.name and rule.summary, rule
            assert isinstance(rule.severity, Severity)
            assert rule.fix_hint, f"{rule.rule_id} has no fix hint"

    def test_get_rule_round_trips(self):
        for rule in all_rules():
            assert get_rule(rule.rule_id) is rule

    def test_findings_sort_deterministically(self):
        source = (
            "import random\n"
            "from random import shuffle\n\n\n"
            "def f(plmn: str) -> str:\n    return plmn[:3]\n"
        )
        findings = _lint(source)
        assert findings == sorted(findings)
        assert [f.line for f in findings] == [1, 2, 6]
