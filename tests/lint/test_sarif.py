"""SARIF output: schema shape, rule descriptors, GitHub-compatible levels."""

import json
from pathlib import Path

from repro.lint import all_rules, render_sarif
from repro.lint.cli import main
from repro.lint.engine import lint_paths
from repro.lint.sarif import SARIF_VERSION

FIXTURES = Path(__file__).parent / "fixtures"


def _sarif_for(path):
    return json.loads(render_sarif(lint_paths([path])))


def test_document_envelope():
    doc = _sarif_for(FIXTURES / "rng" / "bad_import_random.py")
    assert doc["version"] == SARIF_VERSION
    assert doc["$schema"].startswith("https://")
    assert len(doc["runs"]) == 1
    assert doc["runs"][0]["tool"]["driver"]["name"] == "repro.lint"


def test_every_rule_has_a_descriptor():
    doc = _sarif_for(FIXTURES / "rng" / "good_seeded.py")
    descriptors = doc["runs"][0]["tool"]["driver"]["rules"]
    ids = [d["id"] for d in descriptors]
    assert ids == sorted(rule.rule_id for rule in all_rules())
    for descriptor in descriptors:
        assert descriptor["shortDescription"]["text"]
        assert descriptor["defaultConfiguration"]["level"] in ("error", "warning")


def test_results_carry_locations_and_levels():
    doc = _sarif_for(FIXTURES / "rng" / "bad_import_random.py")
    results = doc["runs"][0]["results"]
    assert len(results) == 2
    for result in results:
        assert result["ruleId"] == "RNG001"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        region = location["region"]
        assert location["artifactLocation"]["uri"].endswith("bad_import_random.py")
        assert region["startLine"] >= 1
        assert region["startColumn"] >= 1  # SARIF columns are 1-based


def test_clean_tree_yields_empty_results():
    doc = _sarif_for(FIXTURES / "rng" / "good_seeded.py")
    assert doc["runs"][0]["results"] == []


def test_cli_format_sarif_and_output_alias(capsys):
    target = str(FIXTURES / "rng" / "bad_import_random.py")
    exit_code = main([target, "--format", "sarif"])
    via_format = capsys.readouterr().out
    assert exit_code == 2  # exit code still counts findings
    assert main([target, "--output", "sarif"]) == 2
    via_output = capsys.readouterr().out
    assert json.loads(via_format) == json.loads(via_output)
