"""Unit tests for behaviour profiles and presence patterns."""

import numpy as np
import pytest

from repro.devices.device import DeviceClass
from repro.devices.profiles import (
    BehaviorProfile,
    MobilityKind,
    PresenceKind,
    PresencePattern,
    default_profiles,
)
from repro.devices.traffic_models import TrafficModel


class TestPresencePattern:
    def test_resident_spans_whole_window(self, rng):
        pattern = PresencePattern(PresenceKind.RESIDENT, p_active_daily=1.0)
        days = pattern.sample_active_days(22, rng)
        assert list(days) == list(range(22))

    def test_visitor_days_contiguous_and_bounded(self, rng):
        pattern = PresencePattern(
            PresenceKind.VISITOR, stay_mean_days=5.0, p_active_daily=1.0
        )
        for _ in range(50):
            days = pattern.sample_active_days(22, rng)
            assert days.min() >= 0 and days.max() < 22
            assert (np.diff(days) == 1).all()

    def test_never_empty(self, rng):
        pattern = PresencePattern(
            PresenceKind.VISITOR, stay_mean_days=1.0, p_active_daily=0.01
        )
        for _ in range(50):
            assert len(pattern.sample_active_days(10, rng)) >= 1

    def test_visitor_stay_mean_tracks_parameter(self, rng):
        short = PresencePattern(PresenceKind.VISITOR, stay_mean_days=2.0)
        long = PresencePattern(PresenceKind.VISITOR, stay_mean_days=10.0)
        short_mean = np.mean([len(short.sample_active_days(22, rng)) for _ in range(300)])
        long_mean = np.mean([len(long.sample_active_days(22, rng)) for _ in range(300)])
        assert long_mean > 2 * short_mean

    def test_deploying_devices_arrive_late(self, rng):
        pattern = PresencePattern(
            PresenceKind.RESIDENT, p_active_daily=1.0, deploying=1.0
        )
        firsts = [pattern.sample_active_days(22, rng)[0] for _ in range(100)]
        assert max(firsts) > 5  # some arrive well into the window

    def test_validation(self):
        with pytest.raises(ValueError):
            PresencePattern(PresenceKind.RESIDENT, p_active_daily=0.0)
        with pytest.raises(ValueError):
            PresencePattern(PresenceKind.VISITOR, stay_mean_days=0.0)
        with pytest.raises(ValueError):
            PresencePattern(PresenceKind.RESIDENT, deploying=1.5)
        with pytest.raises(ValueError):
            PresencePattern(PresenceKind.RESIDENT).sample_active_days(
                0, np.random.default_rng(0)
            )


class TestDefaultProfiles:
    @pytest.fixture(scope="class")
    def profiles(self):
        return default_profiles()

    def test_covers_all_paper_segments(self, profiles):
        expected = {
            "smartphone_resident",
            "smartphone_tourist",
            "feature_phone",
            "smart_meter_native",
            "smart_meter_roaming",
            "connected_car",
            "wearable",
            "payment_terminal",
            "logistics_tracker",
            "m2m_voice_only",
        }
        assert expected <= set(profiles)

    def test_roaming_meters_signal_10x_native(self, profiles):
        native = profiles["smart_meter_native"].traffic.signaling_per_day
        roaming = profiles["smart_meter_roaming"].traffic.signaling_per_day
        assert roaming / native == pytest.approx(10.0, rel=0.2)

    def test_cars_signal_more_than_meters(self, profiles):
        assert (
            profiles["connected_car"].traffic.signaling_per_day
            > 3 * profiles["smart_meter_roaming"].traffic.signaling_per_day
        )

    def test_voice_only_profile_has_no_data(self, profiles):
        profile = profiles["m2m_voice_only"]
        assert profile.p_data == 0.0
        assert profile.traffic.data_sessions_per_day == 0.0

    def test_meters_are_stationary(self, profiles):
        assert profiles["smart_meter_native"].mobility is MobilityKind.STATIONARY
        assert profiles["smart_meter_roaming"].mobility is MobilityKind.STATIONARY

    def test_m2m_profiles_declare_verticals(self, profiles):
        for profile in profiles.values():
            if profile.device_class is DeviceClass.M2M:
                assert profile.vertical is not None

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            BehaviorProfile(
                name="bad",
                device_class=DeviceClass.M2M,
                traffic=TrafficModel(1, 1, 1),
                mobility=MobilityKind.STATIONARY,
                presence=PresencePattern(PresenceKind.RESIDENT),
            )
