"""Unit tests for the device model."""

import pytest

from repro.cellular.countries import default_countries
from repro.cellular.identifiers import IMEI, IMSI, PLMN
from repro.cellular.operators import Operator
from repro.cellular.rats import RAT
from repro.cellular.tac_db import DeviceModel, DeviceOS, GSMALabel
from repro.devices.device import Device, DeviceClass, IoTVertical

GB = default_countries().by_iso("GB")
HOME = Operator(name="GB-1", plmn=PLMN(234, 10), country=GB)
MODEL = DeviceModel(
    tac=35000001,
    manufacturer="Acme",
    brand="Acme",
    model_name="A1",
    os=DeviceOS.ANDROID,
    bands=frozenset({RAT.GSM, RAT.UMTS, RAT.LTE}),
    label=GSMALabel.SMARTPHONE,
)


def _device(**kwargs):
    defaults = dict(
        imsi=IMSI(plmn=HOME.plmn, msin=42),
        imei=IMEI(tac=MODEL.tac, serial=1),
        model=MODEL,
        home_operator=HOME,
        device_class=DeviceClass.SMART,
    )
    defaults.update(kwargs)
    return Device(**defaults)


class TestDeviceInvariants:
    def test_imsi_must_match_home_operator(self):
        with pytest.raises(ValueError):
            _device(imsi=IMSI(plmn=PLMN(234, 20), msin=42))

    def test_m2m_needs_vertical(self):
        with pytest.raises(ValueError):
            _device(device_class=DeviceClass.M2M)

    def test_person_device_cannot_have_vertical(self):
        with pytest.raises(ValueError):
            _device(vertical=IoTVertical.SMART_METER)

    def test_imei_must_match_model_tac(self):
        with pytest.raises(ValueError):
            _device(imei=IMEI(tac=86000000, serial=1))

    def test_model_optional(self):
        device = _device(model=None, imei=IMEI(tac=12345678, serial=1))
        assert device.tac == 12345678


class TestDeviceProperties:
    def test_device_id_is_hashed_imsi(self):
        device = _device()
        assert str(device.imsi) not in device.device_id
        assert len(device.device_id) == 16

    def test_device_id_deterministic(self):
        assert _device().device_id == _device().device_id

    def test_sim_plmn(self):
        assert _device().sim_plmn == "23410"

    def test_is_m2m(self):
        m2m = _device(
            device_class=DeviceClass.M2M, vertical=IoTVertical.SMART_METER
        )
        assert m2m.is_m2m
        assert not _device().is_m2m

    def test_repr_mentions_class_and_vertical(self):
        m2m = _device(
            device_class=DeviceClass.M2M, vertical=IoTVertical.CONNECTED_CAR
        )
        assert "connected_car" in repr(m2m)
        assert "m2m" in repr(m2m)
