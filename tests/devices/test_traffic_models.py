"""Unit tests for traffic models."""

import numpy as np
import pytest

from repro.devices.traffic_models import (
    DiurnalShape,
    TrafficModel,
    diurnal_weight,
    diurnal_weights,
    sample_event_hours,
)


class TestDiurnal:
    def test_flat_is_constant(self):
        assert diurnal_weight(DiurnalShape.FLAT, 3.0) == 1.0
        assert diurnal_weight(DiurnalShape.FLAT, 21.0) == 1.0

    def test_human_peaks_in_daytime(self):
        afternoon = diurnal_weight(DiurnalShape.HUMAN, 15.0)
        night = diurnal_weight(DiurnalShape.HUMAN, 4.0)
        assert afternoon > night

    def test_nightly_batch_peaks_at_two_am(self):
        peak = diurnal_weight(DiurnalShape.NIGHTLY_BATCH, 2.0)
        noon = diurnal_weight(DiurnalShape.NIGHTLY_BATCH, 12.0)
        assert peak > 5 * noon

    def test_hour_bounds(self):
        with pytest.raises(ValueError):
            diurnal_weight(DiurnalShape.FLAT, 24.0)

    def test_vectorized_matches_scalar(self):
        hours = np.array([0.5, 6.0, 13.0, 23.5])
        for shape in DiurnalShape:
            vec = diurnal_weights(shape, hours)
            scalar = [diurnal_weight(shape, float(h)) for h in hours]
            assert np.allclose(vec, scalar)


class TestSampleEventHours:
    def test_count_and_range(self, rng):
        hours = sample_event_hours(500, DiurnalShape.HUMAN, rng)
        assert len(hours) == 500
        assert (hours >= 0).all() and (hours < 24).all()

    def test_zero_count(self, rng):
        assert len(sample_event_hours(0, DiurnalShape.FLAT, rng)) == 0

    def test_nightly_batch_concentrates_events(self, rng):
        hours = sample_event_hours(2000, DiurnalShape.NIGHTLY_BATCH, rng)
        near_window = ((hours >= 0) & (hours <= 4)).mean()
        assert near_window > 0.5


class TestTrafficModel:
    def _model(self, **kwargs):
        defaults = dict(
            signaling_per_day=10.0, calls_per_day=2.0, data_sessions_per_day=3.0
        )
        defaults.update(kwargs)
        return TrafficModel(**defaults)

    def test_rejects_negative_rates(self):
        with pytest.raises(ValueError):
            self._model(signaling_per_day=-1.0)

    def test_materialize_draws_intensity(self, rng):
        base = self._model(intensity_sigma=0.6)
        materialized = [base.materialize(rng).intensity for _ in range(200)]
        assert min(materialized) > 0
        assert np.std(np.log(materialized)) == pytest.approx(0.6, rel=0.25)

    def test_zero_sigma_gives_unit_intensity(self, rng):
        model = self._model(intensity_sigma=0.0).materialize(rng)
        assert model.intensity == pytest.approx(1.0)

    def test_intensity_scales_counts(self, rng):
        quiet = self._model(signaling_per_day=100.0, intensity=0.1)
        loud = self._model(signaling_per_day=100.0, intensity=10.0)
        quiet_counts = np.mean([quiet.draw_signaling_count(rng) for _ in range(100)])
        loud_counts = np.mean([loud.draw_signaling_count(rng) for _ in range(100)])
        assert loud_counts > 20 * quiet_counts

    def test_session_bytes_positive(self, rng):
        model = self._model(data_mb_mu=-6.0)
        assert all(model.draw_session_bytes(rng) >= 1 for _ in range(50))

    def test_event_timestamps_sorted_within_day(self, rng):
        model = self._model()
        ts = model.event_timestamps(day=3, count=50, rng=rng)
        assert (np.diff(ts) >= 0).all()
        assert (ts >= 3 * 86400).all() and (ts < 4 * 86400).all()

    def test_rejects_nonpositive_intensity(self):
        with pytest.raises(ValueError):
            self._model(intensity=0.0)
