"""Unit tests for mobility models."""

import pytest

from repro.cellular.geo import GeoPoint, haversine_km
from repro.devices.mobility_models import (
    CommuterMobility,
    InternationalMobility,
    StationaryMobility,
    VehicularMobility,
)

ANCHOR = GeoPoint(52.0, -1.0)


def _spread_km(visits):
    points = [p for p, _ in visits]
    return max(
        (haversine_km(points[0], p) for p in points[1:]), default=0.0
    )


class TestStationary:
    def test_anchor_always_present(self, rng):
        model = StationaryMobility(anchor=ANCHOR, reselection_prob=0.0)
        visits = model.visits_for_day(0, rng)
        assert visits == [(ANCHOR, 23.0)]

    def test_reselection_adds_nearby_visit(self, rng):
        model = StationaryMobility(anchor=ANCHOR, reselection_prob=1.0, reselection_km=2.0)
        visits = model.visits_for_day(0, rng)
        assert len(visits) == 2
        assert _spread_km(visits) < 15.0

    def test_weights_positive(self, rng):
        model = StationaryMobility(anchor=ANCHOR, reselection_prob=1.0)
        assert all(w > 0 for _, w in model.visits_for_day(0, rng))


class TestCommuter:
    def test_visits_near_anchors(self, rng):
        work = GeoPoint(52.1, -1.1)
        model = CommuterMobility(home=ANCHOR, work=work, noise_km=0.5)
        visits = model.visits_for_day(0, rng)
        assert len(visits) >= 2
        assert haversine_km(visits[0][0], ANCHOR) < 5.0
        assert haversine_km(visits[1][0], work) < 5.0

    def test_home_weight_dominates(self, rng):
        model = CommuterMobility(home=ANCHOR, work=GeoPoint(52.1, -1.1))
        visits = model.visits_for_day(0, rng)
        assert visits[0][1] > visits[1][1]


class TestVehicular:
    def test_produces_trajectory(self, rng):
        model = VehicularMobility(start=ANCHOR, leg_km=40.0, legs=5)
        visits = model.visits_for_day(0, rng)
        assert len(visits) == 6
        assert _spread_km(visits) > 10.0

    def test_dwell_sums_to_day(self, rng):
        model = VehicularMobility(start=ANCHOR, legs=5)
        visits = model.visits_for_day(0, rng)
        assert sum(w for _, w in visits) == pytest.approx(24.0)

    def test_rejects_zero_legs(self, rng):
        with pytest.raises(ValueError):
            VehicularMobility(start=ANCHOR, legs=0).visits_for_day(0, rng)

    def test_moves_more_than_stationary(self, rng):
        vehicular = VehicularMobility(start=ANCHOR, leg_km=50.0)
        stationary = StationaryMobility(anchor=ANCHOR)
        v_spread = _spread_km(vehicular.visits_for_day(0, rng))
        s_spread = _spread_km(stationary.visits_for_day(0, rng))
        assert v_spread > s_spread


class TestInternational:
    def test_requires_anchor(self):
        with pytest.raises(ValueError):
            InternationalMobility(country_anchors=[])

    def test_hops_between_anchors(self, rng):
        anchors = [ANCHOR, GeoPoint(48.8, 2.3)]
        model = InternationalMobility(country_anchors=anchors, hop_prob=1.0)
        start_index = model.current_anchor_index
        model.visits_for_day(0, rng)
        assert model.current_anchor_index != start_index

    def test_no_hop_with_single_anchor(self, rng):
        model = InternationalMobility(country_anchors=[ANCHOR], hop_prob=1.0)
        model.visits_for_day(0, rng)
        assert model.current_anchor_index == 0
