"""Unit tests for the distribution helpers."""

import numpy as np
import pytest

from repro.analysis.stats import (
    DistributionSummary,
    ECDF,
    normalize_columns,
    normalize_rows,
    quantile,
    shares,
    top_k_share,
)


class TestECDF:
    def test_basic_queries(self):
        ecdf = ECDF([1, 2, 3, 4])
        assert ecdf.n == 4
        assert ecdf.median == pytest.approx(2.5)
        assert ecdf.mean == pytest.approx(2.5)
        assert ecdf.max == 4

    def test_fraction_at_most(self):
        ecdf = ECDF([1, 2, 3, 4])
        assert ecdf.fraction_at_most(2) == 0.5
        assert ecdf.fraction_at_most(0) == 0.0
        assert ecdf.fraction_at_most(10) == 1.0

    def test_fraction_above_complements(self):
        ecdf = ECDF([1, 2, 3, 4])
        assert ecdf.fraction_above(2) == pytest.approx(0.5)

    def test_quantile_bounds(self):
        ecdf = ECDF([5])
        with pytest.raises(ValueError):
            ecdf.quantile(1.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ECDF([])

    def test_curve_monotone(self):
        ecdf = ECDF(np.random.default_rng(0).random(100))
        curve = ecdf.curve(20)
        xs = [x for x, _ in curve]
        ys = [y for _, y in curve]
        assert xs == sorted(xs)
        assert ys == sorted(ys)

    def test_curve_needs_two_points(self):
        with pytest.raises(ValueError):
            ECDF([1.0]).curve(1)


class TestShares:
    def test_normalized(self):
        result = shares(["a", "a", "b", "c"])
        assert result["a"] == 0.5
        assert sum(result.values()) == pytest.approx(1.0)

    def test_empty(self):
        assert shares([]) == {}

    def test_quantile_helper(self):
        assert quantile([1, 2, 3], 0.5) == 2.0
        with pytest.raises(ValueError):
            quantile([], 0.5)


class TestTopK:
    def test_top_k(self):
        weights = {"a": 6, "b": 3, "c": 1}
        assert top_k_share(weights, 1) == pytest.approx(0.6)
        assert top_k_share(weights, 2) == pytest.approx(0.9)
        assert top_k_share(weights, 10) == pytest.approx(1.0)

    def test_empty_weights(self):
        assert top_k_share({}, 3) == 0.0

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            top_k_share({"a": 1}, 0)


class TestNormalize:
    MATRIX = {"r1": {"c1": 2.0, "c2": 2.0}, "r2": {"c1": 1.0}}

    def test_rows(self):
        rows = normalize_rows(self.MATRIX)
        assert rows["r1"]["c1"] == 0.5
        assert rows["r2"]["c1"] == 1.0

    def test_columns(self):
        cols = normalize_columns(self.MATRIX)
        assert cols["r1"]["c1"] == pytest.approx(2 / 3)
        assert cols["r2"]["c1"] == pytest.approx(1 / 3)
        assert cols["r1"]["c2"] == 1.0

    def test_zero_row_passthrough(self):
        rows = normalize_rows({"r": {"c": 0.0}})
        assert rows["r"]["c"] == 0.0


class TestSummary:
    def test_from_values(self):
        summary = DistributionSummary.from_values(list(range(1, 101)))
        assert summary.n == 100
        assert summary.median == pytest.approx(50.5)
        assert summary.max == 100
        assert "n=100" in summary.format()
