"""Tests for the temporal-stability analysis."""

import pytest

from repro.analysis.stability import ShareSeries, share_stability
from repro.core.classifier import ClassLabel


class TestShareSeries:
    def test_deviation_math(self):
        series = ShareSeries("x", [0.4, 0.5, 0.6])
        assert series.mean == pytest.approx(0.5)
        assert series.max_abs_deviation == pytest.approx(0.1)
        assert series.relative_instability == pytest.approx(0.2)

    def test_constant_series_is_perfectly_stable(self):
        series = ShareSeries("x", [0.3] * 22)
        assert series.max_abs_deviation == pytest.approx(0.0, abs=1e-12)


class TestShareStability:
    @pytest.fixture(scope="class")
    def stability(self, pipeline):
        return share_stability(pipeline)

    def test_covers_whole_window(self, stability, mno_dataset):
        assert stability.n_days == mno_dataset.window_days

    def test_shares_sum_to_one_each_day(self, stability):
        n_days = stability.n_days
        for day in range(n_days):
            total = sum(s.shares[day] for s in stability.label_series.values())
            assert total == pytest.approx(1.0)

    def test_label_shares_stable_like_the_paper(self, stability):
        """§4.2: "shares … are stable across the 22 days"."""
        for name in ("H:H", "V:H"):
            series = stability.label_series[name]
            assert series.max_abs_deviation < 0.06, name

    def test_class_shares_stable(self, stability):
        for cls in (ClassLabel.SMART, ClassLabel.M2M):
            assert stability.class_series[cls].max_abs_deviation < 0.08

    def test_inbound_share_bounded_daily(self, stability):
        series = stability.label_series.get("I:H")
        assert series is not None
        assert all(0.0 <= s <= 0.4 for s in series.shares)
