"""Tests for the ASCII figure renderers."""

import pytest

from repro.analysis.ascii_plots import render_bars, render_ecdf, render_heatmap
from repro.analysis.stats import ECDF


class TestRenderECDF:
    def test_basic_structure(self):
        text = render_ecdf({"a": ECDF([1, 2, 3, 4, 5])}, title="test plot")
        lines = text.splitlines()
        assert lines[0] == "test plot"
        assert "o=a" in lines[-1]
        assert any("|" in line for line in lines)

    def test_multiple_curves_get_distinct_markers(self):
        text = render_ecdf({"a": ECDF([1, 2]), "b": ECDF([10, 20])})
        assert "o=a" in text and "x=b" in text

    def test_log_scale(self):
        text = render_ecdf({"a": ECDF([1, 10, 100, 1000])}, log_x=True)
        assert "1e+03" in text or "1000" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_ecdf({})

    def test_tiny_area_rejected(self):
        with pytest.raises(ValueError):
            render_ecdf({"a": ECDF([1])}, width=5, height=2)

    def test_axis_range_shown(self):
        text = render_ecdf({"a": ECDF([2.0, 8.0])})
        assert "2" in text and "8" in text


class TestRenderBars:
    def test_bars_scale_with_values(self):
        text = render_bars({"big": 0.8, "small": 0.2})
        big_line = next(l for l in text.splitlines() if l.strip().startswith("big"))
        small_line = next(l for l in text.splitlines() if l.strip().startswith("small"))
        assert big_line.count("#") > 2 * small_line.count("#")

    def test_format_applied(self):
        text = render_bars({"x": 0.5}, fmt="{:.0%}")
        assert "50%" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_bars({})


class TestRenderHeatmap:
    def test_structure(self):
        matrix = {"r1": {"c1": 1.0, "c2": 0.0}, "r2": {"c1": 0.5}}
        text = render_heatmap(matrix, title="map")
        lines = text.splitlines()
        assert lines[0] == "map"
        assert "r1" in text and "r2" in text
        assert "c1" in lines[1]

    def test_high_values_use_dense_shade(self):
        def cell_row(text):
            return next(l for l in text.splitlines() if l.startswith("r"))

        hot = cell_row(render_heatmap({"r": {"c": 1.0}}))
        cold = cell_row(render_heatmap({"r": {"c": 0.0}}))
        assert "@" in hot
        assert "@" not in cold

    def test_column_order_respected(self):
        matrix = {"r": {"a": 0.1, "b": 0.9}}
        text = render_heatmap(matrix, columns=["b", "a"])
        header = text.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_heatmap({})

    def test_renders_fig6_style_output(self, pipeline):
        from repro.analysis.population import fig6_class_vs_label

        fig6 = fig6_class_vs_label(pipeline)
        matrix = {
            cls.value: row for cls, row in fig6.by_class.items()
        }
        text = render_heatmap(matrix, title="Fig. 6 (by class)")
        assert "m2m" in text
        assert "I:H" in text
