"""Shape tests for the MNO-side figure analyses (Figs. 5-12).

These run on the shared 600-device session dataset; thresholds are loose
(small sample) — the benches run the tighter, full-scale comparisons.
"""

import pytest

from repro.analysis.activity import fig7_active_days
from repro.analysis.mobility import fig8_gyration
from repro.analysis.network_usage import fig9_network_usage
from repro.analysis.population import (
    fig5_home_countries,
    fig6_class_vs_label,
    population_shares,
)
from repro.analysis.smart_meters import fig11_smip_activity
from repro.analysis.traffic import RoamingGroup, fig10_traffic_volumes
from repro.analysis.verticals import fig12_verticals
from repro.core.classifier import ClassLabel


class TestFig5:
    def test_shares_sum_to_one(self, pipeline, eco):
        result = fig5_home_countries(pipeline, eco.countries)
        assert sum(result.overall.values()) == pytest.approx(1.0)

    def test_netherlands_leads(self, pipeline, eco):
        result = fig5_home_countries(pipeline, eco.countries)
        assert result.top_countries(1)[0][0] == "NL"

    def test_m2m_more_concentrated_than_smart(self, pipeline, eco):
        result = fig5_home_countries(pipeline, eco.countries)
        assert result.top3_m2m_share > result.top3_overall_share

    def test_top20_covers_nearly_all(self, pipeline, eco):
        result = fig5_home_countries(pipeline, eco.countries)
        assert result.top20_overall_share > 0.93


class TestFig6:
    def test_normalizations(self, pipeline):
        result = fig6_class_vs_label(pipeline)
        for cls, row in result.by_class.items():
            assert sum(row.values()) == pytest.approx(1.0)

    def test_inbound_roamers_mostly_m2m(self, pipeline):
        result = fig6_class_vs_label(pipeline)
        assert result.share_of_label("I:H", ClassLabel.M2M) > 0.55

    def test_m2m_mostly_inbound(self, pipeline):
        result = fig6_class_vs_label(pipeline)
        assert result.share_of_class(ClassLabel.M2M, "I:H") > 0.6

    def test_smartphones_mostly_native(self, pipeline):
        result = fig6_class_vs_label(pipeline)
        assert result.share_of_class(ClassLabel.SMART, "I:H") < 0.25


class TestPopulationShares:
    def test_class_shares_near_paper(self, pipeline):
        shares = population_shares(pipeline)
        assert shares.class_shares[ClassLabel.SMART] == pytest.approx(0.62, abs=0.06)
        assert shares.class_shares[ClassLabel.M2M] == pytest.approx(0.26, abs=0.06)
        assert shares.class_shares[ClassLabel.M2M_MAYBE] == pytest.approx(0.04, abs=0.03)

    def test_native_largest_label(self, pipeline):
        shares = population_shares(pipeline)
        assert max(shares.label_shares, key=shares.label_shares.get) == "H:H"

    def test_per_day_shares_sum_to_one(self, pipeline):
        shares = population_shares(pipeline)
        assert sum(shares.per_day_label_shares.values()) == pytest.approx(1.0)

    def test_inbound_share_smaller_per_day_than_whole_period(self, pipeline):
        # Visitor churn: cumulative inbound share exceeds daily share.
        shares = population_shares(pipeline)
        assert shares.per_day_label_shares["I:H"] < shares.label_shares["I:H"]


class TestFig7:
    def test_inbound_m2m_outlasts_smartphones(self, pipeline):
        result = fig7_active_days(pipeline)
        assert result.median_ratio_inbound() > 2.0

    def test_native_classes_similar(self, pipeline):
        result = fig7_active_days(pipeline)
        m2m = result.native[ClassLabel.M2M].median
        smart = result.native[ClassLabel.SMART].median
        assert m2m == pytest.approx(smart, rel=0.35)


class TestFig8:
    def test_m2m_inbound_mostly_stationary(self, pipeline):
        result = fig8_gyration(pipeline)
        assert result.m2m_inbound_fraction_above(1.0) < 0.35

    def test_smartphones_move_more_than_m2m(self, pipeline):
        result = fig8_gyration(pipeline)
        assert (
            result.by_class[ClassLabel.SMART].median
            > result.by_class[ClassLabel.M2M].median
        )


class TestFig9:
    def test_m2m_mostly_2g_only(self, pipeline):
        result = fig9_network_usage(pipeline)
        assert result.share("connectivity", ClassLabel.M2M, "2G-only") > 0.6

    def test_some_m2m_use_no_data(self, pipeline):
        result = fig9_network_usage(pipeline)
        assert result.share("data", ClassLabel.M2M, "none") > 0.1

    def test_smartphones_are_not_2g_only(self, pipeline):
        result = fig9_network_usage(pipeline)
        assert result.share("connectivity", ClassLabel.SMART, "2G-only") < 0.1

    def test_feature_phones_heavy_no_data(self, pipeline):
        result = fig9_network_usage(pipeline)
        assert result.share("data", ClassLabel.FEAT, "none") > 0.35

    def test_panel_shares_sum_to_one(self, pipeline):
        result = fig9_network_usage(pipeline)
        for panel in ("connectivity", "data", "voice"):
            for cls, row in getattr(result, panel).items():
                assert sum(row.values()) == pytest.approx(1.0)


class TestFig10:
    def test_m2m_signals_less_than_smartphones(self, pipeline):
        result = fig10_traffic_volumes(pipeline)
        m2m = result.median("signaling_per_day", ClassLabel.M2M, RoamingGroup.INBOUND)
        smart = result.median("signaling_per_day", ClassLabel.SMART, RoamingGroup.NATIVE)
        assert m2m < smart

    def test_most_m2m_devices_make_no_calls(self, pipeline):
        result = fig10_traffic_volumes(pipeline)
        assert result.zero_call_fraction(ClassLabel.M2M, RoamingGroup.INBOUND) > 0.5

    def test_inbound_smartphones_use_less_data_than_native(self, pipeline):
        result = fig10_traffic_volumes(pipeline)
        inbound = result.median("bytes_per_day", ClassLabel.SMART, RoamingGroup.INBOUND)
        native = result.median("bytes_per_day", ClassLabel.SMART, RoamingGroup.NATIVE)
        assert inbound < native / 2

    def test_inbound_m2m_data_tiny(self, pipeline):
        result = fig10_traffic_volumes(pipeline)
        m2m = result.median("bytes_per_day", ClassLabel.M2M, RoamingGroup.INBOUND)
        smart = result.median("bytes_per_day", ClassLabel.SMART, RoamingGroup.NATIVE)
        assert m2m < smart / 100


class TestFig11:
    @pytest.fixture(scope="class")
    def fig11(self, pipeline):
        return fig11_smip_activity(pipeline)

    def test_native_long_lived(self, fig11):
        assert fig11.native.full_period_fraction > 0.5

    def test_roaming_short_lived(self, fig11):
        assert fig11.roaming.active_days.fraction_at_most(5) > 0.35

    def test_roaming_signals_several_times_native(self, fig11):
        assert fig11.signaling_ratio > 4.0

    def test_roaming_fails_more(self, fig11):
        assert (
            fig11.roaming.failed_device_fraction
            > fig11.native.failed_device_fraction
        )

    def test_roaming_meters_2g_only(self, fig11):
        assert fig11.roaming.rat_pattern_shares.get("2G-only", 0.0) > 0.95

    def test_native_meters_mostly_3g(self, fig11):
        assert fig11.native.rat_pattern_shares.get("3G-only", 0.0) > 0.4

    def test_day1_cohort_more_persistent(self, fig11):
        assert (
            fig11.native.full_period_fraction_day1
            >= fig11.native.full_period_fraction
        )


class TestFig12:
    @pytest.fixture(scope="class")
    def fig12(self, pipeline):
        return fig12_verticals(pipeline)

    def test_cars_move_meters_do_not(self, fig12):
        assert fig12.car_meter_gyration_ratio > 50

    def test_cars_signal_more(self, fig12):
        assert (
            fig12.cars.signaling_per_day.mean
            > 2 * fig12.meters.signaling_per_day.mean
        )

    def test_cars_transfer_more_data(self, fig12):
        assert fig12.cars.bytes_per_day.mean > 10 * fig12.meters.bytes_per_day.mean

    def test_cars_resemble_inbound_smartphones(self, fig12):
        cars = fig12.cars.gyration_km.mean
        phones = fig12.inbound_smartphones.gyration_km.mean
        assert 0.2 < cars / phones < 5.0
