"""Tests for the 2G/3G sunset what-if analysis."""

import pytest

from repro.analysis.sunset import (
    SUNSET_2G,
    SUNSET_2G_3G,
    SUNSET_3G,
    SunsetScenario,
    stranded_device_ids,
    sunset_impact,
)
from repro.cellular.rats import RAT
from repro.core.classifier import ClassLabel


class TestScenario:
    def test_must_retire_something(self):
        with pytest.raises(ValueError):
            SunsetScenario("empty", frozenset())

    def test_cannot_retire_everything(self):
        with pytest.raises(ValueError):
            SunsetScenario("all", frozenset({RAT.GSM, RAT.UMTS, RAT.LTE}))


class TestImpact:
    def test_2g_sunset_hits_m2m_hardest(self, pipeline):
        impact = sunset_impact(pipeline, SUNSET_2G)
        assert impact.stranded(ClassLabel.M2M) > impact.stranded(ClassLabel.SMART)
        assert impact.stranded(ClassLabel.M2M) > 0.5  # paper: 77.4% 2G-only

    def test_feature_phones_also_exposed(self, pipeline):
        impact = sunset_impact(pipeline, SUNSET_2G)
        assert impact.stranded(ClassLabel.FEAT) > 0.3  # paper: 50.9% 2G-only

    def test_smartphones_mostly_survive_2g(self, pipeline):
        impact = sunset_impact(pipeline, SUNSET_2G)
        assert impact.stranded(ClassLabel.SMART) < 0.05

    def test_3g_sunset_strands_native_meters_not_roaming(self, pipeline):
        impact = sunset_impact(pipeline, SUNSET_3G)
        # Some native meters are 3G-only; roaming meters (2G) survive.
        assert 0.0 < impact.stranded(ClassLabel.M2M) < 0.5

    def test_joint_sunset_dominates_individual(self, pipeline):
        joint = sunset_impact(pipeline, SUNSET_2G_3G)
        only_2g = sunset_impact(pipeline, SUNSET_2G)
        for cls in (ClassLabel.SMART, ClassLabel.M2M):
            assert joint.stranded(cls) >= only_2g.stranded(cls)

    def test_stranded_plus_degraded_bounded(self, pipeline):
        impact = sunset_impact(pipeline, SUNSET_2G)
        for cls, share in impact.stranded_share.items():
            assert 0.0 <= share + impact.degraded_share[cls] <= 1.0

    def test_format_readable(self, pipeline):
        text = sunset_impact(pipeline, SUNSET_2G).format()
        assert "2G sunset" in text
        assert "stranded" in text


class TestStrandedIds:
    def test_matches_impact_counts(self, pipeline):
        orphans = stranded_device_ids(pipeline, SUNSET_2G)
        impact = sunset_impact(pipeline, SUNSET_2G)
        counted = sum(
            round(impact.stranded_share[cls] * impact.n_devices[cls])
            for cls in impact.stranded_share
        )
        # Orphans include m2m-maybe devices; impact counts only the three
        # main classes, so orphans must be a superset.
        assert len(orphans) >= counted

    def test_orphans_used_only_retired_rats(self, pipeline):
        orphans = stranded_device_ids(pipeline, SUNSET_2G)
        for device_id in list(orphans)[:100]:
            rats = pipeline.summaries[device_id].radio_flags.rats
            assert rats == {RAT.GSM}
