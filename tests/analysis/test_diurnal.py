"""Tests for the diurnal-pattern analysis."""

import numpy as np
import pytest

from repro.analysis.diurnal import (
    HourlyProfile,
    diurnal_profiles,
    meter_reporting_window,
    total_variation,
)
from repro.core.classifier import ClassLabel
from repro.mno.smip import smip_devices


class TestHourlyProfile:
    def test_needs_24_normalized_bins(self):
        with pytest.raises(ValueError):
            HourlyProfile(np.ones(23) / 23)
        with pytest.raises(ValueError):
            HourlyProfile(np.ones(24))

    def test_peak_and_ratio(self):
        bins = np.full(24, 0.5 / 23)
        bins[14] = 0.5
        profile = HourlyProfile(bins / bins.sum())
        assert profile.peak_hour == 14
        assert profile.peak_to_trough > 10

    def test_night_share(self):
        bins = np.zeros(24)
        bins[2] = 1.0
        profile = HourlyProfile(bins)
        assert profile.night_share() == 1.0

    def test_total_variation_bounds(self):
        uniform = HourlyProfile(np.full(24, 1 / 24))
        spike = np.zeros(24)
        spike[0] = 1.0
        spiked = HourlyProfile(spike)
        assert total_variation(uniform, uniform) == 0.0
        assert 0.9 < total_variation(uniform, spiked) <= 1.0


class TestDiurnalProfiles:
    @pytest.fixture(scope="class")
    def result(self, pipeline):
        return diurnal_profiles(pipeline)

    def test_profiles_for_each_class(self, result):
        for cls in (ClassLabel.SMART, ClassLabel.FEAT, ClassLabel.M2M):
            assert cls in result.profiles

    def test_smartphones_peak_in_waking_hours(self, result):
        assert 8 <= result.profiles[ClassLabel.SMART].peak_hour <= 22

    def test_m2m_diverges_from_smartphones(self, result):
        # The prior-work [18] claim the paper builds on.
        assert result.divergence(ClassLabel.M2M, ClassLabel.SMART) > 0.1

    def test_smart_and_feat_similar(self, result):
        assert result.divergence(ClassLabel.SMART, ClassLabel.FEAT) < \
            result.divergence(ClassLabel.SMART, ClassLabel.M2M)

    def test_smartphone_night_share_low(self, result):
        assert result.profiles[ClassLabel.SMART].night_share(0, 6) < 0.25


class TestMeterWindow:
    def test_meters_report_overnight(self, pipeline):
        native, roaming = smip_devices(pipeline.dataset.ground_truth)
        peak = meter_reporting_window(pipeline, native | roaming)
        assert peak is not None
        # The nightly-batch profile peaks around 02:00.
        assert peak in (0, 1, 2, 3, 4)

    def test_empty_fleet_returns_none(self, pipeline):
        assert meter_reporting_window(pipeline, set()) is None
