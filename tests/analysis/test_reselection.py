"""Tests for the cell-reselection disambiguation."""

import pytest

from repro.analysis.reselection import (
    ReselectionVerdict,
    classify_movement,
    reselection_analysis,
)
from repro.core.classifier import ClassLabel
from repro.signaling.events import RadioEvent, RadioInterface
from repro.signaling.procedures import MessageType, ResultCode


def _event(sector, ts, device="d"):
    return RadioEvent(
        device_id=device, timestamp=ts, sim_plmn="23410", tac=35000001,
        sector_id=sector, interface=RadioInterface.GB,
        event_type=MessageType.ATTACH, result=ResultCode.OK,
    )


class TestClassifyMovement:
    def test_ping_pong_detected(self):
        events = [_event(s, float(i)) for i, s in enumerate([1, 2, 1, 2, 1, 2])]
        verdict = classify_movement(events)
        assert verdict is not None
        assert verdict.is_ping_pong
        assert verdict.n_sectors == 2
        assert verdict.revisit_ratio > 0.5

    def test_progression_not_ping_pong(self):
        events = [_event(s, float(i)) for i, s in enumerate([1, 2, 3, 4, 5, 6])]
        verdict = classify_movement(events)
        assert verdict is not None
        assert not verdict.is_ping_pong
        assert verdict.revisit_ratio == 0.0

    def test_single_sector_no_verdict(self):
        events = [_event(1, float(i)) for i in range(5)]
        assert classify_movement(events) is None

    def test_empty_no_verdict(self):
        assert classify_movement([]) is None

    def test_commute_pattern_is_ping_pong(self):
        # Home-work-home-work over two sectors is also revisiting; with
        # tiny support it classifies as ping-pong — the discriminator is
        # support size, tuned by max_ping_pong_sectors.
        events = [_event(s, float(i)) for i, s in enumerate([1, 2, 1, 2])]
        strict = classify_movement(events, max_ping_pong_sectors=1)
        assert strict is not None and not strict.is_ping_pong

    def test_verdict_validation(self):
        with pytest.raises(ValueError):
            ReselectionVerdict("d", 2, 2, revisit_ratio=1.5, is_ping_pong=False)


class TestReselectionAnalysis:
    def test_runs_on_pipeline(self, pipeline):
        result = reselection_analysis(pipeline, ClassLabel.M2M)
        # Some inbound m2m devices exceed 1 km (the Fig. 8 tail) ...
        assert result.n_mobile_looking > 0
        # ... and artefact share is a valid fraction.
        assert 0.0 <= result.artefact_share <= 1.0

    def test_stationary_class_tail_contains_artefacts(self, pipeline):
        """Meters' >1km tail should be at least partly ping-pong (the
        paper's hedge), unlike the genuinely mobile smartphone tail."""
        m2m = reselection_analysis(pipeline, ClassLabel.M2M)
        smart = reselection_analysis(pipeline, ClassLabel.SMART)
        if m2m.n_assessed and smart.n_assessed:
            assert m2m.artefact_share >= smart.artefact_share

    def test_empty_when_threshold_huge(self, pipeline):
        result = reselection_analysis(
            pipeline, ClassLabel.M2M, gyration_threshold_km=1e6
        )
        assert result.n_mobile_looking == 0
        assert result.artefact_share == 0.0
