"""Tests for the M2M-platform analyses (Figs. 2-3, §3.2 stats)."""

import pytest

from repro.analysis.platform import (
    device_profiles,
    fig2_device_distribution,
    fig3_dynamics,
    platform_stats,
)


class TestDeviceProfiles:
    def test_covers_all_devices(self, m2m_dataset):
        profiles = device_profiles(m2m_dataset)
        assert set(profiles) == m2m_dataset.device_ids

    def test_record_counts_sum(self, m2m_dataset):
        profiles = device_profiles(m2m_dataset)
        assert sum(p.n_records for p in profiles.values()) == m2m_dataset.n_transactions

    def test_switch_counting_consistency(self, m2m_dataset):
        profiles = device_profiles(m2m_dataset)
        for profile in profiles.values():
            # Can't switch more often than there are records.
            assert profile.switches < profile.n_records
            if len(profile.visited_plmns) >= 2:
                assert profile.switches >= 1


class TestFig2:
    def test_row_normalization(self, m2m_dataset, eco):
        result = fig2_device_distribution(m2m_dataset, eco.countries)
        for hmno, row in result.matrix.items():
            assert sum(row.values()) == pytest.approx(1.0)

    def test_hmno_shares_sum_to_one(self, m2m_dataset, eco):
        result = fig2_device_distribution(m2m_dataset, eco.countries)
        assert sum(result.hmno_shares.values()) == pytest.approx(1.0)

    def test_spain_is_largest_hmno(self, m2m_dataset, eco):
        result = fig2_device_distribution(m2m_dataset, eco.countries)
        assert max(result.hmno_shares, key=result.hmno_shares.get) == "ES"

    def test_mexico_mostly_home(self, m2m_dataset, eco):
        result = fig2_device_distribution(m2m_dataset, eco.countries)
        assert result.matrix["MX"].get("MX", 0.0) > 0.7

    def test_spain_roams_widely(self, m2m_dataset, eco):
        result = fig2_device_distribution(m2m_dataset, eco.countries)
        assert len(result.matrix["ES"]) > 10


class TestFig3:
    @pytest.fixture(scope="class")
    def fig3(self, m2m_dataset):
        return fig3_dynamics(m2m_dataset)

    def test_roaming_devices_signal_more(self, fig3):
        assert fig3.roaming_to_native_median_ratio > 3.0

    def test_long_tail(self, fig3):
        assert fig3.records_all.max > 10 * fig3.records_all.mean

    def test_majority_single_vmno(self, fig3):
        assert fig3.vmno_counts.fraction_at_most(1) > 0.5

    def test_some_multi_vmno_devices(self, fig3):
        assert fig3.vmno_counts.max >= 3

    def test_switch_tail_exists(self, fig3):
        assert fig3.switch_counts.max > 20


class TestPlatformStats:
    @pytest.fixture(scope="class")
    def stats(self, m2m_dataset, eco):
        return platform_stats(m2m_dataset, eco.countries)

    def test_shares_sum_to_one(self, stats):
        assert sum(h.device_share for h in stats.per_hmno.values()) == pytest.approx(1.0)

    def test_failure_success_complement(self, stats):
        assert stats.failed_only_fraction + stats.success_fraction == pytest.approx(1.0)

    def test_failed_only_near_paper_value(self, stats):
        assert stats.failed_only_fraction == pytest.approx(0.40, abs=0.10)

    def test_es_roaming_signaling_dominates(self, stats):
        es = stats.per_hmno["ES"]
        assert es.roaming_signaling_fraction > 0.8

    def test_es_visits_many_countries(self, stats):
        assert stats.per_hmno["ES"].n_visited_countries > 10
        assert stats.per_hmno["MX"].n_visited_countries <= 7
