"""Tests for the roaming-ecosystem topology analysis."""

import networkx as nx
import pytest

from repro.analysis.topology import (
    agreement_graph,
    hub_reach_gain,
    reciprocity_holds,
    topology_stats,
)


@pytest.fixture(scope="module")
def graph(request):
    eco = request.getfixturevalue("eco")
    return agreement_graph(eco.operators, eco.agreements), eco


class TestGraphConstruction:
    def test_nodes_are_mnos_only(self, graph):
        g, eco = graph
        mvnos = {str(op.plmn) for op in eco.operators if op.is_mvno}
        assert not mvnos & set(g.nodes)
        n_mnos = sum(1 for op in eco.operators if not op.is_mvno)
        assert g.number_of_nodes() == n_mnos

    def test_edge_count_matches_registry(self, graph):
        g, eco = graph
        assert g.number_of_edges() == len(eco.agreements)

    def test_edges_carry_attributes(self, graph):
        g, _ = graph
        _, _, data = next(iter(g.edges(data=True)))
        assert "via_hub" in data
        assert data["rats"]

    def test_reciprocity(self, graph):
        g, _ = graph
        assert reciprocity_holds(g)


class TestTopologyStats:
    def test_basic_shape(self, graph):
        g, eco = graph
        stats = topology_stats(g)
        assert stats.n_operators == g.number_of_nodes()
        assert stats.n_agreements == g.number_of_edges()
        assert 0.0 < stats.hub_mediated_share < 1.0
        assert stats.mean_out_degree > 1.0

    def test_platform_hmnos_have_top_reach(self, graph):
        g, eco = graph
        focus = [str(op.plmn) for op in eco.platform_hmnos.values()]
        ordinary = str(eco.operators.mnos_in_country("JP")[0].plmn)
        stats = topology_stats(g, focus_plmns=focus + [ordinary])
        es_reach = stats.reach_of(str(eco.platform_hmnos["ES"].plmn))
        # The hub gives the platform HMNO near-global country reach,
        # far beyond an ordinary operator's bilateral footprint.
        assert es_reach > 30
        assert es_reach > stats.reach_of(ordinary)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            topology_stats(nx.DiGraph())


class TestHubReachGain:
    def test_hub_extends_platform_reach(self, graph):
        g, eco = graph
        es = str(eco.platform_hmnos["ES"].plmn)
        bilateral, total = hub_reach_gain(g, es)
        assert total > bilateral  # the hub bought real reach
        assert total >= 30

    def test_unknown_operator_rejected(self, graph):
        g, _ = graph
        with pytest.raises(KeyError):
            hub_reach_gain(g, "99999")
