"""Tests for the §3.3 procedure breakdown."""

import pytest

from repro.analysis.procedures import (
    per_device_procedure_mix,
    procedure_breakdown,
)
from repro.datasets.containers import M2MDataset
from repro.signaling.procedures import MessageType, ResultCode, SignalingTransaction


def _txn(device="d", ts=0.0, mtype=MessageType.UPDATE_LOCATION,
         result=ResultCode.OK, sim="21407", visited="23410"):
    return SignalingTransaction(
        device_id=device, timestamp=ts, sim_plmn=sim, visited_plmn=visited,
        message_type=mtype, result=result,
    )


class TestBreakdownMath:
    def test_shares_sum_to_one(self, m2m_dataset):
        breakdown = procedure_breakdown(m2m_dataset)
        assert sum(breakdown.message_type_shares.values()) == pytest.approx(1.0)
        assert sum(breakdown.result_shares.values()) == pytest.approx(1.0)

    def test_failure_share_consistent(self, m2m_dataset):
        breakdown = procedure_breakdown(m2m_dataset)
        failure_from_results = sum(
            share
            for code, share in breakdown.result_shares.items()
            if code.is_failure
        )
        assert breakdown.failure_share == pytest.approx(failure_from_results)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            procedure_breakdown(
                M2MDataset(transactions=[], window_days=1, hmno_isos=[])
            )

    def test_hand_built_counts(self):
        dataset = M2MDataset(
            transactions=[
                _txn(mtype=MessageType.AUTHENTICATION),
                _txn(mtype=MessageType.AUTHENTICATION),
                _txn(mtype=MessageType.CANCEL_LOCATION,
                     result=ResultCode.ROAMING_NOT_ALLOWED),
                _txn(sim="23410", visited="23410"),  # native, OK
            ],
            window_days=1,
            hmno_isos=["ES"],
        )
        breakdown = procedure_breakdown(dataset)
        assert breakdown.message_type_shares[MessageType.AUTHENTICATION] == 0.5
        assert breakdown.failure_share == 0.25
        assert breakdown.failure_share_of(roaming=True) == pytest.approx(1 / 3)
        assert breakdown.failure_share_of(roaming=False) == 0.0


class TestOnSimulatedPlatform:
    def test_monitored_procedures_only(self, m2m_dataset):
        breakdown = procedure_breakdown(m2m_dataset)
        assert all(
            mtype.is_map_procedure for mtype in breakdown.message_type_shares
        )

    def test_update_location_and_auth_dominate(self, m2m_dataset):
        breakdown = procedure_breakdown(m2m_dataset)
        combined = breakdown.message_type_shares.get(
            MessageType.UPDATE_LOCATION, 0.0
        ) + breakdown.message_type_shares.get(MessageType.AUTHENTICATION, 0.0)
        assert combined > 0.8

    def test_result_codes_match_paper_vocabulary(self, m2m_dataset):
        breakdown = procedure_breakdown(m2m_dataset)
        observed = set(breakdown.result_shares)
        assert ResultCode.OK in observed
        assert observed & {
            ResultCode.ROAMING_NOT_ALLOWED,
            ResultCode.FEATURE_UNSUPPORTED,
            ResultCode.UNKNOWN_SUBSCRIPTION,
        }

    def test_format_readable(self, m2m_dataset):
        text = procedure_breakdown(m2m_dataset).format()
        assert "message types" in text
        assert "failure share" in text


class TestPerDeviceMix:
    def test_counts_conserve(self, m2m_dataset):
        mix = per_device_procedure_mix(m2m_dataset)
        total = sum(sum(counter.values()) for counter in mix.values())
        assert total == m2m_dataset.n_transactions

    def test_covers_all_devices(self, m2m_dataset):
        assert set(per_device_procedure_mix(m2m_dataset)) == m2m_dataset.device_ids
