"""Tests for the HMNO-VMNO distance analysis."""

import pytest

from repro.analysis.distances import farthest_pairs, roaming_distances
from repro.datasets.containers import M2MDataset
from repro.signaling.procedures import MessageType, ResultCode, SignalingTransaction


def _txn(sim="21407", visited="23410", device="d", ts=0.0):
    return SignalingTransaction(
        device_id=device, timestamp=ts, sim_plmn=sim, visited_plmn=visited,
        message_type=MessageType.UPDATE_LOCATION, result=ResultCode.OK,
    )


class TestRoamingDistances:
    def test_spain_to_australia_is_intercontinental(self, eco):
        dataset = M2MDataset(
            transactions=[_txn(sim="21407", visited="50510")],  # ES -> AU
            window_days=1,
            hmno_isos=["ES"],
        )
        result = roaming_distances(dataset, eco.countries)
        assert result.txn_distance.max > 15000
        assert result.intercontinental_share == 1.0

    def test_native_transactions_excluded(self, eco):
        dataset = M2MDataset(
            transactions=[_txn(sim="21407", visited="21410"),   # ES native-ish
                          _txn(sim="21407", visited="20810")],  # ES -> FR
            window_days=1,
            hmno_isos=["ES"],
        )
        result = roaming_distances(dataset, eco.countries)
        assert result.txn_distance.n == 1

    def test_no_roaming_rejected(self, eco):
        dataset = M2MDataset(
            transactions=[_txn(sim="21407", visited="21410")],
            window_days=1,
            hmno_isos=["ES"],
        )
        with pytest.raises(ValueError):
            roaming_distances(dataset, eco.countries)

    def test_policy_saves_distance_with_hub(self, eco, m2m_dataset):
        result = roaming_distances(m2m_dataset, eco.countries, hub=eco.hub)
        assert 0.0 <= result.ihbo_share <= 1.0
        assert result.mean_policy_detour_km <= result.mean_hr_detour_km
        assert 0.0 <= result.detour_saving <= 1.0

    def test_platform_has_intercontinental_tail(self, eco, m2m_dataset):
        """The paper's §3.2 remark: distances are not always small."""
        result = roaming_distances(m2m_dataset, eco.countries)
        assert result.intercontinental_share > 0.0
        assert result.device_max_distance.max > 5000


class TestFarthestPairs:
    def test_sorted_and_unique(self, eco, m2m_dataset):
        pairs = farthest_pairs(m2m_dataset, eco.countries, k=5)
        assert pairs
        distances = [d for _, _, d in pairs]
        assert distances == sorted(distances, reverse=True)
        assert len({(h, v) for h, v, _ in pairs}) == len(pairs)

    def test_home_differs_from_visited(self, eco, m2m_dataset):
        for home, visited, _ in farthest_pairs(m2m_dataset, eco.countries):
            assert home != visited
