"""Tests for the revenue / silent-roamer analysis."""

import pytest

from repro.analysis.revenue import revenue_by_class, silent_roamers
from repro.core.classifier import ClassLabel
from repro.devices.device import DeviceClass


class TestRevenueByClass:
    @pytest.fixture(scope="class")
    def report(self, pipeline):
        return revenue_by_class(pipeline)

    def test_covers_inbound_classes(self, report):
        assert ClassLabel.M2M in report.by_class
        assert ClassLabel.SMART in report.by_class

    def test_smartphones_out_earn_m2m_per_device(self, report):
        smart = report.by_class[ClassLabel.SMART].mean_eur
        m2m = report.by_class[ClassLabel.M2M].mean_eur
        assert smart > 2 * m2m

    def test_m2m_asymmetry_exceeds_smartphones(self, report):
        # M2M occupies more signaling per euro of revenue: the §6 point.
        assert report.asymmetry(ClassLabel.M2M) > report.asymmetry(ClassLabel.SMART)

    def test_shares_normalized(self, report):
        assert sum(report.revenue_share.values()) == pytest.approx(1.0)
        assert sum(report.signaling_share.values()) == pytest.approx(1.0)

    def test_format_readable(self, report):
        text = report.format()
        assert "asymmetry" in text
        assert "m2m" in text


class TestSilentRoamers:
    def test_silent_devices_are_inbound_with_radio_activity(self, pipeline):
        silent = silent_roamers(pipeline)
        assert silent
        for device_id in list(silent)[:50]:
            summary = pipeline.summaries[device_id]
            assert summary.label.is_inbound_roamer
            assert summary.n_events > 0

    def test_silent_population_skews_m2m(self, pipeline):
        silent = silent_roamers(pipeline)
        m2m = sum(
            1
            for d in silent
            if pipeline.dataset.ground_truth[d].device_class is DeviceClass.M2M
        )
        assert m2m / len(silent) > 0.5

    def test_threshold_monotone(self, pipeline):
        strict = silent_roamers(pipeline, billable_threshold_eur=0.0001)
        loose = silent_roamers(pipeline, billable_threshold_eur=1.0)
        assert strict <= loose
