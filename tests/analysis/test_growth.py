"""Tests for the IoT-growth projection."""

import pytest

from repro.analysis.growth import GrowthPoint, project_growth


class TestProjection:
    @pytest.fixture(scope="class")
    def curve(self, pipeline):
        return project_growth(pipeline, factors=(1.0, 2.0, 5.0, 10.0))

    def test_factor_one_is_today(self, curve, pipeline):
        from repro.analysis.population import population_shares
        from repro.core.classifier import ClassLabel

        today = curve[0]
        shares = population_shares(pipeline)
        expected = (
            shares.class_shares[ClassLabel.M2M]
            + shares.class_shares[ClassLabel.M2M_MAYBE]
        )
        assert today.m2m_device_share == pytest.approx(expected, abs=0.01)

    def test_device_share_monotone_in_factor(self, curve):
        shares = [p.m2m_device_share for p in curve]
        assert shares == sorted(shares)

    def test_ten_x_makes_m2m_dominant(self, curve):
        ten_x = curve[-1]
        assert ten_x.m2m_device_share > 0.7

    def test_signaling_outruns_revenue_at_every_factor(self, curve):
        """The §6/§9 stress: each projected thing brings load but almost
        no revenue.  The load-revenue gap must widen with growth, and
        signaling share must exceed revenue share throughout."""
        gaps = [p.m2m_signaling_share - p.m2m_revenue_share for p in curve]
        assert gaps == sorted(gaps)
        for point in curve:
            assert point.m2m_signaling_share > point.m2m_revenue_share
            assert point.stress_index > 1.0

    def test_rejects_nonpositive_factor(self, pipeline):
        with pytest.raises(ValueError):
            project_growth(pipeline, factors=(0.0,))

    def test_point_math(self):
        point = GrowthPoint(
            factor=2.0,
            m2m_device_share=0.5,
            m2m_signaling_share=0.6,
            m2m_revenue_share=0.2,
        )
        assert point.stress_index == pytest.approx(3.0)
        zero = GrowthPoint(1.0, 0.1, 0.2, 0.0)
        assert zero.stress_index == float("inf")
