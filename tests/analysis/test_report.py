"""Unit tests for report rendering."""

from repro.analysis.report import ComparisonRow, ExperimentReport, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(("name", "value"), [("a", 1), ("long-name", 22)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "long-name" in lines[3]
        # Columns align: all rows same width.
        assert len(set(len(l) for l in lines[2:])) == 1


class TestComparisonRow:
    def test_window_ok(self):
        row = ComparisonRow("x", "0.5", measured=0.52, window=(0.4, 0.6))
        assert row.verdict == "OK"
        assert row.holds

    def test_window_off(self):
        row = ComparisonRow("x", "0.5", measured=0.9, window=(0.4, 0.6))
        assert row.verdict == "OFF"
        assert not row.holds

    def test_informative_row_always_holds(self):
        row = ComparisonRow("x", "0.5", measured=123.0)
        assert row.verdict == "info"
        assert row.holds


class TestExperimentReport:
    def test_all_hold_and_failures(self):
        report = ExperimentReport("FIG1", "test")
        report.add("good", "1", 1.0, window=(0.5, 1.5))
        assert report.all_hold
        report.add("bad", "1", 9.0, window=(0.5, 1.5))
        assert not report.all_hold
        assert [r.statistic for r in report.failing_rows()] == ["bad"]

    def test_format_contains_everything(self):
        report = ExperimentReport("FIG2", "where devices roam")
        report.add("share", "52.3%", 0.51, window=(0.4, 0.6))
        report.note("scaled 1:1000")
        text = report.format()
        assert "FIG2" in text
        assert "where devices roam" in text
        assert "share" in text
        assert "OK" in text
        assert "scaled 1:1000" in text

    def test_integer_measured_rendering(self):
        report = ExperimentReport("X", "t")
        report.add("count", "120000", 250)
        assert "250" in report.format()
