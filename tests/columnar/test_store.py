"""StringPool and row<->columnar adapter invariants."""

import pytest

from repro.columnar import (
    NULL_ID,
    ColumnarRadioEvents,
    ColumnarServiceRecords,
    StringPool,
    from_record_streams,
)
from repro.faults import FaultPlan, inject_radio_events, inject_service_records


# -- StringPool --------------------------------------------------------------

def test_intern_is_idempotent_and_dense():
    pool = StringPool()
    a = pool.intern("26202")
    b = pool.intern("20801")
    assert (a, b) == (0, 1)  # first-seen order, dense ids
    assert pool.intern("26202") == a  # same string, same id
    assert len(pool) == 2
    assert pool.id_of("20801") == b
    assert "26202" in pool and "90128" not in pool


def test_intern_optional_maps_none_to_null_id():
    pool = StringPool()
    assert pool.intern_optional(None) == NULL_ID
    assert pool.lookup_optional(NULL_ID) is None
    some = pool.intern_optional("iot.apn")
    assert pool.lookup_optional(some) == "iot.apn"


def test_lookup_round_trips_every_id():
    pool = StringPool()
    vocab = [f"dev-{i:03d}" for i in range(50)]
    ids = [pool.intern(text) for text in vocab]
    assert [pool.lookup(i) for i in ids] == vocab
    assert pool.strings == tuple(vocab)


def test_merge_from_keeps_existing_ids_stable():
    left = StringPool(["26202", "20801"])
    right = StringPool(["20801", "90128", "26202"])
    remap = left.merge_from(right)
    # Existing entries keep their ids; only the novel string gets a new one.
    assert left.id_of("26202") == 0
    assert left.id_of("20801") == 1
    assert left.id_of("90128") == 2
    # remap translates right-pool ids into left-pool ids.
    assert [left.lookup(remap[right.id_of(s)]) for s in right.strings] == list(
        right.strings
    )


def test_merge_from_is_idempotent():
    left = StringPool(["a", "b"])
    right = StringPool(["b", "c"])
    first = left.merge_from(right)
    size_after = len(left)
    second = left.merge_from(right)
    assert first == second
    assert len(left) == size_after


# -- adapters ----------------------------------------------------------------

def test_radio_round_trip(mno_dataset):
    store = ColumnarRadioEvents.from_rows(mno_dataset.radio_events)
    assert len(store) == len(mno_dataset.radio_events)
    assert store.to_rows() == list(mno_dataset.radio_events)
    assert store.row(0) == mno_dataset.radio_events[0]
    assert list(store.iter_rows()) == list(mno_dataset.radio_events)


def test_service_round_trip(mno_dataset):
    store = ColumnarServiceRecords.from_rows(mno_dataset.service_records)
    assert len(store) == len(mno_dataset.service_records)
    assert store.to_rows() == list(mno_dataset.service_records)
    # Voice CDRs carry no APN: encoded as NULL_ID, decoded back to None.
    voice_idx = next(
        i for i, r in enumerate(mno_dataset.service_records) if r.apn is None
    )
    assert store.apns[voice_idx] == NULL_ID
    assert store.row(voice_idx).apn is None


def test_from_record_streams_shares_one_pool_set(mno_dataset):
    events, records = from_record_streams(
        mno_dataset.radio_events, mno_dataset.service_records
    )
    assert events.pools is records.pools
    assert events.to_rows() == list(mno_dataset.radio_events)
    assert records.to_rows() == list(mno_dataset.service_records)


def test_round_trip_survives_injected_faults(mno_dataset):
    """Dropped/duplicated/reordered streams still round-trip exactly."""
    plan = FaultPlan(seed=3, drop_rate=0.02, duplicate_rate=0.01, reorder_rate=0.02)
    faulted_events, _ = inject_radio_events(mno_dataset.radio_events, plan)
    faulted_records, _ = inject_service_records(mno_dataset.service_records, plan)
    events, records = from_record_streams(faulted_events, faulted_records)
    assert events.to_rows() == list(faulted_events)
    assert records.to_rows() == list(faulted_records)


def test_select_shares_pools_and_preserves_rows(mno_dataset):
    store = ColumnarRadioEvents.from_rows(mno_dataset.radio_events)
    indices = list(range(0, len(store), 3))
    subset = store.select(indices)
    assert subset.pools is store.pools
    assert subset.to_rows() == store.rows_at(indices)
    assert len(subset) == len(indices)


def test_columnar_stores_are_smaller_than_rows(mno_dataset):
    """The point of the exercise: column blocks beat dataclass rows."""
    import sys

    events, records = from_record_streams(
        mno_dataset.radio_events, mno_dataset.service_records
    )
    # getsizeof on a slotted dataclass counts only the shell, not the
    # field payloads; add the per-row timestamp float box (always a
    # distinct object) for a still-conservative row-side floor.
    row_floor = sum(
        sys.getsizeof(e) + sys.getsizeof(e.timestamp)
        for e in mno_dataset.radio_events
    ) + sum(
        sys.getsizeof(r) + sys.getsizeof(r.timestamp)
        for r in mno_dataset.service_records
    )
    assert events.nbytes + records.nbytes < row_floor


def test_day_column_matches_row_day(mno_dataset):
    store = ColumnarRadioEvents.from_rows(mno_dataset.radio_events[:200])
    for i, event in enumerate(mno_dataset.radio_events[:200]):
        assert store.days[i] == event.day


def test_empty_store_is_valid():
    store = ColumnarRadioEvents.from_rows([])
    assert len(store) == 0
    assert store.to_rows() == []
    with pytest.raises(IndexError):
        store.row(0)
