"""Incremental day-update engine: converges to the full rebuild exactly."""

from collections import defaultdict

import pytest

from repro.columnar import from_record_streams
from repro.core.catalog import CatalogBuilder, CatalogUpdate
from repro.core.roaming import RoamingLabeler
from repro.ecosystem import EcosystemConfig, build_default_ecosystem
from repro.mno import MNOConfig, simulate_mno_dataset


@pytest.fixture(scope="module")
def small_eco():
    return build_default_ecosystem(EcosystemConfig(uk_sites=30, seed=11))


@pytest.fixture(scope="module")
def small_dataset(small_eco):
    return simulate_mno_dataset(small_eco, MNOConfig(n_devices=120, seed=5))


@pytest.fixture(scope="module")
def by_day(small_dataset):
    events = defaultdict(list)
    records = defaultdict(list)
    for event in small_dataset.radio_events:
        events[event.day].append(event)
    for record in small_dataset.service_records:
        records[record.day].append(record)
    days = sorted(set(events) | set(records))
    return days, events, records


def make_builder(small_eco, small_dataset, compute_mobility=True):
    return CatalogBuilder(
        small_dataset.tac_db,
        small_dataset.sector_catalog,
        RoamingLabeler(small_eco.operators, small_dataset.observer),
        compute_mobility=compute_mobility,
    )


@pytest.fixture(scope="module")
def full_build(small_eco, small_dataset):
    return make_builder(small_eco, small_dataset).build(
        small_dataset.radio_events, small_dataset.service_records
    )


def test_ascending_replay_converges_to_full_build(
    small_eco, small_dataset, by_day, full_build
):
    days, events, records = by_day
    builder = make_builder(small_eco, small_dataset)
    for day in days:
        update = builder.update(day, events[day], records[day])
        assert isinstance(update, CatalogUpdate)
        assert update.day == day
        assert update.n_changed == len(update.changed_devices)
    day_records, summaries = builder.snapshot()
    assert day_records == full_build[0]
    assert list(summaries) == list(full_build[1])
    assert summaries == full_build[1]


def test_resending_identical_day_changes_nothing(
    small_eco, small_dataset, by_day, full_build
):
    days, events, records = by_day
    builder = make_builder(small_eco, small_dataset)
    for day in days:
        builder.update(day, events[day], records[day])
    last = days[-1]
    update = builder.update(last, events[last], records[last])
    assert update.n_changed == 0
    assert update.changed_devices == ()
    assert builder.snapshot()[0] == full_build[0]


def test_modified_day_recomputes_only_changed_devices(
    small_eco, small_dataset, by_day
):
    days, events, records = by_day
    builder = make_builder(small_eco, small_dataset)
    for day in days:
        builder.update(day, events[day], records[day])
    last = days[-1]
    mutated = [e for i, e in enumerate(events[last]) if i % 7]
    touched = {e.device_id for e in events[last]} | {
        e.device_id for e in mutated
    }
    update = builder.update(last, mutated, records[last])
    assert 0 < update.n_changed <= len(touched)
    assert set(update.changed_devices) <= touched

    # The incremental state now matches a from-scratch build of the
    # mutated streams, records and summaries alike.
    full_events = [e for d in days for e in (mutated if d == last else events[d])]
    full_records = [r for d in days for r in records[d]]
    expected = make_builder(small_eco, small_dataset).build(
        full_events, full_records
    )
    day_records, summaries = builder.snapshot()
    assert day_records == expected[0]
    assert summaries == expected[1]


def test_update_accepts_columnar_day_slices(
    small_eco, small_dataset, by_day, full_build
):
    days, events, records = by_day
    builder = make_builder(small_eco, small_dataset)
    for day in days:
        events_c, records_c = from_record_streams(events[day], records[day])
        builder.update(day, events_c, records_c)
    day_records, summaries = builder.snapshot()
    assert day_records == full_build[0]
    assert summaries == full_build[1]


def test_update_rejects_rows_from_another_day(small_eco, small_dataset, by_day):
    days, events, records = by_day
    builder = make_builder(small_eco, small_dataset)
    with pytest.raises(ValueError):
        builder.update(days[0] + 1, events[days[0]], records[days[0]])


def test_update_rejects_mixed_row_and_columnar_input(
    small_eco, small_dataset, by_day
):
    days, events, records = by_day
    day = days[0]
    events_c, _ = from_record_streams(events[day], records[day])
    builder = make_builder(small_eco, small_dataset)
    with pytest.raises(TypeError):
        builder.update(day, events_c, records[day])


def test_update_rejects_columnar_slices_with_split_pools(
    small_eco, small_dataset, by_day
):
    days, events, records = by_day
    day = days[0]
    events_c, _ = from_record_streams(events[day], [])
    _, records_c = from_record_streams([], records[day])
    builder = make_builder(small_eco, small_dataset)
    with pytest.raises(ValueError):
        builder.update(day, events_c, records_c)


def test_empty_day_update_removes_devices(small_eco, small_dataset, by_day):
    """Re-sending a day as empty retracts that day's contribution."""
    days, events, records = by_day
    builder = make_builder(small_eco, small_dataset)
    for day in days:
        builder.update(day, events[day], records[day])
    last = days[-1]
    update = builder.update(last, [], [])
    assert update.n_changed > 0
    expected = make_builder(small_eco, small_dataset).build(
        [e for d in days[:-1] for e in events[d]],
        [r for d in days[:-1] for r in records[d]],
    )
    day_records, summaries = builder.snapshot()
    assert day_records == expected[0]
    assert summaries == expected[1]
