"""Columnar pipeline output must be byte-identical to the row path."""

import dataclasses

import pytest

from repro.columnar import from_record_streams
from repro.core.catalog import CatalogBuilder
from repro.core.roaming import RoamingLabeler
from repro.faults import FaultPlan, inject_radio_events, inject_service_records
from repro.pipeline import run_pipeline

from tests.parallel.test_executor_equivalence import (
    assert_identical_results,
    poison_record,
)


@pytest.fixture(scope="module")
def faulted_dataset(mno_dataset):
    """Stream faults plus poison devices, as in the sharded-equivalence suite."""
    plan = FaultPlan(seed=3, drop_rate=0.02, duplicate_rate=0.01, reorder_rate=0.02)
    events, _ = inject_radio_events(mno_dataset.radio_events, plan)
    records, _ = inject_service_records(mno_dataset.service_records, plan)
    extra = [poison_record(f"poison-{i:02d}", 1000.0 + i) for i in range(14)]
    return dataclasses.replace(
        mno_dataset, radio_events=events, service_records=list(records) + extra
    )


@pytest.fixture(scope="module")
def lenient_row_result(eco, faulted_dataset):
    return run_pipeline(faulted_dataset, eco, lenient=True, n_workers=1)


@pytest.mark.parametrize("n_workers", [1, 2, 4])
def test_strict_columnar_equals_row(eco, mno_dataset, pipeline, n_workers):
    columnar = run_pipeline(
        mno_dataset, eco, columnar=True, n_workers=n_workers
    )
    assert_identical_results(pipeline, columnar)
    assert columnar.degradation is None


@pytest.mark.parametrize("n_workers", [1, 2, 4])
def test_lenient_columnar_equals_row(
    eco, faulted_dataset, lenient_row_result, n_workers
):
    columnar = run_pipeline(
        faulted_dataset, eco, lenient=True, columnar=True, n_workers=n_workers
    )
    assert_identical_results(lenient_row_result, columnar)
    cd, rd = columnar.degradation, lenient_row_result.degradation
    assert cd.n_devices_total == rd.n_devices_total
    assert cd.n_devices_ok == rd.n_devices_ok
    assert cd.n_failed_by_stage == rd.n_failed_by_stage
    assert cd.exemplars == rd.exemplars
    assert cd.classifier_fallback == rd.classifier_fallback


def test_build_from_columns_equals_build(eco, mno_dataset):
    def builder():
        return CatalogBuilder(
            mno_dataset.tac_db,
            mno_dataset.sector_catalog,
            RoamingLabeler(eco.operators, mno_dataset.observer),
        )

    row_records, row_summaries = builder().build(
        mno_dataset.radio_events, mno_dataset.service_records
    )
    events_c, records_c = from_record_streams(
        mno_dataset.radio_events, mno_dataset.service_records
    )
    col_records, col_summaries = builder().build_from_columns(events_c, records_c)
    assert col_records == row_records
    assert list(col_summaries) == list(row_summaries)
    assert col_summaries == row_summaries


def test_build_from_columns_rejects_mismatched_pools(eco, mno_dataset):
    from repro.columnar import ColumnarRadioEvents, ColumnarServiceRecords

    events = ColumnarRadioEvents.from_rows(mno_dataset.radio_events)
    records = ColumnarServiceRecords.from_rows(mno_dataset.service_records)
    builder = CatalogBuilder(
        mno_dataset.tac_db,
        mno_dataset.sector_catalog,
        RoamingLabeler(eco.operators, mno_dataset.observer),
    )
    with pytest.raises(ValueError):
        builder.build_from_columns(events, records)


def test_env_flag_selects_columnar_plane(eco, mno_dataset, pipeline, monkeypatch):
    monkeypatch.setenv("REPRO_COLUMNAR", "1")
    flagged = run_pipeline(mno_dataset, eco, n_workers=1)
    assert_identical_results(pipeline, flagged)
    monkeypatch.setenv("REPRO_COLUMNAR", "off")
    row = run_pipeline(mno_dataset, eco, n_workers=1)
    assert_identical_results(pipeline, row)


def test_shard_columnar_records_partitions_by_device(mno_dataset):
    from repro.parallel import shard_columnar_records

    events, records = from_record_streams(
        mno_dataset.radio_events, mno_dataset.service_records
    )
    shards = shard_columnar_records(events, records, 3)
    assert len(shards) == 3
    assert sum(len(ev) for ev, _ in shards) == len(events)
    assert sum(len(sr) for _, sr in shards) == len(records)
    seen_devices = [
        {ev.pools.devices.lookup(i) for i in ev.device_ids}
        | {sr.pools.devices.lookup(i) for i in sr.device_ids}
        for ev, sr in shards
    ]
    for a in range(len(seen_devices)):
        for b in range(a + 1, len(seen_devices)):
            assert not (seen_devices[a] & seen_devices[b])
    # Shards share the parent's pools: column blocks, not re-encoded rows.
    assert all(ev.pools is events.pools for ev, _ in shards)
