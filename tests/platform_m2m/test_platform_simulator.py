"""Tests for the M2M-platform simulator."""

from collections import Counter, defaultdict

import numpy as np
import pytest

from repro.devices.device import DeviceClass
from repro.platform_m2m import (
    HMNOFleetConfig,
    PlatformConfig,
    simulate_m2m_dataset,
)
from repro.devices.device import IoTVertical


class TestConfigValidation:
    def test_shares_must_sum_to_one(self):
        fleets = {"ES": HMNOFleetConfig(share=0.5, roaming_fraction=0.5)}
        with pytest.raises(ValueError):
            PlatformConfig(fleets=fleets)

    def test_vertical_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            HMNOFleetConfig(
                share=1.0,
                roaming_fraction=0.5,
                vertical_mix={IoTVertical.OTHER: 0.5},
            )

    def test_steering_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            PlatformConfig(steering_mix=(0.5, 0.5, 0.5))

    def test_positive_devices(self):
        with pytest.raises(ValueError):
            PlatformConfig(n_devices=0)


class TestDatasetStructure:
    def test_exact_device_count(self, m2m_dataset):
        assert m2m_dataset.n_devices == 250

    def test_window_respected(self, m2m_dataset):
        window_s = m2m_dataset.window_days * 86400.0
        assert all(0 <= t.timestamp < window_s for t in m2m_dataset.transactions)

    def test_transactions_time_ordered(self, m2m_dataset):
        ts = [t.timestamp for t in m2m_dataset.transactions]
        assert ts == sorted(ts)

    def test_ground_truth_covers_every_device(self, m2m_dataset):
        assert m2m_dataset.device_ids == set(m2m_dataset.ground_truth)

    def test_all_devices_are_m2m(self, m2m_dataset):
        assert all(
            g.device_class is DeviceClass.M2M
            for g in m2m_dataset.ground_truth.values()
        )

    def test_device_ids_anonymized(self, m2m_dataset):
        assert all(len(t.device_id) == 16 for t in m2m_dataset.transactions[:100])


class TestDeterminism:
    def test_same_seed_same_dataset(self, eco):
        config = PlatformConfig(n_devices=60, seed=77)
        a = simulate_m2m_dataset(eco, config)
        b = simulate_m2m_dataset(eco, PlatformConfig(n_devices=60, seed=77))
        assert a.n_transactions == b.n_transactions
        assert [t.device_id for t in a.transactions[:50]] == [
            t.device_id for t in b.transactions[:50]
        ]

    def test_different_seed_differs(self, eco):
        # SIM identities are allocated sequentially (seed-independent),
        # but behaviour — transaction volume and timing — must differ.
        a = simulate_m2m_dataset(eco, PlatformConfig(n_devices=60, seed=1))
        b = simulate_m2m_dataset(eco, PlatformConfig(n_devices=60, seed=2))
        assert [t.timestamp for t in a.transactions[:200]] != [
            t.timestamp for t in b.transactions[:200]
        ]


class TestCalibration:
    def test_hmno_shares_follow_config(self, m2m_dataset):
        homes = Counter(
            g.home_country_iso for g in m2m_dataset.ground_truth.values()
        )
        total = sum(homes.values())
        assert homes["ES"] / total == pytest.approx(0.523, abs=0.02)
        assert homes["MX"] / total == pytest.approx(0.422, abs=0.02)

    def test_mexican_fleet_mostly_home(self, m2m_dataset):
        mx_txns = m2m_dataset.for_sim_mcc(334)
        roaming_devices = {t.device_id for t in mx_txns if t.is_roaming}
        all_devices = {t.device_id for t in mx_txns}
        assert len(roaming_devices) / len(all_devices) < 0.25

    def test_spanish_fleet_mostly_roaming(self, m2m_dataset):
        es_txns = m2m_dataset.for_sim_mcc(214)
        roaming_devices = {t.device_id for t in es_txns if t.is_roaming}
        all_devices = {t.device_id for t in es_txns}
        assert len(roaming_devices) / len(all_devices) > 0.6

    def test_failed_only_fraction(self, m2m_dataset):
        success = {
            t.device_id
            for t in m2m_dataset.transactions
            if t.result.is_success
        }
        failed_only = m2m_dataset.device_ids - success
        share = len(failed_only) / m2m_dataset.n_devices
        assert share == pytest.approx(0.40, abs=0.10)

    def test_failed_only_devices_never_succeed(self, m2m_dataset):
        # Consistency of the generative mechanism: a device either has
        # successes or every one of its records failed.
        outcomes = defaultdict(set)
        for t in m2m_dataset.transactions:
            outcomes[t.device_id].add(t.result.is_success)
        assert all(len(v) >= 1 for v in outcomes.values())

    def test_native_devices_attach_to_hmno(self, eco):
        ds = simulate_m2m_dataset(eco, PlatformConfig(n_devices=80, seed=3))
        for txn in ds.transactions:
            if not txn.is_roaming:
                # Native platform traffic terminates on the HMNO itself.
                assert txn.visited_plmn == txn.sim_plmn

    def test_roaming_median_load_exceeds_native(self, m2m_dataset):
        per_device = Counter()
        roaming = set()
        for t in m2m_dataset.transactions:
            per_device[t.device_id] += 1
            if t.is_roaming:
                roaming.add(t.device_id)
        roam_counts = [c for d, c in per_device.items() if d in roaming]
        native_counts = [c for d, c in per_device.items() if d not in roaming]
        assert np.median(roam_counts) > 3 * np.median(native_counts)
