"""Generation-time outages: failure flips, reattach storms, determinism."""

import hashlib

from repro.faults import FaultPlan, OutageWindow, RetryPolicy
from repro.platform_m2m import PlatformConfig
from repro.platform_m2m.simulator import simulate_m2m_dataset
from repro.signaling.hlr import validate_stream
from repro.signaling.procedures import MessageType, ResultCode

WINDOW = OutageWindow(start_s=100_000.0, end_s=300_000.0)
PLAN = FaultPlan(seed=3, outages=(WINDOW,))


def small_config():
    return PlatformConfig(n_devices=80, seed=5)


def digest(dataset):
    h = hashlib.sha256()
    for t in dataset.transactions:
        h.update(
            repr(
                (t.device_id, t.timestamp, t.sim_plmn, t.visited_plmn,
                 t.message_type.value, t.result.value)
            ).encode()
        )
    return h.hexdigest()


def test_empty_plan_changes_nothing(eco):
    baseline = simulate_m2m_dataset(eco, small_config())
    with_noop_plan = simulate_m2m_dataset(eco, small_config(), fault_plan=FaultPlan())
    assert digest(with_noop_plan) == digest(baseline)


def test_outage_run_is_deterministic(eco):
    a = simulate_m2m_dataset(eco, small_config(), fault_plan=PLAN)
    b = simulate_m2m_dataset(eco, small_config(), fault_plan=PLAN)
    assert digest(a) == digest(b)


def test_no_successful_updates_inside_the_outage(eco):
    dataset = simulate_m2m_dataset(eco, small_config(), fault_plan=PLAN)
    for txn in dataset.transactions:
        if (
            txn.message_type is MessageType.UPDATE_LOCATION
            and WINDOW.covers(txn.timestamp)
        ):
            assert not txn.result.is_success


def test_storms_inflate_in_window_signaling(eco):
    baseline = simulate_m2m_dataset(eco, small_config())
    stormy = simulate_m2m_dataset(eco, small_config(), fault_plan=PLAN)
    in_window = lambda ds: sum(  # noqa: E731
        1 for t in ds.transactions if WINDOW.covers(t.timestamp)
    )
    assert in_window(stormy) > 2 * in_window(baseline)
    assert len(stormy.transactions) > len(baseline.transactions)


def test_storm_output_stays_protocol_coherent(eco):
    dataset = simulate_m2m_dataset(eco, small_config(), fault_plan=PLAN)
    report = validate_stream(dataset.transactions)
    assert report.cancel_coherence == 1.0
    assert report.moves_match_cancels
    assert report.n_incoherent_cancels == 0


def test_retry_policy_shapes_the_storm(eco):
    sparse = RetryPolicy(base_delay_s=3600.0, multiplier=2.0, max_delay_s=7200.0,
                         max_attempts=2)
    dense = RetryPolicy(base_delay_s=60.0, multiplier=1.5, max_delay_s=600.0,
                        max_attempts=8)
    few = simulate_m2m_dataset(
        eco, small_config(), fault_plan=PLAN, retry_policy=sparse
    )
    many = simulate_m2m_dataset(
        eco, small_config(), fault_plan=PLAN, retry_policy=dense
    )
    assert len(many.transactions) > len(few.transactions)


def test_plmn_scoped_outage_spares_other_networks(eco):
    scoped = FaultPlan(
        seed=3,
        outages=(OutageWindow(start_s=0.0, end_s=1e9, plmn="00000"),),
    )
    baseline = simulate_m2m_dataset(eco, small_config())
    spared = simulate_m2m_dataset(eco, small_config(), fault_plan=scoped)
    assert digest(spared) == digest(baseline)


def test_outage_result_code_is_used(eco):
    plan = FaultPlan(
        seed=3,
        outages=(
            OutageWindow(
                start_s=WINDOW.start_s,
                end_s=WINDOW.end_s,
                result=ResultCode.ROAMING_NOT_ALLOWED,
            ),
        ),
    )
    baseline = simulate_m2m_dataset(eco, small_config())
    dataset = simulate_m2m_dataset(eco, small_config(), fault_plan=plan)
    baseline_in_window = sum(
        1
        for t in baseline.transactions
        if WINDOW.covers(t.timestamp)
        and t.result is ResultCode.ROAMING_NOT_ALLOWED
    )
    flipped_in_window = sum(
        1
        for t in dataset.transactions
        if WINDOW.covers(t.timestamp)
        and t.result is ResultCode.ROAMING_NOT_ALLOWED
    )
    assert flipped_in_window > baseline_in_window
