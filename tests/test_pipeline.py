"""End-to-end integration tests: dataset -> catalog -> labels -> classes."""


from repro.core.classifier import ClassifierConfig, ClassLabel
from repro.core.validation import validate_classification
from repro.pipeline import run_pipeline


class TestPipelineIntegration:
    def test_every_device_classified(self, pipeline, mno_dataset):
        assert set(pipeline.classifications) == set(pipeline.summaries)
        assert set(pipeline.summaries) == mno_dataset.device_ids

    def test_classifier_accuracy_against_ground_truth(self, pipeline, mno_dataset):
        report = validate_classification(
            pipeline.classifications, mno_dataset.ground_truth
        )
        assert report.accuracy > 0.9
        assert report.per_class[ClassLabel.M2M].precision > 0.95
        assert report.per_class[ClassLabel.M2M].recall > 0.9

    def test_abstention_matches_voice_only_longtail(self, pipeline, mno_dataset):
        report = validate_classification(
            pipeline.classifications, mno_dataset.ground_truth
        )
        assert 0.005 < report.abstention_rate < 0.10

    def test_day_records_consistent_with_summaries(self, pipeline):
        from collections import defaultdict

        events_by_device = defaultdict(int)
        for record in pipeline.day_records:
            events_by_device[record.device_id] += record.n_events
        for device_id, summary in pipeline.summaries.items():
            assert events_by_device[device_id] == summary.n_events

    def test_mobility_disabled_pipeline(self, eco, mno_dataset):
        result = run_pipeline(mno_dataset, eco, compute_mobility=False)
        assert all(
            s.mean_gyration_km is None for s in result.summaries.values()
        )
        # Classification is unaffected by mobility.
        assert len(result.classifications) == len(result.summaries)

    def test_ablated_classifier_loses_m2m_coverage(self, eco, mno_dataset):
        full = run_pipeline(mno_dataset, eco, compute_mobility=False)
        apn_only = run_pipeline(
            mno_dataset,
            eco,
            classifier_config=ClassifierConfig(use_property_propagation=False),
            compute_mobility=False,
        )
        full_m2m = sum(
            1 for c in full.classifications.values() if c.label is ClassLabel.M2M
        )
        ablated_m2m = sum(
            1 for c in apn_only.classifications.values() if c.label is ClassLabel.M2M
        )
        assert ablated_m2m < full_m2m
