"""Tests for the Home Location Register and stream validation."""


from repro.signaling.hlr import CancelOutcome, HomeLocationRegister, validate_stream
from repro.signaling.procedures import MessageType, ResultCode, SignalingTransaction


def _txn(device="d", ts=0.0, visited="23410",
         mtype=MessageType.UPDATE_LOCATION, result=ResultCode.OK):
    return SignalingTransaction(
        device_id=device, timestamp=ts, sim_plmn="21407", visited_plmn=visited,
        message_type=mtype, result=result,
    )


class TestHomeLocationRegister:
    def test_first_registration_needs_no_cancel(self):
        hlr = HomeLocationRegister()
        assert hlr.update_location("d", "23410") is None
        assert hlr.location_of("d") == "23410"

    def test_move_returns_previous_vmno(self):
        hlr = HomeLocationRegister()
        hlr.update_location("d", "23410")
        assert hlr.update_location("d", "20810") == "23410"
        assert hlr.location_of("d") == "20810"

    def test_same_vmno_reregistration_needs_no_cancel(self):
        hlr = HomeLocationRegister()
        hlr.update_location("d", "23410")
        assert hlr.update_location("d", "23410") is None

    def test_cancel_coherence(self):
        hlr = HomeLocationRegister()
        hlr.update_location("d", "23410")
        hlr.update_location("d", "20810")
        assert hlr.cancel_location("d", "23410")       # the stale one
        assert not hlr.cancel_location("d", "20810")   # the live one
        assert not hlr.cancel_location("ghost", "23410")

    def test_registration_count(self):
        hlr = HomeLocationRegister()
        hlr.update_location("a", "23410")
        hlr.update_location("b", "20810")
        assert hlr.n_registered == 2

    def test_cancel_outcome_taxonomy(self):
        """Drops and reorders leave distinguishable incoherence traces."""
        hlr = HomeLocationRegister()
        # never registered: the creating update was lost (drop)
        assert hlr.cancel_outcome("ghost", "23410") is CancelOutcome.NEVER_REGISTERED
        hlr.update_location("d", "23410")
        hlr.update_location("d", "20810")
        # current registration: the cancel overtook its update (reorder)
        assert hlr.cancel_outcome("d", "20810") is CancelOutcome.CURRENT_REGISTRATION
        assert hlr.cancel_outcome("d", "23410") is CancelOutcome.COHERENT
        assert CancelOutcome.COHERENT.is_coherent
        assert not CancelOutcome.NEVER_REGISTERED.is_coherent
        assert not CancelOutcome.CURRENT_REGISTRATION.is_coherent


class TestValidateStream:
    def test_coherent_hand_built_stream(self):
        stream = [
            _txn(ts=0.0, visited="23410"),
            _txn(ts=1.0, visited="20810"),
            _txn(ts=2.0, visited="23410",
                 mtype=MessageType.CANCEL_LOCATION),
        ]
        report = validate_stream(stream)
        assert report.n_registration_moves == 1
        assert report.n_cancel_locations == 1
        assert report.cancel_coherence == 1.0
        assert report.moves_match_cancels

    def test_failed_update_does_not_move_registration(self):
        stream = [
            _txn(ts=0.0, visited="23410"),
            _txn(ts=1.0, visited="20810", result=ResultCode.ROAMING_NOT_ALLOWED),
        ]
        report = validate_stream(stream)
        assert report.n_registration_moves == 0
        assert report.n_successful_updates == 1

    def test_orphan_cancel_detected(self):
        stream = [_txn(mtype=MessageType.CANCEL_LOCATION)]
        report = validate_stream(stream)
        assert report.cancel_coherence == 0.0
        assert not report.moves_match_cancels

    def test_never_registered_cancel_counted_separately(self):
        """A cancel for a device with no registration = a dropped update."""
        stream = [_txn(device="ghost", mtype=MessageType.CANCEL_LOCATION)]
        report = validate_stream(stream)
        assert report.n_cancels_never_registered == 1
        assert report.n_cancels_of_current == 0
        assert report.n_incoherent_cancels == 1

    def test_cancel_of_current_counted_separately(self):
        """A cancel naming the live registration = a reordered stream."""
        stream = [
            _txn(ts=0.0, visited="23410"),
            _txn(ts=1.0, visited="23410", mtype=MessageType.CANCEL_LOCATION),
        ]
        report = validate_stream(stream)
        assert report.n_cancels_never_registered == 0
        assert report.n_cancels_of_current == 1
        assert report.n_incoherent_cancels == 1

    def test_cancel_accounting_sums(self):
        stream = [
            _txn(device="a", ts=0.0, visited="23410"),
            _txn(device="a", ts=1.0, visited="20810"),
            _txn(device="a", ts=2.0, visited="23410",
                 mtype=MessageType.CANCEL_LOCATION),
            _txn(device="a", ts=3.0, visited="20810",
                 mtype=MessageType.CANCEL_LOCATION),
            _txn(device="ghost", ts=4.0, mtype=MessageType.CANCEL_LOCATION),
        ]
        report = validate_stream(stream)
        assert (
            report.n_coherent_cancels + report.n_incoherent_cancels
            == report.n_cancel_locations
        )
        assert report.n_coherent_cancels == 1
        assert report.n_cancels_of_current == 1
        assert report.n_cancels_never_registered == 1

    def test_empty_stream_trivially_coherent(self):
        report = validate_stream([])
        assert report.cancel_coherence == 1.0


class TestSimulatedStreamCoherence:
    def test_platform_stream_is_protocol_coherent(self, m2m_dataset):
        """The §3 simulator must emit HLR-coherent procedure sequences:
        every Cancel Location corresponds to a real registration move."""
        report = validate_stream(m2m_dataset.transactions)
        assert report.n_cancel_locations > 0
        assert report.cancel_coherence == 1.0
        assert report.moves_match_cancels

    def test_registered_population_bounded(self, m2m_dataset):
        report = validate_stream(m2m_dataset.transactions)
        assert report.n_registered_devices <= m2m_dataset.n_devices
