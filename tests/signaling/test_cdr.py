"""Unit tests for CDR/xDR service records."""

import pytest

from repro.signaling.cdr import ServiceRecord, ServiceType, data_xdr, voice_cdr


class TestServiceRecord:
    def test_voice_cannot_carry_apn(self):
        with pytest.raises(ValueError):
            ServiceRecord(
                device_id="d",
                timestamp=0.0,
                sim_plmn="23410",
                visited_plmn="23410",
                service=ServiceType.VOICE,
                apn="internet.op.com",
            )

    def test_data_cannot_carry_duration(self):
        with pytest.raises(ValueError):
            ServiceRecord(
                device_id="d",
                timestamp=0.0,
                sim_plmn="23410",
                visited_plmn="23410",
                service=ServiceType.DATA,
                duration_s=10.0,
            )

    def test_rejects_negatives(self):
        with pytest.raises(ValueError):
            voice_cdr("d", -1.0, "23410", "23410", 10.0)
        with pytest.raises(ValueError):
            voice_cdr("d", 0.0, "23410", "23410", -10.0)
        with pytest.raises(ValueError):
            data_xdr("d", 0.0, "23410", "23410", -5, "apn")

    def test_voice_helper(self):
        record = voice_cdr("d", 50.0, "21407", "23410", duration_s=120.0)
        assert record.is_voice and not record.is_data
        assert record.duration_s == 120.0
        assert record.apn is None

    def test_data_helper(self):
        record = data_xdr("d", 50.0, "21407", "23410", 4096, "internet.op.com")
        assert record.is_data
        assert record.bytes_total == 4096
        assert record.apn == "internet.op.com"

    def test_data_without_apn_allowed(self):
        record = data_xdr("d", 50.0, "21407", "23410", 1, None)
        assert record.apn is None

    def test_day(self):
        assert data_xdr("d", 86400.0, "21407", "23410", 1, None).day == 1
