"""Unit tests for radio-interface events."""

import pytest

from repro.cellular.rats import RAT
from repro.signaling.events import RadioEvent, RadioInterface
from repro.signaling.procedures import MessageType, ResultCode


def _event(**kwargs):
    defaults = dict(
        device_id="d1",
        timestamp=100.0,
        sim_plmn="23410",
        tac=35000001,
        sector_id=7,
        interface=RadioInterface.S1,
        event_type=MessageType.ATTACH,
        result=ResultCode.OK,
    )
    defaults.update(kwargs)
    return RadioEvent(**defaults)


class TestRadioInterface:
    def test_rat_mapping(self):
        assert RadioInterface.A.rat is RAT.GSM
        assert RadioInterface.GB.rat is RAT.GSM
        assert RadioInterface.IU_CS.rat is RAT.UMTS
        assert RadioInterface.IU_PS.rat is RAT.UMTS
        assert RadioInterface.S1.rat is RAT.LTE

    def test_voice_data_partition(self):
        voice = {i for i in RadioInterface if i.is_voice}
        data = {i for i in RadioInterface if i.is_data}
        assert voice == {RadioInterface.A, RadioInterface.IU_CS}
        assert voice | data == set(RadioInterface)
        assert not voice & data

    def test_for_plane_round_trip(self):
        for interface in RadioInterface:
            assert (
                RadioInterface.for_plane(interface.rat, interface.is_voice)
                is interface
            )

    def test_no_lte_voice_plane(self):
        with pytest.raises(ValueError):
            RadioInterface.for_plane(RAT.LTE, voice=True)


class TestRadioEvent:
    def test_rat_follows_interface(self):
        assert _event(interface=RadioInterface.GB).rat is RAT.GSM

    def test_day_and_success(self):
        event = _event(timestamp=2 * 86400.0 + 5)
        assert event.day == 2
        assert event.is_success

    def test_failure_detection(self):
        assert not _event(result=ResultCode.SYSTEM_FAILURE).is_success

    def test_validation(self):
        with pytest.raises(ValueError):
            _event(timestamp=-5.0)
        with pytest.raises(ValueError):
            _event(sim_plmn="123")
        with pytest.raises(ValueError):
            _event(tac=-1)
