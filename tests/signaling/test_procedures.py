"""Unit tests for signaling procedures and transactions."""

import pytest

from repro.signaling.procedures import MessageType, ResultCode, SignalingTransaction


def _txn(**kwargs):
    defaults = dict(
        device_id="d1",
        timestamp=3600.0,
        sim_plmn="21407",
        visited_plmn="23410",
        message_type=MessageType.UPDATE_LOCATION,
        result=ResultCode.OK,
    )
    defaults.update(kwargs)
    return SignalingTransaction(**defaults)


class TestMessageType:
    def test_map_procedures(self):
        assert MessageType.AUTHENTICATION.is_map_procedure
        assert MessageType.UPDATE_LOCATION.is_map_procedure
        assert MessageType.CANCEL_LOCATION.is_map_procedure
        assert not MessageType.ATTACH.is_map_procedure
        assert not MessageType.ROUTING_AREA_UPDATE.is_map_procedure


class TestResultCode:
    def test_only_ok_is_success(self):
        assert ResultCode.OK.is_success
        for code in ResultCode:
            if code is not ResultCode.OK:
                assert code.is_failure


class TestSignalingTransaction:
    def test_roaming_when_mcc_differs(self):
        assert _txn().is_roaming

    def test_national_roaming_not_international(self):
        # Same MCC, different MNC: not roaming from the platform's
        # country-footprint viewpoint.
        txn = _txn(sim_plmn="23410", visited_plmn="23420")
        assert not txn.is_roaming

    def test_mcc_extraction(self):
        txn = _txn()
        assert txn.sim_mcc == 214
        assert txn.visited_mcc == 234

    def test_day_index(self):
        assert _txn(timestamp=0.0).day == 0
        assert _txn(timestamp=86399.9).day == 0
        assert _txn(timestamp=86400.0).day == 1

    def test_rejects_negative_timestamp(self):
        with pytest.raises(ValueError):
            _txn(timestamp=-1.0)

    def test_rejects_malformed_plmn(self):
        with pytest.raises(ValueError):
            _txn(sim_plmn="12")
        with pytest.raises(ValueError):
            _txn(visited_plmn="abcde")

    def test_accepts_three_digit_mnc(self):
        txn = _txn(sim_plmn="310004")
        assert txn.sim_mcc == 310
