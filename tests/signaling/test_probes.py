"""Unit tests for the passive monitoring probes."""


from repro.signaling.events import RadioEvent, RadioInterface
from repro.signaling.probes import MonitoringProbe, ProbeArray, ProbeLocation
from repro.signaling.procedures import MessageType, ResultCode, SignalingTransaction


def _event(interface, ts=0.0):
    return RadioEvent(
        device_id="d",
        timestamp=ts,
        sim_plmn="23410",
        tac=35000001,
        sector_id=1,
        interface=interface,
        event_type=MessageType.ATTACH,
        result=ResultCode.OK,
    )


def _txn():
    return SignalingTransaction(
        device_id="d",
        timestamp=0.0,
        sim_plmn="21407",
        visited_plmn="23410",
        message_type=MessageType.UPDATE_LOCATION,
        result=ResultCode.OK,
    )


class TestVisibility:
    def test_mme_sees_only_s1(self):
        probe = MonitoringProbe(ProbeLocation.MME)
        assert probe.sees(RadioInterface.S1)
        assert not probe.sees(RadioInterface.A)

    def test_msc_sees_cs_interfaces(self):
        probe = MonitoringProbe(ProbeLocation.MSC)
        assert probe.visible_interfaces == {RadioInterface.A, RadioInterface.IU_CS}

    def test_sgsn_sees_ps_legacy(self):
        probe = MonitoringProbe(ProbeLocation.SGSN)
        assert probe.visible_interfaces == {RadioInterface.GB, RadioInterface.IU_PS}

    def test_core_probes_partition_all_interfaces(self):
        # The three Fig.-4 probes together see every interface exactly once.
        probes = [
            MonitoringProbe(loc)
            for loc in (ProbeLocation.MME, ProbeLocation.MSC, ProbeLocation.SGSN)
        ]
        for interface in RadioInterface:
            seers = [p for p in probes if p.sees(interface)]
            assert len(seers) == 1, interface


class TestCapture:
    def test_observe_radio_filters(self):
        probe = MonitoringProbe(ProbeLocation.MME)
        assert probe.observe_radio(_event(RadioInterface.S1))
        assert not probe.observe_radio(_event(RadioInterface.A))
        assert len(probe.radio_events) == 1

    def test_only_hmno_probe_takes_transactions(self):
        hmno = MonitoringProbe(ProbeLocation.HMNO_SIGNALING)
        mme = MonitoringProbe(ProbeLocation.MME)
        assert hmno.observe_transaction(_txn())
        assert not mme.observe_transaction(_txn())

    def test_drain_clears_buffer(self):
        probe = MonitoringProbe(ProbeLocation.MSC)
        probe.observe_radio(_event(RadioInterface.A))
        drained = probe.drain_radio()
        assert len(drained) == 1
        assert probe.radio_events == []

    def test_drain_transactions(self):
        probe = MonitoringProbe(ProbeLocation.HMNO_SIGNALING)
        probe.observe_transaction(_txn())
        assert len(probe.drain_transactions()) == 1
        assert probe.transactions == []


class TestProbeArray:
    def test_captures_every_event_once(self):
        array = ProbeArray()
        events = [_event(interface, ts=i) for i, interface in enumerate(RadioInterface)]
        assert array.observe(events) == len(events)
        assert len(array.merged_capture()) == len(events)

    def test_merged_capture_time_ordered(self):
        array = ProbeArray()
        events = [
            _event(RadioInterface.S1, ts=5.0),
            _event(RadioInterface.A, ts=1.0),
            _event(RadioInterface.GB, ts=3.0),
        ]
        array.observe(events)
        merged = array.merged_capture()
        assert [e.timestamp for e in merged] == [1.0, 3.0, 5.0]
