"""Unit tests for sector catalogs."""

import pytest

from repro.cellular.countries import default_countries
from repro.cellular.geo import GeoPoint, haversine_km
from repro.cellular.identifiers import PLMN
from repro.cellular.operators import Operator, OperatorType
from repro.cellular.rats import RAT
from repro.cellular.sectors import Sector, SectorCatalog, build_sector_catalog

GB = default_countries().by_iso("GB")


def _operator(rats=frozenset({RAT.GSM, RAT.UMTS, RAT.LTE})):
    return Operator(name="GB-1", plmn=PLMN(234, 10), country=GB, rats=rats)


class TestBuildSectorCatalog:
    def test_one_sector_per_rat_per_site(self, rng):
        catalog = build_sector_catalog(_operator(), sites=10, rng=rng)
        assert len(catalog) == 30

    def test_respects_operator_rats(self, rng):
        op = _operator(rats=frozenset({RAT.GSM}))
        catalog = build_sector_catalog(op, sites=5, rng=rng)
        assert len(catalog) == 5
        assert all(s.rat is RAT.GSM for s in catalog)

    def test_sector_ids_unique_and_offset(self, rng):
        catalog = build_sector_catalog(_operator(), sites=5, rng=rng, sector_id_base=100)
        ids = [s.sector_id for s in catalog]
        assert len(set(ids)) == len(ids)
        assert min(ids) == 100

    def test_rejects_mvno(self, rng):
        host = _operator()
        mvno = Operator(
            name="mvno",
            plmn=PLMN(234, 40),
            country=GB,
            operator_type=OperatorType.MVNO,
            host_plmn=host.plmn,
        )
        with pytest.raises(ValueError):
            build_sector_catalog(mvno, sites=3, rng=rng)

    def test_rejects_zero_sites(self, rng):
        with pytest.raises(ValueError):
            build_sector_catalog(_operator(), sites=0, rng=rng)

    def test_sites_inside_country_footprint(self, rng):
        catalog = build_sector_catalog(_operator(), sites=30, rng=rng)
        center = GeoPoint(GB.lat, GB.lon)
        for sector in catalog:
            assert haversine_km(sector.position, center) <= GB.radius_km * 1.05


class TestSectorCatalogQueries:
    @pytest.fixture()
    def catalog(self, rng):
        return build_sector_catalog(_operator(), sites=20, rng=rng)

    def test_by_id(self, catalog):
        sector = next(iter(catalog))
        assert catalog.by_id(sector.sector_id) is sector

    def test_by_id_unknown_raises(self, catalog):
        with pytest.raises(KeyError):
            catalog.by_id(999999)

    def test_nearest_returns_correct_rat(self, catalog):
        point = GeoPoint(GB.lat, GB.lon)
        for rat in RAT:
            sector = catalog.nearest(point, rat)
            assert sector is not None and sector.rat is rat

    def test_nearest_is_actually_nearest(self, catalog):
        point = GeoPoint(GB.lat + 0.5, GB.lon - 0.5)
        nearest = catalog.nearest(point, RAT.GSM)
        best = min(
            catalog.sectors_for(RAT.GSM),
            key=lambda s: haversine_km(s.position, point),
        )
        assert nearest.sector_id == best.sector_id

    def test_nearest_none_for_unsupported_rat(self, rng):
        catalog = build_sector_catalog(
            _operator(rats=frozenset({RAT.GSM})), sites=3, rng=rng
        )
        assert catalog.nearest(GeoPoint(GB.lat, GB.lon), RAT.LTE) is None

    def test_duplicate_ids_rejected(self):
        op = _operator()
        sector = Sector(1, str(op.plmn), RAT.GSM, GeoPoint(GB.lat, GB.lon))
        with pytest.raises(ValueError):
            SectorCatalog(op, [sector, sector])
