"""Unit tests for cellular numbering identifiers."""

import pytest

from repro.cellular.identifiers import (
    IMEI,
    IMSI,
    PLMN,
    hash_device_id,
    luhn_check_digit,
)
from repro.cellular.identifiers import luhn_is_valid


class TestLuhn:
    def test_known_imei_check_digit(self):
        # Classic example IMEI 490154203237518.
        assert luhn_check_digit("49015420323751") == 8

    def test_validates_full_string(self):
        assert luhn_is_valid("490154203237518")
        assert not luhn_is_valid("490154203237519")

    def test_rejects_non_digits(self):
        with pytest.raises(ValueError):
            luhn_check_digit("12a4")

    def test_short_strings_invalid(self):
        assert not luhn_is_valid("5")


class TestPLMN:
    def test_string_round_trip_two_digit_mnc(self):
        plmn = PLMN(mcc=234, mnc=10)
        assert str(plmn) == "23410"
        assert PLMN.parse("23410") == plmn

    def test_string_round_trip_three_digit_mnc(self):
        plmn = PLMN(mcc=310, mnc=4, mnc_digits=3)
        assert str(plmn) == "310004"
        assert PLMN.parse("310004") == plmn

    def test_leading_zero_mnc_preserved(self):
        plmn = PLMN(mcc=204, mnc=4)
        assert str(plmn) == "20404"

    def test_rejects_bad_mcc(self):
        with pytest.raises(ValueError):
            PLMN(mcc=99, mnc=1)

    def test_rejects_mnc_overflow(self):
        with pytest.raises(ValueError):
            PLMN(mcc=234, mnc=100, mnc_digits=2)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            PLMN.parse("12ab5")
        with pytest.raises(ValueError):
            PLMN.parse("1234567")


class TestIMSI:
    def test_fifteen_digits(self):
        imsi = IMSI(plmn=PLMN(214, 7), msin=42)
        assert len(str(imsi)) == 15
        assert str(imsi).startswith("21407")

    def test_parse_round_trip(self):
        imsi = IMSI(plmn=PLMN(234, 10), msin=123456)
        assert IMSI.parse(str(imsi)) == imsi

    def test_msin_overflow_rejected(self):
        with pytest.raises(ValueError):
            IMSI(plmn=PLMN(234, 10), msin=10**10 + 1)

    def test_in_range_inclusive(self):
        plmn = PLMN(234, 10)
        lo = IMSI(plmn, 100)
        hi = IMSI(plmn, 200)
        assert IMSI(plmn, 100).in_range(lo, hi)
        assert IMSI(plmn, 200).in_range(lo, hi)
        assert IMSI(plmn, 150).in_range(lo, hi)
        assert not IMSI(plmn, 99).in_range(lo, hi)
        assert not IMSI(plmn, 201).in_range(lo, hi)


class TestIMEI:
    def test_fifteen_digits_with_check(self):
        imei = IMEI(tac=35000001, serial=123456)
        text = str(imei)
        assert len(text) == 15
        assert luhn_is_valid(text)

    def test_parse_round_trip(self):
        imei = IMEI(tac=86000004, serial=999999)
        assert IMEI.parse(str(imei)) == imei

    def test_parse_rejects_bad_check_digit(self):
        imei = IMEI(tac=35000001, serial=123456)
        text = str(imei)
        bad = text[:-1] + str((int(text[-1]) + 1) % 10)
        with pytest.raises(ValueError):
            IMEI.parse(bad)

    def test_rejects_oversized_fields(self):
        with pytest.raises(ValueError):
            IMEI(tac=10**8, serial=0)
        with pytest.raises(ValueError):
            IMEI(tac=0, serial=10**6)


class TestHashDeviceId:
    def test_stable(self):
        assert hash_device_id("21407000000042") == hash_device_id("21407000000042")

    def test_distinct_inputs_distinct_outputs(self):
        assert hash_device_id("a") != hash_device_id("b")

    def test_salt_changes_output(self):
        assert hash_device_id("x", salt="s1") != hash_device_id("x", salt="s2")

    def test_no_raw_identifier_leak(self):
        raw = "21407000000042"
        assert raw not in hash_device_id(raw)
