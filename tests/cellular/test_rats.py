"""Unit tests for RATs and the radio-flags bitmask."""

import pytest

from repro.cellular.rats import RAT, RadioFlags


class TestRAT:
    def test_generations(self):
        assert RAT.GSM.generation == 2
        assert RAT.UMTS.generation == 3
        assert RAT.LTE.generation == 4

    def test_from_generation_round_trip(self):
        for rat in RAT:
            assert RAT.from_generation(rat.generation) is rat

    def test_from_generation_rejects_unknown(self):
        with pytest.raises(ValueError):
            RAT.from_generation(5)


class TestRadioFlags:
    def test_empty_default(self):
        flags = RadioFlags()
        assert flags.is_empty
        assert flags.rats == frozenset()
        assert flags.label() == "none"

    def test_with_rat_sets_bit(self):
        flags = RadioFlags().with_rat(RAT.GSM)
        assert flags.has(RAT.GSM)
        assert not flags.has(RAT.UMTS)
        assert flags.only(RAT.GSM)

    def test_with_rat_is_idempotent(self):
        flags = RadioFlags().with_rat(RAT.LTE).with_rat(RAT.LTE)
        assert flags.mask == RadioFlags.from_rats([RAT.LTE]).mask

    def test_union(self):
        a = RadioFlags.from_rats([RAT.GSM])
        b = RadioFlags.from_rats([RAT.LTE])
        assert a.union(b).rats == {RAT.GSM, RAT.LTE}

    def test_as_tuple_matches_paper_encoding(self):
        flags = RadioFlags.from_rats([RAT.GSM, RAT.LTE])
        assert flags.as_tuple() == (1, 0, 1)

    def test_labels(self):
        assert RadioFlags.from_rats([RAT.GSM]).label() == "2G-only"
        assert RadioFlags.from_rats([RAT.GSM, RAT.UMTS]).label() == "2G+3G"
        assert (
            RadioFlags.from_rats([RAT.GSM, RAT.UMTS, RAT.LTE]).label()
            == "2G+3G+4G"
        )

    def test_label_order_is_generation_sorted(self):
        # Construction order must not affect the label.
        a = RadioFlags.from_rats([RAT.LTE, RAT.GSM])
        b = RadioFlags.from_rats([RAT.GSM, RAT.LTE])
        assert a.label() == b.label() == "2G+4G"

    def test_mask_bounds(self):
        with pytest.raises(ValueError):
            RadioFlags(mask=8)
        with pytest.raises(ValueError):
            RadioFlags(mask=-1)

    def test_only_is_exclusive(self):
        flags = RadioFlags.from_rats([RAT.GSM, RAT.UMTS])
        assert not flags.only(RAT.GSM)
