"""Unit tests for the operator registry."""

import pytest

from repro.cellular.countries import default_countries
from repro.cellular.identifiers import PLMN
from repro.cellular.operators import Operator, OperatorRegistry, OperatorType
from repro.cellular.rats import RAT

COUNTRIES = default_countries()
GB = COUNTRIES.by_iso("GB")
ES = COUNTRIES.by_iso("ES")


def _mno(name="GB-1", plmn=None, country=GB, **kwargs):
    return Operator(name=name, plmn=plmn or PLMN(234, 10), country=country, **kwargs)


class TestOperator:
    def test_plmn_mcc_must_match_country(self):
        with pytest.raises(ValueError):
            Operator(name="bad", plmn=PLMN(214, 1), country=GB)

    def test_mvno_requires_host(self):
        with pytest.raises(ValueError):
            Operator(
                name="mvno",
                plmn=PLMN(234, 40),
                country=GB,
                operator_type=OperatorType.MVNO,
            )

    def test_mno_cannot_declare_host(self):
        with pytest.raises(ValueError):
            Operator(
                name="mno", plmn=PLMN(234, 11), country=GB, host_plmn=PLMN(234, 10)
            )

    def test_supports(self):
        op = _mno(rats=frozenset({RAT.GSM, RAT.UMTS}))
        assert op.supports(RAT.GSM)
        assert not op.supports(RAT.LTE)


class TestOperatorRegistry:
    def test_add_and_lookup(self):
        registry = OperatorRegistry([_mno()])
        assert registry.by_plmn(PLMN(234, 10)).name == "GB-1"

    def test_duplicate_plmn_rejected(self):
        registry = OperatorRegistry([_mno()])
        with pytest.raises(ValueError):
            registry.add(_mno(name="other"))

    def test_unknown_plmn_raises(self):
        registry = OperatorRegistry()
        with pytest.raises(KeyError):
            registry.by_plmn(PLMN(234, 10))
        assert registry.get(PLMN(234, 10)) is None

    def test_mvno_host_must_exist(self):
        registry = OperatorRegistry()
        mvno = Operator(
            name="mvno",
            plmn=PLMN(234, 40),
            country=GB,
            operator_type=OperatorType.MVNO,
            host_plmn=PLMN(234, 10),
        )
        with pytest.raises(ValueError):
            registry.add(mvno)
        registry.add(_mno())
        registry.add(mvno)
        assert registry.by_plmn(PLMN(234, 40)).is_mvno

    def test_country_queries(self):
        host = _mno()
        mvno = Operator(
            name="mvno",
            plmn=PLMN(234, 40),
            country=GB,
            operator_type=OperatorType.MVNO,
            host_plmn=host.plmn,
        )
        foreign = Operator(name="ES-1", plmn=PLMN(214, 10), country=ES)
        registry = OperatorRegistry([host, mvno, foreign])
        assert len(registry.in_country("GB")) == 2
        assert registry.mnos_in_country("GB") == [host]
        assert registry.mvnos_hosted_by(host) == [mvno]

    def test_host_of_resolves_mvno(self):
        host = _mno()
        mvno = Operator(
            name="mvno",
            plmn=PLMN(234, 40),
            country=GB,
            operator_type=OperatorType.MVNO,
            host_plmn=host.plmn,
        )
        registry = OperatorRegistry([host, mvno])
        assert registry.host_of(mvno) is host
        assert registry.host_of(host) is host
