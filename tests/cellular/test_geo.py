"""Unit tests for geographic primitives."""


import pytest

from repro.cellular.geo import (
    GeoPoint,
    bounding_radius_km,
    haversine_km,
    offset_km,
    pairwise_max_distance_km,
    radius_of_gyration_km,
    scatter_points,
    weighted_centroid,
)

MADRID = GeoPoint(40.4168, -3.7038)
LONDON = GeoPoint(51.5074, -0.1278)


class TestHaversine:
    def test_known_distance_madrid_london(self):
        # ~1264 km great-circle.
        assert haversine_km(MADRID, LONDON) == pytest.approx(1264, rel=0.02)

    def test_zero_for_same_point(self):
        assert haversine_km(MADRID, MADRID) == 0.0

    def test_symmetry(self):
        assert haversine_km(MADRID, LONDON) == pytest.approx(
            haversine_km(LONDON, MADRID)
        )


class TestGeoPoint:
    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            GeoPoint(91.0, 0.0)
        with pytest.raises(ValueError):
            GeoPoint(0.0, 181.0)


class TestOffset:
    def test_north_offset_distance(self):
        moved = offset_km(MADRID, 0.0, 100.0)
        assert haversine_km(MADRID, moved) == pytest.approx(100, rel=0.02)

    def test_east_offset_distance(self):
        moved = offset_km(MADRID, 100.0, 0.0)
        assert haversine_km(MADRID, moved) == pytest.approx(100, rel=0.02)

    def test_wraps_longitude(self):
        near_dateline = GeoPoint(0.0, 179.9)
        moved = offset_km(near_dateline, 50.0, 0.0)
        assert -180.0 <= moved.lon <= 180.0


class TestCentroid:
    def test_single_point(self):
        c = weighted_centroid([MADRID], [1.0])
        assert c.lat == pytest.approx(MADRID.lat, abs=1e-6)

    def test_dominant_weight_pulls_centroid(self):
        c = weighted_centroid([MADRID, LONDON], [1000.0, 1.0])
        assert haversine_km(c, MADRID) < 5.0

    def test_equal_weights_midpointish(self):
        c = weighted_centroid([MADRID, LONDON], [1.0, 1.0])
        assert abs(haversine_km(c, MADRID) - haversine_km(c, LONDON)) < 5.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            weighted_centroid([MADRID], [1.0, 2.0])

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            weighted_centroid([MADRID], [0.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_centroid([], [])


class TestGyration:
    def test_single_point_zero(self):
        assert radius_of_gyration_km([MADRID], [5.0]) == 0.0

    def test_stationary_cluster_small(self):
        points = [MADRID, offset_km(MADRID, 0.5, 0.5)]
        assert radius_of_gyration_km(points, [10.0, 1.0]) < 1.0

    def test_two_distant_points_half_distance(self):
        gyration = radius_of_gyration_km([MADRID, LONDON], [1.0, 1.0])
        assert gyration == pytest.approx(haversine_km(MADRID, LONDON) / 2, rel=0.02)

    def test_bounded_by_max_distance_to_centroid(self):
        points = [MADRID, LONDON, offset_km(MADRID, 300, -200)]
        weights = [3.0, 1.0, 2.0]
        centroid = weighted_centroid(points, weights)
        max_dist = max(haversine_km(p, centroid) for p in points)
        assert radius_of_gyration_km(points, weights) <= max_dist + 1e-9


class TestScatter:
    def test_count_and_radius(self, rng):
        points = scatter_points(MADRID, 200.0, 50, rng)
        assert len(points) == 50
        assert bounding_radius_km(points, MADRID) <= 205.0

    def test_zero_count(self, rng):
        assert scatter_points(MADRID, 100.0, 0, rng) == []

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ValueError):
            scatter_points(MADRID, 100.0, -1, rng)


class TestPairwiseMax:
    def test_matches_known_pair(self):
        points = [MADRID, LONDON, offset_km(MADRID, 10, 10)]
        assert pairwise_max_distance_km(points) == pytest.approx(
            haversine_km(MADRID, LONDON), rel=0.02
        )

    def test_empty_and_single(self):
        assert pairwise_max_distance_km([]) == 0.0
        assert pairwise_max_distance_km([MADRID]) == 0.0
