"""Unit tests for the synthetic GSMA TAC catalog."""

import numpy as np
import pytest

from repro.cellular.rats import RAT
from repro.cellular.tac_db import (
    DeviceModel,
    DeviceOS,
    GSMALabel,
    M2M_MODULE_VENDORS,
    SMARTPHONE_OSES,
    TACCatalogBuilder,
    TACDatabase,
    default_tac_database,
)


class TestDeviceModel:
    def _model(self, **kwargs):
        defaults = dict(
            tac=35000000,
            manufacturer="Acme",
            brand="Acme",
            model_name="A1",
            os=DeviceOS.ANDROID,
            bands=frozenset({RAT.GSM}),
            label=GSMALabel.SMARTPHONE,
        )
        defaults.update(kwargs)
        return DeviceModel(**defaults)

    def test_smartphone_os_detection(self):
        assert self._model().is_smartphone_os
        assert not self._model(os=DeviceOS.RTOS).is_smartphone_os

    def test_property_key(self):
        assert self._model().property_key == ("Acme", "A1")

    def test_rejects_empty_bands(self):
        with pytest.raises(ValueError):
            self._model(bands=frozenset())

    def test_rejects_bad_tac(self):
        with pytest.raises(ValueError):
            self._model(tac=10**9)


class TestTACDatabase:
    def test_lookup_unknown_returns_none(self):
        db = TACDatabase([])
        assert db.lookup(12345678) is None

    def test_duplicate_tac_rejected(self):
        model = DeviceModel(
            tac=1,
            manufacturer="A",
            brand="A",
            model_name="m",
            os=DeviceOS.NONE,
            bands=frozenset({RAT.GSM}),
            label=GSMALabel.MODEM,
        )
        with pytest.raises(ValueError):
            TACDatabase([model, model])


class TestDefaultCatalog:
    @pytest.fixture(scope="class")
    def db(self):
        return default_tac_database(seed=7)

    def test_deterministic(self, db):
        again = default_tac_database(seed=7)
        assert {m.tac for m in db} == {m.tac for m in again}

    def test_contains_the_paper_module_vendors(self, db):
        manufacturers = set(db.manufacturers())
        assert set(M2M_MODULE_VENDORS) <= manufacturers

    def test_module_vendors_only_get_modem_module_labels(self, db):
        for vendor in M2M_MODULE_VENDORS:
            labels = {m.label for m in db.by_manufacturer(vendor)}
            assert labels <= {GSMALabel.MODEM, GSMALabel.MODULE}

    def test_smartphones_have_smartphone_os(self, db):
        smartphones = [m for m in db if m.label is GSMALabel.SMARTPHONE]
        assert smartphones
        assert all(m.os in SMARTPHONE_OSES for m in smartphones)

    def test_feature_phones_are_not_lte(self, db):
        feats = [m for m in db if m.label is GSMALabel.FEATURE_PHONE]
        assert feats
        assert all(RAT.LTE not in m.bands for m in feats)

    def test_long_tail_exists_and_is_unknown(self, db):
        unknown = [m for m in db if m.label is GSMALabel.UNKNOWN]
        vendors = {m.manufacturer for m in unknown}
        # Long tail dominates the vendor count (the paper's 2,436-vendor
        # problem at reduced scale).
        assert len(vendors) >= 30

    def test_tac_blocks_by_family(self, db):
        for model in db:
            prefix = int(str(f"{model.tac:08d}")[:2])
            assert prefix in (35, 86)


class TestBuilder:
    def test_custom_build_counts(self):
        builder = TACCatalogBuilder(np.random.default_rng(1))
        builder.add_smartphones(models_per_vendor=2)
        builder.add_m2m_modules(models_per_vendor=3)
        db = builder.build()
        smart = [m for m in db if m.label is GSMALabel.SMARTPHONE]
        modules = [m for m in db if m.label in (GSMALabel.MODEM, GSMALabel.MODULE)]
        assert len(smart) == 2 * 7  # 7 smartphone vendors
        assert len(modules) == 3 * 3  # 3 module vendors

    def test_lte_share_zero_gives_no_lte_modules(self):
        builder = TACCatalogBuilder(np.random.default_rng(1))
        builder.add_m2m_modules(models_per_vendor=10, lte_share=0.0)
        db = builder.build()
        assert all(RAT.LTE not in m.bands for m in db)
