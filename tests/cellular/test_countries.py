"""Unit tests for the country registry."""

import pytest

from repro.cellular.countries import (
    Country,
    CountryRegistry,
    Region,
    default_countries,
)


def _country(iso="XX", mcc=999, **kwargs):
    defaults = dict(
        name="Testland", region=Region.EUROPE, lat=0.0, lon=0.0
    )
    defaults.update(kwargs)
    return Country(iso=iso, mcc=mcc, **defaults)


class TestCountry:
    def test_rejects_lowercase_iso(self):
        with pytest.raises(ValueError):
            _country(iso="xx")

    def test_rejects_long_iso(self):
        with pytest.raises(ValueError):
            _country(iso="XXX")

    def test_rejects_bad_mcc(self):
        with pytest.raises(ValueError):
            _country(mcc=42)


class TestCountryRegistry:
    def test_lookup_by_iso_and_mcc(self):
        registry = CountryRegistry([_country()])
        assert registry.by_iso("XX").mcc == 999
        assert registry.by_mcc(999).iso == "XX"

    def test_unknown_iso_raises(self):
        registry = CountryRegistry([_country()])
        with pytest.raises(KeyError):
            registry.by_iso("ZZ")

    def test_unknown_mcc_returns_none(self):
        registry = CountryRegistry([_country()])
        assert registry.by_mcc(111) is None

    def test_duplicate_iso_rejected(self):
        with pytest.raises(ValueError):
            CountryRegistry([_country(), _country(mcc=998)])

    def test_duplicate_mcc_rejected(self):
        with pytest.raises(ValueError):
            CountryRegistry([_country(), _country(iso="YY")])

    def test_contains(self):
        registry = CountryRegistry([_country()])
        assert "XX" in registry
        assert "ZZ" not in registry


class TestDefaultCountries:
    def test_has_named_actors(self):
        countries = default_countries()
        for iso in ("ES", "GB", "DE", "MX", "AR", "NL", "SE"):
            assert iso in countries

    def test_real_mcc_allocations(self):
        countries = default_countries()
        assert countries.by_iso("ES").mcc == 214
        assert countries.by_iso("GB").mcc == 234
        assert countries.by_iso("NL").mcc == 204

    def test_eu_roaming_zone(self):
        countries = default_countries()
        assert countries.by_iso("ES").eu_roaming
        assert not countries.by_iso("GB").eu_roaming  # post-Brexit window
        assert not countries.by_iso("US").eu_roaming

    def test_latam_roaming_restrictions(self):
        countries = default_countries()
        assert countries.by_iso("MX").roaming_restricted
        assert countries.by_iso("AR").roaming_restricted

    def test_region_query(self):
        countries = default_countries()
        latam = countries.in_region(Region.LATIN_AMERICA)
        assert {c.iso for c in latam} >= {"MX", "AR", "BR"}
