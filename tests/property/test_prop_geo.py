"""Property-based tests for geodesic math."""

import math

from hypothesis import assume, given
from hypothesis import strategies as st

from repro.cellular.geo import (
    GeoPoint,
    haversine_km,
    offset_km,
    radius_of_gyration_km,
    weighted_centroid,
)

# Stay away from the poles where flat-earth offsets degenerate.
lats = st.floats(min_value=-70.0, max_value=70.0)
lons = st.floats(min_value=-179.0, max_value=179.0)
points = st.builds(GeoPoint, lat=lats, lon=lons)
weights = st.floats(min_value=0.01, max_value=1000.0)


class TestHaversineProperties:
    @given(points, points)
    def test_symmetric(self, a, b):
        assert haversine_km(a, b) == haversine_km(b, a)

    @given(points)
    def test_identity(self, p):
        assert haversine_km(p, p) == 0.0

    @given(points, points)
    def test_non_negative_and_bounded(self, a, b):
        d = haversine_km(a, b)
        assert 0.0 <= d <= 20100.0  # half the Earth's circumference + slack

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert haversine_km(a, c) <= haversine_km(a, b) + haversine_km(b, c) + 1e-6


class TestCentroidProperties:
    @given(st.lists(st.tuples(points, weights), min_size=1, max_size=8))
    def test_centroid_within_bounding_distance(self, weighted_points):
        pts = [p for p, _ in weighted_points]
        ws = [w for _, w in weighted_points]
        max_pairwise = max(
            (haversine_km(a, b) for a in pts for b in pts), default=0.0
        )
        # Only a true theorem for regional point sets; near-antipodal
        # spreads can place the spherical mean outside the "diameter"
        # ball.  Sector visits are always regional.
        assume(max_pairwise < 5000.0)
        centroid = weighted_centroid(pts, ws)
        assert all(
            haversine_km(centroid, p) <= max_pairwise + 1.0 for p in pts
        )

    @given(points, weights)
    def test_single_point_fixed(self, p, w):
        centroid = weighted_centroid([p], [w])
        assert haversine_km(centroid, p) < 0.001

    @given(st.lists(st.tuples(points, weights), min_size=2, max_size=8))
    def test_weight_scaling_invariant(self, weighted_points):
        pts = [p for p, _ in weighted_points]
        ws = [w for _, w in weighted_points]
        a = weighted_centroid(pts, ws)
        b = weighted_centroid(pts, [w * 7.5 for w in ws])
        assert haversine_km(a, b) < 0.001


class TestGyrationProperties:
    @given(st.lists(st.tuples(points, weights), min_size=1, max_size=8))
    def test_bounded_by_diameter(self, weighted_points):
        pts = [p for p, _ in weighted_points]
        ws = [w for _, w in weighted_points]
        gyration = radius_of_gyration_km(pts, ws)
        max_pairwise = max(
            (haversine_km(a, b) for a in pts for b in pts), default=0.0
        )
        assert 0.0 <= gyration <= max_pairwise + 1.0

    @given(points, st.lists(weights, min_size=1, max_size=5))
    def test_identical_points_zero(self, p, ws):
        assert radius_of_gyration_km([p] * len(ws), ws) < 0.001


class TestOffsetProperties:
    @given(points, st.floats(-500, 500), st.floats(-500, 500))
    def test_distance_roughly_matches_offset(self, p, east, north):
        assume(abs(p.lat) < 60)
        magnitude = math.hypot(east, north)
        assume(magnitude > 1.0)
        moved = offset_km(p, east, north)
        assert haversine_km(p, moved) <= magnitude * 1.2 + 1.0
