"""Property-based tests for billing and clearing invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.roaming.billing import WholesaleRater, WholesaleTariff
from repro.roaming.clearing import (
    ClearingHouse,
    UsageStatement,
    clearing_load_per_euro,
)
from repro.signaling.cdr import ServiceRecord, ServiceType

VISITED = "23410"

home_plmns = st.sampled_from(["21407", "20404", "26210", VISITED])


@st.composite
def service_records(draw):
    is_voice = draw(st.booleans())
    return ServiceRecord(
        device_id=draw(st.sampled_from(["a", "b", "c", "d"])),
        timestamp=draw(st.floats(0.0, 1000.0)),
        sim_plmn=draw(home_plmns),
        visited_plmn=draw(st.sampled_from([VISITED, "20810"])),
        service=ServiceType.VOICE if is_voice else ServiceType.DATA,
        duration_s=draw(st.floats(0.0, 3600.0)) if is_voice else 0.0,
        bytes_total=0 if is_voice else draw(st.integers(0, 10**8)),
    )


@st.composite
def statements(draw):
    return UsageStatement(
        home_plmn=draw(home_plmns),
        visited_plmn=VISITED,
        service=draw(st.sampled_from(list(ServiceType))),
        units=draw(st.floats(0.0, 1e4)),
        charge_eur=draw(st.floats(0.0, 1e3)),
        n_records=draw(st.integers(0, 1000)),
    )


class TestBillingProperties:
    @given(records=st.lists(service_records(), max_size=40))
    @settings(max_examples=80)
    def test_charges_non_negative_and_only_inbound(self, records):
        rater = WholesaleRater(VISITED)
        tap = rater.rate_records(records)
        for line in tap:
            assert line.charge_eur >= 0.0
            assert line.units >= 0.0
            assert line.home_plmn != VISITED
            assert line.visited_plmn == VISITED

    @given(records=st.lists(service_records(), max_size=40))
    @settings(max_examples=80)
    def test_rating_is_linear_in_tariff(self, records):
        base = WholesaleRater(VISITED, WholesaleTariff(0.004, 0.032))
        doubled = WholesaleRater(VISITED, WholesaleTariff(0.008, 0.064))
        total_base = sum(l.charge_eur for l in base.rate_records(records))
        total_doubled = sum(l.charge_eur for l in doubled.rate_records(records))
        assert total_doubled == pytest.approx(2 * total_base, rel=1e-9)

    @given(records=st.lists(service_records(), max_size=40))
    @settings(max_examples=80)
    def test_revenue_aggregations_conserve(self, records):
        rater = WholesaleRater(VISITED)
        tap = rater.rate_records(records)
        total = sum(l.charge_eur for l in tap)
        by_home = sum(WholesaleRater.revenue_by_home_plmn(tap).values())
        by_device = sum(WholesaleRater.revenue_per_device(tap).values())
        assert by_home == pytest.approx(total)
        assert by_device == pytest.approx(total)


class TestClearingProperties:
    @given(books=st.lists(statements(), max_size=15))
    @settings(max_examples=80)
    def test_identical_books_never_dispute(self, books):
        # Lanes must be unique per (home, visited, service): aggregate
        # duplicates first, as statements_from_tap would.
        lanes = {}
        for statement in books:
            key = (statement.home_plmn, statement.visited_plmn, statement.service)
            lanes.setdefault(key, statement)
        unique = list(lanes.values())
        settlement = ClearingHouse().reconcile(unique, unique)
        assert settlement.disputed_eur == 0.0
        assert settlement.dispute_rate == 0.0
        assert settlement.agreed_eur == pytest.approx(
            sum(s.charge_eur for s in unique)
        )

    @given(books=st.lists(statements(), max_size=15))
    @settings(max_examples=80)
    def test_settlement_totals_bounded(self, books):
        lanes = {}
        for statement in books:
            key = (statement.home_plmn, statement.visited_plmn, statement.service)
            lanes.setdefault(key, statement)
        unique = list(lanes.values())
        settlement = ClearingHouse().reconcile(unique, [])
        # With an empty home side, everything claimed is in dispute.
        assert settlement.agreed_eur == 0.0
        assert settlement.disputed_eur == pytest.approx(
            sum(s.charge_eur for s in unique)
        )
        assert len(settlement.discrepancies) == len(unique)

    @given(books=st.lists(statements(), min_size=1, max_size=15))
    @settings(max_examples=80)
    def test_load_per_euro_non_negative(self, books):
        load = clearing_load_per_euro(books)
        assert all(value >= 0 for value in load.values())
