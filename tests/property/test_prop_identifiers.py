"""Property-based tests for numbering identifiers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.cellular.identifiers import (
    IMEI,
    IMSI,
    PLMN,
    hash_device_id,
    luhn_check_digit,
    luhn_is_valid,
)

plmns = st.builds(
    PLMN,
    mcc=st.integers(100, 999),
    mnc=st.integers(0, 99),
    mnc_digits=st.just(2),
)
plmns3 = st.builds(
    PLMN,
    mcc=st.integers(100, 999),
    mnc=st.integers(0, 999),
    mnc_digits=st.just(3),
)


class TestLuhnProperties:
    @given(st.text(alphabet="0123456789", min_size=1, max_size=20))
    def test_appending_check_digit_validates(self, digits):
        check = luhn_check_digit(digits)
        assert luhn_is_valid(digits + str(check))

    @given(st.text(alphabet="0123456789", min_size=1, max_size=20))
    def test_check_digit_in_range(self, digits):
        assert 0 <= luhn_check_digit(digits) <= 9

    @given(st.text(alphabet="0123456789", min_size=1, max_size=20), st.integers(1, 9))
    def test_corrupting_check_digit_invalidates(self, digits, delta):
        check = luhn_check_digit(digits)
        corrupted = str((check + delta) % 10)
        assert not luhn_is_valid(digits + corrupted)


class TestPLMNProperties:
    @given(st.one_of(plmns, plmns3))
    def test_parse_round_trip(self, plmn):
        assert PLMN.parse(str(plmn)) == plmn

    @given(st.one_of(plmns, plmns3))
    def test_string_length(self, plmn):
        assert len(str(plmn)) == 3 + plmn.mnc_digits


class TestIMSIProperties:
    @given(plmns, st.integers(0, 10**10 - 1))
    def test_round_trip(self, plmn, msin):
        imsi = IMSI(plmn=plmn, msin=msin)
        assert IMSI.parse(str(imsi)) == imsi
        assert len(str(imsi)) == 15

    @given(plmns, st.integers(0, 10**10 - 1))
    def test_ordering_consistent_with_numeric(self, plmn, msin):
        imsi = IMSI(plmn=plmn, msin=msin)
        assert imsi.in_range(imsi, imsi)


class TestIMEIProperties:
    @given(st.integers(0, 10**8 - 1), st.integers(0, 10**6 - 1))
    def test_round_trip_and_luhn(self, tac, serial):
        imei = IMEI(tac=tac, serial=serial)
        text = str(imei)
        assert len(text) == 15
        assert luhn_is_valid(text)
        assert IMEI.parse(text) == imei


class TestHashProperties:
    @given(st.text(min_size=1, max_size=40))
    def test_deterministic_and_fixed_length(self, identifier):
        a = hash_device_id(identifier)
        assert a == hash_device_id(identifier)
        assert len(a) == 16
        assert all(c in "0123456789abcdef" for c in a)
