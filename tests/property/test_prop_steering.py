"""Property-based tests for steering policies.

Invariant under every policy: the selected operator is always one of the
candidates, the switch counter equals the number of observed changes,
and state.current always reflects the last selection.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cellular.countries import default_countries
from repro.cellular.identifiers import PLMN
from repro.cellular.operators import Operator
from repro.roaming.steering import (
    FailureDrivenSteering,
    RandomSteering,
    SteeringState,
    StickySteering,
)

GB = default_countries().by_iso("GB")
OPERATORS = [
    Operator(name=f"GB-{mnc}", plmn=PLMN(GB.mcc, mnc), country=GB)
    for mnc in (10, 20, 30, 40, 50)
]

policies = st.one_of(
    st.builds(StickySteering, failure_threshold=st.integers(1, 5)),
    st.builds(FailureDrivenSteering),
    st.builds(RandomSteering, stickiness=st.floats(0.0, 1.0)),
)


@given(
    policy=policies,
    outcomes=st.lists(st.booleans(), min_size=1, max_size=60),
    n_candidates=st.integers(1, 5),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=150)
def test_steering_invariants(policy, outcomes, n_candidates, seed):
    rng = np.random.default_rng(seed)
    candidates = OPERATORS[:n_candidates]
    state = SteeringState()
    observed_switches = 0
    last = None
    for outcome in outcomes:
        choice = policy.select(candidates, state, rng)
        assert choice.plmn in {c.plmn for c in candidates}
        assert state.current is choice
        if last is not None and choice.plmn != last:
            observed_switches += 1
        last = choice.plmn
        state.record_outcome(outcome)
    assert state.switches == observed_switches


@given(
    outcomes=st.lists(st.booleans(), min_size=1, max_size=60),
    seed=st.integers(0, 2**16),
)
def test_single_candidate_never_switches(outcomes, seed):
    rng = np.random.default_rng(seed)
    state = SteeringState()
    policy = RandomSteering(stickiness=0.0)
    for outcome in outcomes:
        choice = policy.select(OPERATORS[:1], state, rng)
        assert choice.plmn == OPERATORS[0].plmn
        state.record_outcome(outcome)
    assert state.switches == 0
