"""Property-based tests for the radio-flags bitmask."""

from hypothesis import given
from hypothesis import strategies as st

from repro.cellular.rats import RAT, RadioFlags

rat_sets = st.frozensets(st.sampled_from(list(RAT)))
masks = st.integers(0, 7)


class TestRadioFlagsProperties:
    @given(rat_sets)
    def test_from_rats_round_trip(self, rats):
        assert RadioFlags.from_rats(rats).rats == rats

    @given(masks, masks)
    def test_union_commutative(self, a, b):
        fa, fb = RadioFlags(a), RadioFlags(b)
        assert fa.union(fb) == fb.union(fa)

    @given(masks)
    def test_union_idempotent(self, mask):
        flags = RadioFlags(mask)
        assert flags.union(flags) == flags

    @given(masks, st.sampled_from(list(RAT)))
    def test_with_rat_monotone(self, mask, rat):
        flags = RadioFlags(mask)
        grown = flags.with_rat(rat)
        assert flags.rats <= grown.rats
        assert grown.has(rat)

    @given(rat_sets)
    def test_tuple_encoding_matches_membership(self, rats):
        flags = RadioFlags.from_rats(rats)
        g2, g3, g4 = flags.as_tuple()
        assert bool(g2) == (RAT.GSM in rats)
        assert bool(g3) == (RAT.UMTS in rats)
        assert bool(g4) == (RAT.LTE in rats)

    @given(rat_sets)
    def test_label_mentions_every_generation(self, rats):
        label = RadioFlags.from_rats(rats).label()
        if not rats:
            assert label == "none"
        else:
            for rat in rats:
                assert rat.value in label

    @given(masks)
    def test_label_distinct_per_mask(self, mask):
        # The 8 possible masks map to 8 distinct labels.
        labels = {RadioFlags(m).label() for m in range(8)}
        assert len(labels) == 8
