"""Property-based tests for mobility models and presence patterns."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cellular.geo import GeoPoint, haversine_km
from repro.devices.mobility_models import (
    CommuterMobility,
    InternationalMobility,
    StationaryMobility,
    VehicularMobility,
)
from repro.devices.profiles import PresenceKind, PresencePattern

lats = st.floats(min_value=-60.0, max_value=60.0)
lons = st.floats(min_value=-170.0, max_value=170.0)
points = st.builds(GeoPoint, lat=lats, lon=lons)
seeds = st.integers(0, 2**16)
days = st.integers(0, 21)


def _models(anchor):
    return [
        StationaryMobility(anchor=anchor),
        CommuterMobility(home=anchor, work=anchor),
        VehicularMobility(start=anchor, leg_km=30.0, legs=4),
        InternationalMobility(country_anchors=[anchor]),
    ]


class TestMobilityInvariants:
    @given(anchor=points, day=days, seed=seeds)
    @settings(max_examples=60)
    def test_visits_nonempty_with_positive_weights(self, anchor, day, seed):
        rng = np.random.default_rng(seed)
        for model in _models(anchor):
            visits = model.visits_for_day(day, rng)
            assert visits
            assert all(weight > 0 for _, weight in visits)

    @given(anchor=points, day=days, seed=seeds)
    @settings(max_examples=60)
    def test_stationary_stays_near_anchor(self, anchor, day, seed):
        rng = np.random.default_rng(seed)
        model = StationaryMobility(anchor=anchor, reselection_km=2.0)
        for position, _ in model.visits_for_day(day, rng):
            assert haversine_km(position, anchor) < 20.0

    @given(anchor=points, day=days, seed=seeds)
    @settings(max_examples=60)
    def test_vehicular_dwell_sums_to_a_day(self, anchor, day, seed):
        rng = np.random.default_rng(seed)
        model = VehicularMobility(start=anchor, legs=5)
        visits = model.visits_for_day(day, rng)
        assert sum(w for _, w in visits) == pytest.approx(24.0)

    @given(anchor=points, seed=seeds)
    @settings(max_examples=40)
    def test_same_seed_same_visits(self, anchor, seed):
        a = VehicularMobility(start=anchor, legs=3).visits_for_day(
            0, np.random.default_rng(seed)
        )
        b = VehicularMobility(start=anchor, legs=3).visits_for_day(
            0, np.random.default_rng(seed)
        )
        assert [(p.lat, p.lon, w) for p, w in a] == [
            (p.lat, p.lon, w) for p, w in b
        ]


class TestPresenceInvariants:
    @given(
        kind=st.sampled_from(list(PresenceKind)),
        p_active=st.floats(0.05, 1.0),
        stay=st.floats(0.5, 30.0),
        deploying=st.floats(0.0, 1.0),
        window=st.integers(1, 40),
        seed=seeds,
    )
    @settings(max_examples=120)
    def test_active_days_always_valid(
        self, kind, p_active, stay, deploying, window, seed
    ):
        pattern = PresencePattern(
            kind, p_active_daily=p_active, stay_mean_days=stay, deploying=deploying
        )
        rng = np.random.default_rng(seed)
        active = pattern.sample_active_days(window, rng)
        assert len(active) >= 1
        assert active.min() >= 0
        assert active.max() < window
        assert (np.diff(active) > 0).all()  # sorted, unique

    @given(window=st.integers(2, 40), seed=seeds)
    @settings(max_examples=60)
    def test_visitor_days_contiguous(self, window, seed):
        pattern = PresencePattern(
            PresenceKind.VISITOR, stay_mean_days=5.0, p_active_daily=1.0
        )
        active = pattern.sample_active_days(window, np.random.default_rng(seed))
        assert (np.diff(active) == 1).all()
