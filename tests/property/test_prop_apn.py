"""Property-based tests for APN parsing and classification."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.apn import (
    APNKind,
    classify_apn,
    consumer_apn,
    default_keyword_inventory,
    energy_meter_apn,
    generic_operator_apn,
    parse_apn,
    ENERGY_COMPANIES,
)

labels = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=12
).filter(lambda s: not s.startswith("-") and not s.endswith("-"))
network_ids = st.lists(labels, min_size=1, max_size=4).map(".".join)
slugs = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=3, max_size=10)


class TestParseProperties:
    @given(network_ids, st.integers(100, 999), st.integers(0, 999))
    def test_operator_id_round_trip(self, ni, mcc, mnc):
        apn = f"{ni}.mnc{mnc:03d}.mcc{mcc:03d}.gprs"
        parsed = parse_apn(apn)
        assert parsed.network_id == ni
        assert parsed.mcc == mcc
        assert parsed.mnc == mnc
        assert str(parsed) == apn

    @given(network_ids)
    def test_ni_only_round_trip(self, ni):
        parsed = parse_apn(ni)
        assert str(parsed) == ni
        assert parsed.mcc is None

    @given(network_ids)
    def test_classification_total(self, ni):
        # classify_apn never raises on well-formed NIs, and always
        # returns a coherent triple.
        kind, vertical, keyword = classify_apn(ni)
        if kind is APNKind.M2M:
            assert vertical is not None and keyword is not None
        elif kind is APNKind.CONSUMER:
            assert vertical is None and keyword is not None
        else:
            assert vertical is None and keyword is None


class TestGeneratorProperties:
    @given(st.sampled_from(ENERGY_COMPANIES), st.integers(100, 999), st.integers(0, 999))
    def test_energy_apns_always_m2m(self, company, mcc, mnc):
        kind, _, _ = classify_apn(energy_meter_apn(company, mcc, mnc))
        assert kind is APNKind.M2M

    @given(slugs, st.integers(0, 20))
    def test_consumer_apns_always_consumer(self, slug, choice):
        # An operator slug that itself contains an M2M keyword (e.g. an
        # operator literally named "smartmeter") legitimately classifies
        # as M2M — keyword matching is substring-based, like the paper's.
        inventory = default_keyword_inventory()
        if any(keyword in slug for keyword in inventory.keywords):
            return
        kind, _, _ = classify_apn(consumer_apn(slug, choice))
        assert kind is APNKind.CONSUMER

    @given(slugs, st.integers(0, 20))
    def test_generic_apns_never_match_keywords(self, slug, choice):
        inventory = default_keyword_inventory()
        if any(keyword in slug for keyword in inventory.keywords):
            return  # keyword-bearing operator names legitimately match
        parsed = parse_apn(generic_operator_apn(slug, choice))
        assert inventory.match(parsed.network_id) is None
