"""Property-based tests for the devices-catalog builder.

Hypothesis generates arbitrary record streams; the builder must preserve
conservation laws regardless of the stream's shape:

* every input record is attributed to exactly one (device, day) row;
* sums over daily rows equal the per-device summary totals;
* radio flags are exactly the union of successful events' RATs;
* failed-event counts equal the failures in the stream.
"""

from collections import defaultdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.catalog import CatalogBuilder
from repro.core.roaming import RoamingLabeler
from repro.ecosystem import EcosystemConfig, build_default_ecosystem
from repro.signaling.cdr import ServiceRecord, ServiceType
from repro.signaling.events import RadioEvent, RadioInterface
from repro.signaling.procedures import MessageType, ResultCode

_ECO = build_default_ecosystem(EcosystemConfig(uk_sites=5, seed=1))
_SECTOR_IDS = [s.sector_id for s in _ECO.uk_sectors]
_SECTOR_OF_RAT = {
    interface: next(
        s.sector_id for s in _ECO.uk_sectors if s.rat is interface.rat
    )
    for interface in RadioInterface
}
_OBSERVER = str(_ECO.uk_mno.plmn)

device_ids = st.sampled_from(["d1", "d2", "d3"])
timestamps = st.floats(min_value=0.0, max_value=5 * 86400.0 - 1)
interfaces = st.sampled_from(list(RadioInterface))
results = st.sampled_from([ResultCode.OK, ResultCode.SYSTEM_FAILURE])


@st.composite
def radio_events(draw):
    interface = draw(interfaces)
    return RadioEvent(
        device_id=draw(device_ids),
        timestamp=draw(timestamps),
        sim_plmn=_OBSERVER,
        tac=35000001,
        sector_id=_SECTOR_OF_RAT[interface],
        interface=interface,
        event_type=MessageType.ATTACH,
        result=draw(results),
    )


@st.composite
def service_records(draw):
    is_voice = draw(st.booleans())
    return ServiceRecord(
        device_id=draw(device_ids),
        timestamp=draw(timestamps),
        sim_plmn=_OBSERVER,
        visited_plmn=_OBSERVER,
        service=ServiceType.VOICE if is_voice else ServiceType.DATA,
        duration_s=draw(st.floats(0.0, 600.0)) if is_voice else 0.0,
        bytes_total=0 if is_voice else draw(st.integers(0, 10**6)),
        apn=None if is_voice else draw(st.sampled_from([None, "a.b", "c.d"])),
    )


def _builder():
    labeler = RoamingLabeler(_ECO.operators, _ECO.uk_mno)
    return CatalogBuilder(_ECO.tac_db, _ECO.uk_sectors, labeler,
                          compute_mobility=False)


class TestCatalogConservation:
    @given(
        events=st.lists(radio_events(), max_size=40),
        services=st.lists(service_records(), max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_event_and_byte_conservation(self, events, services):
        day_records, summaries = _builder().build(events, services)

        # Per-device event counts conserve.
        expected_events = defaultdict(int)
        expected_failed = defaultdict(int)
        for event in events:
            expected_events[event.device_id] += 1
            if not event.is_success:
                expected_failed[event.device_id] += 1
        expected_bytes = defaultdict(int)
        expected_calls = defaultdict(int)
        for record in services:
            if record.is_data:
                expected_bytes[record.device_id] += record.bytes_total
            else:
                expected_calls[record.device_id] += 1

        for device_id, summary in summaries.items():
            assert summary.n_events == expected_events[device_id]
            assert summary.n_failed_events == expected_failed[device_id]
            assert summary.bytes_total == expected_bytes[device_id]
            assert summary.n_calls == expected_calls[device_id]

        # Daily rows roll up to the same totals.
        rolled = defaultdict(int)
        for record in day_records:
            rolled[record.device_id] += record.n_events
        for device_id, summary in summaries.items():
            assert rolled[device_id] == summary.n_events

    @given(events=st.lists(radio_events(), min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_radio_flags_are_successful_rat_union(self, events):
        _, summaries = _builder().build(events, [])
        expected = defaultdict(set)
        for event in events:
            if event.is_success:
                expected[event.device_id].add(event.rat)
        for device_id, summary in summaries.items():
            assert summary.radio_flags.rats == frozenset(expected[device_id])

    @given(
        events=st.lists(radio_events(), max_size=30),
        services=st.lists(service_records(), max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_device_summarized_once(self, events, services):
        _, summaries = _builder().build(events, services)
        ids = {e.device_id for e in events} | {r.device_id for r in services}
        assert set(summaries) == ids

    @given(events=st.lists(radio_events(), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_active_days_bounded_by_distinct_days(self, events):
        _, summaries = _builder().build(events, [])
        days = defaultdict(set)
        for event in events:
            days[event.device_id].add(event.day)
        for device_id, summary in summaries.items():
            assert summary.active_days == len(days[device_id])
