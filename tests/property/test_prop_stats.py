"""Property-based tests for the distribution helpers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.stats import ECDF, normalize_rows, shares, top_k_share

samples = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=200,
)


class TestECDFProperties:
    @given(samples)
    def test_quantiles_monotone(self, values):
        ecdf = ECDF(values)
        qs = [0.0, 0.25, 0.5, 0.75, 1.0]
        results = [ecdf.quantile(q) for q in qs]
        assert results == sorted(results)

    @given(samples)
    def test_extreme_quantiles_are_min_max(self, values):
        ecdf = ECDF(values)
        assert ecdf.quantile(0.0) == min(values)
        assert ecdf.quantile(1.0) == max(values)

    @given(samples, st.floats(-1e6, 1e6, allow_nan=False))
    def test_cdf_in_unit_interval(self, values, x):
        ecdf = ECDF(values)
        assert 0.0 <= ecdf.fraction_at_most(x) <= 1.0

    @given(samples, st.floats(-1e6, 1e6, allow_nan=False))
    def test_at_most_above_complement(self, values, x):
        ecdf = ECDF(values)
        total = ecdf.fraction_at_most(x) + ecdf.fraction_above(x)
        assert abs(total - 1.0) < 1e-9

    @given(samples)
    def test_mean_within_bounds(self, values):
        ecdf = ECDF(values)
        slack = 1e-6 * max(1.0, abs(ecdf.mean))
        assert min(values) - slack <= ecdf.mean <= max(values) + slack


class TestSharesProperties:
    @given(st.lists(st.sampled_from("abcde"), min_size=1, max_size=100))
    def test_sum_to_one(self, items):
        result = shares(items)
        assert abs(sum(result.values()) - 1.0) < 1e-9

    @given(st.lists(st.sampled_from("abcde"), min_size=1, max_size=100))
    def test_descending_order(self, items):
        values = list(shares(items).values())
        assert values == sorted(values, reverse=True)

    @given(
        st.dictionaries(
            st.sampled_from("abcdefgh"),
            st.floats(0.01, 100.0),
            min_size=1,
            max_size=8,
        ),
        st.integers(1, 10),
    )
    def test_top_k_monotone_in_k(self, weights, k):
        assert top_k_share(weights, k) <= top_k_share(weights, k + 1) + 1e-9
        assert 0.0 <= top_k_share(weights, k) <= 1.0 + 1e-9


class TestNormalizeProperties:
    @given(
        st.dictionaries(
            st.sampled_from("rs"),
            st.dictionaries(
                st.sampled_from("cd"), st.floats(0.1, 100.0), min_size=1, max_size=2
            ),
            min_size=1,
            max_size=2,
        )
    )
    def test_rows_sum_to_one(self, matrix):
        for row in normalize_rows(matrix).values():
            assert abs(sum(row.values()) - 1.0) < 1e-9
