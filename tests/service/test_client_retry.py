"""Client transport hardening: a daemon killed mid-ack is retryable.

A SIGKILLed (or crashed) daemon leaves its client in one of three
states, scripted here by a stub socket server: the ack line arrives
*torn* (truncated JSON), the connection closes with no ack at all, or
the socket resets (``ECONNRESET``).  All three must surface as
:class:`ServiceUnavailable` — never ``JSONDecodeError`` or a bare
``OSError`` — because that is the exception class
:meth:`CatalogClient.ingest_with_retry` treats as transient: the batch
id never changes across re-sends, so the daemon's dedupe makes the
retry safe whether or not the dying daemon got the batch durable.
"""

import json
import socket
import struct
import threading

import pytest

from repro.faults.retry import RetryError, RetryPolicy
from repro.service.client import CatalogClient, ServiceUnavailable

ACK = json.dumps({"status": "ok", "seq": 0}).encode("utf-8") + b"\n"


class StubDaemon:
    """One scripted behavior per accepted connection, in order."""

    def __init__(self, behaviors):
        self.behaviors = list(behaviors)
        self.n_served = 0
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.port = self._listener.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while self.behaviors:
            conn, _ = self._listener.accept()
            behavior = self.behaviors.pop(0)
            self.n_served += 1
            with conn.makefile("rb") as reader:
                reader.readline()  # the request the client just sent
            if behavior == "torn":
                conn.sendall(b'{"status": "o')  # killed mid-ack
            elif behavior == "reset":
                # RST on close instead of FIN: the client sees ECONNRESET.
                conn.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
            elif behavior == "ok":
                conn.sendall(ACK)
            conn.close()

    def close(self):
        self._listener.close()
        self._thread.join(timeout=5)


@pytest.fixture
def stub(request):
    servers = []

    def make(behaviors):
        server = StubDaemon(behaviors)
        servers.append(server)
        return server

    yield make
    for server in servers:
        server.close()


def client_for(server):
    return CatalogClient(
        "127.0.0.1", server.port, timeout_s=5.0, sleep=lambda s: None
    )


def test_torn_ack_is_service_unavailable(stub):
    server = stub(["torn"])
    with pytest.raises(ServiceUnavailable, match="torn response"):
        client_for(server).ingest("batch-0", [])


def test_close_without_ack_is_service_unavailable(stub):
    server = stub(["close"])
    with pytest.raises(ServiceUnavailable, match="closed the connection"):
        client_for(server).ingest("batch-0", [])


def test_reset_mid_ack_is_service_unavailable(stub):
    server = stub(["reset"])
    with pytest.raises(ServiceUnavailable):
        client_for(server).ingest("batch-0", [])


def test_ingest_with_retry_rides_through_a_dying_daemon(stub):
    server = stub(["torn", "reset", "close", "ok"])
    response = client_for(server).ingest_with_retry(
        "batch-0", [], policy=RetryPolicy(base_delay_s=0.001, max_attempts=8)
    )
    assert response["status"] == "ok"
    assert server.n_served == 4  # one connection per attempt, same batch id


def test_ingest_with_retry_exhausts_into_retry_error(stub):
    server = stub(["torn", "torn", "torn"])
    with pytest.raises(RetryError):
        client_for(server).ingest_with_retry(
            "batch-0", [], policy=RetryPolicy(base_delay_s=0.001, max_attempts=3)
        )
    assert server.n_served == 3
