"""Service-suite fixtures: a small world, and its dataset as wire batches.

The daemon speaks tagged row dicts (see :mod:`repro.service.protocol`),
so the simulated MNO dataset is flattened once per session into per-day
micro-batches that every socket test re-sends.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import pytest

from repro.datasets.io import radio_event_to_dict, service_record_to_dict
from repro.ecosystem import EcosystemConfig, build_default_ecosystem
from repro.mno import MNOConfig, simulate_mno_dataset


@pytest.fixture(scope="session")
def svc_eco():
    return build_default_ecosystem(EcosystemConfig(uk_sites=30, seed=11))


@pytest.fixture(scope="session")
def svc_dataset(svc_eco):
    return simulate_mno_dataset(svc_eco, MNOConfig(n_devices=30, seed=3))


def dataset_batches(dataset) -> List[Tuple[str, List[Dict[str, Any]]]]:
    """One ingest batch per simulated day, rows in stream order."""
    by_day: Dict[int, List[Dict[str, Any]]] = {}
    for event in dataset.radio_events:
        row = radio_event_to_dict(event)
        row["kind"] = "radio"
        by_day.setdefault(event.day, []).append(row)
    for record in dataset.service_records:
        row = service_record_to_dict(record)
        row["kind"] = "service"
        by_day.setdefault(record.day, []).append(row)
    return [(f"day-{day}", by_day[day]) for day in sorted(by_day)]


@pytest.fixture(scope="session")
def svc_batches(svc_dataset):
    return dataset_batches(svc_dataset)
