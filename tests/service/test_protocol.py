"""Lenient batch parsing: the parse/schema/semantic quarantine taxonomy."""

from repro.datasets.io import IngestErrorKind
from repro.service import parse_batch_rows
from repro.service.protocol import report_payload

GOOD_RADIO = {
    "kind": "radio",
    "device_id": "d0",
    "ts": 10.0,
    "sim_plmn": "23410",
    "tac": 86000012,
    "sector": 3,
    "iface": "S1",
    "type": "attach",
    "result": "OK",
}

GOOD_SERVICE = {
    "kind": "service",
    "device_id": "d0",
    "ts": 11.0,
    "sim_plmn": "23410",
    "visited_plmn": "23410",
    "service": "voice",
    "duration_s": 30.0,
    "bytes": 0,
    "apn": None,
}


def kinds_of(report):
    return {e.kind for e in report.errors}


def test_good_rows_round_trip():
    events, records, report = parse_batch_rows([GOOD_RADIO, GOOD_SERVICE])
    assert len(events) == 1 and len(records) == 1
    assert events[0].device_id == "d0"
    assert records[0].duration_s == 30.0
    assert report.n_rows == 2 and report.n_ok == 2
    assert report.errors == []


def test_non_dict_row_is_parse_error():
    _, _, report = parse_batch_rows(["not an object", 42, None])
    assert report.n_ok == 0
    assert kinds_of(report) == {IngestErrorKind.PARSE}


def test_unknown_or_missing_kind_is_schema_error():
    no_kind = dict(GOOD_RADIO)
    del no_kind["kind"]
    wrong_kind = dict(GOOD_RADIO, kind="telepathy")
    _, _, report = parse_batch_rows([no_kind, wrong_kind])
    assert report.n_ok == 0
    assert kinds_of(report) == {IngestErrorKind.SCHEMA}
    assert "telepathy" in str(report.errors[1])


def test_missing_field_and_bad_enum_are_schema_errors():
    missing = dict(GOOD_RADIO)
    del missing["tac"]
    bad_enum = dict(GOOD_RADIO, iface="9G")
    _, _, report = parse_batch_rows([missing, bad_enum])
    assert report.n_ok == 0
    assert kinds_of(report) == {IngestErrorKind.SCHEMA}


def test_invariant_violation_is_semantic_error():
    # Well-typed fields, but the record's own invariant rejects them.
    negative_duration = dict(GOOD_SERVICE, duration_s=-5.0)
    negative_ts = dict(GOOD_RADIO, ts=-1.0)
    _, _, report = parse_batch_rows([negative_duration, negative_ts])
    assert report.n_ok == 0
    assert kinds_of(report) == {IngestErrorKind.SEMANTIC}


def test_hostile_batch_degrades_not_dies():
    rows = [
        GOOD_RADIO,
        "garbage",
        dict(GOOD_RADIO, iface="9G"),
        dict(GOOD_SERVICE, duration_s=-5.0),
        GOOD_SERVICE,
    ]
    events, records, report = parse_batch_rows(rows, source="b-hostile")
    assert len(events) == 1 and len(records) == 1
    assert report.n_rows == 5 and report.n_ok == 2
    assert report.n_quarantined == 3
    assert report.counts_by_kind == {"parse": 1, "schema": 1, "semantic": 1}
    assert all(e.path == "b-hostile" for e in report.errors)


def test_report_payload_caps_errors_at_five():
    rows = ["x"] * 8 + [GOOD_RADIO]
    _, _, report = parse_batch_rows(rows)
    payload = report_payload(report)
    assert payload["n_rows"] == 9
    assert payload["n_ok"] == 1
    assert payload["n_quarantined"] == 8
    assert len(payload["errors"]) == 5
    assert 0.0 < payload["coverage"] < 1.0
