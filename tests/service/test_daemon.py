"""CatalogDaemon end-to-end: socket API, durable acks, restart recovery.

Each test drives a real daemon over a real loopback socket inside one
``asyncio.run`` — the daemon's own event loop — so daemon internals
(health gauges, queue counters) stay readable without cross-thread
games.  The external, blocking :class:`CatalogClient` gets its own
coverage in the chaos suite where the daemon lives in a subprocess.
"""

import asyncio
import json

import pytest

from repro.core.catalog import CatalogBuilder
from repro.core.roaming import RoamingLabeler
from repro.service import CatalogDaemon, ServiceConfig, catalog_digest

from tests.service.test_protocol import GOOD_RADIO, GOOD_SERVICE

FAST_CONFIG = dict(snapshot_interval_s=0.1)


def reference_digest(eco, dataset):
    labeler = RoamingLabeler(eco.operators, eco.uk_mno)
    builder = CatalogBuilder(eco.tac_db, eco.uk_sectors, labeler)
    records, summaries = builder.build(
        dataset.radio_events, dataset.service_records
    )
    return catalog_digest(records, summaries)


async def request(port, payload):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        await writer.drain()
        line = await reader.readline()
    finally:
        writer.close()
    return json.loads(line.decode("utf-8"))


async def ingest(port, batch_id, rows):
    return await request(
        port, {"op": "ingest", "batch_id": batch_id, "rows": rows}
    )


def test_ingest_matches_uninterrupted_build(tmp_path, svc_eco, svc_dataset, svc_batches):
    async def scenario():
        daemon = CatalogDaemon(
            svc_eco, str(tmp_path / "wal"), ServiceConfig(**FAST_CONFIG)
        )
        await daemon.start()
        try:
            total_rows = 0
            for batch_id, rows in svc_batches:
                response = await ingest(daemon.port, batch_id, rows)
                assert response["status"] == "ok", response
                assert response["ingest"]["n_quarantined"] == 0
                total_rows += len(rows)
            answer = await request(daemon.port, {"op": "digest"})
            assert daemon.health.batches_acked == len(svc_batches)
            assert daemon.health.rows_ingested == total_rows
            return answer["digest"]
        finally:
            await daemon.stop()

    digest = asyncio.run(scenario())
    assert digest == reference_digest(svc_eco, svc_dataset)


def test_duplicate_batch_acks_without_reapplying(tmp_path, svc_eco, svc_batches):
    async def scenario():
        daemon = CatalogDaemon(
            svc_eco, str(tmp_path / "wal"), ServiceConfig(**FAST_CONFIG)
        )
        await daemon.start()
        try:
            batch_id, rows = svc_batches[0]
            first = await ingest(daemon.port, batch_id, rows)
            again = await ingest(daemon.port, batch_id, rows)
            assert first["status"] == "ok" and "duplicate" not in first
            assert again == {"status": "ok", "duplicate": True}
            assert daemon.health.batches_acked == 1
            assert daemon.wal.next_seq == 1
        finally:
            await daemon.stop()

    asyncio.run(scenario())


def test_hostile_batch_quarantines_and_acks(tmp_path, svc_eco):
    async def scenario():
        daemon = CatalogDaemon(
            svc_eco, str(tmp_path / "wal"), ServiceConfig(**FAST_CONFIG)
        )
        await daemon.start()
        try:
            rows = [
                GOOD_RADIO,
                "garbage",
                dict(GOOD_RADIO, iface="9G"),
                dict(GOOD_SERVICE, duration_s=-1.0),
            ]
            response = await ingest(daemon.port, "b-hostile", rows)
            assert response["status"] == "ok"
            quarantine = response["ingest"]
            assert quarantine["n_rows"] == 4 and quarantine["n_ok"] == 1
            assert quarantine["counts_by_kind"] == {
                "parse": 1, "schema": 1, "semantic": 1,
            }
            # The daemon is still alive and serving.
            health = await request(daemon.port, {"op": "healthz"})
            assert health["healthz"]["batches_acked"] == 1
        finally:
            await daemon.stop()

    asyncio.run(scenario())


def test_malformed_requests_get_typed_errors(tmp_path, svc_eco):
    async def scenario():
        daemon = CatalogDaemon(
            svc_eco, str(tmp_path / "wal"), ServiceConfig(**FAST_CONFIG)
        )
        await daemon.start()
        try:
            port = daemon.port
            cases = [
                ({"op": "nope"}, "unknown op"),
                ({"op": "ingest", "rows": []}, "batch_id"),
                ({"op": "ingest", "batch_id": "b", "rows": "x"}, "rows list"),
                ({"op": "query"}, "device_id"),
                ({"op": "footprint"}, "sim_plmn"),
                ({"rows": []}, "unknown op"),
            ]
            for payload, needle in cases:
                response = await request(port, payload)
                assert response["status"] == "error"
                assert needle in response["error"]
            # Non-JSON and non-object lines answer too, then the
            # connection stays usable for well-formed requests.
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"this is not json\n")
            await writer.drain()
            bad = json.loads((await reader.readline()).decode("utf-8"))
            assert bad["status"] == "error"
            writer.write(b"[1, 2, 3]\n")
            await writer.drain()
            not_object = json.loads((await reader.readline()).decode("utf-8"))
            assert not_object["status"] == "error"
            writer.write(json.dumps({"op": "readyz"}).encode("utf-8") + b"\n")
            await writer.drain()
            ready = json.loads((await reader.readline()).decode("utf-8"))
            assert ready["readyz"]["ready"] is True
            writer.close()
        finally:
            await daemon.stop()

    asyncio.run(scenario())


def test_oversized_request_is_rejected_not_fatal(tmp_path, svc_eco):
    async def scenario():
        config = ServiceConfig(max_request_bytes=4096, **FAST_CONFIG)
        daemon = CatalogDaemon(svc_eco, str(tmp_path / "wal"), config)
        await daemon.start()
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", daemon.port
            )
            writer.write(b"x" * 10_000 + b"\n")
            await writer.drain()
            response = json.loads((await reader.readline()).decode("utf-8"))
            assert response["status"] == "rejected"
            assert "4096" in response["error"]
            writer.close()
            # The daemon survived and serves fresh connections.
            ready = await request(daemon.port, {"op": "readyz"})
            assert ready["readyz"]["ready"] is True
        finally:
            await daemon.stop()

    asyncio.run(scenario())


def test_oversized_batch_rejected_by_row_count(tmp_path, svc_eco):
    async def scenario():
        config = ServiceConfig(max_batch_rows=3, **FAST_CONFIG)
        daemon = CatalogDaemon(svc_eco, str(tmp_path / "wal"), config)
        await daemon.start()
        try:
            response = await ingest(daemon.port, "b-big", [GOOD_RADIO] * 4)
            assert response["status"] == "rejected"
            assert "limit is 3" in response["error"]
        finally:
            await daemon.stop()

    asyncio.run(scenario())


def test_http_probe_shim(tmp_path, svc_eco):
    async def scenario():
        daemon = CatalogDaemon(
            svc_eco, str(tmp_path / "wal"), ServiceConfig(**FAST_CONFIG)
        )
        await daemon.start()
        try:
            async def http_get(path):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", daemon.port
                )
                writer.write(f"GET {path} HTTP/1.0\r\n\r\n".encode("latin-1"))
                await writer.drain()
                raw = await reader.read()
                writer.close()
                head, _, body = raw.partition(b"\r\n\r\n")
                status = int(head.split()[1])
                return status, json.loads(body.decode("utf-8"))

            status, body = await http_get("/healthz")
            assert status == 200 and body["status"] == "ok"
            status, body = await http_get("/readyz")
            assert status == 200 and body["ready"] is True
            status, body = await http_get("/metrics")
            assert status == 404
            # Readiness drops during shutdown.
            daemon.health.shutting_down = True
            status, body = await http_get("/readyz")
            assert status == 503 and body["ready"] is False
            daemon.health.shutting_down = False
        finally:
            await daemon.stop()

    asyncio.run(scenario())


def test_backpressure_sheds_with_retry_guidance(tmp_path, svc_eco, svc_batches):
    """With no drain consumer, the queue saturates and ingest sheds."""

    async def scenario():
        config = ServiceConfig(
            queue_high_watermark=2,
            queue_low_watermark=1,
            batch_deadline_s=0.05,
            shed_retry_after_s=0.25,
            **FAST_CONFIG,
        )
        daemon = CatalogDaemon(svc_eco, str(tmp_path / "wal"), config)
        # Open the WAL but never start the drain loop: every accepted
        # batch stays queued, as if the consumer stalled mid-storm.
        from repro.service.wal import BatchLog

        daemon.wal = BatchLog(str(tmp_path / "wal"))
        try:
            accepted = []
            for index in range(2):
                response = await daemon._op_ingest(
                    {"batch_id": f"b-{index}", "rows": [GOOD_RADIO]}
                )
                assert response["status"] == "retry"  # queued, deadline hit
                accepted.append(response["batch_id"])
            shed = await daemon._op_ingest(
                {"batch_id": "b-over", "rows": [GOOD_RADIO]}
            )
            assert shed["status"] == "shed"
            assert shed["retry_after_s"] == 0.25
            assert shed["queue_depth"] == 2
            health = daemon.health.healthz()
            assert health["status"] == "degraded"
            assert health["queue_saturations"] == 1
            assert health["shed_batches"] == 1
            # A second over-limit batch sheds again but the episode is
            # counted once.
            await daemon._op_ingest({"batch_id": "b-over2", "rows": []})
            assert daemon.health.healthz()["queue_saturations"] == 1
            assert daemon.health.healthz()["shed_batches"] == 2
            # An in-flight duplicate re-send awaits the same pending ack
            # instead of re-queueing.
            again = await daemon._op_ingest(
                {"batch_id": "b-0", "rows": [GOOD_RADIO]}
            )
            assert again["status"] == "retry"
            assert daemon.queue.depth == 2
        finally:
            daemon.wal.close()

    asyncio.run(scenario())


def test_restart_replays_to_identical_catalog(tmp_path, svc_eco, svc_dataset, svc_batches):
    """Stop mid-stream, restart with resume, catalog state is identical."""

    wal_dir = str(tmp_path / "wal")
    half = len(svc_batches) // 2 or 1

    async def first_life():
        daemon = CatalogDaemon(svc_eco, wal_dir, ServiceConfig(**FAST_CONFIG))
        await daemon.start()
        try:
            for batch_id, rows in svc_batches[:half]:
                response = await ingest(daemon.port, batch_id, rows)
                assert response["status"] == "ok"
            answer = await request(daemon.port, {"op": "digest"})
            return answer["digest"]
        finally:
            await daemon.stop()

    async def second_life():
        daemon = CatalogDaemon(
            svc_eco, wal_dir, ServiceConfig(**FAST_CONFIG), resume=True
        )
        await daemon.start()
        try:
            assert daemon.health.batches_replayed == half
            replayed = await request(daemon.port, {"op": "digest"})
            # Acked batches re-sent after restart dedupe durably.
            dup = await ingest(daemon.port, *svc_batches[0])
            assert dup == {"status": "ok", "duplicate": True}
            # The rest of the stream ingests normally.
            for batch_id, rows in svc_batches[half:]:
                response = await ingest(daemon.port, batch_id, rows)
                assert response["status"] == "ok"
            final = await request(daemon.port, {"op": "digest"})
            return replayed["digest"], final["digest"]
        finally:
            await daemon.stop()

    digest_before = asyncio.run(first_life())
    digest_replayed, digest_final = asyncio.run(second_life())
    assert digest_replayed == digest_before
    assert digest_final == reference_digest(svc_eco, svc_dataset)


def test_query_and_footprint_answers(tmp_path, svc_eco, svc_dataset, svc_batches):
    async def scenario():
        daemon = CatalogDaemon(
            svc_eco, str(tmp_path / "wal"), ServiceConfig(**FAST_CONFIG)
        )
        await daemon.start()
        try:
            for batch_id, rows in svc_batches:
                await ingest(daemon.port, batch_id, rows)
            device_id = svc_dataset.radio_events[0].device_id
            answer = await request(
                daemon.port, {"op": "query", "device_id": device_id}
            )
            assert answer["status"] == "ok"
            assert answer["device_id"] == device_id
            assert ":" in answer["label"]  # "<X:Y>" roaming label
            assert answer["class"]
            assert answer["active_days"] >= 1
            missing = await request(
                daemon.port, {"op": "query", "device_id": "no-such-device"}
            )
            assert missing["status"] == "not_found"

            sim_plmn = answer["sim_plmn"]
            footprint = await request(
                daemon.port, {"op": "footprint", "sim_plmn": sim_plmn}
            )
            assert footprint["status"] == "ok"
            assert footprint["n_devices"] >= 1
            assert sum(footprint["labels"].values()) == footprint["n_devices"]
            assert sum(footprint["classes"].values()) == footprint["n_devices"]
            empty = await request(
                daemon.port, {"op": "footprint", "sim_plmn": "00000"}
            )
            assert empty["n_devices"] == 0
        finally:
            await daemon.stop()

    asyncio.run(scenario())


def test_shutdown_op_stops_the_daemon(tmp_path, svc_eco):
    async def scenario():
        daemon = CatalogDaemon(
            svc_eco, str(tmp_path / "wal"), ServiceConfig(**FAST_CONFIG)
        )
        await daemon.start()
        port = daemon.port
        response = await request(port, {"op": "shutdown"})
        assert response == {"status": "ok", "op": "shutdown"}
        await asyncio.wait_for(daemon.serve_until_stopped(), timeout=5.0)
        assert daemon.health.shutting_down
        assert not daemon.health.readyz()["ready"]
        with pytest.raises(OSError):
            await request(port, {"op": "readyz"})

    asyncio.run(scenario())


def test_supervisor_failure_drops_readiness(tmp_path, svc_eco):
    """A drain loop that dies permanently surfaces through serve_until_stopped."""

    async def scenario():
        config = ServiceConfig(
            restart_max_attempts=1,
            restart_base_delay_s=0.001,
            restart_max_delay_s=0.01,
            **FAST_CONFIG,
        )
        # on_batch seam raising models a poisoned WAL append path.
        daemon = CatalogDaemon(
            svc_eco,
            str(tmp_path / "wal"),
            config,
            on_batch=lambda batch_id, seq: (_ for _ in ()).throw(
                RuntimeError("wal device gone")
            ),
        )
        await daemon.start()
        serve = asyncio.get_running_loop().create_task(
            daemon.serve_until_stopped()
        )
        try:
            # First crash consumes the restart budget; the second is
            # terminal (each poisoned batch kills the drain loop once).
            for index in range(2):
                response = await ingest(daemon.port, f"b-{index}", [GOOD_RADIO])
                assert response["status"] in ("error", "retry")
            with pytest.raises(RuntimeError, match="drain"):
                await asyncio.wait_for(serve, timeout=5.0)
            assert daemon.health.run_health.task_restarts >= 1
            assert not daemon.health.readyz()["ready"]
        finally:
            serve.cancel()
            await daemon.stop()

    asyncio.run(scenario())


def test_snapshot_loop_advances_watermark(tmp_path, svc_eco, svc_batches):
    async def scenario():
        daemon = CatalogDaemon(
            svc_eco, str(tmp_path / "wal"), ServiceConfig(**FAST_CONFIG)
        )
        await daemon.start()
        try:
            await ingest(daemon.port, *svc_batches[0])
            for _ in range(100):
                if daemon.health.snapshots_completed > 0:
                    break
                await asyncio.sleep(0.05)
            assert daemon.health.snapshots_completed > 0
            assert daemon.health.last_snapshot_seq == 0  # one batch: seq 0
        finally:
            await daemon.stop()

    asyncio.run(scenario())
