"""Daemon storage hardening: disk watermarks, WAL faults, live scrub.

Same harness as ``test_daemon.py`` — a real daemon on a real loopback
socket inside one ``asyncio.run`` — plus the fsfault seam: the injector
is process-global, so faults installed here fire inside the daemon's
``asyncio.to_thread`` WAL writes too.
"""

import asyncio

from repro.faults.fsfault import ENOSPC, FsFault, FsFaultPlan, install
from repro.parallel.health import DISK_PRESSURE, SCRUB_DAMAGE, STORAGE_FAULT
from repro.service import CatalogDaemon, ServiceConfig

from tests.service.test_daemon import FAST_CONFIG, ingest, request


def test_disk_watermarks_shed_with_hysteresis(tmp_path, svc_eco, svc_batches):
    free = {"bytes": 10_000_000}

    async def scenario():
        daemon = CatalogDaemon(
            svc_eco,
            str(tmp_path / "wal"),
            ServiceConfig(
                disk_min_free_bytes=1_000_000,
                disk_resume_free_bytes=5_000_000,
                **FAST_CONFIG,
            ),
            disk_probe=lambda: free["bytes"],
        )
        await daemon.start()
        try:
            batches = iter(svc_batches)
            batch_id, rows = next(batches)
            assert (await ingest(daemon.port, batch_id, rows))["status"] == "ok"

            free["bytes"] = 900_000  # below the min watermark: shed
            batch_id, rows = next(batches)
            shed = await ingest(daemon.port, batch_id, rows)
            assert shed["status"] == "shed"
            assert shed["retry_after_s"] == daemon.config.shed_retry_after_s
            assert shed["free_bytes"] == 900_000

            free["bytes"] = 3_000_000  # between the watermarks: still shed
            assert (await ingest(daemon.port, batch_id, rows))["status"] == "shed"

            free["bytes"] = 6_000_000  # past the resume watermark: accept
            assert (await ingest(daemon.port, batch_id, rows))["status"] == "ok"

            health = (await request(daemon.port, {"op": "healthz"}))["healthz"]
            # One incident for the whole episode, one count per shed batch.
            assert health["disk_pressure_events"] == 1
            assert health["shed_batches"] == 2
            incidents = daemon.health.run_health.storage_incidents
            assert [i.kind for i in incidents] == [DISK_PRESSURE]
        finally:
            await daemon.stop()

    asyncio.run(scenario())


def test_wal_write_fault_is_typed_incident_and_retryable(
    tmp_path, svc_eco, svc_batches
):
    async def scenario():
        daemon = CatalogDaemon(
            svc_eco, str(tmp_path / "wal"), ServiceConfig(**FAST_CONFIG)
        )
        await daemon.start()
        try:
            batch_id, rows = svc_batches[0]
            plan = FsFaultPlan(faults=(FsFault(ENOSPC, match="wal", times=1),))
            with install(plan):
                failed = await ingest(daemon.port, batch_id, rows)
            assert failed["status"] != "ok"
            health = daemon.health.healthz()
            assert health["storage_faults"] == 1
            incidents = daemon.health.run_health.storage_incidents
            assert [i.kind for i in incidents] == [STORAGE_FAULT]
            assert "ENOSPC" in incidents[0].detail or "28" in incidents[0].detail
            # The batch was never acked; the same id re-sends cleanly
            # (the supervisor has restarted the drain loop by now).
            for _ in range(50):
                retried = await ingest(daemon.port, batch_id, rows)
                if retried["status"] == "ok":
                    break
                await asyncio.sleep(0.05)
            assert retried["status"] == "ok"
            assert daemon.wal.next_seq == 1
        finally:
            await daemon.stop()

    asyncio.run(scenario())


def test_scrub_loop_verifies_live_wal(tmp_path, svc_eco, svc_batches):
    async def scenario():
        daemon = CatalogDaemon(
            svc_eco,
            str(tmp_path / "wal"),
            ServiceConfig(scrub_interval_s=0.05, **FAST_CONFIG),
        )
        await daemon.start()
        try:
            batch_id, rows = svc_batches[0]
            assert (await ingest(daemon.port, batch_id, rows))["status"] == "ok"
            for _ in range(100):
                await asyncio.sleep(0.05)
                if daemon.health.scrubs_completed and (
                    daemon.health.last_scrub_verified_ok >= 1
                ):
                    break
            health = daemon.health.healthz()
            assert health["scrubs_completed"] >= 1
            assert health["last_scrub_verified_ok"] >= 1
            assert health["scrub_damage_events"] == 0
        finally:
            await daemon.stop()

    asyncio.run(scenario())


def test_scrub_loop_surfaces_at_rest_rot(tmp_path, svc_eco, svc_batches):
    wal_dir = tmp_path / "wal"

    async def scenario():
        daemon = CatalogDaemon(
            svc_eco,
            str(wal_dir),
            ServiceConfig(scrub_interval_s=0.05, **FAST_CONFIG),
        )
        await daemon.start()
        try:
            batch_id, rows = svc_batches[0]
            assert (await ingest(daemon.port, batch_id, rows))["status"] == "ok"
            unit = sorted((wal_dir / "units").glob("*.ckpt"))[0]
            data = bytearray(unit.read_bytes())
            data[-20] ^= 0xFF
            unit.write_bytes(bytes(data))
            for _ in range(100):
                await asyncio.sleep(0.05)
                if daemon.health.healthz()["scrub_damage_events"]:
                    break
            health = daemon.health.healthz()
            assert health["scrub_damage_events"] >= 1
            kinds = {
                i.kind for i in daemon.health.run_health.storage_incidents
            }
            assert kinds == {SCRUB_DAMAGE}
            # Verify-only: the scrubber never rewrites the hot store.
            assert unit.read_bytes() == bytes(data)
            # The daemon keeps serving; rot is an incident, not a crash.
            assert (await request(daemon.port, {"op": "readyz"}))["readyz"][
                "ready"
            ]
        finally:
            await daemon.stop()

    asyncio.run(scenario())
