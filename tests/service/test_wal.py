"""BatchLog: durable append, ordered replay, torn-unit quarantine."""

import pytest

from repro.runtime.checkpoint import UNITS_DIRNAME, StaleManifestError
from repro.service import BatchLog
from repro.service.protocol import parse_batch_rows

from tests.service.test_protocol import GOOD_RADIO, GOOD_SERVICE


def typed_rows(n_radio=2, n_service=1, day_offset=0):
    rows = []
    for i in range(n_radio):
        rows.append(dict(GOOD_RADIO, ts=10.0 + i + day_offset * 86400.0))
    for i in range(n_service):
        rows.append(dict(GOOD_SERVICE, ts=11.0 + i + day_offset * 86400.0))
    events, records, report = parse_batch_rows(rows)
    assert report.n_quarantined == 0
    return events, records


def test_append_then_replay_round_trips(tmp_path):
    log = BatchLog(tmp_path)
    events_a, records_a = typed_rows(day_offset=0)
    events_b, records_b = typed_rows(day_offset=1)
    assert log.append("b-0", events_a, records_a) == 0
    assert log.append("b-1", events_b, records_b) == 1
    assert log.applied_batch_ids == {"b-0", "b-1"}
    log.sync()
    log.close()

    resumed = BatchLog(tmp_path, resume=True)
    batches = resumed.replay()
    assert [(b.seq, b.batch_id) for b in batches] == [(0, "b-0"), (1, "b-1")]
    # Replay hands back columnar stores; row materialization is the
    # caller's opt-in, and round-trips exactly.
    assert batches[0].radio_events.to_rows() == events_a
    assert batches[0].service_records.to_rows() == records_a
    assert batches[1].radio_events.to_rows() == events_b
    assert resumed.applied_batch_ids == {"b-0", "b-1"}
    # New appends continue the sequence, they never reuse a slot.
    events_c, records_c = typed_rows(day_offset=2)
    assert resumed.append("b-2", events_c, records_c) == 2
    resumed.close()


def test_fresh_directory_has_nothing_to_replay(tmp_path):
    log = BatchLog(tmp_path)
    assert log.replay() == []
    assert log.next_seq == 0
    assert log.n_torn_units == 0
    log.close()


def test_torn_unit_is_counted_and_skipped(tmp_path):
    log = BatchLog(tmp_path)
    for seq in range(3):
        events, records = typed_rows(day_offset=seq)
        log.append(f"b-{seq}", events, records)
    log.sync()
    log.close()

    # Corrupt the middle batch's persisted block (media failure after
    # publication — the rename discipline cannot prevent this one).
    unit = tmp_path / UNITS_DIRNAME / "day_001.shard_000.ckpt"
    data = unit.read_bytes()
    unit.write_bytes(data[: len(data) // 2])

    resumed = BatchLog(tmp_path, resume=True)
    batches = resumed.replay()
    assert [b.batch_id for b in batches] == ["b-0", "b-2"]
    assert resumed.n_torn_units == 1
    # The torn batch id is absent: a re-send re-applies it, never dupes.
    assert resumed.applied_batch_ids == {"b-0", "b-2"}
    resumed.close()


def test_wal_directory_is_role_pinned(tmp_path):
    """A batch run's checkpoint directory must not open as a WAL."""
    from repro.runtime.checkpoint import CheckpointStore

    store = CheckpointStore(tmp_path, {"role": "batch-run"}, n_shards=2)
    store.close()
    with pytest.raises(StaleManifestError):
        BatchLog(tmp_path, resume=True)


def test_manifest_summary_counters(tmp_path):
    log = BatchLog(tmp_path)
    events, records = typed_rows()
    log.append("b-0", events, records)
    summary = log.manifest_summary()
    assert summary["next_seq"] == 1
    assert summary["n_torn_units"] == 0
    assert summary["n_torn_journal_lines"] == 0
    log.close()
