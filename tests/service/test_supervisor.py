"""TaskSupervisor: restart budgets, terminal failure, clean shutdown."""

import asyncio

import numpy as np
import pytest

from repro.faults import RetryPolicy
from repro.service import TaskSupervisor

FAST = RetryPolicy(
    base_delay_s=0.001, max_delay_s=0.01, jitter=0.0, max_attempts=3
)


def run(coro):
    return asyncio.run(coro)


def make_supervisor(on_restart=None, policy=FAST):
    return TaskSupervisor(policy, np.random.default_rng(0), on_restart=on_restart)


def test_crashing_task_restarts_until_it_succeeds():
    async def scenario():
        restarts = []
        supervisor = make_supervisor(
            on_restart=lambda name, attempt, exc: restarts.append((name, attempt))
        )
        state = {"crashes": 2}
        done = asyncio.Event()

        async def flaky():
            if state["crashes"] > 0:
                state["crashes"] -= 1
                raise RuntimeError("boom")
            done.set()

        supervisor.supervise("flaky", flaky)
        await asyncio.wait_for(done.wait(), timeout=5.0)
        assert restarts == [("flaky", 0), ("flaky", 1)]
        assert supervisor.restarts["flaky"] == 2
        assert not supervisor.failed.is_set()
        await supervisor.shutdown()

    run(scenario())


def test_exhausted_budget_sets_failed_and_failure():
    async def scenario():
        supervisor = make_supervisor()

        async def always_dies():
            raise RuntimeError("persistent")

        supervisor.supervise("doomed", always_dies)
        await asyncio.wait_for(supervisor.failed.wait(), timeout=5.0)
        assert supervisor.failure is not None
        assert "doomed" in supervisor.failure
        assert "persistent" in supervisor.failure
        assert supervisor.restarts["doomed"] == FAST.max_attempts
        await supervisor.shutdown()

    run(scenario())


def test_clean_return_is_not_restarted():
    async def scenario():
        calls = {"n": 0}
        supervisor = make_supervisor()

        async def one_shot():
            calls["n"] += 1

        supervisor.supervise("once", one_shot)
        await asyncio.sleep(0.05)
        assert calls["n"] == 1
        assert not supervisor.is_running("once")
        assert not supervisor.failed.is_set()
        await supervisor.shutdown()

    run(scenario())


def test_duplicate_name_rejected():
    async def scenario():
        supervisor = make_supervisor()

        async def forever():
            await asyncio.sleep(3600)

        supervisor.supervise("loop", forever)
        with pytest.raises(ValueError, match="already supervised"):
            supervisor.supervise("loop", forever)
        await supervisor.shutdown()

    run(scenario())


def test_shutdown_cancels_running_tasks():
    async def scenario():
        cancelled = asyncio.Event()
        supervisor = make_supervisor()

        async def forever():
            try:
                await asyncio.sleep(3600)
            except asyncio.CancelledError:
                cancelled.set()
                raise

        supervisor.supervise("loop", forever)
        await asyncio.sleep(0)
        assert supervisor.is_running("loop")
        await supervisor.shutdown()
        assert cancelled.is_set()
        assert supervisor.task_names == []

    run(scenario())
