"""BoundedIngestQueue: watermark hysteresis, typed shedding, counters."""

import asyncio

import pytest

from repro.service import BoundedIngestQueue, OverloadShed


def run(coro):
    return asyncio.run(coro)


def test_watermark_validation():
    with pytest.raises(ValueError, match="low=4 high=4"):
        BoundedIngestQueue(4, 4)
    with pytest.raises(ValueError, match="low=-1"):
        BoundedIngestQueue(4, -1)


def test_accepts_until_high_watermark():
    async def scenario():
        queue = BoundedIngestQueue(3, 1, shed_retry_after_s=0.25)
        for item in range(3):
            queue.put_nowait(item)
        assert queue.depth == 3
        with pytest.raises(OverloadShed) as excinfo:
            queue.put_nowait(99)
        shed = excinfo.value
        assert shed.retry_after_s == 0.25
        assert shed.depth == 3
        assert shed.high_watermark == 3
        assert shed.saturation_started  # first rejection of the episode
        assert queue.depth == 3  # the rejected item was never buffered

    run(scenario())


def test_one_saturation_flag_per_episode():
    async def scenario():
        queue = BoundedIngestQueue(2, 0)
        queue.put_nowait("a")
        queue.put_nowait("b")
        flags = []
        for _ in range(4):
            with pytest.raises(OverloadShed) as excinfo:
                queue.put_nowait("x")
            flags.append(excinfo.value.saturation_started)
        assert flags == [True, False, False, False]
        assert queue.n_saturations == 1
        assert queue.n_shed == 4

    run(scenario())


def test_hysteresis_recovers_at_low_watermark():
    async def scenario():
        queue = BoundedIngestQueue(3, 1)
        for item in range(3):
            queue.put_nowait(item)
        with pytest.raises(OverloadShed):
            queue.put_nowait("over")
        assert queue.shedding
        # Draining to depth 2 is not enough: still above the low mark.
        await queue.get()
        assert queue.shedding
        with pytest.raises(OverloadShed) as excinfo:
            queue.put_nowait("still-over")
        assert not excinfo.value.saturation_started  # same episode
        # At the low watermark the episode ends and puts flow again.
        await queue.get()
        assert not queue.shedding
        queue.put_nowait("accepted")
        assert queue.depth == 2
        assert queue.n_saturations == 1

    run(scenario())


def test_drain_nowait_empties_and_clears_shedding():
    async def scenario():
        queue = BoundedIngestQueue(2, 0)
        queue.put_nowait("a")
        queue.put_nowait("b")
        with pytest.raises(OverloadShed):
            queue.put_nowait("c")
        assert queue.drain_nowait() == ["a", "b"]
        assert queue.depth == 0
        assert not queue.shedding
        assert queue.drain_nowait() == []

    run(scenario())


def test_fifo_order_and_accept_counter():
    async def scenario():
        queue = BoundedIngestQueue(10, 2)
        for item in range(5):
            queue.put_nowait(item)
        got = [await queue.get() for _ in range(5)]
        assert got == [0, 1, 2, 3, 4]
        assert queue.n_accepted == 5
        assert queue.n_shed == 0

    run(scenario())
