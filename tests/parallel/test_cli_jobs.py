"""The CLI's --jobs flag routes through the sharded pipeline."""

from repro.cli import main


def test_classify_with_jobs_matches_serial(capsys):
    args = ["classify", "--devices", "60", "--seed", "7"]
    assert main(["--jobs", "2"] + args) == 0
    sharded_out = capsys.readouterr().out
    assert main(args) == 0
    serial_out = capsys.readouterr().out
    assert sharded_out == serial_out
    assert "class shares:" in sharded_out


def test_jobs_flag_default_is_serial():
    from repro.cli import build_parser

    args = build_parser().parse_args(["classify"])
    assert args.jobs == 1
