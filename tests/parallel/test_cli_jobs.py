"""The CLI's --jobs/--columnar flags route through the sharded pipeline."""

import argparse

import pytest

from repro.cli import _jobs_arg, build_parser, main
from repro.pipeline import AUTO_PARALLEL_MIN_ROWS, resolve_workers


def test_classify_with_jobs_matches_serial(capsys):
    args = ["classify", "--devices", "60", "--seed", "7"]
    assert main(["--jobs", "2"] + args) == 0
    sharded_out = capsys.readouterr().out
    assert main(args) == 0
    serial_out = capsys.readouterr().out
    assert sharded_out == serial_out
    assert "class shares:" in sharded_out


def test_jobs_flag_default_is_auto():
    args = build_parser().parse_args(["classify"])
    assert args.jobs == "auto"
    assert args.columnar is None  # defer to the REPRO_COLUMNAR env flag


def test_jobs_arg_parsing():
    assert _jobs_arg("3") == 3
    assert _jobs_arg("auto") == "auto"
    with pytest.raises(argparse.ArgumentTypeError):
        _jobs_arg("fast")


def test_columnar_flags_parse():
    parser = build_parser()
    assert parser.parse_args(["--columnar", "classify"]).columnar is True
    assert parser.parse_args(["--no-columnar", "classify"]).columnar is False


def test_classify_columnar_output_matches_row(capsys):
    args = ["classify", "--devices", "60", "--seed", "7"]
    assert main(["--columnar"] + args) == 0
    columnar_out = capsys.readouterr().out
    assert main(["--no-columnar"] + args) == 0
    row_out = capsys.readouterr().out
    assert columnar_out == row_out


# -- resolve_workers ---------------------------------------------------------

def test_resolve_workers_passthrough_and_validation():
    assert resolve_workers(1) == 1
    assert resolve_workers(4) == 4
    with pytest.raises(ValueError):
        resolve_workers(0)
    with pytest.raises(ValueError):
        resolve_workers("fast")


def test_resolve_workers_auto_serial_on_small_boxes(monkeypatch):
    monkeypatch.setattr("os.cpu_count", lambda: 2)
    assert resolve_workers("auto", n_rows=10 * AUTO_PARALLEL_MIN_ROWS) == 1


def test_resolve_workers_auto_serial_on_small_inputs(monkeypatch):
    monkeypatch.setattr("os.cpu_count", lambda: 8)
    assert resolve_workers("auto", n_rows=AUTO_PARALLEL_MIN_ROWS - 1) == 1


def test_resolve_workers_auto_parallel_capped_at_four(monkeypatch):
    monkeypatch.setattr("os.cpu_count", lambda: 16)
    assert resolve_workers("auto", n_rows=AUTO_PARALLEL_MIN_ROWS) == 4
    monkeypatch.setattr("os.cpu_count", lambda: 3)
    assert resolve_workers("auto", n_rows=AUTO_PARALLEL_MIN_ROWS) == 3
    # Unknown row count on a big box: trust the cores.
    assert resolve_workers("auto") == 3
