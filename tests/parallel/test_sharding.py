"""Deterministic device sharding: stability, coverage, co-location."""

import zlib

import pytest

from repro.parallel.sharding import shard_items, shard_mno_records, shard_of


def test_shard_of_is_stable_and_in_range():
    for n_shards in (1, 2, 4, 7):
        for device_id in ("dev-a", "dev-b", "poison-00", ""):
            shard = shard_of(device_id, n_shards)
            assert 0 <= shard < n_shards
            # Stable: pure function of (device_id, n_shards).
            assert shard == shard_of(device_id, n_shards)


def test_shard_of_matches_crc32():
    assert shard_of("dev-a", 4) == zlib.crc32(b"dev-a") % 4


def test_shard_of_rejects_bad_shard_count():
    with pytest.raises(ValueError):
        shard_of("dev-a", 0)


def test_shard_items_partitions_and_preserves_order():
    class Item:
        def __init__(self, device_id, seq):
            self.device_id = device_id
            self.seq = seq

    items = [Item(f"dev-{i % 5}", i) for i in range(50)]
    shards = shard_items(items, 3)
    assert sum(len(shard) for shard in shards) == len(items)
    for index, shard in enumerate(shards):
        for item in shard:
            assert shard_of(item.device_id, 3) == index
        # In-shard order is input order.
        assert [item.seq for item in shard] == sorted(item.seq for item in shard)


def test_shard_mno_records_colocates_device_streams(mno_dataset):
    shards = shard_mno_records(
        mno_dataset.radio_events, mno_dataset.service_records, 4
    )
    assert len(shards) == 4
    for index, (events, records) in enumerate(shards):
        for event in events:
            assert shard_of(event.device_id, 4) == index
        for record in records:
            assert shard_of(record.device_id, 4) == index
    n_events = sum(len(events) for events, _ in shards)
    n_records = sum(len(records) for _, records in shards)
    assert n_events == len(mno_dataset.radio_events)
    assert n_records == len(mno_dataset.service_records)
