"""Zero-copy shard transport: round-trips, edge cases, leak contract.

Fast cases run in tier-1; the SIGKILL cases (a worker murdered while
attached, a publisher murdered mid-exchange) are marked ``chaos`` and
run with the dedicated chaos job.  The leak contract under test: after
any exit — normal close, worker SIGKILL, publisher SIGKILL — no
``rsx*`` exchange segment survives in ``/dev/shm``.
"""

import multiprocessing
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.columnar import from_record_streams
from repro.parallel.sharding import shard_columnar_records
from repro.parallel.transport import (
    SEGMENT_PREFIX,
    SHM_DIR,
    TRANSPORT_ENV_FLAG,
    TRANSPORT_RPCK,
    TRANSPORT_SHM,
    RpckShardDescriptor,
    ShmShardDescriptor,
    attach_shard,
    cleanup_stale_segments,
    owner_pid,
    publish_shards,
    select_transport,
)
from repro.pipeline import run_pipeline

REPO_ROOT = Path(__file__).resolve().parents[2]

_HAS_SHM = sys.platform != "win32" and os.path.isdir(SHM_DIR)


def _exchange_segments() -> list:
    """Exchange-owned segment files currently visible in /dev/shm."""
    if not os.path.isdir(SHM_DIR):
        return []
    return sorted(
        name for name in os.listdir(SHM_DIR) if name.startswith(SEGMENT_PREFIX)
    )


def assert_shards_equal(left, right):
    """Store equality via full row materialization (order included)."""
    left_events, left_records = left
    right_events, right_records = right
    assert left_events.to_rows() == right_events.to_rows()
    assert left_records.to_rows() == right_records.to_rows()


@pytest.fixture(scope="module")
def columnar_dataset(mno_dataset):
    return from_record_streams(
        mno_dataset.radio_events, mno_dataset.service_records
    )


@pytest.fixture(scope="module")
def shards(columnar_dataset):
    events_c, records_c = columnar_dataset
    return shard_columnar_records(events_c, records_c, 4)


# -- transport selection -----------------------------------------------------

def test_select_transport_explicit_beats_env(monkeypatch):
    monkeypatch.setenv(TRANSPORT_ENV_FLAG, TRANSPORT_SHM)
    assert select_transport(TRANSPORT_RPCK) == TRANSPORT_RPCK


def test_select_transport_env_beats_default(monkeypatch):
    monkeypatch.setenv(TRANSPORT_ENV_FLAG, TRANSPORT_RPCK)
    assert select_transport() == TRANSPORT_RPCK


def test_select_transport_defaults_to_shm(monkeypatch):
    monkeypatch.delenv(TRANSPORT_ENV_FLAG, raising=False)
    if sys.platform == "win32":  # pragma: no cover - POSIX CI
        assert select_transport() == TRANSPORT_RPCK
    else:
        assert select_transport() == TRANSPORT_SHM


def test_select_transport_rejects_unknown():
    with pytest.raises(ValueError, match="unknown transport"):
        select_transport("carrier-pigeon")


def test_select_transport_windows_never_returns_shm(monkeypatch):
    """Explicit shm requests degrade to rpck where unlink semantics
    don't hold; the caller never has to special-case the platform."""
    monkeypatch.setattr(sys, "platform", "win32")
    assert select_transport(TRANSPORT_SHM) == TRANSPORT_RPCK
    assert select_transport(TRANSPORT_RPCK) == TRANSPORT_RPCK


# -- round-trips and edge cases ----------------------------------------------

@pytest.mark.parametrize("transport", [TRANSPORT_RPCK, TRANSPORT_SHM])
def test_shard_descriptor_roundtrip(shards, transport):
    if transport == TRANSPORT_SHM and not _HAS_SHM:
        pytest.skip("no shared-memory filesystem on this platform")
    with publish_shards(shards, transport=transport) as exchange:
        assert len(exchange.descriptors) == len(shards)
        for shard, descriptor in zip(shards, exchange.descriptors):
            assert_shards_equal(shard, attach_shard(descriptor))


def test_shm_shards_share_one_pools_segment(shards):
    if not _HAS_SHM:
        pytest.skip("no shared-memory filesystem on this platform")
    with publish_shards(shards, transport=TRANSPORT_SHM) as exchange:
        pools = {d.pools_segment for d in exchange.descriptors}
        data = {d.data_segment for d in exchange.descriptors}
        assert len(pools) == 1
        assert len(data) == len(shards)
        assert all(isinstance(d, ShmShardDescriptor) for d in exchange.descriptors)


def test_rpck_descriptors_are_self_contained(shards):
    with publish_shards(shards, transport=TRANSPORT_RPCK) as exchange:
        assert all(isinstance(d, RpckShardDescriptor) for d in exchange.descriptors)
        assert exchange.payload_nbytes == sum(
            len(d.payload) for d in exchange.descriptors
        )
        assert _exchange_segments() == []


@pytest.mark.parametrize("transport", [TRANSPORT_RPCK, TRANSPORT_SHM])
def test_empty_shard_roundtrip(transport):
    if transport == TRANSPORT_SHM and not _HAS_SHM:
        pytest.skip("no shared-memory filesystem on this platform")
    events_c, records_c = from_record_streams([], [])
    empty = shard_columnar_records(events_c, records_c, 3)
    assert len(empty) == 3
    with publish_shards(empty, transport=transport) as exchange:
        for shard, descriptor in zip(empty, exchange.descriptors):
            attached = attach_shard(descriptor)
            assert len(attached[0]) == 0
            assert len(attached[1]) == 0
            assert_shards_equal(shard, attached)


@pytest.mark.parametrize("transport", [TRANSPORT_RPCK, TRANSPORT_SHM])
def test_single_device_shard_roundtrip(mno_dataset, transport):
    """One device, four shards: every row lands in one shard, the other
    shards ride the exchange empty, and all of them round-trip."""
    if transport == TRANSPORT_SHM and not _HAS_SHM:
        pytest.skip("no shared-memory filesystem on this platform")
    device = mno_dataset.radio_events[0].device_id
    events = [e for e in mno_dataset.radio_events if e.device_id == device]
    records = [r for r in mno_dataset.service_records if r.device_id == device]
    events_c, records_c = from_record_streams(events, records)
    lone = shard_columnar_records(events_c, records_c, 4)
    occupied = [shard for shard in lone if len(shard[0]) or len(shard[1])]
    assert len(occupied) == 1
    with publish_shards(lone, transport=transport) as exchange:
        for shard, descriptor in zip(lone, exchange.descriptors):
            assert_shards_equal(shard, attach_shard(descriptor))


def test_publish_empty_shard_list():
    with publish_shards([]) as exchange:
        assert exchange.descriptors == []
    assert _exchange_segments() == []


# -- lifecycle and the leak contract -----------------------------------------

def test_close_unlinks_every_segment(shards):
    if not _HAS_SHM:
        pytest.skip("no shared-memory filesystem on this platform")
    exchange = publish_shards(shards, transport=TRANSPORT_SHM)
    published = _exchange_segments()
    assert len(published) == len(shards) + 1  # one pools + one per shard
    assert all(owner_pid(name) == os.getpid() for name in published)
    exchange.close()
    assert _exchange_segments() == []
    exchange.close()  # idempotent
    assert _exchange_segments() == []


def test_context_manager_cleans_up_on_error(shards):
    if not _HAS_SHM:
        pytest.skip("no shared-memory filesystem on this platform")
    with pytest.raises(RuntimeError, match="boom"):
        with publish_shards(shards, transport=TRANSPORT_SHM):
            assert _exchange_segments() != []
            raise RuntimeError("boom")
    assert _exchange_segments() == []


def test_owner_pid_parsing():
    assert owner_pid(f"{SEGMENT_PREFIX}{0x2a:x}-1-p") == 42
    assert owner_pid("psm_deadbeef") is None  # not an exchange segment
    assert owner_pid(f"{SEGMENT_PREFIX}nothex-1-p") is None


def test_cleanup_stale_segments_sweeps_only_dead_owners(tmp_path):
    """The sweep unlinks dead-owner segments and leaves everything else:
    live-owner segments and foreign files alike."""
    child = multiprocessing.Process(target=lambda: None)
    child.start()
    child.join()
    dead_pid = child.pid
    shm_dir = tmp_path / "shm"
    shm_dir.mkdir()
    stale = f"{SEGMENT_PREFIX}{dead_pid:x}-1-p"
    live = f"{SEGMENT_PREFIX}{os.getpid():x}-1-p"
    foreign = "psm_something_else"
    for name in (stale, live, foreign):
        (shm_dir / name).write_bytes(b"x")
    removed = cleanup_stale_segments(str(shm_dir))
    assert removed == [stale]
    assert sorted(p.name for p in shm_dir.iterdir()) == sorted([live, foreign])


def test_cleanup_missing_dir_is_harmless(tmp_path):
    assert cleanup_stale_segments(str(tmp_path / "nope")) == []


# -- forced-transport pipeline equality --------------------------------------

def test_pipeline_equality_with_forced_rpck(eco, mno_dataset, pipeline, monkeypatch):
    """REPRO_TRANSPORT=rpck must produce the same bytes as serial — the
    fallback transport honours the same contract as shm."""
    monkeypatch.setenv(TRANSPORT_ENV_FLAG, TRANSPORT_RPCK)
    sharded = run_pipeline(mno_dataset, eco, n_workers=2, columnar=True)
    assert sharded.day_records == pipeline.day_records
    assert list(sharded.summaries) == list(pipeline.summaries)
    assert sharded.summaries == pipeline.summaries
    assert list(sharded.classifications) == list(pipeline.classifications)
    assert sharded.classifications == pipeline.classifications
    assert _exchange_segments() == []


# -- SIGKILL at the exchange seam (chaos job) --------------------------------

def _attach_and_hang(descriptor, attached_event):
    """Chaos worker: attach the shard, signal, then wait to be killed."""
    attach_shard(descriptor)
    attached_event.set()
    time.sleep(60.0)


@pytest.mark.chaos
def test_sigkilled_worker_leaks_no_segments(shards):
    """SIGKILL a worker while it holds an attached shard: the segments
    belong to the publisher, so close() still unlinks every one."""
    if not _HAS_SHM:
        pytest.skip("no shared-memory filesystem on this platform")
    exchange = publish_shards(shards, transport=TRANSPORT_SHM)
    try:
        attached = multiprocessing.Event()
        worker = multiprocessing.Process(
            target=_attach_and_hang, args=(exchange.descriptors[0], attached)
        )
        worker.start()
        assert attached.wait(timeout=30.0), "worker never attached"
        os.kill(worker.pid, signal.SIGKILL)
        worker.join(timeout=30.0)
        assert worker.exitcode == -signal.SIGKILL
        # The murdered worker took nothing with it: every published
        # segment is still attachable from the parent ...
        for shard, descriptor in zip(shards, exchange.descriptors):
            assert_shards_equal(shard, attach_shard(descriptor))
    finally:
        exchange.close()
    # ... and normal close still leaves /dev/shm spotless.
    assert _exchange_segments() == []


_PUBLISHER_SCRIPT = """
import os
import signal
import sys

from repro.columnar import from_record_streams
from repro.ecosystem import EcosystemConfig, build_default_ecosystem
from repro.mno import MNOConfig, simulate_mno_dataset
from repro.parallel.sharding import shard_columnar_records
from repro.parallel.transport import publish_shards

eco = build_default_ecosystem(EcosystemConfig(uk_sites=20, seed=11))
dataset = simulate_mno_dataset(eco, MNOConfig(n_devices=40, seed=3))
events_c, records_c = from_record_streams(
    dataset.radio_events, dataset.service_records
)
shards = shard_columnar_records(events_c, records_c, 2)
exchange = publish_shards(shards, transport="shm")
print(len(exchange.descriptors), flush=True)
# Mid-exchange, segments live: die exactly like an OOM kill.
os.kill(os.getpid(), signal.SIGKILL)
"""


@pytest.mark.chaos
def test_sigkilled_publisher_leaves_no_stale_segments():
    """SIGKILL the publisher mid-exchange: between the resource tracker
    and the stale sweep, no segment of the dead pid survives."""
    if not _HAS_SHM:
        pytest.skip("no shared-memory filesystem on this platform")
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    proc = subprocess.run(
        [sys.executable, "-c", _PUBLISHER_SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == -signal.SIGKILL, proc.stderr
    assert proc.stdout.strip() == "2"  # two shard descriptors were published
    dead_prefix_names = [
        name
        for name in _exchange_segments()
        if (pid := owner_pid(name)) is not None and not _pid_is_ours(pid)
    ]
    # The child's resource tracker outlives the SIGKILL and unlinks the
    # registered segments; give it a moment, then run the belt-and-braces
    # sweep for anything it missed.
    deadline = time.monotonic() + 10.0
    while dead_prefix_names and time.monotonic() < deadline:
        time.sleep(0.2)
        cleanup_stale_segments()
        dead_prefix_names = [
            name
            for name in _exchange_segments()
            if (pid := owner_pid(name)) is not None and not _pid_is_ours(pid)
        ]
    assert dead_prefix_names == []


def _pid_is_ours(pid: int) -> bool:
    return pid == os.getpid()
