"""Sharded pipeline output must be byte-identical to serial, any workers."""

import dataclasses

import pytest

from repro.faults import FaultPlan, inject_radio_events, inject_service_records
from repro.pipeline import DegradationReport, MAX_EXEMPLAR_FAILURES, StageFailure, run_pipeline
from repro.signaling.cdr import ServiceRecord, ServiceType


def assert_identical_results(serial, sharded):
    """Full equality including container iteration order."""
    assert sharded.day_records == serial.day_records
    assert list(sharded.summaries) == list(serial.summaries)
    assert sharded.summaries == serial.summaries
    assert list(sharded.classifications) == list(serial.classifications)
    assert sharded.classifications == serial.classifications


@pytest.mark.parametrize("n_workers", [2, 4])
def test_strict_sharded_equals_serial(eco, mno_dataset, pipeline, n_workers):
    sharded = run_pipeline(mno_dataset, eco, n_workers=n_workers)
    assert_identical_results(pipeline, sharded)
    assert sharded.degradation is None


def poison_record(device_id, timestamp=1000.0):
    """Foreign SIM seen only on a foreign network: unobservable (I:A),
    the summarize stage raises for exactly this device."""
    return ServiceRecord(
        device_id=device_id,
        timestamp=timestamp,
        sim_plmn="26202",
        visited_plmn="20801",
        service=ServiceType.VOICE,
        duration_s=30.0,
    )


@pytest.fixture(scope="module")
def faulted_dataset(mno_dataset):
    """The session dataset through stream faults, plus poison devices."""
    plan = FaultPlan(seed=3, drop_rate=0.02, duplicate_rate=0.01, reorder_rate=0.02)
    events, _ = inject_radio_events(mno_dataset.radio_events, plan)
    records, _ = inject_service_records(mno_dataset.service_records, plan)
    extra = [poison_record(f"poison-{i:02d}", 1000.0 + i) for i in range(14)]
    return dataclasses.replace(
        mno_dataset, radio_events=events, service_records=list(records) + extra
    )


@pytest.mark.parametrize("n_workers", [2, 4])
def test_lenient_sharded_equals_serial(eco, faulted_dataset, n_workers):
    serial = run_pipeline(faulted_dataset, eco, lenient=True)
    sharded = run_pipeline(faulted_dataset, eco, lenient=True, n_workers=n_workers)
    assert_identical_results(serial, sharded)

    ds, bs = sharded.degradation, serial.degradation
    assert ds.n_devices_total == bs.n_devices_total
    assert ds.n_devices_ok == bs.n_devices_ok
    assert ds.n_failed_by_stage == bs.n_failed_by_stage
    assert ds.exemplars == bs.exemplars
    assert ds.classifier_fallback == bs.classifier_fallback
    # The poison devices all failed, and the exemplar list stayed capped.
    assert ds.n_failed_by_stage["summary"] == 14
    assert len(ds.exemplars) == MAX_EXEMPLAR_FAILURES


def test_n_workers_validation(eco, mno_dataset):
    with pytest.raises(ValueError):
        run_pipeline(mno_dataset, eco, n_workers=0)


# -- DegradationReport.merge units -------------------------------------------

def _failure(device_id, stage="summary"):
    return StageFailure(device_id=device_id, stage=stage, error="ValueError: x")


def test_degradation_merge_sums_counts_and_ors_fallback():
    a = DegradationReport(n_devices_total=5, n_devices_ok=3)
    a.n_failed_by_stage["summary"] += 2
    b = DegradationReport(n_devices_total=4, n_devices_ok=4, classifier_fallback=True)
    b.n_failed_by_stage["catalog"] += 1
    b.n_failed_by_stage["summary"] += 1
    merged = a.merge(b)
    assert merged.n_devices_total == 9
    assert merged.n_devices_ok == 7
    assert merged.n_failed_by_stage == {"summary": 3, "catalog": 1}
    assert merged.n_devices_failed == 4
    assert merged.classifier_fallback is True
    # Inputs untouched.
    assert a.n_failed_by_stage == {"summary": 2}
    assert b.classifier_fallback is True and not a.classifier_fallback


def test_degradation_merge_sorts_and_caps_exemplars():
    a = DegradationReport(exemplars=[_failure(f"dev-{i:02d}") for i in range(0, 14, 2)])
    b = DegradationReport(exemplars=[_failure(f"dev-{i:02d}") for i in range(1, 14, 2)])
    merged = a.merge(b)
    assert len(merged.exemplars) == MAX_EXEMPLAR_FAILURES
    # Exactly what a serial pass in sorted device order would have kept.
    assert [f.device_id for f in merged.exemplars] == [
        f"dev-{i:02d}" for i in range(MAX_EXEMPLAR_FAILURES)
    ]


def test_degradation_merge_identity():
    report = DegradationReport(n_devices_total=3, n_devices_ok=3)
    merged = report.merge(DegradationReport())
    assert merged.n_devices_total == 3
    assert merged.ok
