"""Worker-failure recovery in map_shards: deadlines, death, the breaker.

The worker functions key their misbehaviour on *where they run*: the
shared context carries the parent's PID, so a function can hang or die
only inside a pool worker while the in-process fallback path computes
the true result.  That makes every test assert the full contract —
recovery happened, it was recorded, and the results are still exactly
right.
"""

import os
import time

import pytest

from repro.faults.retry import RetryPolicy
from repro.parallel.health import (
    BREAKER_TRIP,
    BROKEN_POOL,
    DEADLINE,
    IN_PROCESS,
    RunHealth,
    ShardIncident,
)
from repro.parallel.pool import get_context, map_shards

#: A jitter-free policy whose single attempt sends a failing shard
#: straight to the in-process fallback — keeps recovery tests fast.
ONE_SHOT = RetryPolicy(
    base_delay_s=0.01, multiplier=1.0, max_delay_s=0.01, jitter=0.0, max_attempts=1
)


def _in_worker() -> bool:
    return os.getpid() != get_context()


def square_or_hang(x: int) -> int:
    if _in_worker():
        time.sleep(30.0)
    return x * x


def square_or_die(x: int) -> int:
    if _in_worker():
        os._exit(3)
    return x * x


def square(x: int) -> int:
    return x * x


def always_raise(x: int) -> int:
    raise ValueError(f"task bug on {x}")


# -- RunHealth bookkeeping ----------------------------------------------------

def test_incident_kind_is_validated():
    with pytest.raises(ValueError, match="unknown incident kind"):
        ShardIncident(0, "bogus")


def test_health_record_and_summary():
    health = RunHealth()
    assert health.ok
    assert "healthy" in health.summary()
    health.record(ShardIncident(0, DEADLINE, 0, "no result within 1s"))
    health.record(ShardIncident(0, IN_PROCESS, 1, "retry budget exhausted"))
    assert not health.ok
    assert health.deadline_hits == 1
    assert health.in_process_shards == [0]
    assert "deadline" in health.summary()


def test_health_merge_accumulates():
    a, b = RunHealth(), RunHealth()
    a.record(ShardIncident(0, BROKEN_POOL, 0, "x"))
    b.record(ShardIncident(1, BREAKER_TRIP, 2, "y"))
    merged = a.merge(b)
    assert merged.broken_pools == 1
    assert merged.breaker_tripped
    assert len(merged.incidents) == 2


# -- recovery behaviour -------------------------------------------------------

def test_hung_worker_hits_deadline_and_recovers():
    health = RunHealth()
    results = map_shards(
        square_or_hang,
        [1, 2, 3],
        n_workers=2,
        context=os.getpid(),
        deadline_s=0.5,
        retry_policy=ONE_SHOT,
        health=health,
    )
    assert results == [1, 4, 9]
    assert health.deadline_hits >= 1
    assert len(health.in_process_shards) >= 1
    assert not health.ok


def test_dead_worker_breaks_pool_and_recovers():
    health = RunHealth()
    results = map_shards(
        square_or_die,
        [1, 2, 3],
        n_workers=2,
        context=os.getpid(),
        deadline_s=30.0,
        retry_policy=ONE_SHOT,
        health=health,
    )
    assert results == [1, 4, 9]
    assert health.broken_pools >= 1
    assert len(health.in_process_shards) >= 1


def test_persistent_failures_trip_the_breaker():
    health = RunHealth()
    generous = RetryPolicy(
        base_delay_s=0.01, multiplier=1.0, max_delay_s=0.01, jitter=0.0,
        max_attempts=10,
    )
    results = map_shards(
        square_or_die,
        [1, 2, 3, 4],
        n_workers=2,
        context=os.getpid(),
        deadline_s=30.0,
        retry_policy=generous,
        health=health,
        breaker_threshold=3,
    )
    assert results == [1, 4, 9, 16]
    assert health.breaker_tripped
    assert any(i.kind == BREAKER_TRIP for i in health.incidents)
    # Every shard still unfinished at trip time ran in-process.
    assert len(health.in_process_shards) >= 1


def test_task_exceptions_propagate_unchanged():
    with pytest.raises(ValueError, match="task bug"):
        map_shards(
            always_raise,
            [1, 2],
            n_workers=2,
            context=os.getpid(),
            deadline_s=30.0,
            health=RunHealth(),
        )


def test_healthy_run_records_nothing():
    health = RunHealth()
    results = map_shards(
        square,
        [1, 2, 3, 4],
        n_workers=2,
        context=os.getpid(),
        deadline_s=30.0,
        health=health,
    )
    assert results == [1, 4, 9, 16]
    assert health.ok
    assert health.incidents == []


def test_recovered_run_matches_serial():
    serial = map_shards(square, [1, 2, 3], n_workers=1, context=os.getpid())
    recovered = map_shards(
        square_or_die,
        [1, 2, 3],
        n_workers=2,
        context=os.getpid(),
        retry_policy=ONE_SHOT,
        health=RunHealth(),
    )
    assert recovered == serial
