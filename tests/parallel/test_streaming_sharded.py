"""Sharded streaming generation is worker-count invariant."""

import pytest

from repro.mno import MNOConfig
from repro.mno.streaming import StreamingMNOSimulator


@pytest.fixture(scope="module")
def sim(eco):
    return StreamingMNOSimulator(eco, MNOConfig(n_devices=120, seed=9))


def test_generate_day_sharded_is_worker_count_invariant(sim):
    batches = [sim.generate_day_sharded(2, n_workers=w) for w in (1, 2, 4)]
    first = batches[0]
    assert first.n_records > 0
    for other in batches[1:]:
        assert other.radio_events == first.radio_events
        assert other.service_records == first.service_records


def test_generate_day_sharded_is_reproducible_across_instances(eco, sim):
    fresh = StreamingMNOSimulator(eco, MNOConfig(n_devices=120, seed=9))
    assert fresh.generate_day_sharded(2, n_workers=2) == sim.generate_day_sharded(
        2, n_workers=1
    )


def test_generate_day_sharded_sorted_by_timestamp_then_device(sim):
    batch = sim.generate_day_sharded(1, n_workers=2)
    keys = [(e.timestamp, e.device_id) for e in batch.radio_events]
    assert keys == sorted(keys)
    keys = [(r.timestamp, r.device_id) for r in batch.service_records]
    assert keys == sorted(keys)


def test_generate_day_sharded_rejects_day_outside_window(sim):
    with pytest.raises(ValueError):
        sim.generate_day_sharded(sim.config.window_days)


def test_days_dispatches_to_sharded_path(sim):
    sharded_days = list(sim.days(n_workers=2))
    assert len(sharded_days) == sim.config.window_days
    assert sharded_days[3] == sim.generate_day_sharded(3, n_workers=1)


def test_sharded_covers_same_planned_devices_as_legacy(sim):
    """Draws differ between the legacy shared stream and per-device
    substreams, but both paths iterate the same planned population."""
    day = 2
    planned = sim.active_devices_on(day)
    batch = sim.generate_day_sharded(day, n_workers=2)
    observed = {e.device_id for e in batch.radio_events} | {
        r.device_id for r in batch.service_records
    }
    assert observed <= planned
