"""Quickstart: simulate a visited MNO, run the paper's pipeline, score it.

This is the 60-second tour of the library:

1. build the modelled cellular world (countries, operators, roaming
   agreements, the IPX hub, sector grids, the GSMA-style TAC catalog);
2. simulate the UK MNO's 22-day dataset — radio events and CDR/xDRs for
   every population segment of the paper;
3. run the §4 pipeline: devices-catalog -> roaming labels -> multi-step
   classification;
4. print the headline composition (the paper's 62/8/26/4% split) and
   score the classifier against simulator ground truth.

Run:  python examples/quickstart.py
"""

import os

from repro.analysis.population import population_shares
from repro.core.validation import validate_classification
from repro.ecosystem import EcosystemConfig, build_default_ecosystem
from repro.mno import MNOConfig, simulate_mno_dataset
from repro.pipeline import run_pipeline


def main() -> None:
    print("building the cellular world ...")
    eco = build_default_ecosystem(EcosystemConfig(uk_sites=80, seed=11))

    n_devices = int(os.environ.get("REPRO_EXAMPLE_DEVICES", "1500"))
    print(f"simulating 22 days of the visited MNO ({n_devices} devices) ...")
    dataset = simulate_mno_dataset(eco, MNOConfig(n_devices=n_devices, seed=7))
    for key, value in dataset.summary().items():
        print(f"  {key:>16}: {value}")

    print("\nrunning the devices-catalog + classification pipeline ...")
    result = run_pipeline(dataset, eco)

    shares = population_shares(result)
    print("\ndevice classes (paper: smart 62%, feat 8%, m2m 26%, maybe 4%):")
    for label, share in shares.class_shares.items():
        print(f"  {label.value:>10}: {share:6.1%}")

    print("\nper-day roaming labels (paper: H:H 48%, V:H 33%, I:H 18%):")
    for label, share in shares.per_day_label_shares.items():
        print(f"  {label:>10}: {share:6.1%}")

    report = validate_classification(result.classifications, dataset.ground_truth)
    print("\nclassifier validation against simulator ground truth:")
    print(report.format())


if __name__ == "__main__":
    main()
