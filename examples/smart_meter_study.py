"""The §7 study: smart meters in the wild — SMIP native vs roaming.

Walks the paper's smart-meter investigation on observables only:

1. identify roaming smart meters among inbound roamers from their
   energy-company APN patterns + the Dutch home operator (§4.4);
2. validate the inference via the TAC catalog (only Gemalto and Telit
   should appear) and against simulator ground truth;
3. reproduce Fig. 11: activity longevity, signaling overhead, failure
   incidence, and RAT capabilities of both fleets;
4. contrast with connected cars (Fig. 12).

Run:  python examples/smart_meter_study.py
"""

import os

from repro.analysis.smart_meters import fig11_smip_activity
from repro.analysis.verticals import fig12_verticals
from repro.ecosystem import build_default_ecosystem
from repro.mno import MNOConfig, simulate_mno_dataset
from repro.mno.smip import (
    identify_smip_roaming,
    smip_devices,
    smip_manufacturer_breakdown,
)
from repro.pipeline import run_pipeline


def main() -> None:
    eco = build_default_ecosystem()
    n_devices = int(os.environ.get("REPRO_EXAMPLE_DEVICES", "2000"))
    print(f"simulating the visited MNO ({n_devices} devices, 22 days) ...")
    dataset = simulate_mno_dataset(eco, MNOConfig(n_devices=n_devices, seed=3))
    result = run_pipeline(dataset, eco)

    print("\n-- §4.4: inferring the roaming smart-meter fleet --")
    nl_plmn = str(eco.nl_iot_operator.plmn)
    inferred = identify_smip_roaming(result.summaries, home_plmn=nl_plmn)
    print(f"  inferred {len(inferred)} roaming meters "
          f"(energy-company APNs on {nl_plmn} SIMs)")
    makers = smip_manufacturer_breakdown(result.summaries, inferred)
    print(f"  hardware check (paper: only Gemalto/Telit): {makers}")
    _, truth_roaming = smip_devices(dataset.ground_truth)
    overlap = len(inferred & truth_roaming)
    print(f"  vs ground truth: {overlap}/{len(inferred)} inferred correctly; "
          f"{len(truth_roaming)} true roaming meters")

    print("\n-- Fig. 11: SMIP native vs roaming --")
    fig11 = fig11_smip_activity(result)
    n, r = fig11.native, fig11.roaming
    print(f"  native:  {n.n_devices} meters; "
          f"{n.full_period_fraction:.0%} active ~whole period "
          f"(day-1 cohort: {n.full_period_fraction_day1:.0%}); "
          f"signaling {n.signaling_per_day.mean:.1f}/day; "
          f"failed>=1: {n.failed_device_fraction:.0%}")
    print(f"  roaming: {r.n_devices} meters; "
          f"{r.active_days.fraction_at_most(5):.0%} active <=5 days; "
          f"signaling {r.signaling_per_day.mean:.1f}/day; "
          f"failed>=1: {r.failed_device_fraction:.0%}")
    print(f"  signaling overhead ratio (roaming/native): "
          f"{fig11.signaling_ratio:.1f}x (paper: ~10x)")
    print(f"  roaming RATs: {r.rat_pattern_shares}")
    print(f"  native RATs:  {n.rat_pattern_shares}")

    print("\n-- Fig. 12: cars vs meters --")
    fig12 = fig12_verticals(result)
    print(f"  cars:   gyration {fig12.cars.gyration_km.mean:8.1f} km, "
          f"signaling {fig12.cars.signaling_per_day.mean:6.1f}/day, "
          f"data {fig12.cars.bytes_per_day.mean / 1e6:8.1f} MB/day")
    print(f"  meters: gyration {fig12.meters.gyration_km.mean:8.3f} km, "
          f"signaling {fig12.meters.signaling_per_day.mean:6.1f}/day, "
          f"data {fig12.meters.bytes_per_day.mean / 1e6:8.3f} MB/day")


if __name__ == "__main__":
    main()
