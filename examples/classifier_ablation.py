"""Ablating the §4.3 classifier: what each pipeline step buys.

The paper argues a multi-step process (APN keywords -> validated APNs ->
device-property propagation -> GSMA rules) is necessary because ~21% of
devices never expose an APN.  This example quantifies that argument:
it runs the classifier with steps disabled and scores every variant
against simulator ground truth.

Run:  python examples/classifier_ablation.py
"""

import os

from repro.core.classifier import (
    ClassifierConfig,
    ClassLabel,
    DeviceClassifier,
    rank_apns,
)
from repro.core.validation import validate_classification
from repro.ecosystem import build_default_ecosystem
from repro.mno import MNOConfig, simulate_mno_dataset
from repro.pipeline import run_pipeline

VARIANTS = {
    "full method": ClassifierConfig(),
    "no property propagation": ClassifierConfig(use_property_propagation=False),
    "no APN keywords": ClassifierConfig(use_apn_keywords=False),
    "no GSMA rules": ClassifierConfig(use_gsma_rules=False),
}


def main() -> None:
    eco = build_default_ecosystem()
    n_devices = int(os.environ.get("REPRO_EXAMPLE_DEVICES", "1500"))
    print(f"simulating the visited MNO ({n_devices} devices) ...")
    dataset = simulate_mno_dataset(eco, MNOConfig(n_devices=n_devices, seed=19))
    base = run_pipeline(dataset, eco, compute_mobility=False)

    no_apn_share = sum(
        1 for s in base.summaries.values() if not s.apns
    ) / len(base.summaries)
    print(f"devices exposing no APN at all: {no_apn_share:.0%} (paper: ~21%)")

    print("\nAPNs ranked by device count (the analyst's starting point):")
    for apn, count in rank_apns(base.summaries.values())[:8]:
        print(f"  {count:5d}  {apn}")

    header = f"\n{'variant':<26} {'m2m':>6} {'maybe':>6} {'acc':>6} {'m2m-rec':>8}"
    print(header)
    print("-" * len(header))
    for name, config in VARIANTS.items():
        classifications = DeviceClassifier(config).classify(base.summaries)
        report = validate_classification(classifications, dataset.ground_truth)
        m2m = sum(
            1 for c in classifications.values() if c.label is ClassLabel.M2M
        ) / len(classifications)
        maybe = sum(
            1 for c in classifications.values() if c.label is ClassLabel.M2M_MAYBE
        ) / len(classifications)
        print(
            f"{name:<26} {m2m:6.1%} {maybe:6.1%} {report.accuracy:6.1%} "
            f"{report.per_class[ClassLabel.M2M].recall:8.1%}"
        )

    print(
        "\nreading: dropping propagation pushes voice-only machines into "
        "m2m-maybe; dropping the APN step removes the seed entirely."
    )


if __name__ == "__main__":
    main()
