"""The §3 study: characterize a global M2M platform from its signaling.

Reproduces the paper's platform-side analysis end to end:

* simulate the 11-day signaling trace of a global IoT-SIM platform
  (four HMNOs: ES, MX, AR, DE, roaming via the IPX hub);
* Fig. 2 — which countries each HMNO's devices operate in;
* Fig. 3 — per-device signaling load, VMNO usage, inter-VMNO switches;
* the §3.2 text statistics (roaming shares, failed-only devices);
* export the trace to JSONL for offline re-analysis.

Run:  python examples/m2m_platform_study.py
"""

import os
import tempfile
from pathlib import Path

from repro.analysis.platform import (
    fig2_device_distribution,
    fig3_dynamics,
    platform_stats,
)
from repro.datasets.io import write_transactions
from repro.ecosystem import build_default_ecosystem
from repro.platform_m2m import PlatformConfig, simulate_m2m_dataset


def main() -> None:
    eco = build_default_ecosystem()
    n_devices = int(os.environ.get("REPRO_EXAMPLE_DEVICES", "1200"))
    print(f"simulating the M2M platform ({n_devices} IoT SIMs, 11 days) ...")
    dataset = simulate_m2m_dataset(eco, PlatformConfig(n_devices=n_devices, seed=42))
    print(f"  {dataset.n_devices} devices, {dataset.n_transactions} transactions")

    print("\n-- Fig. 2: where each HMNO's things roam --")
    fig2 = fig2_device_distribution(dataset, eco.countries)
    for hmno, share in sorted(fig2.hmno_shares.items(), key=lambda kv: -kv[1]):
        top = ", ".join(
            f"{country} {cell:.0%}" for country, cell in fig2.top_visited(hmno, 4)
        )
        print(f"  {hmno}: {share:5.1%} of devices; top visited: {top}")

    print("\n-- Fig. 3: device-level dynamics --")
    fig3 = fig3_dynamics(dataset)
    print(f"  signaling records/device: mean {fig3.records_all.mean:.0f}, "
          f"median {fig3.records_all.median:.0f}, max {fig3.records_all.max:.0f}")
    print(f"  roaming/native median ratio: {fig3.roaming_to_native_median_ratio:.1f}x")
    print(f"  single-VMNO roamers: {fig3.vmno_counts.fraction_at_most(1):.0%}; "
          f"3+ VMNOs: {fig3.vmno_counts.fraction_above(2):.0%}; "
          f"max VMNOs: {fig3.vmno_counts.max:.0f}")
    print(f"  multi-VMNO devices switching daily: "
          f"{fig3.switch_counts.fraction_above(10):.0%}")

    print("\n-- §3.2 statistics --")
    stats = platform_stats(dataset, eco.countries)
    es = stats.per_hmno["ES"]
    print(f"  ES: {es.device_share:.1%} of devices, "
          f"{es.n_visited_countries} visited countries, "
          f"{es.n_visited_vmnos} VMNOs, "
          f"{es.roaming_signaling_fraction:.0%} of its signaling while roaming")
    print(f"  devices with only failed 4G procedures: "
          f"{stats.failed_only_fraction:.0%}")

    out = Path(tempfile.gettempdir()) / "m2m_platform_trace.jsonl"
    count = write_transactions(out, dataset.transactions)
    print(f"\nexported {count} transactions to {out}")


if __name__ == "__main__":
    main()
