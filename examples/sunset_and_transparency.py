"""The §8 discussion, quantified: sunsets, transparency, silent roamers.

Three what-ifs the paper raises but cannot compute on its closed data:

1. **Legacy sunsets** — how much of each device class is stranded when
   2G (and 3G) are retired, per the paper's "MNOs in Europe are
   reportedly planning to retire their legacy 2G/3G networks";
2. **GSMA transparency** — if home operators declared their M2M APNs
   and IMSI ranges (IR.88-style), how much of the classification
   problem would disappear;
3. **Silent roamers** — the inbound devices that hold radio resources
   while generating no billable traffic.

Run:  python examples/sunset_and_transparency.py
"""

import os

from repro.analysis.revenue import revenue_by_class, silent_roamers
from repro.analysis.sunset import SUNSET_2G, SUNSET_2G_3G, sunset_impact
from repro.core.transparency import (
    TransparencyDetector,
    coverage_report,
    default_declarations,
)
from repro.ecosystem import build_default_ecosystem
from repro.mno import MNOConfig, simulate_mno_dataset
from repro.pipeline import run_pipeline


def main() -> None:
    eco = build_default_ecosystem()
    n_devices = int(os.environ.get("REPRO_EXAMPLE_DEVICES", "1500"))
    print(f"simulating the visited MNO ({n_devices} devices) ...")
    dataset = simulate_mno_dataset(eco, MNOConfig(n_devices=n_devices, seed=23))
    result = run_pipeline(dataset, eco, compute_mobility=False)

    print("\n-- 1. legacy-RAT sunset impact --")
    for scenario in (SUNSET_2G, SUNSET_2G_3G):
        print(sunset_impact(result, scenario).format())

    print("\n-- 2. transparency declarations vs the classifier --")
    registry = default_declarations(
        str(eco.nl_iot_operator.plmn),
        [str(op.plmn) for op in eco.platform_hmnos.values()],
    )
    detected = TransparencyDetector(registry).detect_by_apn(result.summaries)
    print(f"declared operators: {sorted(registry.declaring_operators())}")
    print(coverage_report(
        detected, result.classifications, dataset.ground_truth
    ).format())

    print("\n-- 3. silent roamers and the revenue gap --")
    print(revenue_by_class(result).format())
    silent = silent_roamers(result)
    inbound = sum(
        1 for s in result.summaries.values() if s.label.is_inbound_roamer
    )
    print(f"silent roamers: {len(silent)} of {inbound} inbound devices "
          f"({len(silent) / inbound:.0%})")


if __name__ == "__main__":
    main()
