"""The §6 punchline in numbers: things occupy the network, people pay.

Combines the roaming substrate's billing model with the simulated MNO
dataset to quantify the revenue asymmetry the paper highlights: M2M
inbound roamers hold radio resources but generate almost no billable
wholesale traffic.  Also illustrates the §2 routing configurations: the
extra user-plane distance of home-routed roaming versus hub breakout
for far-away fleets.

Run:  python examples/roaming_economics.py
"""

import os
from collections import defaultdict

from repro.cellular.geo import GeoPoint
from repro.core.classifier import ClassLabel
from repro.ecosystem import build_default_ecosystem
from repro.mno import MNOConfig, simulate_mno_dataset
from repro.pipeline import run_pipeline
from repro.roaming.billing import WholesaleRater
from repro.roaming.configs import RoamingConfig, user_plane_path_km


def main() -> None:
    eco = build_default_ecosystem()
    n_devices = int(os.environ.get("REPRO_EXAMPLE_DEVICES", "1500"))
    print(f"simulating the visited MNO ({n_devices} devices) ...")
    dataset = simulate_mno_dataset(eco, MNOConfig(n_devices=n_devices, seed=31))
    result = run_pipeline(dataset, eco, compute_mobility=False)

    print("\n-- wholesale revenue per inbound-roamer class (§6) --")
    rater = WholesaleRater(str(eco.uk_mno.plmn))
    tap = rater.rate_records(dataset.service_records)
    revenue = WholesaleRater.revenue_per_device(tap)

    per_class = defaultdict(lambda: [0.0, 0])
    for device_id, summary in result.summaries.items():
        if not summary.label.is_inbound_roamer:
            continue
        label = result.classifications[device_id].label
        per_class[label][0] += revenue.get(device_id, 0.0)
        per_class[label][1] += 1
    for label in (ClassLabel.SMART, ClassLabel.FEAT, ClassLabel.M2M):
        total, count = per_class[label]
        if count:
            print(f"  {label.value:>6}: {count:4d} inbound devices, "
                  f"avg wholesale claim {total / count:8.4f} EUR over the window")

    smart_avg = per_class[ClassLabel.SMART][0] / max(1, per_class[ClassLabel.SMART][1])
    m2m_avg = per_class[ClassLabel.M2M][0] / max(1, per_class[ClassLabel.M2M][1])
    if m2m_avg > 0:
        print(f"  -> a roaming smartphone is worth {smart_avg / m2m_avg:.0f}x "
              f"a roaming thing in wholesale revenue")

    print("\n-- routing configurations for far-away fleets (§2.1, Fig. 1) --")
    home_gw = GeoPoint(40.4, -3.7)  # the Spanish HMNO's PGW
    for iso in ("GB", "DE", "AU", "JP", "CL"):
        country = eco.countries.by_iso(iso)
        device = GeoPoint(country.lat, country.lon)
        pop = eco.hub.nearest_pop(device)
        hr = user_plane_path_km(RoamingConfig.HOME_ROUTED, device, home_gw)
        ihbo = user_plane_path_km(
            RoamingConfig.IPX_HUB_BREAKOUT, device, home_gw, pop.location
        )
        print(f"  ES SIM roaming in {iso}: HR detour {hr:7.0f} km, "
              f"IHBO via {pop.country_iso} PoP {ihbo:7.0f} km "
              f"({'IHBO wins' if ihbo < hr else 'HR fine'})")


if __name__ == "__main__":
    main()
