"""The operator's day-2 toolkit: streaming, export, GGSN planning, report.

Beyond reproducing the paper's figures, the library is meant to be
*used*.  This example walks the workflows an operator analyst would run:

1. **streaming generation** — produce the dataset day by day with
   bounded memory (the only way at 39.6M-device scale);
2. **catalog export** — materialize the daily devices-catalog as CSV,
   the artifact analysts actually share;
3. **GGSN capacity planning** — quantify what the dedicated smart-meter
   gateway pool (§4.4) protects the native users from;
4. **the one-file reproduction report** — every figure in one Markdown
   document.

Run:  python examples/operator_toolkit.py
"""

import os
import tempfile
from pathlib import Path

from repro.datasets.export import write_day_records, write_summaries
from repro.ecosystem import build_default_ecosystem
from repro.mno import MNOConfig, simulate_mno_dataset
from repro.mno.ggsn import isolation_benefit
from repro.mno.streaming import StreamingMNOSimulator
from repro.pipeline import run_pipeline
from repro.platform_m2m import PlatformConfig, simulate_m2m_dataset
from repro.reporting import build_report


def main() -> None:
    eco = build_default_ecosystem()
    n_devices = int(os.environ.get("REPRO_EXAMPLE_DEVICES", "1000"))
    out_dir = Path(tempfile.mkdtemp(prefix="repro_toolkit_"))

    print(f"-- 1. streaming generation ({n_devices} devices, day by day) --")
    streaming = StreamingMNOSimulator(eco, MNOConfig(n_devices=n_devices, seed=13))
    peak_day = max(streaming.days(), key=lambda batch: batch.n_records)
    print(f"  busiest day: day {peak_day.day} with {peak_day.n_records} records "
          f"({len(peak_day.radio_events)} radio, "
          f"{len(peak_day.service_records)} service)")

    print("\n-- 2. batch pipeline + catalog export --")
    dataset = simulate_mno_dataset(eco, MNOConfig(n_devices=n_devices, seed=13))
    result = run_pipeline(dataset, eco)
    n_rows = write_day_records(out_dir / "catalog_days.csv", result.day_records)
    n_sum = write_summaries(out_dir / "catalog_summaries.csv", result.summaries.values())
    print(f"  exported {n_rows} daily rows + {n_sum} summaries to {out_dir}")

    print("\n-- 3. GGSN isolation planning (§4.4) --")
    benefit = isolation_benefit(dataset.service_records, dataset.window_days)
    print(f"  meter pool peak: {benefit.meter_pool_peak:.0f} sessions/h "
          f"at {benefit.meter_pool_peak_hour:02d}:00 (the nightly batch)")
    print(f"  consumer-pool peak: {benefit.shared_peak_with_isolation:.0f}/h "
          f"isolated vs {benefit.shared_peak_without_isolation:.0f}/h flat "
          f"(+{benefit.peak_increase_without_isolation:.1%} without the dedicated pool)")

    print("\n-- 4. one-file reproduction report --")
    m2m = simulate_m2m_dataset(eco, PlatformConfig(n_devices=n_devices, seed=42))
    report_path = out_dir / "REPORT.md"
    report_path.write_text(build_report(m2m, result, eco), encoding="utf-8")
    print(f"  wrote {report_path} "
          f"({len(report_path.read_text().splitlines())} lines)")


if __name__ == "__main__":
    main()
