"""GROWTH — the §9 IoT-market projection applied to the visited MNO.

"In a market expected to reach 75.44 billion worldwide by 2025, i.e.,
almost 10x the estimated world population…" — first-order projection:
M2M headcount scales, person devices and per-device behaviour stay as
measured today.
"""


from repro.analysis.growth import project_growth
from repro.analysis.report import ExperimentReport


def test_growth_projection(benchmark, pipeline, emit_report):
    curve = benchmark(project_growth, pipeline, (1.0, 2.0, 5.0, 10.0))
    today, ten_x = curve[0], curve[-1]

    report = ExperimentReport("GROWTH", "M2M growth projection (to ~10x)")
    report.add(
        "m2m device share today (incl. maybe)", "~30%",
        today.m2m_device_share, window=(0.22, 0.38),
    )
    report.add(
        "m2m device share at 10x", "dominant",
        ten_x.m2m_device_share, window=(0.70, 0.95),
    )
    report.add(
        "m2m signaling share at 10x", "large minority+",
        ten_x.m2m_signaling_share, window=(0.25, 0.90),
    )
    report.add(
        "m2m revenue share at 10x", "still small",
        ten_x.m2m_revenue_share, window=(0.0, 0.35),
    )
    report.add(
        "signaling-revenue gap widens (10x minus today)", ">0",
        (ten_x.m2m_signaling_share - ten_x.m2m_revenue_share)
        - (today.m2m_signaling_share - today.m2m_revenue_share),
        window=(0.0, 1.0),
    )
    report.add(
        "stress index at 10x (signaling/revenue share)", ">>1",
        ten_x.stress_index, window=(1.5, 1e6),
    )
    emit_report(report)
