"""FIG3 — M2M platform device-level dynamics (paper Fig. 3).

Left panel: per-device signaling-record distribution (mean 267, 97% of
devices below 2,000 records, extreme flooder tail; roamers ~10x native
in median).  Center: VMNOs per roaming device (65% one, >25% two, ~5%
three or more).  Right: inter-VMNO switches for multi-VMNO devices
(~50% at most two switches; ~20% at least daily; ~3% in the 100-3,000
range).
"""


from repro.analysis.platform import fig3_dynamics
from repro.analysis.report import ExperimentReport


def test_fig3_signaling_and_steering(benchmark, m2m_dataset, emit_report):
    result = benchmark(fig3_dynamics, m2m_dataset)

    report = ExperimentReport("FIG3", "per-device signaling, VMNO usage, switching")
    report.add(
        "mean signaling records per device", "267",
        result.records_all.mean, window=(120, 500),
    )
    report.add(
        "devices below 2000 records", "97%",
        result.records_all.fraction_at_most(2000), window=(0.90, 1.0),
    )
    report.add(
        "max records / mean (flooder tail)", ">100x at paper scale",
        result.records_all.max / result.records_all.mean, window=(8, 10000),
    )
    report.add(
        "roaming/native median ratio", "~10x",
        result.roaming_to_native_median_ratio, window=(4, 25),
    )
    report.add(
        "roaming devices on a single VMNO", "65%",
        result.vmno_counts.fraction_at_most(1), window=(0.50, 0.80),
    )
    report.add(
        "roaming devices on exactly two VMNOs", ">25%",
        result.vmno_counts.fraction_at_most(2) - result.vmno_counts.fraction_at_most(1),
        window=(0.10, 0.40),
    )
    report.add(
        "roaming devices on 3+ VMNOs", "~5%",
        result.vmno_counts.fraction_above(2), window=(0.01, 0.15),
    )
    report.add(
        "max VMNOs attempted by one device", "19",
        result.vmno_counts.max, window=(6, 30),
    )
    report.add(
        "multi-VMNO devices with <=2 switches", "~50%",
        result.switch_counts.fraction_at_most(2), window=(0.15, 0.65),
    )
    report.add(
        "multi-VMNO devices switching daily (>=11)", "~20%",
        result.switch_counts.fraction_above(10), window=(0.10, 0.55),
    )
    report.add(
        "multi-VMNO devices with >=100 switches", "~3%",
        result.switch_counts.fraction_above(99), window=(0.005, 0.12),
    )
    emit_report(report)
