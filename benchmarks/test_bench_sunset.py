"""SUNSET — the 2G/3G retirement what-if (§6.1, §8 discussion).

The paper: "the vast majority of M2M devices (77.4%) are active on the
2G network only" and "MNOs in Europe are reportedly planning to retire
their legacy 2G/3G networks starting 2020" — implying most of the M2M
population observed by the visited MNO would be stranded.  This bench
quantifies that implication.
"""


from repro.analysis.report import ExperimentReport
from repro.analysis.sunset import SUNSET_2G, SUNSET_2G_3G, SUNSET_3G, sunset_impact
from repro.core.classifier import ClassLabel


def test_sunset_scenarios(benchmark, pipeline, emit_report):
    impact_2g = benchmark(sunset_impact, pipeline, SUNSET_2G)
    impact_3g = sunset_impact(pipeline, SUNSET_3G)
    impact_both = sunset_impact(pipeline, SUNSET_2G_3G)

    report = ExperimentReport("SUNSET", "legacy-RAT retirement impact")
    report.add(
        "m2m stranded by a 2G sunset", "~77% (2G-only share)",
        impact_2g.stranded(ClassLabel.M2M), window=(0.60, 0.88),
    )
    report.add(
        "feature phones stranded by a 2G sunset", "~51%",
        impact_2g.stranded(ClassLabel.FEAT), window=(0.35, 0.65),
    )
    report.add(
        "smartphones stranded by a 2G sunset", "≈0",
        impact_2g.stranded(ClassLabel.SMART), window=(0.0, 0.05),
    )
    report.add(
        "m2m stranded by a 3G-only sunset", "native-meter share",
        impact_3g.stranded(ClassLabel.M2M), window=(0.03, 0.30),
    )
    report.add(
        "m2m stranded by a joint 2G+3G sunset", "nearly all",
        impact_both.stranded(ClassLabel.M2M), window=(0.85, 1.0),
    )
    report.add(
        "smartphones stranded by a joint sunset", "small (4G-capable)",
        impact_both.stranded(ClassLabel.SMART), window=(0.0, 0.25),
    )
    report.note(
        "the paper's 4G-only platform view is 'a lower bound' precisely "
        "because today's things live on the RATs being retired"
    )
    emit_report(report)
