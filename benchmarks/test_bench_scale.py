"""ABL-SCALE — scale invariance of the share statistics.

The paper reports that label shares are stable across its 22 days; a
synthetic reproduction must additionally show its headline *shares* are
stable under population scale (otherwise comparisons against a 39.6M-
device paper from a few-thousand-device simulation would be meaningless).
"""


from repro.analysis.population import population_shares
from repro.analysis.report import ExperimentReport
from repro.core.classifier import ClassLabel
from repro.mno import MNOConfig, simulate_mno_dataset
from repro.pipeline import run_pipeline


def _class_shares(eco, n_devices, seed):
    dataset = simulate_mno_dataset(eco, MNOConfig(n_devices=n_devices, seed=seed))
    result = run_pipeline(dataset, eco, compute_mobility=False)
    return population_shares(result).class_shares


def test_share_stability_across_scale(benchmark, eco, emit_report):
    small = benchmark(_class_shares, eco, 400, 100)
    large = _class_shares(eco, 1600, 101)

    report = ExperimentReport("ABL-SCALE", "class-share stability under scale")
    for label in (ClassLabel.SMART, ClassLabel.FEAT, ClassLabel.M2M):
        report.add(
            f"{label.value} share drift (400 vs 1600 devices)", "~0",
            abs(small[label] - large[label]), window=(0.0, 0.05),
        )
    report.add(
        "m2m-maybe drift", "~0",
        abs(small[ClassLabel.M2M_MAYBE] - large[ClassLabel.M2M_MAYBE]),
        window=(0.0, 0.03),
    )
    emit_report(report)
