"""TAB-S4 — population composition statistics (§4.2, §4.3).

* whole-period class shares: 62% smart, 8% feat, 26% m2m, 4% m2m-maybe;
* per-day roaming-label shares: ~48% H:H, ~33% V:H, ~18% I:H, stable
  across the window;
* the per-day inbound share is lower than the whole-period share
  (visitor churn).
"""


from repro.analysis.population import population_shares
from repro.analysis.report import ExperimentReport
from repro.core.classifier import ClassLabel


def test_population_shares(benchmark, pipeline, emit_report):
    shares = benchmark(population_shares, pipeline)

    report = ExperimentReport("TAB-S4", "device population composition")
    report.add(
        "smartphone class share", "62%",
        shares.class_shares[ClassLabel.SMART], window=(0.55, 0.68),
    )
    report.add(
        "feature-phone class share", "8%",
        shares.class_shares[ClassLabel.FEAT], window=(0.05, 0.13),
    )
    report.add(
        "m2m class share", "26%",
        shares.class_shares[ClassLabel.M2M], window=(0.21, 0.31),
    )
    report.add(
        "m2m-maybe residue", "4%",
        shares.class_shares[ClassLabel.M2M_MAYBE], window=(0.015, 0.07),
    )
    report.add(
        "per-day H:H share", "~48%",
        shares.per_day_label_shares.get("H:H", 0.0), window=(0.40, 0.60),
    )
    report.add(
        "per-day V:H share", "~33%",
        shares.per_day_label_shares.get("V:H", 0.0), window=(0.22, 0.40),
    )
    report.add(
        "per-day I:H share", "~18%",
        shares.per_day_label_shares.get("I:H", 0.0), window=(0.08, 0.24),
    )
    churn = (
        shares.label_shares.get("I:H", 0.0)
        - shares.per_day_label_shares.get("I:H", 0.0)
    )
    report.add(
        "whole-period minus per-day inbound share (churn)", ">0",
        churn, window=(0.0, 0.5),
    )
    report.note(f"{shares.n_devices} devices (paper: 39.6M; ~1:13000 scale)")
    emit_report(report)
