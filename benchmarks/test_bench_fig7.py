"""FIG7 — Number of days devices are active (paper Fig. 7).

* inbound M2M devices are active ~4.5x longer than inbound smartphones
  in the median (9 vs 2 days);
* native M2M and native smartphones look similar.

Our visitor-stay calibration trades a little of the 4.5x ratio for
consistency with Fig. 11's roaming-meter churn (both figures are driven
by the same stay-length distribution but come from different windows in
the paper); the shape — M2M several times longer — holds.
"""


from repro.analysis.activity import fig7_active_days
from repro.analysis.report import ExperimentReport
from repro.core.classifier import ClassLabel


def test_fig7_active_days(benchmark, pipeline, emit_report):
    result = benchmark(fig7_active_days, pipeline)

    report = ExperimentReport("FIG7", "active days: inbound vs native")
    report.add(
        "inbound m2m median active days", "9",
        result.inbound[ClassLabel.M2M].median, window=(4, 14),
    )
    report.add(
        "inbound smartphone median active days", "2",
        result.inbound[ClassLabel.SMART].median, window=(1, 4),
    )
    report.add(
        "inbound m2m/smartphone median ratio", "4.5x",
        result.median_ratio_inbound(), window=(2.0, 8.0),
    )
    native_m2m = result.native[ClassLabel.M2M].median
    native_smart = result.native[ClassLabel.SMART].median
    report.add(
        "native m2m / native smartphone median ratio", "~1 (similar)",
        native_m2m / native_smart, window=(0.6, 1.6),
    )
    emit_report(report)
