"""FIG6 — Device class vs roaming label heatmaps (paper Fig. 6).

* of inbound roamers (I:H), 71.1% are M2M and 27.1% smartphones;
* of M2M devices, 74.7% are inbound roamers;
* smartphones and feature phones are overwhelmingly native/MVNO
  (only 12.1% / 6.4% inbound).
"""


from repro.analysis.population import fig6_class_vs_label
from repro.analysis.report import ExperimentReport
from repro.core.classifier import ClassLabel


def test_fig6_class_vs_label(benchmark, pipeline, emit_report):
    result = benchmark(fig6_class_vs_label, pipeline)

    report = ExperimentReport("FIG6", "device class x roaming label")
    report.add(
        "M2M share of inbound roamers (I:H column)", "71.1%",
        result.share_of_label("I:H", ClassLabel.M2M), window=(0.60, 0.82),
    )
    report.add(
        "smartphone share of inbound roamers", "27.1%",
        result.share_of_label("I:H", ClassLabel.SMART), window=(0.15, 0.38),
    )
    report.add(
        "inbound share of M2M devices (row)", "74.7%",
        result.share_of_class(ClassLabel.M2M, "I:H"), window=(0.60, 0.85),
    )
    report.add(
        "inbound share of smartphones", "12.1%",
        result.share_of_class(ClassLabel.SMART, "I:H"), window=(0.06, 0.20),
    )
    report.add(
        "inbound share of feature phones", "6.4%",
        result.share_of_class(ClassLabel.FEAT, "I:H"), window=(0.01, 0.14),
    )
    native_smart = result.share_of_class(ClassLabel.SMART, "H:H") + \
        result.share_of_class(ClassLabel.SMART, "V:H")
    report.add(
        "native+MVNO share of smartphones", "~85%",
        native_smart, window=(0.70, 0.95),
    )
    emit_report(report)
