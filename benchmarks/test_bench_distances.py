"""DIST — HMNO-VMNO distance structure of the platform (§3.2).

"The geographical distances between the HMNO and the VMNO are not
always small (e.g., Spain to Australia), pointing to potential serious
performance penalties in the case of HR roaming.  In this case, the
M2M platform uses different roaming configurations…"
"""


from repro.analysis.distances import farthest_pairs, roaming_distances
from repro.analysis.report import ExperimentReport


def test_platform_distance_structure(benchmark, m2m_dataset, eco, emit_report):
    result = benchmark(
        roaming_distances, m2m_dataset, eco.countries, hub=eco.hub
    )

    report = ExperimentReport("DIST", "HMNO-VMNO distances and HR penalty")
    report.add(
        "median roaming distance (km)", "regional (EU-dominated)",
        result.txn_distance.median, window=(300, 4000),
    )
    report.add(
        "intercontinental transaction share (>5000 km)", "non-trivial tail",
        result.intercontinental_share, window=(0.001, 0.30),
    )
    report.add(
        "max device reach (km)", "Spain-to-Australia scale",
        result.device_max_distance.max, window=(8000, 20100),
    )
    report.add(
        "share of roaming broken out at the hub", "far destinations only",
        result.ihbo_share, window=(0.0, 0.40),
    )
    report.add(
        "user-plane distance saved by the mixed policy", ">=0",
        result.detour_saving, window=(0.0, 1.0),
    )
    pairs = farthest_pairs(m2m_dataset, eco.countries, k=3)
    report.note(
        "farthest observed pairs: "
        + ", ".join(f"{h}->{v} {d:.0f} km" for h, v, d in pairs)
    )
    emit_report(report)
