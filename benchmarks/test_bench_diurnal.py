"""DIURNAL — M2M vs phone traffic timing (§1, via prior work [18]).

"M2M traffic exhibits significantly different features than phone
traffic in a range of aspects from signaling, to uplink/downlink
traffic volume ratios to diurnal patterns."
"""


from repro.analysis.diurnal import diurnal_profiles, meter_reporting_window
from repro.analysis.report import ExperimentReport
from repro.core.classifier import ClassLabel
from repro.mno.smip import smip_devices


def test_diurnal_divergence(benchmark, pipeline, emit_report):
    result = benchmark(diurnal_profiles, pipeline)

    report = ExperimentReport("DIURNAL", "hourly activity per device class")
    smart = result.profiles[ClassLabel.SMART]
    m2m = result.profiles[ClassLabel.M2M]
    report.add(
        "smartphone peak hour (waking hours)", "daytime",
        smart.peak_hour, window=(8, 22),
    )
    report.add(
        "m2m-vs-smartphone profile divergence (TV distance)", "significant",
        result.divergence(ClassLabel.M2M, ClassLabel.SMART), window=(0.10, 1.0),
    )
    report.add(
        "smart-vs-feat divergence (both human)", "small",
        result.divergence(ClassLabel.SMART, ClassLabel.FEAT), window=(0.0, 0.15),
    )
    report.add(
        "m2m night-share (00-06) vs smartphone", "higher",
        m2m.night_share() - smart.night_share(), window=(0.02, 1.0),
    )

    native, roaming = smip_devices(pipeline.dataset.ground_truth)
    peak = meter_reporting_window(pipeline, native | roaming)
    report.add(
        "meter reporting batch peaks overnight", "off-peak window",
        peak if peak is not None else -1, window=(0, 5),
    )
    emit_report(report)
