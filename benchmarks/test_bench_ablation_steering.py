"""ABL-STEER — steering-policy ablation behind Fig. 3's distributions.

DESIGN.md calls out that the VMNO-count and switch-count tails of Fig. 3
are the observable consequence of the steering-policy mixture.  This
bench regenerates the platform dataset under three pure-policy worlds
(all-sticky / all-failure-driven / all-random) and shows how each pushes
the distributions away from the observed mix — the mixture is necessary.
"""


from repro.analysis.platform import fig3_dynamics
from repro.analysis.report import ExperimentReport
from repro.platform_m2m import PlatformConfig, simulate_m2m_dataset

N_DEVICES = 600


def _dynamics(eco, steering_mix):
    config = PlatformConfig(
        n_devices=N_DEVICES, seed=4242, steering_mix=steering_mix
    )
    return fig3_dynamics(simulate_m2m_dataset(eco, config))


def test_steering_policy_ablation(benchmark, eco, emit_report):
    mixed = benchmark(_dynamics, eco, (0.60, 0.34, 0.06))
    all_sticky = _dynamics(eco, (1.0, 0.0, 0.0))
    all_random = _dynamics(eco, (0.0, 0.0, 1.0))

    report = ExperimentReport(
        "ABL-STEER", "steering mixture vs pure policies (Fig. 3 shape)"
    )
    report.add(
        "mixed: single-VMNO share", "65% (paper)",
        mixed.vmno_counts.fraction_at_most(1), window=(0.50, 0.82),
    )
    report.add(
        "all-sticky: single-VMNO share", "higher than mixed",
        all_sticky.vmno_counts.fraction_at_most(1),
        window=(mixed.vmno_counts.fraction_at_most(1) - 0.02, 1.0),
    )
    report.add(
        "all-random: single-VMNO share", "collapses",
        all_random.vmno_counts.fraction_at_most(1), window=(0.0, 0.65),
    )
    report.add(
        "all-random: median switches (multi-VMNO devices)", "explodes",
        all_random.switch_counts.median,
        window=(mixed.switch_counts.median, 1e9),
    )
    report.add(
        "mixed: heavy switch tail exists (>=100)", "~3% (paper)",
        mixed.switch_counts.fraction_above(99), window=(0.002, 0.15),
    )
    # Note: even the all-sticky world keeps a residual tail — the 4G-failed
    # coverage hunters switch regardless of steering policy — so the
    # discriminating contrast is all-random blowing far past the mix.
    report.add(
        "all-random: heavy switch tail vs mixed", "explodes",
        all_random.switch_counts.fraction_above(99)
        - mixed.switch_counts.fraction_above(99),
        window=(0.0, 1.0),
    )
    report.note("pure-policy worlds cannot reproduce Fig. 3; the mixture can")
    emit_report(report)
