"""FIG8 — Radius of gyration per device class (paper Fig. 8).

* inbound M2M devices are overwhelmingly stationary: only ~20% show a
  gyration above 1 km (partly cell reselection, not movement);
* smartphones show person-scale mobility, far above M2M.
"""


from repro.analysis.mobility import fig8_gyration
from repro.analysis.report import ExperimentReport
from repro.core.classifier import ClassLabel


def test_fig8_radius_of_gyration(benchmark, pipeline, emit_report):
    result = benchmark(fig8_gyration, pipeline)

    report = ExperimentReport("FIG8", "radius of gyration per class")
    report.add(
        "inbound m2m devices above 1 km gyration", "~20%",
        result.m2m_inbound_fraction_above(1.0), window=(0.03, 0.30),
    )
    report.add(
        "m2m median gyration (km)", "≈0 (stationary)",
        result.by_class[ClassLabel.M2M].median, window=(0.0, 1.0),
    )
    smart = result.by_class[ClassLabel.SMART].median
    m2m = result.by_class[ClassLabel.M2M].median
    report.add(
        "smartphone median gyration (km)", "person-scale (km+)",
        smart, window=(0.2, 100.0),
    )
    report.add(
        "smartphone/m2m median gyration gap", "large",
        smart - m2m, window=(0.2, 1000.0),
    )
    emit_report(report)
