"""FIG12 — Connected cars vs smart meters (paper Fig. 12, §7.2).

* connected cars behave like inbound-roaming smartphones: high
  mobility, large signaling and data volumes;
* smart meters are stationary and quiet on both planes.

Vertical membership comes from the classifier's APN evidence, exactly
like the paper's §7.2 separation.
"""


from repro.analysis.report import ExperimentReport
from repro.analysis.verticals import fig12_verticals


def test_fig12_cars_vs_meters(benchmark, pipeline, emit_report):
    result = benchmark(fig12_verticals, pipeline)

    report = ExperimentReport("FIG12", "connected cars vs smart meters")
    # Meters snap to a single sector, so their mean gyration is ~0 and a
    # ratio is numerically unbounded; absolute levels carry the contrast.
    report.add(
        "cars mean gyration (km)", "person/vehicle scale",
        result.cars.gyration_km.mean, window=(10.0, 500.0),
    )
    report.add(
        "meters mean gyration (km)", "~0 (stationary)",
        result.meters.gyration_km.mean, window=(0.0, 1.0),
    )
    report.add(
        "car/meter signaling per day ratio", ">>1",
        result.cars.signaling_per_day.mean / result.meters.signaling_per_day.mean,
        window=(2.0, 100.0),
    )
    report.add(
        "car/meter data volume ratio", ">>1",
        result.cars.bytes_per_day.mean / result.meters.bytes_per_day.mean,
        window=(20.0, 1e9),
    )
    car_vs_phone_gyration = (
        result.cars.gyration_km.mean / result.inbound_smartphones.gyration_km.mean
    )
    report.add(
        "cars' mobility ~ inbound smartphones (gyration ratio)", "~1",
        car_vs_phone_gyration, window=(0.3, 4.0),
    )
    report.add(
        "meters mostly below 1 km gyration", "stationary",
        result.meters.gyration_km.fraction_at_most(1.0), window=(0.7, 1.0),
    )
    report.note(
        f"{result.cars.n_devices} cars, {result.meters.n_devices} meters, "
        f"{result.inbound_smartphones.n_devices} inbound smartphones"
    )
    emit_report(report)
