"""FIG5 — Home country of inbound roaming devices (paper Fig. 5).

* top-20 home countries cover >93% of inbound roamers;
* the top-3 (NL, SE, ES) cover about 60%;
* the M2M class is far more concentrated: 83% of inbound M2M devices
  come from the top-3 countries.
"""


from repro.analysis.population import fig5_home_countries
from repro.analysis.report import ExperimentReport


def test_fig5_home_countries(benchmark, pipeline, eco, emit_report):
    result = benchmark(fig5_home_countries, pipeline, eco.countries)

    top = result.top_countries(3)
    report = ExperimentReport("FIG5", "home countries of inbound roamers")
    report.add(
        "top-20 countries' share of inbound roamers", ">93%",
        result.top20_overall_share, window=(0.93, 1.0),
    )
    report.add(
        "top-3 countries' share of inbound roamers", "~60%",
        result.top3_overall_share, window=(0.50, 0.80),
    )
    report.add(
        "top-3 share of inbound M2M devices", "83%",
        result.top3_m2m_share, window=(0.72, 0.97),
    )
    report.add(
        "largest home country is the Netherlands", "NL",
        1.0 if top[0][0] == "NL" else 0.0, window=(1.0, 1.0),
    )
    report.add(
        "NL share of inbound roamers", "~30%",
        result.overall.get("NL", 0.0), window=(0.20, 0.50),
    )
    report.note(f"top-3 measured: {[(c, round(s, 3)) for c, s in top]}")
    report.note(
        "M2M concentration exceeds person-device concentration, as in the paper"
    )
    emit_report(report)
