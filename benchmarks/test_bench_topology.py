"""TOPO — roaming-ecosystem graph structure (§2.1).

The hub "complement[s] the bilateral roaming model": this bench builds
the agreement graph and quantifies what hubbing buys the platform HMNOs
— near-global country reach versus a modest bilateral footprint.
"""


from repro.analysis.report import ExperimentReport
from repro.analysis.topology import (
    agreement_graph,
    hub_reach_gain,
    reciprocity_holds,
    topology_stats,
)


def test_roaming_topology(benchmark, eco, emit_report):
    graph = benchmark(agreement_graph, eco.operators, eco.agreements)
    focus = [str(op.plmn) for op in eco.platform_hmnos.values()]
    stats = topology_stats(graph, focus_plmns=focus)

    report = ExperimentReport("TOPO", "agreement-graph structure")
    report.add(
        "agreements are reciprocal", "yes",
        1.0 if reciprocity_holds(graph) else 0.0, window=(1.0, 1.0),
    )
    report.add(
        "hub-mediated agreement share", "substantial (the hub's role)",
        stats.hub_mediated_share, window=(0.10, 0.90),
    )
    es = str(eco.platform_hmnos["ES"].plmn)
    bilateral, total = hub_reach_gain(graph, es)
    report.add(
        "ES platform country reach with the hub", "~global (paper: 77)",
        total, window=(30, 45),
    )
    report.add(
        "ES platform reach gained via the hub", ">0 countries",
        total - bilateral, window=(1, 45),
    )
    report.add(
        "mean partners per operator", "dense ecosystem",
        stats.mean_out_degree, window=(5.0, 100.0),
    )
    report.note(
        f"ES bilateral reach {bilateral} countries -> {total} with the hub"
    )
    emit_report(report)
