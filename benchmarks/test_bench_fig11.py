"""FIG11 — SMIP native vs roaming smart meters (paper Fig. 11, §7.1).

* native meters are long-lived: 73% active the whole period, rising to
  83% for the day-1 cohort (the gap is the ongoing rollout);
* roaming meters churn: ~50% active at most 5 days;
* roaming meters generate ~10x the signaling of native ones per day;
* failures: ~10% of all meters see a failed procedure, ~35% of roaming
  meters;
* roaming meters are 2G-only; native meters are 3G-capable, 2/3 using
  3G exclusively.
"""


from repro.analysis.report import ExperimentReport
from repro.analysis.smart_meters import fig11_smip_activity


def test_fig11_smip_native_vs_roaming(benchmark, pipeline, emit_report):
    result = benchmark(fig11_smip_activity, pipeline)

    report = ExperimentReport("FIG11", "SMIP native vs roaming meters")
    report.add(
        "native meters active ~whole period", "73%",
        result.native.full_period_fraction, window=(0.55, 0.85),
    )
    report.add(
        "day-1 cohort active whole period", "83%",
        result.native.full_period_fraction_day1, window=(0.70, 0.97),
    )
    report.add(
        "day-1 cohort exceeds overall (rollout effect)", ">0",
        result.native.full_period_fraction_day1
        - result.native.full_period_fraction,
        window=(0.0, 0.5),
    )
    report.add(
        "roaming meters active at most 5 days", "~50%",
        result.roaming.active_days.fraction_at_most(5), window=(0.35, 0.65),
    )
    report.add(
        "roaming/native signaling per device-day", "~10x",
        result.signaling_ratio, window=(5.0, 16.0),
    )
    report.add(
        "native meters with >=1 failed procedure", "~10%",
        result.native.failed_device_fraction, window=(0.04, 0.18),
    )
    report.add(
        "roaming meters with >=1 failed procedure", "~35%",
        result.roaming.failed_device_fraction, window=(0.20, 0.50),
    )
    report.add(
        "roaming meters 2G-only", "100%",
        result.roaming.rat_pattern_shares.get("2G-only", 0.0),
        window=(0.97, 1.0),
    )
    report.add(
        "native meters 3G-only", "~2/3",
        result.native.rat_pattern_shares.get("3G-only", 0.0),
        window=(0.50, 0.80),
    )
    report.add(
        "native meters using both 2G and 3G", "~1/3",
        result.native.rat_pattern_shares.get("2G+3G", 0.0),
        window=(0.18, 0.48),
    )
    report.note(
        f"{result.native.n_devices} native / {result.roaming.n_devices} roaming "
        "meters (paper: 3.2M total); window 22 days vs the paper's 26"
    )
    emit_report(report)
