"""FIG2 — Percentage of M2M devices per visited country (paper Fig. 2).

Paper observations reproduced:
* ES is the dominant HMNO (52.3% of devices), MX second (42.2%),
  AR 4.7%, DE <1%;
* MX and AR fleets are home-bound (~90% operate in the home country);
* the ES fleet spreads across many visited countries.
"""


from repro.analysis.platform import fig2_device_distribution
from repro.analysis.report import ExperimentReport


def test_fig2_visited_country_matrix(benchmark, m2m_dataset, eco, emit_report):
    result = benchmark(fig2_device_distribution, m2m_dataset, eco.countries)

    report = ExperimentReport(
        "FIG2", "M2M platform device share per (HMNO, visited country)"
    )
    report.add(
        "ES share of platform devices", "52.3%",
        result.hmno_shares.get("ES", 0.0), window=(0.45, 0.60),
    )
    report.add(
        "MX share of platform devices", "42.2%",
        result.hmno_shares.get("MX", 0.0), window=(0.35, 0.50),
    )
    report.add(
        "AR share of platform devices", "4.7%",
        result.hmno_shares.get("AR", 0.0), window=(0.02, 0.08),
    )
    report.add(
        "DE share of platform devices", "~0.8%",
        result.hmno_shares.get("DE", 0.0), window=(0.0, 0.03),
    )
    report.add(
        "MX devices operating at home", "~90%",
        result.matrix["MX"].get("MX", 0.0), window=(0.75, 1.0),
    )
    report.add(
        "AR devices operating at home", "~95%",
        result.matrix["AR"].get("AR", 0.0), window=(0.8, 1.0),
    )
    report.add(
        "ES visited-country breadth (matrix columns)", "77 countries (full scale)",
        len(result.matrix["ES"]), window=(10, 45),
    )
    report.note(
        f"{m2m_dataset.n_devices} devices vs the paper's 120k (1:60 scale); "
        "country universe is 41 vs the paper's 77+"
    )
    emit_report(report)
