"""SAMPLE — robustness of Fig. 3 statistics to the probes' sampling.

§3.1 calls the platform trace "a sampled view of world-wide M2M
infrastructure traffic".  This bench quantifies which Fig. 3 statistics
survive which sampling regime: device sampling preserves per-device
distributions; transaction sampling shrinks them by the rate.
"""


from repro.analysis.platform import fig3_dynamics
from repro.analysis.report import ExperimentReport
from repro.datasets.sampling import sample_devices, sample_transactions


def test_sampling_robustness(benchmark, m2m_dataset, emit_report):
    full = fig3_dynamics(m2m_dataset)
    device_sampled = benchmark(sample_devices, m2m_dataset, 0.25, 9)
    dev_stats = fig3_dynamics(device_sampled)
    txn_stats = fig3_dynamics(sample_transactions(m2m_dataset, 0.25, seed=9))

    report = ExperimentReport("SAMPLE", "Fig. 3 under sampled probe views")
    report.add(
        "device sampling: mean records ratio vs full", "~1 (unbiased)",
        dev_stats.records_all.mean / full.records_all.mean, window=(0.6, 1.6),
    )
    report.add(
        "transaction sampling: mean records ratio", "~rate (biased)",
        txn_stats.records_all.mean / full.records_all.mean, window=(0.1, 0.45),
    )
    report.add(
        "device sampling: single-VMNO share drift", "~0",
        abs(
            dev_stats.vmno_counts.fraction_at_most(1)
            - full.vmno_counts.fraction_at_most(1)
        ),
        window=(0.0, 0.08),
    )
    report.add(
        "roaming/native ratio survives device sampling", "same shape",
        dev_stats.roaming_to_native_median_ratio
        / full.roaming_to_native_median_ratio,
        window=(0.4, 2.5),
    )
    report.note(
        "per-device statistics are only comparable to Fig. 3 under "
        "device-level sampling; record-level sampling needs rate correction"
    )
    emit_report(report)
