"""Benchmark fixtures: full-scale datasets generated once per session.

The benches time the *analysis* functions (the paper's figures) over a
realistically-sized synthetic world — default 1:1000 of paper scale —
and print a paper-vs-measured comparison report for every statistic the
paper reads off each figure.  Reports are also written to
``benchmarks/reports/<experiment>.txt`` so EXPERIMENTS.md can cite them.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.report import ExperimentReport
from repro.ecosystem import EcosystemConfig, build_default_ecosystem
from repro.mno import MNOConfig, simulate_mno_dataset
from repro.pipeline import run_pipeline
from repro.platform_m2m import PlatformConfig, simulate_m2m_dataset

#: Device-count scale for benches (override with REPRO_BENCH_DEVICES).
M2M_DEVICES = int(os.environ.get("REPRO_BENCH_M2M_DEVICES", "2000"))
MNO_DEVICES = int(os.environ.get("REPRO_BENCH_MNO_DEVICES", "3000"))

REPORT_DIR = Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def eco():
    return build_default_ecosystem(EcosystemConfig(uk_sites=120, seed=11))


@pytest.fixture(scope="session")
def m2m_dataset(eco):
    return simulate_m2m_dataset(eco, PlatformConfig(n_devices=M2M_DEVICES, seed=42))


@pytest.fixture(scope="session")
def mno_dataset(eco):
    return simulate_mno_dataset(eco, MNOConfig(n_devices=MNO_DEVICES, seed=7))


@pytest.fixture(scope="session")
def pipeline(eco, mno_dataset):
    return run_pipeline(mno_dataset, eco)


@pytest.fixture(scope="session")
def emit_report():
    """Print a report, persist it, and assert its acceptance windows."""
    REPORT_DIR.mkdir(exist_ok=True)

    def _emit(report: ExperimentReport) -> None:
        text = report.format()
        print("\n" + text)
        path = REPORT_DIR / f"{report.experiment_id.lower()}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        failing = report.failing_rows()
        assert report.all_hold, (
            f"{report.experiment_id}: shape checks failed for "
            f"{[row.statistic for row in failing]}\n{text}"
        )

    return _emit
