"""CLEARING — M2M load on the clearing/settlement machinery (§2.1, §9).

§9: inbound-roaming things "put stress on the MNO [as] part of the
international roaming ecosystem (i.e., MNO interconnection signaling
through a roaming hub, data and financial clearing)".  This bench runs
a full clearing cycle over the simulated MNO's inbound traffic and
measures the records-per-euro overhead the M2M lanes impose.
"""


from repro.analysis.report import ExperimentReport
from repro.roaming.billing import WholesaleRater
from repro.roaming.clearing import (
    ClearingHouse,
    clearing_load_per_euro,
    statements_from_tap,
)


def test_clearing_cycle(benchmark, pipeline, eco, emit_report):
    rater = WholesaleRater(str(eco.uk_mno.plmn))
    tap = rater.rate_records(pipeline.dataset.service_records)
    statements = statements_from_tap(tap)
    house = ClearingHouse()

    settlement = benchmark(house.reconcile, statements, statements)

    report = ExperimentReport("CLEARING", "clearing-cycle load and integrity")
    report.add(
        "records cleared", "scales with inbound usage",
        settlement.n_records_cleared, window=(1000, 10**9),
    )
    report.add(
        "dispute rate with identical books", "0",
        settlement.dispute_rate, window=(0.0, 0.0),
    )

    load = clearing_load_per_euro(statements)
    nl_plmn = str(eco.nl_iot_operator.plmn)
    person_lanes = [
        plmn for plmn in load
        if plmn != nl_plmn and not plmn.startswith(("21407", "33407", "72207", "26207"))
    ]
    person_load = min((load[p] for p in person_lanes), default=float("nan"))
    report.add(
        "records/EUR on the IoT-SIM lane (NL-IoT)", "far above person lanes",
        load.get(nl_plmn, 0.0), window=(person_load, float("inf")),
    )
    report.note(
        f"NL-IoT lane: {load.get(nl_plmn, 0):.0f} records/EUR vs best person "
        f"lane {person_load:.0f} records/EUR"
    )
    emit_report(report)
