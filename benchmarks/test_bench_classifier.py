"""CLS — classifier validation and per-step ablation (§4.3).

The paper validates its multi-step method manually; our simulator knows
the truth, so we score the pipeline exactly, and quantify what each
step contributes:

* APN keywords alone leave every no-APN device undecided (the paper's
  ~21% no-APN problem);
* property propagation recovers the voice-only M2M machines that share
  hardware with validated fleets;
* the GSMA/consumer rules separate smartphones from feature phones.
"""


from repro.analysis.report import ExperimentReport
from repro.core.classifier import (
    ClassifierConfig,
    ClassLabel,
    DeviceClassifier,
)
from repro.core.validation import validate_classification


def test_classifier_validation(benchmark, pipeline, emit_report):
    report_obj = benchmark(
        validate_classification, pipeline.classifications,
        pipeline.dataset.ground_truth,
    )

    report = ExperimentReport("CLS", "classifier validation vs ground truth")
    report.add(
        "accuracy on decided devices", "high (manually validated)",
        report_obj.accuracy, window=(0.93, 1.0),
    )
    report.add(
        "m2m precision", "high",
        report_obj.per_class[ClassLabel.M2M].precision, window=(0.95, 1.0),
    )
    report.add(
        "m2m recall (decided)", "high",
        report_obj.per_class[ClassLabel.M2M].recall, window=(0.93, 1.0),
    )
    report.add(
        "abstention (m2m-maybe) rate", "4% of population",
        report_obj.abstention_rate, window=(0.01, 0.08),
    )
    emit_report(report)


def test_classifier_step_ablation(benchmark, pipeline, emit_report):
    summaries = pipeline.summaries

    def classify_with(config):
        return DeviceClassifier(config).classify(summaries)

    full = benchmark(classify_with, ClassifierConfig())
    apn_only = classify_with(ClassifierConfig(use_property_propagation=False))
    no_apn = classify_with(ClassifierConfig(use_apn_keywords=False))

    def m2m_count(result):
        return sum(1 for c in result.values() if c.label is ClassLabel.M2M)

    def maybe_rate(result):
        return sum(
            1 for c in result.values() if c.label is ClassLabel.M2M_MAYBE
        ) / len(result)

    report = ExperimentReport("CLS-ABL", "classifier step ablation")
    report.add(
        "m2m recovered by propagation (full vs APN-only)", ">1",
        m2m_count(full) / max(1, m2m_count(apn_only)), window=(1.05, 3.0),
    )
    report.add(
        "m2m-maybe rate, full method", "4%",
        maybe_rate(full), window=(0.01, 0.08),
    )
    report.add(
        "m2m-maybe rate without propagation", "higher",
        maybe_rate(apn_only), window=(maybe_rate(full), 1.0),
    )
    report.add(
        "m2m found without the APN step", "~0 (keywords are the seed)",
        m2m_count(no_apn), window=(0, 0),
    )
    no_apn_device_share = sum(
        1 for s in summaries.values() if not s.apns
    ) / len(summaries)
    report.add(
        "devices exposing no APN at all", "21%",
        no_apn_device_share, window=(0.10, 0.35),
    )
    emit_report(report)
