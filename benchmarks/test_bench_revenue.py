"""REVENUE — the §6 revenue asymmetry and §8 silent roamers.

"Though these devices occupy radio resources in MNOs networks and
exploit the MNOs interconnections in the cellular ecosystem, they do
not generate traffic that would allow MNOs to accrue revenue."
"""


from repro.analysis.report import ExperimentReport
from repro.analysis.revenue import revenue_by_class, silent_roamers
from repro.core.classifier import ClassLabel
from repro.devices.device import DeviceClass


def test_revenue_asymmetry(benchmark, pipeline, emit_report):
    report_obj = benchmark(revenue_by_class, pipeline)

    smart = report_obj.by_class[ClassLabel.SMART]
    m2m = report_obj.by_class[ClassLabel.M2M]

    report = ExperimentReport("REVENUE", "inbound-roamer wholesale revenue")
    report.add(
        "smartphone/m2m mean revenue per device", ">>1",
        smart.mean_eur / m2m.mean_eur if m2m.mean_eur else float("inf"),
        window=(2.0, 1e6),
    )
    report.add(
        "m2m signaling/revenue asymmetry vs smartphones", ">1",
        report_obj.asymmetry(ClassLabel.M2M)
        / max(1e-9, report_obj.asymmetry(ClassLabel.SMART)),
        window=(1.5, 1e6),
    )
    report.add(
        "m2m share of inbound signaling", "majority (71% of devices)",
        report_obj.signaling_share.get(ClassLabel.M2M, 0.0), window=(0.35, 0.95),
    )
    report.add(
        "m2m share of inbound revenue", "small",
        report_obj.revenue_share.get(ClassLabel.M2M, 0.0), window=(0.0, 0.45),
    )

    silent = silent_roamers(pipeline)
    inbound = [
        s for s in pipeline.summaries.values() if s.label.is_inbound_roamer
    ]
    report.add(
        "silent-roamer share of inbound population", "substantial (§8)",
        len(silent) / len(inbound), window=(0.05, 0.8),
    )
    m2m_silent = sum(
        1
        for d in silent
        if pipeline.dataset.ground_truth[d].device_class is DeviceClass.M2M
    )
    report.add(
        "m2m share of silent roamers", "majority",
        m2m_silent / len(silent) if silent else 0.0, window=(0.5, 1.0),
    )
    emit_report(report)
