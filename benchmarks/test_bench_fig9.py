"""FIG9 — Device share per RAT for connectivity / data / voice (Fig. 9).

* 77.4% of M2M devices are active on the 2G network only;
* 56.7% of M2M devices are 2G-data-only, 24.5% use no data at all;
* 60.6% of M2M devices use 2G voice, 27.5% produce no voice traffic;
* 56.8% of feature phones produce no data but only 7.3% no voice;
* smartphones live on 3G/4G.
"""


from repro.analysis.network_usage import fig9_network_usage
from repro.analysis.report import ExperimentReport
from repro.core.classifier import ClassLabel


def test_fig9_network_usage(benchmark, pipeline, emit_report):
    result = benchmark(fig9_network_usage, pipeline)

    report = ExperimentReport("FIG9", "RAT dependence per device class")
    report.add(
        "m2m connectivity 2G-only", "77.4%",
        result.share("connectivity", ClassLabel.M2M, "2G-only"),
        window=(0.65, 0.85),
    )
    report.add(
        "m2m data 2G-only", "56.7%",
        result.share("data", ClassLabel.M2M, "2G-only"), window=(0.42, 0.68),
    )
    report.add(
        "m2m with no data activity", "24.5%",
        result.share("data", ClassLabel.M2M, "none"), window=(0.15, 0.33),
    )
    report.add(
        "m2m voice on 2G", "60.6%",
        result.share("voice", ClassLabel.M2M, "2G-only"), window=(0.42, 0.72),
    )
    report.add(
        "m2m with no voice traffic", "27.5%",
        result.share("voice", ClassLabel.M2M, "none"), window=(0.18, 0.42),
    )
    report.add(
        "feature phones with no data", "56.8%",
        result.share("data", ClassLabel.FEAT, "none"), window=(0.40, 0.70),
    )
    report.add(
        "feature phones with no voice", "7.3%",
        result.share("voice", ClassLabel.FEAT, "none"), window=(0.0, 0.16),
    )
    report.add(
        "smartphones 2G-only", "≈0",
        result.share("connectivity", ClassLabel.SMART, "2G-only"),
        window=(0.0, 0.08),
    )
    smart_34 = sum(
        share
        for pattern, share in result.connectivity[ClassLabel.SMART].items()
        if "4G" in pattern or "3G" in pattern
    )
    report.add(
        "smartphones touching 3G/4G", "vast majority",
        smart_34, window=(0.85, 1.0),
    )
    emit_report(report)
