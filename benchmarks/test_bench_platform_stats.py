"""TAB-S3 — the §3.2/§3.3 text statistics of the M2M platform.

* the ES fleet roams (82% of its devices), MX/AR are home-bound;
* 81.8% of all signaling comes from ES-powered devices, 92% of it
  emitted while roaming;
* 40% of devices trigger only failed 4G procedures (60% have at least
  one success);
* DE's small fleet touches many VMNOs (connected cars).
"""


from repro.analysis.platform import platform_stats
from repro.analysis.report import ExperimentReport
from repro.signaling.hlr import validate_stream


def test_platform_text_statistics(benchmark, m2m_dataset, eco, emit_report):
    stats = benchmark(platform_stats, m2m_dataset, eco.countries)

    es = stats.per_hmno["ES"]
    mx = stats.per_hmno["MX"]
    de = stats.per_hmno["DE"]

    report = ExperimentReport("TAB-S3", "M2M platform operational statistics")
    report.add(
        "ES roaming device fraction", "82%",
        es.roaming_device_fraction, window=(0.70, 0.92),
    )
    report.add(
        "MX roaming device fraction", "~10%",
        mx.roaming_device_fraction, window=(0.0, 0.25),
    )
    report.add(
        "ES share of all signaling", "81.8%",
        es.signaling_share, window=(0.65, 0.95),
    )
    report.add(
        "ES signaling emitted while roaming", "92%",
        es.roaming_signaling_fraction, window=(0.85, 1.0),
    )
    report.add(
        "devices with only failed procedures", "40%",
        stats.failed_only_fraction, window=(0.30, 0.50),
    )
    report.add(
        "devices with >=1 successful procedure", "60%",
        stats.success_fraction, window=(0.50, 0.70),
    )
    report.add(
        "DE fleet VMNO breadth", "18 VMNOs",
        de.n_visited_vmnos, window=(6, 40),
    )
    report.add(
        "MX visited countries", "7", mx.n_visited_countries, window=(1, 7),
    )
    hlr = validate_stream(m2m_dataset.transactions)
    report.add(
        "HLR protocol coherence of the stream", "1.0 (mechanistic CLs)",
        hlr.cancel_coherence, window=(1.0, 1.0),
    )
    report.note(
        f"{stats.n_devices} devices, {stats.n_transactions} transactions "
        "(paper: 120k devices, 14M transactions); "
        f"{hlr.n_cancel_locations} cancel-locations all match registration moves"
    )
    emit_report(report)
