"""PERF — throughput of the core pipeline stages.

Not a paper figure: these benches track the cost of the devices-catalog
build and the classification pass, the two stages an operator would run
daily at 39.6M-device scale.
"""


from repro.core.catalog import CatalogBuilder
from repro.core.classifier import DeviceClassifier
from repro.core.roaming import RoamingLabeler


def test_catalog_build_throughput(benchmark, eco, mno_dataset):
    labeler = RoamingLabeler(eco.operators, eco.uk_mno)
    builder = CatalogBuilder(
        mno_dataset.tac_db, mno_dataset.sector_catalog, labeler,
        compute_mobility=False,
    )
    day_records, summaries = benchmark(
        builder.build, mno_dataset.radio_events, mno_dataset.service_records
    )
    assert len(summaries) == mno_dataset.n_devices


def test_classification_throughput(benchmark, pipeline):
    classifier = DeviceClassifier()
    result = benchmark(classifier.classify, pipeline.summaries)
    assert len(result) == len(pipeline.summaries)


def test_roaming_labeling_throughput(benchmark, eco, mno_dataset):
    labeler = RoamingLabeler(eco.operators, eco.uk_mno)
    pairs = [
        (record.sim_plmn, record.visited_plmn)
        for record in mno_dataset.service_records[:20000]
    ]

    def label_all():
        return [labeler.label(sim, visited) for sim, visited in pairs]

    labels = benchmark(label_all)
    assert len(labels) == len(pairs)
