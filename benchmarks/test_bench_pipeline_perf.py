"""PERF — throughput of the core pipeline stages.

Not a paper figure: these benches track the cost of the devices-catalog
build, the classification pass and the sharded pipeline fan-out — the
stages an operator would run daily at 39.6M-device scale.
"""


import pytest

from repro.core.catalog import CatalogBuilder
from repro.core.classifier import DeviceClassifier
from repro.core.roaming import RoamingLabeler
from repro.pipeline import run_pipeline


def test_catalog_build_throughput(benchmark, eco, mno_dataset):
    labeler = RoamingLabeler(eco.operators, eco.uk_mno)
    builder = CatalogBuilder(
        mno_dataset.tac_db, mno_dataset.sector_catalog, labeler,
        compute_mobility=False,
    )
    day_records, summaries = benchmark(
        builder.build, mno_dataset.radio_events, mno_dataset.service_records
    )
    assert len(summaries) == mno_dataset.n_devices


def test_classification_throughput(benchmark, pipeline):
    classifier = DeviceClassifier()
    result = benchmark(classifier.classify, pipeline.summaries)
    assert len(result) == len(pipeline.summaries)


def test_roaming_labeling_throughput(benchmark, eco, mno_dataset):
    """The labeler's hot path is now the memoized one; the bench times it
    and checks a cache hit never changes a label."""
    labeler = RoamingLabeler(eco.operators, eco.uk_mno)
    pairs = [
        (record.sim_plmn, record.visited_plmn)
        for record in mno_dataset.service_records[:20000]
    ]
    uncached = RoamingLabeler(eco.operators, eco.uk_mno, cache=False)
    expected = [uncached.label(sim, visited) for sim, visited in pairs]

    def label_all():
        return [labeler.label(sim, visited) for sim, visited in pairs]

    labels = benchmark(label_all)
    assert labels == expected
    stats = labeler.cache_stats()
    assert stats.hits > 0
    assert stats.size <= len({pair for pair in pairs})


@pytest.mark.parametrize("n_workers", [1, 2, 4])
def test_parallel_throughput(benchmark, eco, mno_dataset, n_workers):
    """Worker sweep over the sharded pipeline (catalog + classify).

    One round per worker count keeps the sweep bounded; the real
    speedup-vs-baseline accounting lives in ``tools/bench_compare.py``.
    """
    result = benchmark.pedantic(
        run_pipeline,
        args=(mno_dataset, eco),
        kwargs={"n_workers": n_workers, "compute_mobility": False},
        rounds=1,
        iterations=1,
    )
    assert len(result.summaries) == mno_dataset.n_devices
