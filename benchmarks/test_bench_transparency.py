"""TRANS — GSMA transparency declarations vs the §4.3 classifier.

The paper's §1: the GSMA recommends home operators declare dedicated
M2M APNs/IMSI ranges, but "without a common policy IoT devices
identification and classification is not an easy task".  This bench
quantifies the gap: declarations from the few disciplined actors are
perfectly precise but recover only a fraction of the true M2M
population; the multi-step classifier recovers nearly all of it.
"""


from repro.analysis.report import ExperimentReport
from repro.core.transparency import (
    TransparencyDetector,
    coverage_report,
    default_declarations,
)


def test_transparency_vs_classifier(benchmark, pipeline, eco, emit_report):
    registry = default_declarations(
        str(eco.nl_iot_operator.plmn),
        [str(op.plmn) for op in eco.platform_hmnos.values()],
    )
    detector = TransparencyDetector(registry)
    detected = benchmark(detector.detect_by_apn, pipeline.summaries)
    coverage = coverage_report(
        detected, pipeline.classifications, pipeline.dataset.ground_truth
    )

    report = ExperimentReport(
        "TRANS", "declaration-based detection vs the classifier"
    )
    report.add(
        "transparency precision", "1.0 (declared = ground truth)",
        coverage.transparency_precision, window=(0.99, 1.0),
    )
    report.add(
        "transparency recall", "partial (few operators declare)",
        coverage.transparency_recall, window=(0.10, 0.60),
    )
    report.add(
        "classifier recall", "near-total",
        coverage.classifier_recall, window=(0.80, 1.0),
    )
    report.add(
        "classifier advantage (recall gap)", ">0",
        coverage.classifier_recall - coverage.transparency_recall,
        window=(0.15, 1.0),
    )
    report.note(
        "the paper's motivation in one row: transparency alone cannot "
        "give the VMNO visibility of its M2M inbound roamers"
    )
    emit_report(report)
