"""STAB — temporal stability of the composition (§4.2).

"The shares of devices of the roaming labels are stable across the 22
days we verify."
"""


from repro.analysis.report import ExperimentReport
from repro.analysis.stability import share_stability
from repro.core.classifier import ClassLabel


def test_share_stability(benchmark, pipeline, emit_report):
    result = benchmark(share_stability, pipeline)

    report = ExperimentReport("STAB", "day-to-day share stability")
    report.add(
        "days with activity", "22",
        result.n_days, window=(20, 22),
    )
    report.add(
        "worst daily deviation, roaming labels", "stable (small)",
        result.worst_label_deviation(), window=(0.0, 0.08),
    )
    report.add(
        "worst daily deviation, device classes", "stable (small)",
        result.worst_class_deviation(), window=(0.0, 0.08),
    )
    report.add(
        "H:H daily mean share", "~48%",
        result.label_series["H:H"].mean, window=(0.40, 0.60),
    )
    report.add(
        "m2m daily-share instability (relative)", "small",
        result.class_series[ClassLabel.M2M].relative_instability,
        window=(0.0, 0.35),
    )
    emit_report(report)
