"""GGSN — the dedicated-gateway isolation rationale (§4.4).

"The operator has dedicated resources for the GGSN for these SIMs.  The
rationale of this choice is to control the impact of such devices on the
native users."  The meters' nightly reporting batch (DIURNAL) is exactly
the load spike the dedicated pool absorbs; this bench quantifies what
happens to the consumer pools if the isolation is removed.
"""


from repro.analysis.report import ExperimentReport
from repro.mno.ggsn import isolation_benefit


def test_ggsn_isolation(benchmark, mno_dataset, emit_report):
    benefit = benchmark(
        isolation_benefit,
        mno_dataset.service_records,
        mno_dataset.window_days,
    )

    report = ExperimentReport("GGSN", "dedicated meter-GGSN isolation")
    report.add(
        "meter pool peaks in the nightly batch window", "overnight hour",
        benefit.meter_pool_peak_hour, window=(0, 4),
    )
    report.add(
        "meter pool peak sessions/hour", ">0",
        benefit.meter_pool_peak, window=(1, 1e9),
    )
    report.add(
        "consumer-pool peak increase without isolation", ">0",
        benefit.peak_increase_without_isolation, window=(0.0, 10.0),
    )
    report.note(
        f"shared peak {benefit.shared_peak_with_isolation:.0f}/h isolated vs "
        f"{benefit.shared_peak_without_isolation:.0f}/h flat; the delta is "
        "the meters' batch landing on the native users' gateways"
    )
    emit_report(report)
