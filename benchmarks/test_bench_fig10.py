"""FIG10 — Traffic analysis for in-roaming and native devices (Fig. 10).

* M2M devices trigger far fewer resource-management events than
  smartphones; feature phones are lowest;
* the vast majority of M2M devices place no voice calls;
* inbound-roaming M2M data volume is tiny, similar to inbound feature
  phones;
* inbound-roaming smartphones use much less data than native ones
  (bill-shock behaviour).
"""


from repro.analysis.report import ExperimentReport
from repro.analysis.traffic import RoamingGroup, fig10_traffic_volumes
from repro.core.classifier import ClassLabel


def test_fig10_traffic_volumes(benchmark, pipeline, emit_report):
    result = benchmark(fig10_traffic_volumes, pipeline)

    report = ExperimentReport("FIG10", "signaling / calls / data per class")
    smart_native_sig = result.median(
        "signaling_per_day", ClassLabel.SMART, RoamingGroup.NATIVE
    )
    m2m_inbound_sig = result.median(
        "signaling_per_day", ClassLabel.M2M, RoamingGroup.INBOUND
    )
    feat_native_sig = result.median(
        "signaling_per_day", ClassLabel.FEAT, RoamingGroup.NATIVE
    )
    report.add(
        "m2m signaling below smartphone signaling (ratio)", "<1",
        m2m_inbound_sig / smart_native_sig, window=(0.0, 0.9),
    )
    report.add(
        "feature-phone signaling below m2m signaling (ratio)", "<1",
        feat_native_sig / m2m_inbound_sig, window=(0.0, 1.0),
    )
    report.add(
        "inbound m2m devices with zero calls", "vast majority",
        result.zero_call_fraction(ClassLabel.M2M, RoamingGroup.INBOUND),
        window=(0.55, 1.0),
    )
    smart_native_bytes = result.median(
        "bytes_per_day", ClassLabel.SMART, RoamingGroup.NATIVE
    )
    smart_inbound_bytes = result.median(
        "bytes_per_day", ClassLabel.SMART, RoamingGroup.INBOUND
    )
    m2m_inbound_bytes = result.median(
        "bytes_per_day", ClassLabel.M2M, RoamingGroup.INBOUND
    )
    feat_inbound_bytes = result.median(
        "bytes_per_day", ClassLabel.FEAT, RoamingGroup.INBOUND
    )
    report.add(
        "inbound/native smartphone data ratio (bill shock)", "<<1",
        smart_inbound_bytes / smart_native_bytes, window=(0.0, 0.5),
    )
    report.add(
        "inbound m2m / native smartphone data ratio", "~0",
        m2m_inbound_bytes / smart_native_bytes, window=(0.0, 0.01),
    )
    m2m_vs_feat = (
        m2m_inbound_bytes / feat_inbound_bytes if feat_inbound_bytes else 1.0
    )
    report.add(
        "inbound m2m data ~ inbound feature-phone data (ratio)", "~1",
        m2m_vs_feat, window=(0.05, 20.0),
    )
    report.note(
        f"medians/day: smart-native sig {smart_native_sig:.1f}, "
        f"m2m-inbound sig {m2m_inbound_sig:.1f}, feat-native sig {feat_native_sig:.1f}"
    )
    emit_report(report)
