"""Standalone pipeline benchmark with baseline regression checking.

Times the pipeline's hot stages — catalog build, classification, the
sharded worker sweep (1/2/4), the cached vs uncached roaming-labeler
path, the out-of-core spill pipeline, and the live catalog daemon
(micro-batch ingest throughput and point-query p99) — and writes the
results as ``BENCH_pipeline.json``.  With ``--check`` it compares each
bench's ops/sec against a committed baseline, enforces the derived
speedup floors / overhead ceilings, and gates ``service_query_p99`` on
a hard latency SLO; any failure exits non-zero beyond ``--tolerance``
(default 20%), which is how CI's perf job gates merges.

``--scale`` sweeps the out-of-core pipeline across device counts, one
subprocess per point (each child's ``ru_maxrss`` is then a clean
per-scale watermark, not this process's accumulated high-water mark),
generating input day by day through the streaming simulator so peak
RSS measures the execution engine, not dataset materialization.  Under
``--check``, every exact 10x device step must grow peak RSS by less
than :data:`SCALE_RSS_CEILING` (3x) — the sublinear-memory acceptance
criterion for out-of-core execution.  ``--scale-only`` skips the main
benches; CI's scale_smoke job runs exactly that.

Usage::

    PYTHONPATH=src python tools/bench_compare.py --out BENCH_pipeline.json
    PYTHONPATH=src python tools/bench_compare.py --smoke --check
    PYTHONPATH=src python tools/bench_compare.py --smoke --write-baseline
    PYTHONPATH=src python tools/bench_compare.py --scale-only --check

Numbers are honest wall-clock measurements on whatever machine runs the
tool; the ``meta`` block records ``cpu_count`` so a 1-core container's
worker sweep (where pool overhead dominates and speedup < 1) is
interpretable next to a multi-core run.  Worker-sweep speedup floors
(``speedup_workers_4`` >= 2x) are enforced only when the runner has at
least :data:`MIN_CORES_FOR_WORKER_GATES` cores — below that the gate is
skipped with a loud note, because the number measures the machine, not
the code.  CI's perf job must therefore run on a multi-core runner (see
``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import pickle
import platform
import resource
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from collections import defaultdict
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.columnar import from_record_streams  # noqa: E402
from repro.core.catalog import CatalogBuilder  # noqa: E402
from repro.core.classifier import DeviceClassifier  # noqa: E402
from repro.core.roaming import RoamingLabeler  # noqa: E402
from repro.datasets.io import (  # noqa: E402
    radio_event_to_dict,
    service_record_to_dict,
)
from repro.ecosystem import Ecosystem, EcosystemConfig, build_default_ecosystem  # noqa: E402
from repro.mno import MNOConfig, simulate_mno_dataset  # noqa: E402
from repro.parallel.sharding import (  # noqa: E402
    shard_columnar_records,
    shard_mno_records,
)
from repro.parallel.transport import (  # noqa: E402
    TRANSPORT_RPCK,
    TRANSPORT_SHM,
    attach_shard,
    publish_shards,
    select_transport,
)
from repro.pipeline import run_pipeline  # noqa: E402
from repro.runtime import atomic_write_text, run_durable_pipeline  # noqa: E402
from repro.service import CatalogClient, ServiceConfig  # noqa: E402
from repro.service.daemon import run_daemon  # noqa: E402

DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "BENCH_baseline.json"
SMOKE_BASELINE = REPO_ROOT / "benchmarks" / "BENCH_baseline_smoke.json"

#: Worker counts swept by the pipeline benches.
WORKER_SWEEP = (1, 2, 4)

#: Inner iterations for sub-millisecond benches (classify,
#: labeling_cached): one pass is too noisy to gate CI on.
FAST_BENCH_BATCH = 10

#: Hard acceptance floors on derived speedups, enforced by ``--check``
#: at full (non-smoke) scale: the columnar catalog kernel must be at
#: least 2x the row path, the incremental day-update at least 5x a full
#: rebuild.
SPEEDUP_FLOORS = {
    "columnar_speedup": 2.0,
    "incremental_day_speedup": 5.0,
    "shard_payload_reduction": 10.0,
}

#: Worker-sweep speedup floors.  Unlike :data:`SPEEDUP_FLOORS` these
#: measure the *machine* as much as the code — a 1-core container can
#: never show a 2x four-worker speedup — so ``--check`` enforces them
#: only when the runner has at least :data:`MIN_CORES_FOR_WORKER_GATES`
#: cores, and otherwise skips with a loud note.
WORKER_SPEEDUP_FLOORS = {
    "speedup_workers_4": 2.0,
}

#: Minimum ``os.cpu_count()`` for the worker-sweep gates to be
#: meaningful; CI's perf job must provision at least this many cores.
MIN_CORES_FOR_WORKER_GATES = 4

#: Shards used by the ``shard_exchange`` payload/attach bench.
EXCHANGE_SHARDS = 4

#: Hard acceptance ceilings on derived overhead ratios, enforced by
#: ``--check`` at full scale: checkpointing every (day, shard) unit may
#: cost at most 10% over the identical un-persisted run, and the
#: out-of-core spill path (per-unit write + fsync, mmap-backed replay)
#: at most 25% — the price of bounded RSS.
OVERHEAD_CEILINGS = {
    "checkpoint_overhead": 1.10,
    "out_of_core_overhead": 1.25,
}

#: The smoke run uses looser ceilings: per-unit persistence costs
#: (manifest, journal line, block fsyncs) are fixed while the 300-device
#: units carry ~20x fewer rows, so the relative overhead is inherently
#: higher than at contract scale.  Smoke only guards against gross
#: regressions; the full-scale contracts are asserted by the perf job.
SMOKE_OVERHEAD_CEILINGS = {
    "checkpoint_overhead": 1.25,
    "out_of_core_overhead": 1.40,
}

#: Device counts swept by ``--scale`` when none are given.  The pair is
#: an exact 10x step, so the sublinear-RSS gate applies; larger sweeps
#: (e.g. ``--scale 300,3000,30000``) gate every 10x pair they contain.
DEFAULT_SCALE_POINTS = (300, 3000)

#: Peak-RSS growth ceiling across an exact 10x device step, enforced by
#: ``--check`` on the ``--scale`` sweep.  Out-of-core execution keeps
#: the *working set* bounded by the replay window, but the catalog's
#: own output (day records + summaries, ~1.5 KiB per device-day) is
#: live state the caller asked for and grows linearly — so the honest
#: criterion is strongly sublinear growth (< 3x per 10x devices), not a
#: flat line.
SCALE_RSS_CEILING = 3.0

#: One ``--scale`` point, run in a child process so ``ru_maxrss`` is a
#: clean per-scale watermark.  Input is generated day by day through
#: the streaming simulator and fed via ``day_source`` — the dataset is
#: never materialized whole — and the pipeline runs out-of-core with a
#: single-shard replay window, the configuration whose RSS the sweep is
#: certifying.  Prints one JSON line on stdout.
_SCALE_CHILD = """
import json
import resource
import sys
import time

from repro.datasets.containers import MNODataset
from repro.ecosystem import EcosystemConfig, build_default_ecosystem
from repro.mno import MNOConfig
from repro.mno.streaming import StreamingMNOSimulator
from repro.runtime import run_durable_pipeline

devices, seed = int(sys.argv[1]), int(sys.argv[2])
eco = build_default_ecosystem(EcosystemConfig(uk_sites=120, seed=11))
config = MNOConfig(n_devices=devices, seed=seed)
sim = StreamingMNOSimulator(eco, config)
skeleton = MNODataset(
    observer=eco.uk_mno,
    radio_events=[],
    service_records=[],
    tac_db=eco.tac_db,
    sector_catalog=eco.uk_sectors,
    window_days=config.window_days,
)
rows = [0]


def day_source(day):
    batch = sim.generate_day(day)
    rows[0] += batch.n_records
    return batch.radio_events, batch.service_records, None


start = time.perf_counter()
result = run_durable_pipeline(
    skeleton,
    eco,
    checkpoint_dir=None,
    compute_mobility=False,
    n_workers=1,
    out_of_core=True,
    max_resident_shards=1,
    day_source=day_source,
    days=range(config.window_days),
)
seconds = time.perf_counter() - start
print(json.dumps({
    "devices": devices,
    "rows": rows[0],
    "catalog_devices": len(result.summaries),
    "seconds": round(seconds, 3),
    "peak_rss_kb": int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss),
}))
"""

#: Rows per ingest micro-batch streamed at the live daemon.  Each fold
#: re-sends the touched day's accumulated slice through
#: ``CatalogBuilder.update``, so smaller batches measure a quadratically
#: worse path; 2000 rows matches a realistic collector flush.
SERVICE_BATCH_ROWS = 2000

#: Point queries timed by the ``service_query_p99`` bench (after one
#: untimed priming query pays the classification-cache refresh).
SERVICE_QUERY_SAMPLES = 200

#: Hard latency SLOs in milliseconds, enforced by ``--check`` at every
#: scale: a point query against the warm catalog is two dict lookups
#: plus a localhost round-trip, and must stay interactive no matter how
#: much history the daemon has folded in.
LATENCY_SLOS = {
    "service_query_p99": 50.0,
}


def _time_best(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-N wall-clock seconds for one bench callable."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _service_batches(dataset: Any) -> List[Tuple[str, List[Dict[str, Any]]]]:
    """The dataset as tagged wire batches of ``SERVICE_BATCH_ROWS`` rows."""
    by_day: Dict[int, List[Dict[str, Any]]] = defaultdict(list)
    for event in dataset.radio_events:
        row = radio_event_to_dict(event)
        row["kind"] = "radio"
        by_day[event.day].append(row)
    for record in dataset.service_records:
        row = service_record_to_dict(record)
        row["kind"] = "service"
        by_day[record.day].append(row)
    batches: List[Tuple[str, List[Dict[str, Any]]]] = []
    for day in sorted(by_day):
        rows = by_day[day]
        for start in range(0, len(rows), SERVICE_BATCH_ROWS):
            batches.append(
                (
                    f"day-{day}-{start // SERVICE_BATCH_ROWS:03d}",
                    rows[start : start + SERVICE_BATCH_ROWS],
                )
            )
    return batches


class _LiveDaemon:
    """One catalog daemon on a private event-loop thread, plus a client.

    The daemon shares this process (its RSS lands in ``ru_maxrss``) but
    not its thread, so the synchronous client below exercises the real
    socket path end to end.
    """

    def __init__(self, ecosystem: Ecosystem, checkpoint_dir: Path) -> None:
        started = threading.Event()
        ports: List[int] = []

        def _ready(port: int) -> None:
            ports.append(port)
            started.set()

        # Long snapshot interval: the timed window should measure the
        # ingest path, not happen to include a periodic fsync cycle.
        config = ServiceConfig(snapshot_interval_s=60.0)
        self._thread = threading.Thread(
            target=lambda: asyncio.run(
                run_daemon(
                    ecosystem,
                    str(checkpoint_dir),
                    config=config,
                    ready_callback=_ready,
                )
            ),
            daemon=True,
        )
        self._thread.start()
        if not started.wait(timeout=30.0):
            raise RuntimeError("catalog daemon failed to start within 30s")
        self.client = CatalogClient("127.0.0.1", ports[0])
        self.client.wait_ready()

    def stop(self) -> None:
        self.client.shutdown()
        self._thread.join(timeout=30.0)


def _peak_rss_kb() -> int:
    """Peak RSS of this process so far, in KiB.

    ``ru_maxrss`` is a *monotone watermark* — it never goes down — so
    this raw figure reads as "the high-water mark as of now", not any
    one bench's allocation.  Per-bench reports therefore carry
    ``rss_delta_kb`` (watermark growth across that bench's timed
    window — 0 means the bench fit inside already-charged memory)
    alongside the raw ``peak_rss_kb`` watermark; attribute memory to a
    bench from the delta, never from the watermark.
    """
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def run_benches(devices: int, seed: int, repeats: int) -> Dict[str, Dict[str, float]]:
    """Run every bench; returns ``{bench: {seconds, ops_per_sec, ...}}``.

    Each entry also records ``rows_per_sec`` (record rows processed per
    wall-clock second, where a row count is meaningful for the bench)
    and ``peak_rss_kb`` (see :func:`_peak_rss_kb`).
    """
    eco = build_default_ecosystem(EcosystemConfig(uk_sites=120, seed=11))
    dataset = simulate_mno_dataset(eco, MNOConfig(n_devices=devices, seed=seed))
    n_rows = len(dataset.radio_events) + len(dataset.service_records)

    labeler = RoamingLabeler(eco.operators, eco.uk_mno)
    builder = CatalogBuilder(
        dataset.tac_db, dataset.sector_catalog, labeler, compute_mobility=False
    )
    _, summaries = builder.build(dataset.radio_events, dataset.service_records)

    pairs = [
        (record.sim_plmn, record.visited_plmn)
        for record in dataset.service_records[:20000]
    ]

    def fresh_builder() -> CatalogBuilder:
        return CatalogBuilder(
            dataset.tac_db,
            dataset.sector_catalog,
            RoamingLabeler(eco.operators, eco.uk_mno),
            compute_mobility=False,
        )

    benches: Dict[str, Callable[[], object]] = {}
    rows_per_op: Dict[str, int] = {}
    benches["catalog_build"] = lambda: fresh_builder().build(
        dataset.radio_events, dataset.service_records
    )
    rows_per_op["catalog_build"] = n_rows

    # Columnar kernel over pre-encoded stores: encoding happens once per
    # ingest in the real pipeline, so the kernel bench excludes it; the
    # interning cost is measured separately as `intern_pool`.
    events_c, records_c = from_record_streams(
        dataset.radio_events, dataset.service_records
    )
    benches["catalog_columnar"] = lambda: fresh_builder().build_from_columns(
        events_c, records_c
    )
    rows_per_op["catalog_columnar"] = n_rows

    benches["intern_pool"] = lambda: from_record_streams(
        dataset.radio_events, dataset.service_records
    )
    rows_per_op["intern_pool"] = n_rows

    # Incremental day-update: replay the window once, then alternate the
    # last day between its original slice and a mutated one (every 7th
    # radio row dropped) so every timed update crosses the change
    # detector and does real recompute work — repeating an identical
    # slice would short-circuit to a no-op and flatter the number.
    by_day_events = defaultdict(list)
    by_day_services = defaultdict(list)
    for event in dataset.radio_events:
        by_day_events[event.day].append(event)
    for record in dataset.service_records:
        by_day_services[record.day].append(record)
    days = sorted(set(by_day_events) | set(by_day_services))
    inc_builder = fresh_builder()
    for day in days:
        inc_builder.update(day, by_day_events[day], by_day_services[day])
    last_day = days[-1]
    slice_full = (by_day_events[last_day], by_day_services[last_day])
    slice_mutated = (
        [e for i, e in enumerate(by_day_events[last_day]) if i % 7],
        by_day_services[last_day],
    )
    toggle: List[bool] = [False]

    def incremental_day() -> None:
        toggle[0] = not toggle[0]
        day_events, day_services = slice_mutated if toggle[0] else slice_full
        inc_builder.update(last_day, day_events, day_services)

    benches["catalog_incremental_day"] = incremental_day
    rows_per_op["catalog_incremental_day"] = len(slice_full[0]) + len(slice_full[1])

    def classify_batch() -> None:
        for _ in range(FAST_BENCH_BATCH):
            DeviceClassifier().classify(summaries)

    benches["classify"] = classify_batch
    rows_per_op["classify"] = FAST_BENCH_BATCH * len(summaries)
    for n_workers in WORKER_SWEEP:
        benches[f"pipeline_workers_{n_workers}"] = (
            lambda w=n_workers: run_pipeline(
                dataset, eco, compute_mobility=False, n_workers=w
            )
        )
        rows_per_op[f"pipeline_workers_{n_workers}"] = n_rows

    def label_uncached() -> None:
        fresh = RoamingLabeler(eco.operators, eco.uk_mno, cache=False)
        for sim, visited in pairs:
            fresh.label(sim, visited)

    warm = RoamingLabeler(eco.operators, eco.uk_mno)
    for sim, visited in pairs:  # prime the cache so the bench times hits
        warm.label(sim, visited)

    def label_cached() -> None:
        for _ in range(FAST_BENCH_BATCH):
            for sim, visited in pairs:
                warm.label(sim, visited)

    benches["labeling_uncached"] = label_uncached
    benches["labeling_cached"] = label_cached
    rows_per_op["labeling_uncached"] = len(pairs)
    rows_per_op["labeling_cached"] = FAST_BENCH_BATCH * len(pairs)

    # Durable-runtime overhead: the same unit-sharded execution with and
    # without checkpoint persistence (manifest + journal + one CRC-framed
    # block per (day, shard) unit).  Each checkpointed pass needs a
    # virgin directory — an existing manifest without resume=True is,
    # correctly, an error — so the callable rotates subdirectories.
    ckpt_parent = Path(tempfile.mkdtemp(prefix="bench_ckpt_"))
    ckpt_counter = [0]

    def durable_checkpointed() -> None:
        ckpt_counter[0] += 1
        target = ckpt_parent / f"run_{ckpt_counter[0]:03d}"
        try:
            run_durable_pipeline(
                dataset, eco, checkpoint_dir=target,
                compute_mobility=False, n_workers=1,
            )
        finally:
            shutil.rmtree(target, ignore_errors=True)

    def durable_baseline() -> None:
        run_durable_pipeline(
            dataset, eco, checkpoint_dir=None, compute_mobility=False, n_workers=1
        )

    def durable_out_of_core() -> None:
        # checkpoint_dir=None + out_of_core spills to an ephemeral
        # directory created and removed inside the run: every unit block
        # is written + fsynced once and replayed through the mmap-backed
        # window, the full price of bounded RSS.
        run_durable_pipeline(
            dataset, eco, checkpoint_dir=None,
            compute_mobility=False, n_workers=1, out_of_core=True,
        )

    results: Dict[str, Dict[str, float]] = {}
    for name, fn in benches.items():
        rss_before = _peak_rss_kb()
        seconds = _time_best(fn, repeats)
        rss_after = _peak_rss_kb()
        results[name] = {
            "seconds": round(seconds, 6),
            "ops_per_sec": round(1.0 / seconds, 4) if seconds > 0 else float("inf"),
            "rows_per_sec": (
                round(rows_per_op[name] / seconds, 1) if seconds > 0 else float("inf")
            ),
            "peak_rss_kb": rss_after,
            "rss_delta_kb": rss_after - rss_before,
        }
        print(
            f"  {name:<24} {seconds:8.4f}s  "
            f"({results[name]['ops_per_sec']:.2f} ops/s, "
            f"{results[name]['rows_per_sec']:,.0f} rows/s, "
            f"rss +{results[name]['rss_delta_kb']} KiB)"
        )
    # Zero-copy exchange: what actually crosses the pool seam, per
    # transport, for the same device-sharded dataset.  Byte counts are
    # deterministic (they gate `shard_payload_reduction`); attach times
    # are best-of-N over a full all-shards pass.  The pickle-rows
    # figure serializes the legacy row-shard payload with the same
    # protocol the pool pipe uses.
    col_shards = shard_columnar_records(events_c, records_c, EXCHANGE_SHARDS)
    row_shards = shard_mno_records(
        dataset.radio_events, dataset.service_records, EXCHANGE_SHARDS
    )
    rss_before = _peak_rss_kb()
    pickled_rows = [
        pickle.dumps(shard, protocol=pickle.HIGHEST_PROTOCOL)
        for shard in row_shards
    ]
    pickle_payload_bytes = sum(len(blob) for blob in pickled_rows)
    pickle_attach_s = _time_best(
        lambda: [pickle.loads(blob) for blob in pickled_rows], repeats
    )
    del pickled_rows, row_shards

    with publish_shards(col_shards, transport=TRANSPORT_RPCK) as rpck_exchange:
        rpck_payload_bytes = rpck_exchange.payload_nbytes
        rpck_descriptors = list(rpck_exchange.descriptors)
        rpck_attach_s = _time_best(
            lambda: [attach_shard(d) for d in rpck_descriptors], repeats
        )

    if select_transport(TRANSPORT_SHM) == TRANSPORT_SHM:
        with publish_shards(col_shards, transport=TRANSPORT_SHM) as shm_exchange:
            # With shm the pool pipe carries only the pickled
            # descriptors (two segment names each); the column bytes
            # are parked in segments and never re-copied per worker.
            shm_descriptor_bytes = sum(
                len(pickle.dumps(d, protocol=pickle.HIGHEST_PROTOCOL))
                for d in shm_exchange.descriptors
            )
            shm_segment_bytes = shm_exchange.segment_nbytes
            shm_descriptors = list(shm_exchange.descriptors)
            shm_attach_s = _time_best(
                lambda: [attach_shard(d) for d in shm_descriptors], repeats
            )
    else:  # win32: shm requests resolve to rpck; report that honestly
        shm_descriptor_bytes = rpck_payload_bytes
        shm_segment_bytes = 0
        shm_attach_s = rpck_attach_s
    rss_after = _peak_rss_kb()

    n_shards = len(col_shards)
    selected = select_transport(None)
    pipe_payload_bytes = (
        shm_descriptor_bytes if selected == TRANSPORT_SHM else rpck_payload_bytes
    )
    results["shard_exchange"] = {
        "transport": selected,
        "pipe_payload_bytes": pipe_payload_bytes,
        "seconds": round(shm_attach_s, 6),
        "ops_per_sec": (
            round(n_shards / shm_attach_s, 4) if shm_attach_s > 0 else float("inf")
        ),
        "rows_per_sec": (
            round(n_rows / shm_attach_s, 1) if shm_attach_s > 0 else float("inf")
        ),
        "n_shards": n_shards,
        "pickle_payload_bytes": pickle_payload_bytes,
        "rpck_payload_bytes": rpck_payload_bytes,
        "shm_descriptor_bytes": shm_descriptor_bytes,
        "shm_segment_bytes": shm_segment_bytes,
        "pickle_attach_ms_per_shard": round(pickle_attach_s * 1000.0 / n_shards, 3),
        "rpck_attach_ms_per_shard": round(rpck_attach_s * 1000.0 / n_shards, 3),
        "shm_attach_ms_per_shard": round(shm_attach_s * 1000.0 / n_shards, 3),
        "peak_rss_kb": rss_after,
        "rss_delta_kb": rss_after - rss_before,
    }
    print(
        f"  {'shard_exchange':<24} {shm_attach_s:8.4f}s  "
        f"(pickle {pickle_payload_bytes:,}B / rpck {rpck_payload_bytes:,}B / "
        f"shm pipe {shm_descriptor_bytes:,}B; attach "
        f"{results['shard_exchange']['pickle_attach_ms_per_shard']:.2f}/"
        f"{results['shard_exchange']['rpck_attach_ms_per_shard']:.2f}/"
        f"{results['shard_exchange']['shm_attach_ms_per_shard']:.2f} ms/shard)"
    )

    # The durable trio is timed *interleaved* rather than through the
    # best-of-N loop above: the overhead gates read ratios of these
    # timings, and independent best-of-N measurements taken minutes
    # apart pick up machine drift as fake overhead (or fake speedup).
    # Alternating checkpointed/baseline/out-of-core runs and gating on
    # the *minimum* per-pair ratio means a single noisy iteration cannot
    # trip a ceiling — only a consistently slower path can.
    pair_repeats = max(repeats, 3)
    ckpt_times: list = []
    base_times: list = []
    ooc_times: list = []
    rss_before = _peak_rss_kb()
    for _ in range(pair_repeats):
        start = time.perf_counter()
        durable_checkpointed()
        ckpt_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        durable_baseline()
        base_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        durable_out_of_core()
        ooc_times.append(time.perf_counter() - start)
    rss_after = _peak_rss_kb()
    for name, times in (
        ("durable_checkpointed", ckpt_times),
        ("durable_baseline", base_times),
        ("pipeline_out_of_core", ooc_times),
    ):
        seconds = min(times)
        results[name] = {
            "seconds": round(seconds, 6),
            "ops_per_sec": round(1.0 / seconds, 4) if seconds > 0 else float("inf"),
            "rows_per_sec": (
                round(n_rows / seconds, 1) if seconds > 0 else float("inf")
            ),
            "peak_rss_kb": rss_after,
            # The pair is interleaved in one window; the delta is the
            # window's growth, reported once and mirrored here.
            "rss_delta_kb": rss_after - rss_before,
        }
        print(
            f"  {name:<24} {seconds:8.4f}s  "
            f"({results[name]['ops_per_sec']:.2f} ops/s, "
            f"{results[name]['rows_per_sec']:,.0f} rows/s, "
            f"rss +{results[name]['rss_delta_kb']} KiB)"
        )
    results["durable_checkpointed"]["overhead_vs_baseline"] = round(
        min(c / b for c, b in zip(ckpt_times, base_times)), 3
    )
    results["pipeline_out_of_core"]["overhead_vs_baseline"] = round(
        min(o / b for o, b in zip(ooc_times, base_times)), 3
    )

    # Live-daemon benches: stream the dataset as micro-batches through
    # the socket API (lenient parse, WAL append, incremental fold, ack),
    # then time point queries against the warm catalog.  Each timed
    # ingest pass gets a virgin daemon and WAL directory — batch ids are
    # deduped durably, so re-sending into a warm daemon would time the
    # no-op path.  Startup/replay sits outside the timed window.
    batches = _service_batches(dataset)
    ingest_times: List[float] = []
    live: Optional[_LiveDaemon] = None
    rss_before = _peak_rss_kb()
    for pass_idx in range(repeats):
        if live is not None:
            live.stop()
            shutil.rmtree(ckpt_parent / f"svc_{pass_idx - 1:03d}", ignore_errors=True)
        live = _LiveDaemon(eco, ckpt_parent / f"svc_{pass_idx:03d}")
        start = time.perf_counter()
        for batch_id, rows in batches:
            response = live.client.ingest(batch_id, rows)
            if response.get("status") != "ok":
                raise RuntimeError(f"ingest of {batch_id} failed: {response}")
        ingest_times.append(time.perf_counter() - start)
    assert live is not None
    seconds = min(ingest_times)
    rss_after = _peak_rss_kb()
    results["service_ingest"] = {
        "seconds": round(seconds, 6),
        "ops_per_sec": round(len(batches) / seconds, 4),
        "rows_per_sec": round(n_rows / seconds, 1),
        "n_batches": len(batches),
        "peak_rss_kb": rss_after,
        "rss_delta_kb": rss_after - rss_before,
    }
    print(
        f"  {'service_ingest':<24} {seconds:8.4f}s  "
        f"({results['service_ingest']['ops_per_sec']:.2f} batches/s, "
        f"{results['service_ingest']['rows_per_sec']:,.0f} rows/s, "
        f"rss +{results['service_ingest']['rss_delta_kb']} KiB)"
    )

    device_ids = sorted({event.device_id for event in dataset.radio_events})
    live.client.query_device(device_ids[0])  # untimed: pays the cache refresh
    rss_before = _peak_rss_kb()
    latencies: List[float] = []
    for i in range(SERVICE_QUERY_SAMPLES):
        device_id = device_ids[i % len(device_ids)]
        start = time.perf_counter()
        response = live.client.query_device(device_id)
        latencies.append(time.perf_counter() - start)
        if response.get("status") != "ok":
            raise RuntimeError(f"query of {device_id} failed: {response}")
    live.stop()
    latencies.sort()
    total = sum(latencies)
    rss_after = _peak_rss_kb()
    results["service_query_p99"] = {
        "seconds": round(total, 6),
        "ops_per_sec": round(len(latencies) / total, 4) if total > 0 else float("inf"),
        "rows_per_sec": (
            round(len(latencies) / total, 1) if total > 0 else float("inf")
        ),
        "p50_ms": round(latencies[len(latencies) // 2] * 1000.0, 3),
        "p99_ms": round(
            latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))] * 1000.0, 3
        ),
        "peak_rss_kb": rss_after,
        "rss_delta_kb": rss_after - rss_before,
    }
    print(
        f"  {'service_query_p99':<24} {total:8.4f}s  "
        f"({results['service_query_p99']['ops_per_sec']:.2f} queries/s, "
        f"p50 {results['service_query_p99']['p50_ms']:.2f}ms, "
        f"p99 {results['service_query_p99']['p99_ms']:.2f}ms)"
    )

    shutil.rmtree(ckpt_parent, ignore_errors=True)
    return results


def derive_ratios(benches: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    """Speedup ratios the acceptance criteria read off the report."""
    serial = benches["pipeline_workers_1"]["seconds"]
    ratios = {
        f"speedup_workers_{w}": round(
            serial / benches[f"pipeline_workers_{w}"]["seconds"], 3
        )
        for w in WORKER_SWEEP
        if w != 1
    }
    # labeling_cached times FAST_BENCH_BATCH passes; normalize to one.
    ratios["labeling_cache_speedup"] = round(
        benches["labeling_uncached"]["seconds"]
        / (benches["labeling_cached"]["seconds"] / FAST_BENCH_BATCH),
        3,
    )
    # Columnar acceptance ratios, both against the full row-path rebuild.
    ratios["columnar_speedup"] = round(
        benches["catalog_build"]["seconds"] / benches["catalog_columnar"]["seconds"], 3
    )
    ratios["incremental_day_speedup"] = round(
        benches["catalog_build"]["seconds"]
        / benches["catalog_incremental_day"]["seconds"],
        3,
    )
    # Exchange acceptance: bytes the legacy pickled-row payload would
    # ship across the pool pipe vs what the selected transport actually
    # ships (shm: only the tiny descriptors; rpck fallback: the framed
    # column blocks, which at small scale barely beat pickle because
    # each self-contained block replicates the string pools).  The
    # floor is asserted where the perf job runs — a POSIX multi-core
    # runner, where shm is the selected transport.
    ratios["shard_payload_reduction"] = round(
        benches["shard_exchange"]["pickle_payload_bytes"]
        / max(benches["shard_exchange"]["pipe_payload_bytes"], 1),
        3,
    )
    # Worker-side deserialization: unpickling row dataclasses vs
    # attaching the selected transport's column buffers.  Recorded for
    # the trajectory, not gated — it is a timing, and the payload gate
    # above already pins the mechanism.
    ratios["shard_attach_speedup"] = round(
        benches["shard_exchange"]["pickle_attach_ms_per_shard"]
        / max(benches["shard_exchange"]["shm_attach_ms_per_shard"], 1e-6),
        3,
    )
    # Durability acceptance: persistence cost relative to the identical
    # un-persisted unit-sharded run (1.0 = free, ceiling 1.10).  Taken
    # from the interleaved paired measurement when available — the
    # quotient of two independently-timed benches is too drift-sensitive
    # to gate on.
    ratios["checkpoint_overhead"] = benches["durable_checkpointed"].get(
        "overhead_vs_baseline",
        round(
            benches["durable_checkpointed"]["seconds"]
            / benches["durable_baseline"]["seconds"],
            3,
        ),
    )
    # Out-of-core acceptance: the spill-everything run (per-unit write +
    # fsync, mmap-windowed replay) relative to the identical in-memory
    # execution (1.0 = free, ceiling 1.25).  Same interleaved-pair
    # sourcing as checkpoint_overhead.
    ratios["out_of_core_overhead"] = benches["pipeline_out_of_core"].get(
        "overhead_vs_baseline",
        round(
            benches["pipeline_out_of_core"]["seconds"]
            / benches["durable_baseline"]["seconds"],
            3,
        ),
    )
    return ratios


def run_scale_sweep(points: List[int], seed: int) -> Dict[str, Any]:
    """Run the out-of-core pipeline at each device count, in children.

    Each point gets its own subprocess so its ``ru_maxrss`` is a clean
    watermark for that scale alone — in-process, the monotone watermark
    of an earlier (larger) point would mask a smaller one.
    """
    entries: List[Dict[str, Any]] = []
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    for devices in points:
        proc = subprocess.run(
            [sys.executable, "-c", _SCALE_CHILD, str(devices), str(seed)],
            env=env,
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"scale child for {devices} devices failed "
                f"(exit {proc.returncode}):\n{proc.stderr}"
            )
        entry = json.loads(proc.stdout.splitlines()[-1])
        entry["rows_per_sec"] = (
            round(entry["rows"] / entry["seconds"], 1)
            if entry["seconds"] > 0
            else float("inf")
        )
        entries.append(entry)
        print(
            f"  scale {devices:>9,}  {entry['seconds']:8.2f}s  "
            f"{entry['rows_per_sec']:>12,.0f} rows/s  "
            f"peak RSS {entry['peak_rss_kb']:,} KiB"
        )
    return {"points": entries, "rss_ceiling_per_10x": SCALE_RSS_CEILING}


def check_scale_rss(scale: Dict[str, Any]) -> int:
    """Gate peak-RSS growth across every exact 10x device step.

    Pairs whose device counts are not an exact 10x apart carry no
    contract (the ceiling is defined per decade); a sweep with no 10x
    pair at all prints a loud note instead of silently passing.
    """
    points = sorted(scale["points"], key=lambda entry: entry["devices"])
    failures = 0
    gated = False
    for small in points:
        for large in points:
            if large["devices"] != 10 * small["devices"]:
                continue
            gated = True
            ratio = large["peak_rss_kb"] / max(small["peak_rss_kb"], 1)
            status = "ok"
            if ratio >= SCALE_RSS_CEILING:
                status = "ABOVE CEILING"
                failures += 1
            print(
                f"  rss_growth {small['devices']:,} -> {large['devices']:,}: "
                f"{ratio:.2f}x (ceiling {SCALE_RSS_CEILING}x)  {status}"
            )
    if not gated:
        print(
            "  NOTE: no exact 10x device pair in the sweep — the "
            "sublinear-RSS gate did not run; include one (e.g. 300,3000)."
        )
    return failures


def check_speedup_floors(
    derived: Dict[str, float], floors: Optional[Dict[str, float]] = None
) -> int:
    """Count derived ratios below their hard acceptance floor."""
    failures = 0
    if floors is None:
        floors = SPEEDUP_FLOORS
    for name, floor in sorted(floors.items()):
        value = derived.get(name)
        if value is None:
            print(f"  MISSING {name}: floor {floor}x, ratio not derived")
            failures += 1
            continue
        status = "ok"
        if value < floor:
            status = "BELOW FLOOR"
            failures += 1
        print(f"  {name:<24} {value:8.3f}x (floor {floor}x)  {status}")
    return failures


def check_worker_speedup_floors(
    derived: Dict[str, float], cpu_count: Optional[int]
) -> int:
    """Worker-sweep floors, enforced only on a multi-core runner.

    On fewer than :data:`MIN_CORES_FOR_WORKER_GATES` cores the sweep
    measures scheduler contention, not the exchange; every gate is
    skipped with a visible warning instead of silently passing or
    spuriously failing.
    """
    if cpu_count is None or cpu_count < MIN_CORES_FOR_WORKER_GATES:
        for name, floor in sorted(WORKER_SPEEDUP_FLOORS.items()):
            print(
                f"  SKIPPED {name}: floor {floor}x NOT enforced — "
                f"cpu_count={cpu_count} < {MIN_CORES_FOR_WORKER_GATES}. "
                "Worker-sweep gates need a multi-core runner; run the CI "
                "perf job on >= 4 cores (see docs/PERFORMANCE.md)."
            )
        return 0
    return check_speedup_floors(derived, WORKER_SPEEDUP_FLOORS)


def check_overhead_ceilings(
    derived: Dict[str, float], ceilings: Optional[Dict[str, float]] = None
) -> int:
    """Count derived overhead ratios above their hard ceiling."""
    failures = 0
    if ceilings is None:
        ceilings = OVERHEAD_CEILINGS
    for name, ceiling in sorted(ceilings.items()):
        value = derived.get(name)
        if value is None:
            print(f"  MISSING {name}: ceiling {ceiling}x, ratio not derived")
            failures += 1
            continue
        status = "ok"
        if value > ceiling:
            status = "ABOVE CEILING"
            failures += 1
        print(f"  {name:<24} {value:8.3f}x (ceiling {ceiling}x)  {status}")
    return failures


def check_latency_slos(benches: Dict[str, Dict[str, float]]) -> int:
    """Count service benches whose p99 latency exceeds its SLO ceiling."""
    failures = 0
    for name, ceiling_ms in sorted(LATENCY_SLOS.items()):
        value = benches.get(name, {}).get("p99_ms")
        if value is None:
            print(f"  MISSING {name}: SLO {ceiling_ms}ms, p99 not measured")
            failures += 1
            continue
        status = "ok"
        if value > ceiling_ms:
            status = "ABOVE SLO"
            failures += 1
        print(f"  {name:<24} {value:8.3f}ms p99 (SLO {ceiling_ms}ms)  {status}")
    return failures


def check_against_baseline(
    current: Dict[str, Dict[str, float]],
    baseline: Dict[str, Dict[str, float]],
    tolerance: float,
) -> int:
    """Count benches slower than ``baseline * (1 - tolerance)``."""
    regressions = 0
    for name, entry in sorted(baseline.items()):
        now = current.get(name)
        if now is None:
            print(f"  MISSING {name}: present in baseline, not measured")
            regressions += 1
            continue
        floor = entry["ops_per_sec"] * (1.0 - tolerance)
        status = "ok"
        if now["ops_per_sec"] < floor:
            status = "REGRESSION"
            regressions += 1
        print(
            f"  {name:<22} {now['ops_per_sec']:10.2f} ops/s "
            f"vs baseline {entry['ops_per_sec']:10.2f} "
            f"(floor {floor:10.2f})  {status}"
        )
    return regressions


def main(argv: Optional[list] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--devices", type=int, default=1000, help="bench population")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N timing")
    parser.add_argument("--out", type=str, default="BENCH_pipeline.json")
    parser.add_argument(
        "--baseline", type=str, default=None, help="baseline JSON to compare against"
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.20, help="allowed ops/sec drop fraction"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when any bench regresses past the tolerance",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small population + the smoke baseline (CI-sized run)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="overwrite the selected baseline file with this run",
    )
    parser.add_argument(
        "--scale",
        type=str,
        default=None,
        help=(
            "comma-separated device counts for the out-of-core RSS sweep "
            f"(e.g. {','.join(str(p) for p in DEFAULT_SCALE_POINTS)})"
        ),
    )
    parser.add_argument(
        "--scale-only",
        action="store_true",
        help="run only the --scale sweep (default points if --scale absent)",
    )
    args = parser.parse_args(argv)

    devices = 300 if args.smoke else args.devices
    repeats = 2 if args.smoke else args.repeats
    baseline_path = Path(
        args.baseline
        if args.baseline
        else (SMOKE_BASELINE if args.smoke else DEFAULT_BASELINE)
    )
    scale_points: Optional[List[int]] = None
    if args.scale is not None:
        scale_points = [int(part) for part in args.scale.split(",") if part.strip()]
    elif args.scale_only:
        scale_points = list(DEFAULT_SCALE_POINTS)

    meta = {
        "devices": devices,
        "seed": args.seed,
        "repeats": repeats,
        "smoke": args.smoke,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
    }

    if args.scale_only:
        print(f"scale sweep {scale_points} devices (out-of-core) ...")
        scale = run_scale_sweep(scale_points or [], args.seed)
        report: Dict[str, Any] = {"meta": meta, "scale": scale}
        out_path = Path(args.out)
        atomic_write_text(out_path, json.dumps(report, indent=2) + "\n")
        print(f"wrote {out_path}")
        if args.check:
            print("checking scale-sweep RSS growth")
            if check_scale_rss(scale):
                print("scale sweep regressed")
                return 1
            print("no regressions")
        return 0

    print(f"benching {devices} devices (repeats={repeats}) ...")
    benches = run_benches(devices, args.seed, repeats)
    report = {
        "meta": meta,
        "benches": benches,
        "derived": derive_ratios(benches),
    }
    if scale_points:
        print(f"scale sweep {scale_points} devices (out-of-core) ...")
        report["scale"] = run_scale_sweep(scale_points, args.seed)
    out_path = Path(args.out)
    atomic_write_text(out_path, json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    for name, value in report["derived"].items():
        print(f"  {name}: {value}x")

    if args.write_baseline:
        atomic_write_text(baseline_path, json.dumps(report, indent=2) + "\n")
        print(f"wrote baseline {baseline_path}")
        return 0

    if args.check:
        if not baseline_path.exists():
            print(f"no baseline at {baseline_path}; run --write-baseline first")
            return 2
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        print(f"checking against {baseline_path} (tolerance {args.tolerance:.0%})")
        regressions = check_against_baseline(
            benches, baseline["benches"], args.tolerance
        )
        print("checking speedup floors")
        regressions += check_speedup_floors(report["derived"])
        print("checking worker-sweep speedup floors")
        regressions += check_worker_speedup_floors(
            report["derived"], report["meta"]["cpu_count"]
        )
        print("checking overhead ceilings")
        regressions += check_overhead_ceilings(
            report["derived"],
            SMOKE_OVERHEAD_CEILINGS if args.smoke else OVERHEAD_CEILINGS,
        )
        print("checking latency SLOs")
        regressions += check_latency_slos(benches)
        if "scale" in report:
            print("checking scale-sweep RSS growth")
            regressions += check_scale_rss(report["scale"])
        if regressions:
            print(f"{regressions} bench(es) regressed")
            return 1
        print("no regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
