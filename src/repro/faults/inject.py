"""The injectors a :class:`~repro.faults.plan.FaultPlan` composes.

Two operating levels share one implementation of the generic stream
faults (drop / duplicate / bounded reorder):

* **typed streams** — lists of :class:`SignalingTransaction`,
  :class:`RadioEvent` or :class:`ServiceRecord`; field corruption is
  impossible here (the constructors validate), but outage windows apply:
  successful Update Locations inside a window flip to the window's
  failure code, exactly what a dead HLR looks like downstream;
* **JSONL rows/files** — dict rows (and raw lines), where field
  corruption and file truncation live; this is what the resilient-ingest
  layer in :mod:`repro.datasets.io` has to survive.

Determinism: every injector draws from its own substream of the plan
seed (see :class:`FaultPlan`), so the same plan injects byte-identical
faults on every run, and enabling one injector never shifts another's
draws.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

import numpy as np

from repro.datasets.io import read_jsonl, transaction_to_dict
from repro.faults.plan import CorruptionKind, FaultPlan
from repro.signaling.cdr import ServiceRecord
from repro.signaling.events import RadioEvent
from repro.signaling.procedures import MessageType, SignalingTransaction

T = TypeVar("T")
PathLike = Union[str, Path]

#: A serialized row after injection: still a dict, or a raw garbage line.
RawRow = Union[Dict[str, Any], str]

#: What a GARBAGE_LINE corruption writes: deliberately not JSON.
_GARBAGE = '{"device_id": "###TORN-RECORD'


@dataclass(frozen=True)
class RowSchema:
    """Which fields of a codec's rows each corruption kind may touch."""

    name: str
    plmn_fields: Tuple[str, ...]
    timestamp_field: str
    enum_fields: Tuple[str, ...]
    required_fields: Tuple[str, ...]


TRANSACTION_SCHEMA = RowSchema(
    name="transaction",
    plmn_fields=("sim_plmn", "visited_plmn"),
    timestamp_field="ts",
    enum_fields=("type", "result"),
    required_fields=("device_id", "ts", "sim_plmn", "visited_plmn", "type", "result"),
)

RADIO_EVENT_SCHEMA = RowSchema(
    name="radio_event",
    plmn_fields=("sim_plmn",),
    timestamp_field="ts",
    enum_fields=("iface", "type", "result"),
    required_fields=(
        "device_id", "ts", "sim_plmn", "tac", "sector", "iface", "type", "result",
    ),
)

SERVICE_RECORD_SCHEMA = RowSchema(
    name="service_record",
    plmn_fields=("sim_plmn", "visited_plmn"),
    timestamp_field="ts",
    enum_fields=("service",),
    required_fields=(
        "device_id", "ts", "sim_plmn", "visited_plmn", "service",
        "duration_s", "bytes",
    ),
)


@dataclass
class InjectionReport:
    """What one plan application actually did to one stream or file."""

    n_input: int = 0
    n_output: int = 0
    n_dropped: int = 0
    n_duplicated: int = 0
    n_reordered: int = 0
    n_corrupted: int = 0
    n_outage_flipped: int = 0
    n_truncated_bytes: int = 0

    @property
    def n_faults(self) -> int:
        return (
            self.n_dropped
            + self.n_duplicated
            + self.n_reordered
            + self.n_corrupted
            + self.n_outage_flipped
            + (1 if self.n_truncated_bytes else 0)
        )


# -- generic stream faults ---------------------------------------------------

def drop_items(
    items: Sequence[T], rate: float, rng: np.random.Generator
) -> Tuple[List[T], int]:
    """Independently drop each item with probability ``rate``."""
    if rate <= 0.0 or not items:
        return list(items), 0
    keep = rng.random(len(items)) >= rate
    kept = [item for item, flag in zip(items, keep) if flag]
    return kept, len(items) - len(kept)


def duplicate_items(
    items: Sequence[T], rate: float, rng: np.random.Generator
) -> Tuple[List[T], int]:
    """Emit each item once, plus an adjacent duplicate with prob ``rate``."""
    if rate <= 0.0 or not items:
        return list(items), 0
    again = rng.random(len(items)) < rate
    out: List[T] = []
    for item, flag in zip(items, again):
        out.append(item)
        if flag:
            out.append(item)
    return out, int(np.count_nonzero(again))


def reorder_items(
    items: Sequence[T], rate: float, window: int, rng: np.random.Generator
) -> Tuple[List[T], int]:
    """Swap selected items with a neighbour at most ``window`` ahead.

    Displacement is bounded, modelling the jitter of merge-sorted
    multi-probe feeds rather than a full shuffle.
    """
    out = list(items)
    n = len(out)
    if rate <= 0.0 or window < 1 or n < 2:
        return out, 0
    picks = rng.random(n) < rate
    offsets = rng.integers(1, window + 1, size=n)
    moved = 0
    for i in range(n):
        if not picks[i]:
            continue
        j = min(n - 1, i + int(offsets[i]))
        if j != i:
            out[i], out[j] = out[j], out[i]
            moved += 1
    return out, moved


# -- row corruption ----------------------------------------------------------

def corrupt_row(
    row: Mapping[str, Any],
    kind: CorruptionKind,
    schema: RowSchema,
    rng: np.random.Generator,
) -> RawRow:
    """Damage one row according to ``kind``; returns a dict or a raw line."""
    if kind is CorruptionKind.GARBAGE_LINE:
        return _GARBAGE
    damaged: Dict[str, Any] = dict(row)
    if kind is CorruptionKind.BAD_PLMN:
        target = schema.plmn_fields[int(rng.integers(len(schema.plmn_fields)))]
        damaged[target] = "@@#!!"
    elif kind is CorruptionKind.BAD_TIMESTAMP:
        damaged[schema.timestamp_field] = -1.0 - float(rng.random())
    elif kind is CorruptionKind.BAD_ENUM:
        target = schema.enum_fields[int(rng.integers(len(schema.enum_fields)))]
        damaged[target] = "__corrupt__"
    elif kind is CorruptionKind.MISSING_FIELD:
        target = schema.required_fields[
            int(rng.integers(len(schema.required_fields)))
        ]
        damaged.pop(target, None)
    return damaged


def corrupt_rows(
    rows: Sequence[Mapping[str, Any]],
    rate: float,
    kinds: Sequence[CorruptionKind],
    schema: RowSchema,
    rng: np.random.Generator,
) -> Tuple[List[RawRow], int]:
    """Independently corrupt each row with probability ``rate``."""
    if rate <= 0.0 or not rows or not kinds:
        return [dict(row) for row in rows], 0
    hits = rng.random(len(rows)) < rate
    kind_picks = rng.integers(0, len(kinds), size=len(rows))
    out: List[RawRow] = []
    corrupted = 0
    for row, hit, pick in zip(rows, hits, kind_picks):
        if hit:
            out.append(corrupt_row(row, kinds[int(pick)], schema, rng))
            corrupted += 1
        else:
            out.append(dict(row))
    return out, corrupted


# -- plan application: rows and files ---------------------------------------

def inject_rows(
    rows: Sequence[Mapping[str, Any]],
    plan: FaultPlan,
    schema: RowSchema,
) -> Tuple[List[RawRow], InjectionReport]:
    """Apply a plan's stream faults + corruption to dict rows."""
    report = InjectionReport(n_input=len(rows))
    staged: List[Mapping[str, Any]] = list(rows)
    staged, report.n_dropped = drop_items(staged, plan.drop_rate, plan.drop_rng())
    staged, report.n_duplicated = duplicate_items(
        staged, plan.duplicate_rate, plan.duplicate_rng()
    )
    staged, report.n_reordered = reorder_items(
        staged, plan.reorder_rate, plan.reorder_window, plan.reorder_rng()
    )
    out, report.n_corrupted = corrupt_rows(
        staged, plan.corrupt_rate, plan.corruptions, schema, plan.corrupt_rng()
    )
    report.n_output = len(out)
    return out, report


def render_rows(rows: Sequence[RawRow]) -> str:
    """Serialize injected rows back to JSONL text (garbage lines verbatim)."""
    lines = [
        row if isinstance(row, str) else json.dumps(row, separators=(",", ":"))
        for row in rows
    ]
    return "".join(line + "\n" for line in lines)


def _write_truncated(
    path: PathLike, rows: Sequence[RawRow], plan: FaultPlan, report: InjectionReport
) -> None:
    """Render rows to ``path``, applying the plan's byte truncation."""
    text = render_rows(rows)
    if plan.truncate_fraction > 0.0 and text:
        keep = int(len(text) * (1.0 - plan.truncate_fraction))
        report.n_truncated_bytes = len(text) - keep
        text = text[:keep]
    Path(path).write_text(text, encoding="utf-8")


def inject_jsonl(
    src: PathLike,
    dst: PathLike,
    plan: FaultPlan,
    schema: RowSchema,
) -> InjectionReport:
    """Read a clean JSONL file, write its fault-injected twin.

    Byte-deterministic: the same (src, plan) always produces the same
    ``dst`` content.  ``truncate_fraction`` cuts bytes off the end of the
    rendered text, usually tearing the last record mid-line.
    """
    rows = list(read_jsonl(src))
    out, report = inject_rows(rows, plan, schema)
    _write_truncated(dst, out, plan, report)
    return report


# -- plan application: typed streams ----------------------------------------

def _apply_outages(
    transactions: Sequence[SignalingTransaction], plan: FaultPlan
) -> Tuple[List[SignalingTransaction], int]:
    """Flip successful Update Locations inside outage windows to failures."""
    if not plan.outages:
        return list(transactions), 0
    flipped = 0
    out: List[SignalingTransaction] = []
    for txn in transactions:
        window = (
            plan.outage_at(txn.timestamp, txn.visited_plmn)
            if txn.message_type is MessageType.UPDATE_LOCATION
            and txn.result.is_success
            else None
        )
        if window is not None:
            out.append(dataclasses.replace(txn, result=window.result))
            flipped += 1
        else:
            out.append(txn)
    return out, flipped


def inject_transactions(
    transactions: Sequence[SignalingTransaction], plan: FaultPlan
) -> Tuple[List[SignalingTransaction], InjectionReport]:
    """Apply stream faults + outage flips to a signaling stream."""
    report = InjectionReport(n_input=len(transactions))
    staged, report.n_outage_flipped = _apply_outages(transactions, plan)
    staged, report.n_dropped = drop_items(staged, plan.drop_rate, plan.drop_rng())
    staged, report.n_duplicated = duplicate_items(
        staged, plan.duplicate_rate, plan.duplicate_rng()
    )
    staged, report.n_reordered = reorder_items(
        staged, plan.reorder_rate, plan.reorder_window, plan.reorder_rng()
    )
    report.n_output = len(staged)
    return staged, report


def _inject_generic(
    items: Sequence[T], plan: FaultPlan
) -> Tuple[List[T], InjectionReport]:
    report = InjectionReport(n_input=len(items))
    staged, report.n_dropped = drop_items(items, plan.drop_rate, plan.drop_rng())
    staged, report.n_duplicated = duplicate_items(
        staged, plan.duplicate_rate, plan.duplicate_rng()
    )
    staged, report.n_reordered = reorder_items(
        staged, plan.reorder_rate, plan.reorder_window, plan.reorder_rng()
    )
    report.n_output = len(staged)
    return staged, report


def inject_radio_events(
    events: Sequence[RadioEvent], plan: FaultPlan
) -> Tuple[List[RadioEvent], InjectionReport]:
    """Apply stream faults (drop/duplicate/reorder) to radio events."""
    return _inject_generic(events, plan)


def inject_service_records(
    records: Sequence[ServiceRecord], plan: FaultPlan
) -> Tuple[List[ServiceRecord], InjectionReport]:
    """Apply stream faults (drop/duplicate/reorder) to CDR/xDR records."""
    return _inject_generic(records, plan)


# -- convenience: typed stream -> injected JSONL file ------------------------

def write_injected_transactions(
    path: PathLike, transactions: Sequence[SignalingTransaction], plan: FaultPlan
) -> InjectionReport:
    """Serialize a transaction stream through row-level injection."""
    rows = [transaction_to_dict(t) for t in transactions]
    out, report = inject_rows(rows, plan, TRANSACTION_SCHEMA)
    _write_truncated(path, out, plan, report)
    return report
