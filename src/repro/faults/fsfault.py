"""Deterministic, seeded filesystem fault injection for the storage seam.

The data injectors (:mod:`repro.faults.inject`) corrupt *records*; the
crash injectors (:mod:`repro.faults.crash`) kill the *process*.  This
module injects the third failure family a multi-week run meets: the
*disk* misbehaving underneath a healthy process — ``ENOSPC`` when a
volume fills, ``EIO`` on reads or writes from a failing device, fsync
refusals, short writes that persist only a prefix, and latent bit rot
that flips bytes at rest without any syscall ever failing.

Faults are described by a serializable :class:`FsFaultPlan` (seeded,
JSON round-trippable, exactly like :class:`repro.faults.plan.FaultPlan`)
and armed by an :class:`FsFaultInjector`.  The injector is consulted by
:mod:`repro.runtime.fsio` — the single module every durable write/read
in the runtime and service layers routes through (lint rule ``FS001``
enforces the routing) — so arming a plan perturbs *every* storage
consumer without patching any of them.

Activation is ambient: :func:`install` arms an injector for the current
process (a context manager, so tests cannot leak faults), and the
``REPRO_FSFAULT_PLAN`` environment variable carries a JSON plan into
subprocesses — pool workers and kill-matrix children see the same
faults their parent armed.  With nothing armed, :func:`active` returns
``None`` and the storage hot path pays a single attribute check.

Determinism: which byte positions bit rot flips is drawn from a
generator seeded by ``plan.seed ^ crc32(file name)`` — stable per
(plan, file), independent of call order and process interleaving.
"""

from __future__ import annotations

import contextlib
import errno
import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

PathLike = Union[str, "os.PathLike[str]"]

#: ``write`` fails with ``ENOSPC`` before any byte reaches the file.
ENOSPC = "enospc"
#: ``write`` fails with ``EIO`` before any byte reaches the file.
EIO_WRITE = "eio-write"
#: ``read`` (or the mmap open probe) fails with ``EIO``.
EIO_READ = "eio-read"
#: ``fsync`` fails with ``EIO``; the file's durability is unknown.
FSYNC_FAIL = "fsync-fail"
#: A prefix of the data lands on disk, then the write fails ``ENOSPC``.
SHORT_WRITE = "short-write"
#: The write "succeeds" but seeded byte flips land on disk (latent rot).
BIT_ROT = "bit-rot"
#: The atomic rename itself fails with ``EIO``.
RENAME_FAIL = "rename-fail"

FAULT_KINDS = (
    ENOSPC,
    EIO_WRITE,
    EIO_READ,
    FSYNC_FAIL,
    SHORT_WRITE,
    BIT_ROT,
    RENAME_FAIL,
)

#: Kinds consulted per I/O operation.
WRITE_KINDS = (ENOSPC, EIO_WRITE, SHORT_WRITE, BIT_ROT)
READ_KINDS = (EIO_READ,)
FSYNC_KINDS = (FSYNC_FAIL,)
RENAME_KINDS = (RENAME_FAIL,)

_ERRNO_OF = {
    ENOSPC: errno.ENOSPC,
    EIO_WRITE: errno.EIO,
    EIO_READ: errno.EIO,
    FSYNC_FAIL: errno.EIO,
    SHORT_WRITE: errno.ENOSPC,
    RENAME_FAIL: errno.EIO,
}

#: Environment variable carrying a JSON :class:`FsFaultPlan` into child
#: processes (pool workers, kill-matrix subprocesses).
FSFAULT_PLAN_ENV = "REPRO_FSFAULT_PLAN"


@dataclass(frozen=True)
class FsFault:
    """One armed fault: a kind, a path filter, and a firing budget.

    ``match`` is a substring tested against the target's posix path —
    ``"day_001.shard_000"`` arms one unit, ``"journal"`` the journal,
    ``""`` every file the seam touches.  ``times`` bounds how often the
    fault fires (transient faults retry away); negative means every
    matching operation fails (a persistent fault).  ``flips`` is the
    number of byte positions :data:`BIT_ROT` flips.
    """

    kind: str
    match: str = ""
    times: int = 1
    flips: int = 3

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fsfault kind {self.kind!r}")
        if self.times == 0:
            raise ValueError("times must be nonzero (negative = persistent)")
        if self.flips < 1:
            raise ValueError(f"flips must be >= 1, got {self.flips}")


@dataclass(frozen=True)
class FsFaultPlan:
    """A seeded, serializable composition of filesystem faults."""

    seed: int = 0
    faults: Tuple[FsFault, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def to_payload(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "faults": [
                {
                    "kind": f.kind,
                    "match": f.match,
                    "times": f.times,
                    "flips": f.flips,
                }
                for f in self.faults
            ],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "FsFaultPlan":
        return cls(
            seed=int(payload.get("seed", 0)),
            faults=tuple(
                FsFault(
                    kind=str(doc["kind"]),
                    match=str(doc.get("match", "")),
                    times=int(doc.get("times", 1)),
                    flips=int(doc.get("flips", 3)),
                )
                for doc in payload.get("faults", [])
            ),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FsFaultPlan":
        return cls.from_payload(json.loads(text))


def _fault_error(kind: str, path: PathLike) -> OSError:
    code = _ERRNO_OF[kind]
    return OSError(code, f"injected {kind}: {os.strerror(code)}", str(path))


class FsFaultInjector:
    """Armed fault plan plus per-fault firing state.

    The probe methods (:meth:`write_fault`, :meth:`read_fault`,
    :meth:`fsync_fault`, :meth:`rename_fault`) are what
    :mod:`repro.runtime.fsio` consults; each selects the first armed
    fault of a matching kind whose path filter matches and whose firing
    budget is not exhausted, consuming one firing.  ``fired`` keeps the
    audit trail: every firing as ``(kind, match, path name)``.
    """

    def __init__(self, plan: FsFaultPlan) -> None:
        self.plan = plan
        self._remaining: List[int] = [f.times for f in plan.faults]
        self.fired: List[Tuple[str, str, str]] = []

    def _select(self, path: PathLike, kinds: Sequence[str]) -> Optional[FsFault]:
        posix = Path(path).as_posix()
        for index, fault in enumerate(self.plan.faults):
            if fault.kind not in kinds:
                continue
            if fault.match and fault.match not in posix:
                continue
            if self._remaining[index] == 0:
                continue
            if self._remaining[index] > 0:
                self._remaining[index] -= 1
            self.fired.append((fault.kind, fault.match, Path(path).name))
            return fault
        return None

    @property
    def n_fired(self) -> int:
        return len(self.fired)

    # -- per-operation probes ------------------------------------------------

    def write_fault(self, path: PathLike) -> Optional[FsFault]:
        """The write-kind fault armed for ``path``, if any (consumed)."""
        return self._select(path, WRITE_KINDS)

    def read_fault(self, path: PathLike) -> None:
        """Raise injected ``EIO`` if a read fault is armed for ``path``."""
        fault = self._select(path, READ_KINDS)
        if fault is not None:
            raise _fault_error(fault.kind, path)

    def fsync_fault(self, path: PathLike) -> None:
        """Raise injected ``EIO`` if an fsync fault is armed for ``path``."""
        fault = self._select(path, FSYNC_KINDS)
        if fault is not None:
            raise _fault_error(fault.kind, path)

    def rename_fault(self, target: PathLike) -> None:
        """Raise injected ``EIO`` if a rename fault is armed for ``target``."""
        fault = self._select(target, RENAME_KINDS)
        if fault is not None:
            raise _fault_error(fault.kind, target)

    def rot(self, path: PathLike, data: bytes, fault: FsFault) -> bytes:
        """Flip ``fault.flips`` seeded byte positions of ``data``.

        Positions are drawn from a generator seeded by
        ``seed ^ crc32(name)``, so the damage is a pure function of
        (plan, file name).  The first 20 bytes — a framed block's
        magic/version/crc/length header — are spared when the payload
        is long enough, so rot models payload corruption (a CRC
        mismatch on read) rather than a torn frame.
        """
        if not data:
            return data
        name = Path(path).name.encode("utf-8")
        rng = np.random.default_rng(self.plan.seed ^ zlib.crc32(name))
        lo = 20 if len(data) > 40 else 0
        rotted = bytearray(data)
        for _ in range(fault.flips):
            position = int(rng.integers(lo, len(data)))
            rotted[position] ^= 1 << int(rng.integers(0, 8))
        return bytes(rotted)


_ACTIVE: Optional[FsFaultInjector] = None
#: Cache for the env-activated injector: (raw env value, injector) — the
#: same injector (and its firing budgets) persists across fsio calls.
_ENV_INJECTOR: Optional[Tuple[str, FsFaultInjector]] = None


def active() -> Optional[FsFaultInjector]:
    """The ambient injector, if one is armed (install > environment)."""
    global _ENV_INJECTOR
    if _ACTIVE is not None:
        return _ACTIVE
    raw = os.environ.get(FSFAULT_PLAN_ENV)
    if not raw:
        return None
    if _ENV_INJECTOR is None or _ENV_INJECTOR[0] != raw:
        _ENV_INJECTOR = (raw, FsFaultInjector(FsFaultPlan.from_json(raw)))
    return _ENV_INJECTOR[1]


@contextlib.contextmanager
def install(
    plan: Union[FsFaultPlan, FsFaultInjector],
) -> Iterator[FsFaultInjector]:
    """Arm ``plan`` for the current process (restored on exit)."""
    global _ACTIVE
    injector = plan if isinstance(plan, FsFaultInjector) else FsFaultInjector(plan)
    previous = _ACTIVE
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = previous
