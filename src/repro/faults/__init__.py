"""Seeded, composable fault injection and the resilience layer it validates.

The paper's central population is *failing* devices: §3's 4G-failed
fleets retrying attach across up to 19 VMNOs, §7's SMIP-roaming smart
meters hammering the signaling plane.  Real operator traces are no
cleaner — truncated files, duplicated and reordered events, corrupted
fields and outage gaps are the norm for long-lived measurement
infrastructure.  This package makes those degradations *first-class,
reproducible inputs*:

* :mod:`repro.faults.plan` — :class:`FaultPlan`, a seeded, serializable
  composition of injectors (drop / duplicate / reorder / corrupt /
  truncate / outage windows);
* :mod:`repro.faults.inject` — the injectors themselves, operating on
  typed record streams and on JSONL files (byte-deterministic for a
  given plan);
* :mod:`repro.faults.crash` — crash-shaped injectors (deterministic
  SIGKILL switches, torn checkpoints, stale manifests) that exercise
  the durable runtime (:mod:`repro.runtime`) the way the data
  injectors exercise ingest;
* :mod:`repro.faults.fsfault` — seeded filesystem fault injection
  (ENOSPC, EIO, fsync failure, short writes, latent bit rot, rename
  failure) armed ambiently and consulted by the storage I/O seam
  (:mod:`repro.runtime.fsio`);
* :mod:`repro.faults.retry` — exponential-backoff retry modeling
  (seeded jitter, delay cap), used by the platform simulator to model
  reattach storms during outages and by any code that needs a sanctioned
  retry loop (lint rule ``RETRY001`` bans ad-hoc ones).

Everything a fault plan injects, the ingest layer
(:mod:`repro.datasets.io`), the HLR validator
(:mod:`repro.signaling.hlr`) and the pipeline's lenient mode
(:mod:`repro.pipeline`) are built to survive; the ``chaos`` test suite
asserts exactly that across a (plan × seed) grid.
"""

from repro.faults.crash import (
    KILL_AT_DAY,
    KILL_AT_RENAME,
    KILL_AT_UNIT,
    KillSwitch,
    make_manifest_stale,
    tear_day_checkpoint,
    tear_journal_tail,
)
from repro.faults.fsfault import (
    BIT_ROT,
    EIO_READ,
    EIO_WRITE,
    ENOSPC,
    FSFAULT_PLAN_ENV,
    FSYNC_FAIL,
    RENAME_FAIL,
    SHORT_WRITE,
    FsFault,
    FsFaultInjector,
    FsFaultPlan,
    install,
)
from repro.faults.inject import (
    RADIO_EVENT_SCHEMA,
    SERVICE_RECORD_SCHEMA,
    TRANSACTION_SCHEMA,
    InjectionReport,
    RowSchema,
    inject_jsonl,
    inject_radio_events,
    inject_rows,
    inject_service_records,
    inject_transactions,
)
from repro.faults.plan import CorruptionKind, FaultPlan, OutageWindow
from repro.faults.retry import (
    RetryError,
    RetryPolicy,
    backoff_schedule,
    call_with_retry,
)

__all__ = [
    "BIT_ROT",
    "CorruptionKind",
    "EIO_READ",
    "EIO_WRITE",
    "ENOSPC",
    "FSFAULT_PLAN_ENV",
    "FSYNC_FAIL",
    "FaultPlan",
    "FsFault",
    "FsFaultInjector",
    "FsFaultPlan",
    "InjectionReport",
    "KILL_AT_DAY",
    "KILL_AT_RENAME",
    "KILL_AT_UNIT",
    "KillSwitch",
    "OutageWindow",
    "RADIO_EVENT_SCHEMA",
    "RENAME_FAIL",
    "RetryError",
    "RetryPolicy",
    "RowSchema",
    "SHORT_WRITE",
    "SERVICE_RECORD_SCHEMA",
    "TRANSACTION_SCHEMA",
    "backoff_schedule",
    "call_with_retry",
    "inject_jsonl",
    "inject_radio_events",
    "inject_rows",
    "inject_service_records",
    "inject_transactions",
    "install",
    "make_manifest_stale",
    "tear_day_checkpoint",
    "tear_journal_tail",
]
