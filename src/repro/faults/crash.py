"""Crash-shaped fault injectors: process death and storage corruption.

PR 2's injectors degrade the *data*; these degrade the *process* and
its checkpoints, so the durable runtime (:mod:`repro.runtime`) can be
tested with the same determinism as the data faults:

- :class:`KillSwitch` — SIGKILL the current process at a named point of
  a durable run (before the Nth unit is published, after a day folds,
  or in the window between a checkpoint's temp write and its rename).
  SIGKILL, not an exception: nothing gets to clean up, exactly like an
  OOM kill or a node drain.
- :func:`tear_day_checkpoint` — truncate a persisted unit block,
  modeling a torn write that the rename discipline cannot prevent
  (e.g. media failure after publication).  Detected by the block CRC.
- :func:`make_manifest_stale` — rewrite a run manifest to an
  unsupported version or a mismatched fingerprint, modeling checkpoint
  directories left behind by older code or different runs.

The injectors are plain functions over a checkpoint directory; the kill
switch threads into :func:`repro.runtime.run.run_durable_pipeline`
through its ``on_unit`` / ``on_day`` / ``before_replace`` seams.
"""

from __future__ import annotations

import json
import os
import signal
from dataclasses import dataclass
from pathlib import Path
from typing import Union

PathLike = Union[str, Path]

#: KillSwitch firing points.
KILL_AT_UNIT = "unit"
KILL_AT_DAY = "day"
KILL_AT_RENAME = "rename"

KILL_POINTS = (KILL_AT_UNIT, KILL_AT_DAY, KILL_AT_RENAME)


@dataclass
class KillSwitch:
    """SIGKILL the process at one deterministic point of a durable run.

    ``point`` selects the seam: :data:`KILL_AT_UNIT` fires just before
    unit ``(day, shard)`` is published (the unit is computed but never
    journaled — a worker death mid-publication); :data:`KILL_AT_DAY`
    fires after ``day`` has been folded into the catalog (between
    days); :data:`KILL_AT_RENAME` fires after the matching unit's temp
    file is written and fsynced but before ``os.replace`` — the
    narrowest torn-publication window.

    Wire it with::

        switch = KillSwitch(point=KILL_AT_UNIT, day=3, shard=1)
        run_durable_pipeline(..., on_unit=switch.on_unit,
                             on_day=switch.on_day,
                             before_replace=switch.before_replace)
    """

    point: str
    day: int = 0
    shard: int = 0

    def __post_init__(self) -> None:
        if self.point not in KILL_POINTS:
            raise ValueError(f"unknown kill point {self.point!r}")

    def fire(self) -> None:
        os.kill(os.getpid(), signal.SIGKILL)

    def on_unit(self, day: int, shard: int) -> None:
        if self.point == KILL_AT_UNIT and (day, shard) == (self.day, self.shard):
            self.fire()

    def on_day(self, day: int) -> None:
        if self.point == KILL_AT_DAY and day == self.day:
            self.fire()

    def before_replace(self, target: Path) -> None:
        if self.point != KILL_AT_RENAME:
            return
        expected = f"day_{self.day:03d}.shard_{self.shard:03d}.ckpt"
        if target.name == expected:
            self.fire()


def tear_day_checkpoint(
    directory: PathLike, day: int, shard: int, keep_fraction: float = 0.5
) -> Path:
    """Truncate one persisted unit block to ``keep_fraction`` of its bytes.

    Returns the torn path.  The durable runtime must detect the tear by
    CRC on the next load and re-execute exactly that unit.
    """
    if not 0.0 <= keep_fraction < 1.0:
        raise ValueError(f"keep_fraction must be in [0, 1), got {keep_fraction}")
    from repro.runtime.checkpoint import UNITS_DIRNAME

    ckpt_path = Path(directory) / UNITS_DIRNAME / f"day_{day:03d}.shard_{shard:03d}.ckpt"
    data = ckpt_path.read_bytes()
    # A deliberately torn write: the injector models exactly the
    # non-atomic behavior DUR001 bans in production code.
    ckpt_path.write_bytes(data[: int(len(data) * keep_fraction)])  # repro: noqa[DUR001]
    return ckpt_path


def tear_journal_tail(directory: PathLike, keep_fraction: float = 0.5) -> Path:
    """Truncate the completion journal's last line mid-record.

    Models a crash while a journal line was being written: the tail no
    longer parses (or fails its self-CRC), so the store must discard it
    — and everything after it — on the next load, *and report the
    discard* (``CheckpointStore.n_torn_journal_lines``) instead of
    recovering silently.
    """
    if not 0.0 <= keep_fraction < 1.0:
        raise ValueError(f"keep_fraction must be in [0, 1), got {keep_fraction}")
    from repro.runtime.checkpoint import JOURNAL_NAME

    journal_path = Path(directory) / JOURNAL_NAME
    text = journal_path.read_text(encoding="utf-8")
    lines = text.splitlines()
    if not lines:
        raise ValueError(f"journal {journal_path} is empty; nothing to tear")
    last = lines[-1]
    torn = last[: int(len(last) * keep_fraction)]
    body = "\n".join(lines[:-1] + [torn])
    # Deliberately non-atomic: the injector models exactly the torn
    # write the durability layer must survive.
    journal_path.write_text(body, encoding="utf-8")  # repro: noqa[DUR001]
    return journal_path


def make_manifest_stale(directory: PathLike, mode: str = "version") -> Path:
    """Rewrite a run manifest so resume must refuse it.

    ``mode="version"`` stamps an unsupported manifest version (old
    tooling's directory); ``mode="fingerprint"`` rewrites the recorded
    fingerprint to a different run's (checksum kept consistent, so the
    mismatch is semantic, not corruption).
    """
    from repro.runtime.checkpoint import MANIFEST_NAME, _payload_crc

    manifest_path = Path(directory) / MANIFEST_NAME
    doc = json.loads(manifest_path.read_text(encoding="utf-8"))
    if mode == "version":
        doc["version"] = 0
    elif mode == "fingerprint":
        doc["payload"]["fingerprint"] = {"source": "a-different-run"}
        doc["crc32"] = _payload_crc(doc["payload"])
    else:
        raise ValueError(f"unknown mode {mode!r}")
    manifest_path.write_text(  # repro: noqa[DUR001]
        json.dumps(doc, sort_keys=True, indent=2), encoding="utf-8"
    )
    return manifest_path
