"""Fault plans: the seeded configuration object composing fault injectors.

A :class:`FaultPlan` is to degradation what :class:`PlatformConfig` is to
generation: one value object that fully determines the faults applied to
a stream or file.  The same plan always injects the same faults — every
injector draws from a per-injector substream of the plan's seed, so
enabling one injector never shifts the draws of another.

Plans serialize through :mod:`repro.configio` (kind ``"FaultPlan"``) so
a degraded dataset can be regenerated from its persisted plan exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Tuple

import numpy as np

from repro.signaling.procedures import ResultCode


class CorruptionKind(str, Enum):
    """The ways a serialized row can be damaged, one per taxonomy bucket.

    ``GARBAGE_LINE`` produces a *parse* error (not JSON at all);
    ``BAD_ENUM`` and ``MISSING_FIELD`` produce *schema* errors (the row
    no longer matches the codec); ``BAD_PLMN`` and ``BAD_TIMESTAMP``
    produce *semantic* errors (well-formed rows whose values violate the
    record invariants).
    """

    BAD_PLMN = "bad_plmn"
    BAD_TIMESTAMP = "bad_timestamp"
    BAD_ENUM = "bad_enum"
    MISSING_FIELD = "missing_field"
    GARBAGE_LINE = "garbage_line"


#: Default corruption mix: every kind, uniformly.
ALL_CORRUPTION_KINDS: Tuple[CorruptionKind, ...] = tuple(CorruptionKind)


@dataclass(frozen=True)
class OutageWindow:
    """An HLR/VMNO outage: procedures fail inside ``[start_s, end_s)``.

    ``plmn`` scopes the outage to one visited network; ``None`` means the
    HLR itself is down, failing Update Locations toward *every* VMNO.
    ``result`` is the failure code the outage produces (SystemFailure by
    default, matching what a dead HLR looks like from the probes).
    """

    start_s: float
    end_s: float
    plmn: Optional[str] = None
    result: ResultCode = ResultCode.SYSTEM_FAILURE

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.end_s <= self.start_s:
            raise ValueError(
                f"outage window must satisfy 0 <= start < end, "
                f"got [{self.start_s}, {self.end_s})"
            )
        if self.result.is_success:
            raise ValueError("an outage cannot produce a success result")

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def covers(self, timestamp: float) -> bool:
        """True when ``timestamp`` falls inside the window."""
        return self.start_s <= timestamp < self.end_s

    def affects(self, timestamp: float, plmn: Optional[str] = None) -> bool:
        """True when a procedure at (timestamp, visited ``plmn``) fails."""
        if not self.covers(timestamp):
            return False
        return self.plmn is None or plmn is None or self.plmn == plmn


#: Substream salts: each injector draws from its own child stream of the
#: plan seed so injectors compose without perturbing one another.
_STREAM_DROP = 1
_STREAM_DUPLICATE = 2
_STREAM_REORDER = 3
_STREAM_CORRUPT = 4

_RATE_FIELDS = ("drop_rate", "duplicate_rate", "reorder_rate", "corrupt_rate")


@dataclass(frozen=True)
class FaultPlan:
    """Seeded composition of fault injectors over streams and files.

    All rates are per-record probabilities in ``[0, 1]``; the default
    plan injects nothing.  ``truncate_fraction`` cuts that fraction of
    *bytes* off the end of an injected JSONL file (usually tearing the
    final line mid-record, like a crashed writer).  ``outages`` apply to
    signaling-transaction streams and to the platform simulator (see
    :meth:`outage_at`).
    """

    seed: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    reorder_window: int = 4
    corrupt_rate: float = 0.0
    corruptions: Tuple[CorruptionKind, ...] = ALL_CORRUPTION_KINDS
    truncate_fraction: float = 0.0
    outages: Tuple[OutageWindow, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS + ("truncate_fraction",):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.reorder_window < 1:
            raise ValueError(
                f"reorder_window must be >= 1, got {self.reorder_window}"
            )
        if self.corrupt_rate > 0 and not self.corruptions:
            raise ValueError("corrupt_rate > 0 needs at least one CorruptionKind")

    # -- seeded substreams ---------------------------------------------------

    def _stream(self, salt: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence(entropy=self.seed, spawn_key=(salt,))
        )

    def drop_rng(self) -> np.random.Generator:
        return self._stream(_STREAM_DROP)

    def duplicate_rng(self) -> np.random.Generator:
        return self._stream(_STREAM_DUPLICATE)

    def reorder_rng(self) -> np.random.Generator:
        return self._stream(_STREAM_REORDER)

    def corrupt_rng(self) -> np.random.Generator:
        return self._stream(_STREAM_CORRUPT)

    # -- queries -------------------------------------------------------------

    @property
    def injects_anything(self) -> bool:
        """False for the all-defaults no-op plan."""
        return (
            any(getattr(self, name) > 0 for name in _RATE_FIELDS)
            or self.truncate_fraction > 0
            or bool(self.outages)
        )

    def outage_at(
        self, timestamp: float, plmn: Optional[str] = None
    ) -> Optional[OutageWindow]:
        """The first outage window affecting (timestamp, visited plmn)."""
        for window in self.outages:
            if window.affects(timestamp, plmn):
                return window
        return None
