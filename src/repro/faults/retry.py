"""Exponential backoff with seeded jitter: the sanctioned retry model.

§3's 4G-failed devices are, at heart, retry loops with no backoff cap
that ever fires — they churn through candidate VMNOs re-attempting
attach for the whole observation window.  Modeling that (and the
reattach storms an HLR outage triggers) needs a retry schedule that is
*deterministic for a given seed*: delays draw their jitter from a
``numpy`` Generator threaded in by the caller, never from wall-clock or
global state.

This module is also the target of lint rule ``RETRY001``: ad-hoc
``while``/``try``/``continue`` retry loops in simulator packages must be
rewritten over :class:`RetryPolicy` so their timing is configurable and
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Type, TypeVar

import numpy as np

T = TypeVar("T")


class RetryError(RuntimeError):
    """Raised when every attempt allowed by a policy has failed."""

    def __init__(self, attempts: int, last_error: Optional[BaseException]):
        super().__init__(
            f"gave up after {attempts} attempt(s): {last_error!r}"
        )
        self.attempts = attempts
        self.last_error = last_error


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with a delay cap and bounded uniform jitter.

    The un-jittered delay before retry ``k`` (0-based) is
    ``min(base_delay_s * multiplier**k, max_delay_s)``; jitter then
    scales it uniformly into ``[(1 - jitter) * d, d]`` ("equal jitter",
    keeping the mean high enough that storms still thin out over time).
    """

    base_delay_s: float = 30.0
    multiplier: float = 2.0
    max_delay_s: float = 3600.0
    jitter: float = 0.5
    max_attempts: int = 6

    def __post_init__(self) -> None:
        if self.base_delay_s <= 0:
            raise ValueError(f"base_delay_s must be > 0, got {self.base_delay_s}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_delay_s < self.base_delay_s:
            raise ValueError(
                f"max_delay_s must be >= base_delay_s, got "
                f"max_delay_s={self.max_delay_s} < base_delay_s={self.base_delay_s}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")

    def delay_s(self, attempt: int, rng: np.random.Generator) -> float:
        """The jittered delay before retry ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        raw = min(self.base_delay_s * self.multiplier**attempt, self.max_delay_s)
        if self.jitter > 0.0:
            raw *= (1.0 - self.jitter) + self.jitter * float(rng.random())
        return raw


def backoff_schedule(
    policy: RetryPolicy,
    rng: np.random.Generator,
    start_s: float = 0.0,
    horizon_s: Optional[float] = None,
) -> List[float]:
    """Retry timestamps after a failure at ``start_s``.

    At most ``policy.max_attempts`` entries; stops early once a retry
    would land at or past ``horizon_s`` (e.g. the simulation window
    end).  Deterministic for a given (policy, rng state).
    """
    schedule: List[float] = []
    at = start_s
    for attempt in range(policy.max_attempts):
        at += policy.delay_s(attempt, rng)
        if horizon_s is not None and at >= horizon_s:
            break
        schedule.append(at)
    return schedule


def call_with_retry(
    fn: Callable[[], T],
    policy: RetryPolicy,
    rng: np.random.Generator,
    retry_on: Tuple[Type[Exception], ...] = (Exception,),
    on_retry: Optional[Callable[[int, float, Exception], None]] = None,
) -> T:
    """Call ``fn`` until it succeeds or the policy's attempts run out.

    Simulation-side retries never sleep; the jittered delay for each
    failed attempt is still *drawn* (keeping RNG consumption identical
    whether or not a caller observes it) and handed to ``on_retry`` so
    callers can model elapsed time.  Raises :class:`RetryError` wrapping
    the last exception once ``max_attempts`` attempts all failed.
    """
    last: Optional[Exception] = None
    for attempt in range(policy.max_attempts):
        try:
            return fn()
        except retry_on as exc:
            last = exc
            delay = policy.delay_s(attempt, rng)
            if on_retry is not None:
                on_retry(attempt, delay, exc)
    raise RetryError(policy.max_attempts, last)
