"""Configuration of the M2M platform simulator.

Every number here is a calibration target taken from §3 of the paper;
the comments cite the corresponding observation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.devices.device import IoTVertical


@dataclass(frozen=True)
class HMNOFleetConfig:
    """Per-HMNO fleet parameters.

    ``share`` — fraction of the platform's devices homed on this HMNO
    (Fig. 2: ES 52.3%, MX 42.2%, AR 4.7%, DE ≈0.8%).
    ``roaming_fraction`` — fraction of the fleet operating outside the
    home country (ES 82%; MX/AR ≈ home-bound; DE ≈ all roaming).
    ``visited_country_zipf`` — Zipf exponent concentrating roamers on a
    few countries (ES: 75% of signaling from 5 countries, yet active in
    76).
    ``multi_country_fraction`` — devices that tour several countries
    (DE's connected cars).
    ``vertical_mix`` — ground-truth verticals of the fleet.
    """

    share: float = 1.0
    roaming_fraction: float = 0.0
    visited_country_zipf: float = 1.6
    multi_country_fraction: float = 0.05
    vertical_mix: Mapping[IoTVertical, float] = field(
        default_factory=lambda: {IoTVertical.OTHER: 1.0}
    )

    def __post_init__(self) -> None:
        if not 0.0 <= self.share <= 1.0:
            raise ValueError("share must be in [0, 1]")
        if not 0.0 <= self.roaming_fraction <= 1.0:
            raise ValueError("roaming_fraction must be in [0, 1]")
        total = sum(self.vertical_mix.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"vertical mix sums to {total}, expected 1.0")


def _default_fleets() -> Dict[str, HMNOFleetConfig]:
    return {
        "ES": HMNOFleetConfig(
            share=0.523,
            roaming_fraction=0.82,
            visited_country_zipf=1.6,
            multi_country_fraction=0.05,
            vertical_mix={
                IoTVertical.SMART_METER: 0.40,
                IoTVertical.PAYMENT: 0.18,
                IoTVertical.LOGISTICS: 0.15,
                IoTVertical.CONNECTED_CAR: 0.12,
                IoTVertical.WEARABLE: 0.08,
                IoTVertical.OTHER: 0.07,
            },
        ),
        "MX": HMNOFleetConfig(
            share=0.422,
            roaming_fraction=0.10,  # 90% operate at home (§3.2)
            visited_country_zipf=2.0,
            vertical_mix={
                IoTVertical.SMART_METER: 0.5,
                IoTVertical.PAYMENT: 0.3,
                IoTVertical.OTHER: 0.2,
            },
        ),
        "AR": HMNOFleetConfig(
            share=0.047,
            roaming_fraction=0.05,  # almost all native (§3.2)
            visited_country_zipf=2.0,
            vertical_mix={
                IoTVertical.SMART_METER: 0.5,
                IoTVertical.LOGISTICS: 0.3,
                IoTVertical.OTHER: 0.2,
            },
        ),
        "DE": HMNOFleetConfig(
            share=0.008,
            roaming_fraction=0.95,
            visited_country_zipf=0.8,  # spread wide: 18 VMNOs for ~1k devices
            multi_country_fraction=0.6,
            vertical_mix={IoTVertical.CONNECTED_CAR: 1.0},
        ),
    }


@dataclass
class PlatformConfig:
    """Top-level knobs for one simulated platform dataset."""

    n_devices: int = 2000
    window_days: int = 11
    seed: int = 42
    fleets: Dict[str, HMNOFleetConfig] = field(default_factory=_default_fleets)

    # Per-device signaling volume over the whole window: lognormal with
    # distinct medians for roaming and native devices ("roaming devices
    # generate 10x more procedures than native in median", §3.2/3.3)
    # plus a rare "flooder" multiplier for the 130k-message tail.
    native_median_txns: float = 12.0
    roaming_median_txns: float = 120.0
    txn_sigma: float = 1.5
    flooder_prob: float = 0.01
    flooder_multiplier: float = 30.0

    # 40% of devices only ever fail against 4G (§3.3).
    failed_only_fraction: float = 0.40
    # Occasional failures on otherwise-healthy devices.
    sporadic_failure_prob: float = 0.02

    # Steering-policy mixture for roaming devices, calibrated to the
    # VMNO-count distribution of Fig. 3-center (65% use one VMNO, >25%
    # two, ~5% three or more).
    steering_mix: Tuple[float, float, float] = (0.60, 0.34, 0.06)  # sticky/failure/random

    def __post_init__(self) -> None:
        if self.n_devices <= 0:
            raise ValueError("n_devices must be positive")
        if self.window_days <= 0:
            raise ValueError("window_days must be positive")
        share_total = sum(f.share for f in self.fleets.values())
        if abs(share_total - 1.0) > 1e-3:
            raise ValueError(f"fleet shares sum to {share_total}, expected 1.0")
        if abs(sum(self.steering_mix) - 1.0) > 1e-6:
            raise ValueError("steering mix must sum to 1.0")
