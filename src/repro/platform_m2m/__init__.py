"""The global M2M platform simulator (paper §3).

Generates the 11-day signaling dataset of a global IoT-SIM platform:
fleets of IoT devices homed on four HMNOs (ES/DE/MX/AR), operating
natively or roaming world-wide through the IPX hub, producing
authentication / update-location / cancel-location transactions with
success and failure outcomes.

The generative model is calibrated to the marginals §3 reports —
per-HMNO device shares, roaming fractions, the heavy-tailed per-device
signaling load, the VMNO-count distribution and the inter-VMNO switch
distribution — so every Fig. 2/Fig. 3 analysis runs on realistic input.
"""

from repro.platform_m2m.config import HMNOFleetConfig, PlatformConfig
from repro.platform_m2m.simulator import M2MPlatformSimulator, simulate_m2m_dataset

__all__ = [
    "HMNOFleetConfig",
    "M2MPlatformSimulator",
    "PlatformConfig",
    "simulate_m2m_dataset",
]
