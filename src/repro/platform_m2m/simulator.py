"""Generative simulator for the M2M-platform signaling dataset (§3).

The simulator draws a fleet of IoT devices per HMNO, assigns each a
roaming footprint (home-bound or a set of visited countries), a steering
policy, and a heavy-tailed signaling budget, then rolls the 11-day window
forward emitting :class:`SignalingTransaction` records.

Failure modelling follows the paper's two mechanisms:

* **4G-failed devices** (40% of the population) never complete a
  procedure in this dataset — their SIM/agreement state cannot attach on
  LTE, so they churn through candidate VMNOs accumulating
  RoamingNotAllowed / FeatureUnsupported / UnknownSubscription outcomes
  (the paper sees such devices attempt up to 19 VMNOs);
* healthy devices fail sporadically, which is also what triggers
  failure-driven steering switches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cellular.identifiers import IMSI, hash_device_id
from repro.cellular.operators import Operator
from repro.cellular.rats import RAT
from repro.datasets.containers import GroundTruthEntry, M2MDataset
from repro.devices.device import DeviceClass, IoTVertical, SimProvenance
from repro.ecosystem import Ecosystem
from repro.faults.plan import FaultPlan, OutageWindow
from repro.faults.retry import RetryPolicy, backoff_schedule
from repro.platform_m2m.config import HMNOFleetConfig, PlatformConfig
from repro.roaming.steering import (
    FailureDrivenSteering,
    RandomSteering,
    SteeringPolicy,
    SteeringState,
    StickySteering,
)
from repro.signaling.procedures import MessageType, ResultCode, SignalingTransaction

#: Failure-code mix for 4G-failed devices.
_FAILURE_MIX: Tuple[Tuple[ResultCode, float], ...] = (
    (ResultCode.ROAMING_NOT_ALLOWED, 0.45),
    (ResultCode.FEATURE_UNSUPPORTED, 0.35),
    (ResultCode.UNKNOWN_SUBSCRIPTION, 0.20),
)

#: Preferred visited countries for the Spanish fleet (the "5 visited
#: countries / 10 VMNOs carrying 75% of signaling" concentration).
_ES_TOP_COUNTRIES = ("GB", "FR", "DE", "IT", "PT")
_MX_COUNTRIES = ("US", "CO", "PE", "CL", "BR", "AR", "UY")
_AR_COUNTRIES = ("CL", "UY", "BR", "PE", "CO", "MX")


@dataclass
class _DevicePlan:
    """Everything sampled up-front for one device."""

    device_id: str
    hmno: Operator
    vertical: IoTVertical
    roaming: bool
    failed_only: bool
    countries: List[str]
    policy: Optional[SteeringPolicy]
    txn_count: int


def _weighted_choice(
    rng: np.random.Generator, options: Sequence[Tuple[object, float]]
) -> object:
    values = [o for o, _ in options]
    weights = np.array([w for _, w in options], dtype=float)
    index = int(rng.choice(len(values), p=weights / weights.sum()))
    return values[index]


class M2MPlatformSimulator:
    """Builds :class:`M2MDataset` instances from a :class:`PlatformConfig`.

    An optional :class:`FaultPlan` injects HLR/VMNO outages *at
    generation time*: procedures that would have succeeded inside an
    outage window fail with the window's code, and every failure during
    an outage triggers a seeded exponential-backoff reattach storm
    (``retry_policy``) — the §3/§7 mechanism by which failing fleets
    dominate the signaling-load tail.  Without a plan, output is
    bit-identical to the pre-fault-aware simulator.
    """

    def __init__(
        self,
        ecosystem: Ecosystem,
        config: Optional[PlatformConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        self.ecosystem = ecosystem
        self.config = config or PlatformConfig()
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy or RetryPolicy()
        self._rng = np.random.default_rng(self.config.seed)
        self._msin_counter = 1

    # -- country footprints ------------------------------------------------

    def _visited_country_universe(self, hmno_iso: str) -> List[str]:
        if hmno_iso == "MX":
            return list(_MX_COUNTRIES)
        if hmno_iso == "AR":
            return list(_AR_COUNTRIES)
        if hmno_iso == "DE":
            return [
                c.iso
                for c in self.ecosystem.countries
                if c.eu_roaming and c.iso != "DE"
            ]
        # ES: the preferred top-5, then the rest of the world.
        rest = sorted(
            c.iso
            for c in self.ecosystem.countries
            if c.iso not in _ES_TOP_COUNTRIES and c.iso != hmno_iso
        )
        return list(_ES_TOP_COUNTRIES) + rest

    def _sample_countries(
        self, fleet: HMNOFleetConfig, universe: List[str], rng: np.random.Generator
    ) -> List[str]:
        ranks = np.arange(1, len(universe) + 1, dtype=float)
        weights = ranks ** (-fleet.visited_country_zipf)
        weights /= weights.sum()
        if rng.random() < fleet.multi_country_fraction:
            count = min(len(universe), 2 + int(rng.integers(3)))
        else:
            count = 1
        picks = rng.choice(len(universe), size=count, replace=False, p=weights)
        return [universe[int(i)] for i in picks]

    # -- device planning --------------------------------------------------------

    def _sample_policy(self, rng: np.random.Generator) -> SteeringPolicy:
        sticky, failure, _random = self.config.steering_mix
        roll = rng.random()
        if roll < sticky:
            return StickySteering(failure_threshold=3)
        if roll < sticky + failure:
            return FailureDrivenSteering()
        return RandomSteering(stickiness=0.5)

    def _sample_txn_count(self, roaming: bool, rng: np.random.Generator) -> int:
        median = (
            self.config.roaming_median_txns
            if roaming
            else self.config.native_median_txns
        )
        count = float(np.exp(rng.normal(np.log(median), self.config.txn_sigma)))
        if rng.random() < self.config.flooder_prob:
            count *= self.config.flooder_multiplier
        return max(1, int(count))

    def _plan_device(self, hmno_iso: str, fleet: HMNOFleetConfig) -> _DevicePlan:
        rng = self._rng
        hmno = self.ecosystem.platform_hmnos[hmno_iso]
        imsi = IMSI(plmn=hmno.plmn, msin=self._msin_counter)
        self._msin_counter += 1
        vertical = _weighted_choice(rng, tuple(fleet.vertical_mix.items()))
        roaming = bool(rng.random() < fleet.roaming_fraction)
        failed_only = bool(rng.random() < self.config.failed_only_fraction)
        if roaming:
            universe = self._visited_country_universe(hmno_iso)
            countries = self._sample_countries(fleet, universe, rng)
            # A small share of the 4G-failed devices hunt for coverage much
            # more widely (these are the devices the paper sees attempt
            # up to 19 VMNOs); the rest keep retrying where they are.
            if failed_only:
                if rng.random() < 0.08:
                    extra = [iso for iso in universe if iso not in countries]
                    rng.shuffle(extra)
                    countries = countries + extra[: int(rng.integers(2, 8))]
                    policy: Optional[SteeringPolicy] = RandomSteering(stickiness=0.3)
                else:
                    # Most failed devices camp on the strongest network
                    # and retry there; steering never moves them.
                    policy = StickySteering(failure_threshold=10**9)
            else:
                policy = self._sample_policy(rng)
        else:
            countries = [hmno.country.iso]
            policy = None
        return _DevicePlan(
            device_id=hash_device_id(str(imsi)),
            hmno=hmno,
            vertical=vertical,
            roaming=roaming,
            failed_only=failed_only,
            countries=countries,
            policy=policy,
            txn_count=self._sample_txn_count(roaming, rng),
        )

    # -- transaction generation ----------------------------------------------

    def _candidates_in(self, plan: _DevicePlan, country_iso: str) -> List[Operator]:
        """All MNOs the device may *attempt* in a country.

        Healthy devices attempt only agreement-covered LTE networks;
        4G-failed devices attempt every MNO (that is exactly why they
        fail everywhere).
        """
        if plan.failed_only:
            return self.ecosystem.operators.mnos_in_country(country_iso)
        candidates = self.ecosystem.candidate_vmnos(plan.hmno, country_iso, RAT.LTE)
        if candidates:
            return candidates
        # No LTE agreement anywhere in the country: fall back to
        # attempting every network (and failing, below).
        return self.ecosystem.operators.mnos_in_country(country_iso)

    def _emit_device(self, plan: _DevicePlan) -> List[SignalingTransaction]:
        """Roll one device's attach opportunities through the HLR protocol.

        Each opportunity produces an Authentication + Update Location
        pair at the steered VMNO; when a successful Update Location
        moves the HLR registration to a new VMNO, a Cancel Location is
        emitted toward the previous one (see
        :mod:`repro.signaling.hlr`).  The per-device signaling budget
        therefore converts to opportunities at ~2.7 records each
        (auth + update + the occasional cancel, plus tail inflation from
        the lognormal rounding).
        """
        rng = self._rng
        n = max(1, int(round(plan.txn_count / 2.7)))
        window_s = self.config.window_days * 86400.0
        # Spread opportunities at least 10 ms apart so a procedure
        # triple (auth, update, cancel) never interleaves with the next
        # opportunity of the same device.
        # Shrink the draw range so the spacing offsets cannot push a
        # flooder's last opportunities past the window end.
        draw_span = max(1.0, window_s - n * 0.01 - 1.0)
        timestamps = np.sort(rng.random(n) * draw_span) + np.arange(n) * 0.01

        # Bulk draws (one RNG call each) — the per-opportunity loop below
        # only does steering and record construction.
        failure_values = [r for r, _ in _FAILURE_MIX]
        failure_cum = np.cumsum([w for _, w in _FAILURE_MIX])
        failure_picks = np.searchsorted(failure_cum, rng.random(n))
        sporadic_fail = rng.random(n) < self.config.sporadic_failure_prob

        # Devices touring several countries move through them in order,
        # splitting the window into per-country spans.
        spans = np.linspace(0.0, window_s, len(plan.countries) + 1)
        country_indices = np.clip(
            np.searchsorted(spans, timestamps, "right") - 1, 0, len(plan.countries) - 1
        )
        candidates_by_country = {
            iso: self._candidates_in(plan, iso) for iso in set(plan.countries)
        }
        lte_ok = {
            vmno.plmn: self.ecosystem.agreements.allows(
                plan.hmno.plmn, vmno.plmn, RAT.LTE
            )
            for candidates in candidates_by_country.values()
            for vmno in candidates
        }

        transactions: List[SignalingTransaction] = []
        sim_plmn = str(plan.hmno.plmn)
        state = SteeringState()
        registered_at: Optional[str] = None

        def emit_pair(at: float, visited: str, result: ResultCode) -> None:
            transactions.append(
                SignalingTransaction(
                    device_id=plan.device_id,
                    timestamp=at,
                    sim_plmn=sim_plmn,
                    visited_plmn=visited,
                    message_type=MessageType.AUTHENTICATION,
                    result=result,
                )
            )
            transactions.append(
                SignalingTransaction(
                    device_id=plan.device_id,
                    timestamp=at + 0.001,
                    sim_plmn=sim_plmn,
                    visited_plmn=visited,
                    message_type=MessageType.UPDATE_LOCATION,
                    result=result,
                )
            )

        def register(at: float, visited: str) -> None:
            nonlocal registered_at
            if registered_at is not None and registered_at != visited:
                # The HLR cancels the stale registration at the old
                # VMNO once the new Update Location is accepted.
                transactions.append(
                    SignalingTransaction(
                        device_id=plan.device_id,
                        timestamp=at + 0.002,
                        sim_plmn=sim_plmn,
                        visited_plmn=registered_at,
                        message_type=MessageType.CANCEL_LOCATION,
                        result=ResultCode.OK,
                    )
                )
            registered_at = visited

        for i in range(n):
            if plan.roaming:
                country = plan.countries[int(country_indices[i])]
                assert plan.policy is not None
                vmno = plan.policy.select(candidates_by_country[country], state, rng)
            else:
                vmno = plan.hmno
            ts = float(timestamps[i])
            visited = str(vmno.plmn)
            if plan.failed_only:
                result = failure_values[int(failure_picks[i])]
            elif plan.roaming and not lte_ok.get(vmno.plmn, True):
                result = (
                    ResultCode.FEATURE_UNSUPPORTED
                    if not vmno.supports(RAT.LTE)
                    else ResultCode.ROAMING_NOT_ALLOWED
                )
            elif sporadic_fail[i]:
                result = ResultCode.SYSTEM_FAILURE
            else:
                result = ResultCode.OK
            outage: Optional[OutageWindow] = (
                self.fault_plan.outage_at(ts, visited) if self.fault_plan else None
            )
            if outage is not None and result.is_success:
                result = outage.result
            state.record_outcome(result.is_success)
            emit_pair(ts, visited, result)
            if result.is_success:
                register(ts, visited)
            elif outage is not None:
                self._emit_storm(
                    plan, outage, ts, visited, result, window_s,
                    state, emit_pair, register,
                )
        return transactions

    def _emit_storm(
        self,
        plan: _DevicePlan,
        outage: OutageWindow,
        ts: float,
        visited: str,
        result: ResultCode,
        window_s: float,
        state: SteeringState,
        emit_pair: Callable[[float, str, ResultCode], None],
        register: Callable[[float, str], None],
    ) -> None:
        """Reattach storm after an in-outage failure.

        The device retries the same VMNO on the exponential-backoff
        schedule: attempts still inside the outage repeat the failure,
        and the first attempt after the window ends re-attaches a
        healthy device (4G-failed devices keep failing with their own
        code — the outage merely densifies their retry pattern).  The
        schedule is drawn from the simulator RNG, so a given
        (config, fault_plan) pair is fully deterministic.
        """
        for retry_ts in backoff_schedule(
            self.retry_policy, self._rng, start_s=ts, horizon_s=window_s - 0.01
        ):
            if outage.affects(retry_ts, visited):
                state.record_outcome(False)
                emit_pair(retry_ts, visited, result)
            else:
                if plan.failed_only:
                    break
                state.record_outcome(True)
                emit_pair(retry_ts, visited, ResultCode.OK)
                register(retry_ts, visited)
                break

    # -- public API ----------------------------------------------------------------

    def simulate(self) -> M2MDataset:
        """Generate the full dataset (deterministic for a given config)."""
        # Sorted iteration makes the output independent of fleet-dict
        # insertion order (configs loaded from JSON may reorder keys).
        fleet_isos = sorted(self.config.fleets)
        shares = np.array([self.config.fleets[iso].share for iso in fleet_isos])
        counts = np.floor(shares * self.config.n_devices).astype(int)
        # Distribute the rounding remainder to the largest fleets.
        remainder = self.config.n_devices - int(counts.sum())
        for index in np.argsort(-shares)[:remainder]:
            counts[index] += 1

        transactions: List[SignalingTransaction] = []
        ground_truth: Dict[str, GroundTruthEntry] = {}
        for iso, count in zip(fleet_isos, counts):
            fleet = self.config.fleets[iso]
            for _ in range(int(count)):
                plan = self._plan_device(iso, fleet)
                transactions.extend(self._emit_device(plan))
                ground_truth[plan.device_id] = GroundTruthEntry(
                    device_id=plan.device_id,
                    device_class=DeviceClass.M2M,
                    provenance=SimProvenance.INTERNATIONAL,
                    vertical=plan.vertical,
                    profile="platform_roaming" if plan.roaming else "platform_native",
                    home_country_iso=iso,
                )
        transactions.sort(key=lambda t: t.timestamp)
        return M2MDataset(
            transactions=transactions,
            window_days=self.config.window_days,
            hmno_isos=fleet_isos,
            ground_truth=ground_truth,
        )


def simulate_m2m_dataset(
    ecosystem: Ecosystem,
    config: Optional[PlatformConfig] = None,
    fault_plan: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> M2MDataset:
    """Convenience wrapper: one call from ecosystem to dataset."""
    return M2MPlatformSimulator(
        ecosystem, config, fault_plan=fault_plan, retry_policy=retry_policy
    ).simulate()
