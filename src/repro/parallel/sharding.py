"""Deterministic shard-by-device assignment for the pipeline fan-out.

Sharding must be a pure function of the device ID — never of Python's
salted ``hash()``, worker count, or arrival order — so that a dataset
shards identically in every process and on every run.  ``shard_of``
hashes the device ID with CRC-32 (stable across platforms and
interpreter invocations) and reduces modulo the shard count.

Because all of a device's records land in one shard, per-shard
accumulators never see partial devices: each shard's catalog rows,
summaries and classifications are exactly the whole-population results
restricted to the shard's devices, which is what makes the
order-independent merge in :mod:`repro.parallel.executor` byte-identical
to a serial run.
"""

from __future__ import annotations

import zlib
from typing import Callable, Iterable, List, Optional, Tuple, TypeVar

from repro.columnar.store import ColumnarRadioEvents, ColumnarServiceRecords
from repro.signaling.cdr import ServiceRecord
from repro.signaling.events import RadioEvent

T = TypeVar("T")


def shard_of(device_id: str, n_shards: int) -> int:
    """Deterministic shard index in ``[0, n_shards)`` for a device ID.

    CRC-32 of the UTF-8 bytes, modulo ``n_shards`` — stable across
    processes, platforms and ``PYTHONHASHSEED`` values, and independent
    of how many workers will consume the shards.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    return zlib.crc32(device_id.encode("utf-8")) % n_shards


def shard_items(
    items: Iterable[T],
    n_shards: int,
    device_id_of: Optional[Callable[[T], str]] = None,
) -> List[List[T]]:
    """Partition ``items`` into ``n_shards`` lists by hashed device ID.

    ``device_id_of`` extracts the device ID from an item (defaults to
    the ``device_id`` attribute).  Relative order of items within a
    shard is the input order, so per-shard processing sees the same
    record sequence a serial pass would for those devices.
    """
    key = device_id_of if device_id_of is not None else _device_id_attr
    shards: List[List[T]] = [[] for _ in range(n_shards)]
    for item in items:
        shards[shard_of(key(item), n_shards)].append(item)
    return shards


def _device_id_attr(item: T) -> str:
    """Default device-ID extractor: the item's ``device_id`` attribute."""
    return item.device_id  # type: ignore[attr-defined]


def shard_mno_records(
    radio_events: Iterable[RadioEvent],
    service_records: Iterable[ServiceRecord],
    n_shards: int,
) -> List[Tuple[List[RadioEvent], List[ServiceRecord]]]:
    """Shard both MNO record streams by device in one pass each.

    Returns one ``(radio_events, service_records)`` pair per shard; both
    streams of a device always land in the same shard.
    """
    radio_shards = shard_items(radio_events, n_shards)
    service_shards = shard_items(service_records, n_shards)
    return list(zip(radio_shards, service_shards))


def shard_columnar_records(
    radio_events: ColumnarRadioEvents,
    service_records: ColumnarServiceRecords,
    n_shards: int,
) -> List[Tuple[ColumnarRadioEvents, ColumnarServiceRecords]]:
    """Shard columnar stores by device, exchanging column blocks.

    The shard function is the same CRC-32-of-device-ID as
    :func:`shard_items` — a device lands in the same shard whichever
    plane is in use — but it is evaluated once per *pool entry* (the
    device vocabulary) rather than once per row, and each shard is a
    ``select`` sharing the parent pools, so what crosses the process
    boundary is interned column blocks, never row lists.
    """
    if radio_events.pools is not service_records.pools:
        raise ValueError("columnar streams must share one ColumnPools")
    shard_by_pool_id = [
        shard_of(device_id, n_shards)
        for device_id in radio_events.pools.devices.strings
    ]
    radio_indices: List[List[int]] = [[] for _ in range(n_shards)]
    for i, dev in enumerate(radio_events.device_ids):
        radio_indices[shard_by_pool_id[dev]].append(i)
    service_indices: List[List[int]] = [[] for _ in range(n_shards)]
    for i, dev in enumerate(service_records.device_ids):
        service_indices[shard_by_pool_id[dev]].append(i)
    return [
        (radio_events.select(radio_idx), service_records.select(service_idx))
        for radio_idx, service_idx in zip(radio_indices, service_indices)
    ]
