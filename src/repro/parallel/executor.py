"""Sharded execution of the pipeline's hot stages, with exact merge.

The fan-out is shard-by-device (:mod:`repro.parallel.sharding`): every
record of a device lands in one shard, so per-shard accumulators never
see partial devices.  Three properties make the merged output
**byte-identical** to a serial :func:`repro.pipeline.run_pipeline` at
any worker count:

1. *Per-device purity of the catalog.*  ``CatalogBuilder`` aggregates
   strictly within a device, so a shard's day records and summaries are
   the serial results restricted to the shard's devices.
2. *Union-mergeable classifier evidence.*  Step 1 of the classifier is
   a pure per-APN function, so step-1 evidence (validated APNs, M2M
   property keys) collected per shard unions into the global evidence;
   re-running classification per shard with the global key set then
   reproduces the serial per-device decisions, including cross-shard
   property propagation.
3. *Order-normalizing merge.*  Day records are re-sorted by
   ``(device_id, day)``, summaries by device ID, and classifications are
   re-inserted in the serial pass's step order (step-1 devices first,
   then step-2, then the rest, each in summary order) — so even
   container iteration order matches the serial run.

Lenient mode shards the catalog/summary stage (the expensive part) and
merges the per-shard :class:`~repro.pipeline.DegradationReport` partials
with :meth:`~repro.pipeline.DegradationReport.merge`; the classification
stage then runs over the merged summaries in the parent so the batch
poisoning/fallback semantics stay exactly the serial ones.

Columnar runs that actually fan out exchange shards through
:mod:`repro.parallel.transport`: shards are parked as shared-memory
column segments (or self-contained RPCK blocks on the fallback
transport), workers attach via tiny descriptors, and results come back
as packed column/summary blocks — no per-row pickling in either
direction.  The in-process paths (``n_workers == 1`` or a single shard)
skip the exchange entirely, and the row plane keeps its original
row-list payloads as the designated fallback seam.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.columnar.store import (
    ColumnarRadioEvents,
    ColumnarServiceRecords,
    from_record_streams,
)
from repro.core.catalog import CatalogBuilder, DeviceDayRecord, DeviceSummary
from repro.core.classifier import Classification, ClassificationStep, DeviceClassifier
from repro.datasets.containers import MNODataset
from repro.faults.retry import RetryPolicy
from repro.parallel.health import RunHealth
from repro.parallel.pool import DEFAULT_SHARD_DEADLINE_S, get_context, map_shards
from repro.parallel.sharding import shard_columnar_records, shard_mno_records
from repro.parallel.transport import (
    ShardDescriptor,
    attach_shard,
    pack_build_result,
    pack_classifications,
    pack_classify_payload,
    pack_lenient_result,
    publish_shards,
    unpack_build_result,
    unpack_classifications,
    unpack_classify_payload,
    unpack_lenient_result,
)
from repro.pipeline import (
    DegradationReport,
    _lenient_catalog_stage,
    _lenient_classify_stage,
    _records_by_device_columnar,
)
from repro.signaling.cdr import ServiceRecord
from repro.signaling.events import RadioEvent

#: A shard payload: (radio events, service records) for one device subset.
ShardPayload = Tuple[List[RadioEvent], List[ServiceRecord]]

#: Columnar shard payload: the same device subset as interned columns.
ColumnarPayload = Tuple[ColumnarRadioEvents, ColumnarServiceRecords]


# -- worker tasks (module-level so they pickle by name) ----------------------

def _build_shard(
    payload: ShardPayload,
) -> Tuple[List[DeviceDayRecord], Dict[str, DeviceSummary], Set[Tuple[str, str]]]:
    """Strict-mode worker: catalog + summaries + step-1 evidence."""
    builder, classifier = get_context()
    events, services = payload
    records, summaries = builder.build(events, services)
    _, m2m_keys = classifier.collect_m2m_evidence(summaries)
    return records, summaries, m2m_keys


def _classify_shard(
    payload: Tuple[Dict[str, DeviceSummary], Set[Tuple[str, str]]],
) -> Dict[str, Classification]:
    """Strict-mode worker: classify one shard against global evidence."""
    _, classifier = get_context()
    summaries, global_keys = payload
    return classifier.classify(summaries, extra_m2m_property_keys=global_keys)


def _lenient_shard(
    payload: ShardPayload,
) -> Tuple[List[DeviceDayRecord], Dict[str, DeviceSummary], DegradationReport]:
    """Lenient-mode worker: quarantining catalog stage over one shard."""
    builder, _ = get_context()
    events, services = payload
    by_dev_events: Dict[str, List[RadioEvent]] = {}
    by_dev_services: Dict[str, List[ServiceRecord]] = {}
    tac_of: Dict[str, int] = {}
    for event in events:
        by_dev_events.setdefault(event.device_id, []).append(event)
        tac_of.setdefault(event.device_id, event.tac)
    for record in services:
        by_dev_services.setdefault(record.device_id, []).append(record)
    device_ids = sorted(set(by_dev_events) | set(by_dev_services))
    return _lenient_catalog_stage(
        device_ids, by_dev_events, by_dev_services, tac_of, builder
    )


def _build_shard_columnar(
    payload: ColumnarPayload,
) -> Tuple[List[DeviceDayRecord], Dict[str, DeviceSummary], Set[Tuple[str, str]]]:
    """Strict-mode worker over one shard's interned column block."""
    builder, classifier = get_context()
    events, services = payload
    records, summaries = builder.build_from_columns(events, services)
    _, m2m_keys = classifier.collect_m2m_evidence(summaries)
    return records, summaries, m2m_keys


def _lenient_shard_columnar(
    payload: ColumnarPayload,
) -> Tuple[List[DeviceDayRecord], Dict[str, DeviceSummary], DegradationReport]:
    """Lenient-mode worker over one shard's interned column block."""
    builder, _ = get_context()
    events, services = payload
    by_dev_events, by_dev_services, tac_of = _records_by_device_columnar(events, services)
    device_ids = sorted(set(by_dev_events) | set(by_dev_services))
    return _lenient_catalog_stage(
        device_ids, by_dev_events, by_dev_services, tac_of, builder
    )


# -- zero-copy exchange workers (descriptor in, packed block out) ------------

def _build_shard_block(descriptor: ShardDescriptor) -> bytes:
    """Strict-mode worker: attach a shard, build, return a packed block."""
    builder, classifier = get_context()
    events, services = attach_shard(descriptor)
    records, summaries = builder.build_from_columns(events, services)
    _, m2m_keys = classifier.collect_m2m_evidence(summaries)
    return pack_build_result(records, summaries, m2m_keys)


def _classify_shard_block(payload: bytes) -> bytes:
    """Strict-mode worker: classify one packed summary block."""
    _, classifier = get_context()
    summaries, global_keys = unpack_classify_payload(payload)
    return pack_classifications(
        classifier.classify(summaries, extra_m2m_property_keys=global_keys)
    )


def _lenient_shard_block(descriptor: ShardDescriptor) -> bytes:
    """Lenient-mode worker: attach, quarantine-build, pack the result."""
    builder, _ = get_context()
    events, services = attach_shard(descriptor)
    by_dev_events, by_dev_services, tac_of = _records_by_device_columnar(events, services)
    device_ids = sorted(set(by_dev_events) | set(by_dev_services))
    records, summaries, report = _lenient_catalog_stage(
        device_ids, by_dev_events, by_dev_services, tac_of, builder
    )
    return pack_lenient_result(records, summaries, report)


# -- merge helpers -----------------------------------------------------------

def _merge_summaries(
    parts: List[Dict[str, DeviceSummary]],
) -> Dict[str, DeviceSummary]:
    """Union the per-shard summary dicts in serial (device-ID) order."""
    merged: Dict[str, DeviceSummary] = {}
    for part in parts:
        merged.update(part)
    return {device_id: merged[device_id] for device_id in sorted(merged)}


def _serial_order_classifications(
    parts: List[Dict[str, Classification]],
    summaries: Dict[str, DeviceSummary],
) -> Dict[str, Classification]:
    """Rebuild the serial run's classification insertion order.

    The serial pass inserts step-1 devices first, then step-2, then
    steps 3–4, each in summary order; reproducing that order makes the
    merged dict indistinguishable from the serial one even under
    ``list(...)``/iteration comparisons.
    """
    merged: Dict[str, Classification] = {}
    for part in parts:
        merged.update(part)
    ordered: Dict[str, Classification] = {}
    for step in (ClassificationStep.APN_KEYWORD, ClassificationStep.PROPERTY_PROPAGATION):
        for device_id in summaries:
            cls = merged.get(device_id)
            if cls is not None and cls.step is step:
                ordered[device_id] = cls
    for device_id in summaries:
        if device_id not in ordered and device_id in merged:
            ordered[device_id] = merged[device_id]
    return ordered


# -- entry point -------------------------------------------------------------

def run_stages_sharded(
    dataset: MNODataset,
    builder: CatalogBuilder,
    classifier: DeviceClassifier,
    n_workers: int,
    lenient: bool = False,
    n_shards: Optional[int] = None,
    columnar: bool = False,
    shard_deadline_s: Optional[float] = DEFAULT_SHARD_DEADLINE_S,
    retry_policy: Optional[RetryPolicy] = None,
    health: Optional[RunHealth] = None,
    transport: Optional[str] = None,
) -> Tuple[
    List[DeviceDayRecord],
    Dict[str, DeviceSummary],
    Dict[str, Classification],
    Optional[DegradationReport],
]:
    """Run catalog → summaries → classification sharded by device.

    Returns the same ``(day_records, summaries, classifications,
    degradation)`` tuple the serial pipeline builds, byte-identical to
    it.  ``n_shards`` defaults to ``n_workers``; any value produces the
    same output because the merge normalizes order completely.

    ``columnar=True`` dictionary-encodes the dataset once in the parent
    and ships each worker an interned column block
    (:func:`~repro.parallel.sharding.shard_columnar_records`) instead of
    row lists; workers run the columnar catalog kernel.  Shard
    assignment, merge, and output are unchanged.  When the pool is
    actually used (``n_workers > 1`` with multiple shards), the blocks
    travel through the zero-copy exchange
    (:func:`~repro.parallel.transport.publish_shards`): workers receive
    small segment descriptors and return packed column/summary blocks.
    ``transport`` picks the exchange transport explicitly (``"shm"`` /
    ``"rpck"``); the default consults ``REPRO_TRANSPORT`` and the
    platform (:func:`~repro.parallel.transport.select_transport`).

    ``shard_deadline_s`` bounds the wait on every shard (a hung worker
    is a shard failure, not a stalled run) and ``health`` collects any
    recovery events the pool seam had to take; both default to the
    seam's recovery behavior with no report.  Recovery never changes
    output — a recovered shard re-executes the same pure function over
    the same payload.
    """
    if n_shards is None:
        n_shards = n_workers
    # Row and columnar payloads share shard assignment and merge; only
    # the payload encoding and the worker entry point differ, so the
    # two planes are erased to Any at the map_shards seam.
    shards: Sequence[Any]
    if columnar:
        events_c, records_c = from_record_streams(
            dataset.radio_events, dataset.service_records
        )
        shards = shard_columnar_records(events_c, records_c, n_shards)
    else:
        shards = shard_mno_records(
            dataset.radio_events, dataset.service_records, n_shards
        )
    context = (builder, classifier)
    # The exchange pays off only when the pool is actually used; the
    # map_shards seam runs in-process for one worker or a single shard,
    # where packing blocks would be pure overhead.
    exchange = None
    if columnar and n_workers > 1 and len(shards) > 1:
        exchange = publish_shards(shards, transport=transport)

    if lenient:
        if exchange is not None:
            try:
                blocks = map_shards(
                    _lenient_shard_block,
                    exchange.descriptors,
                    n_workers,
                    context=context,
                    deadline_s=shard_deadline_s,
                    retry_policy=retry_policy,
                    health=health,
                )
            finally:
                exchange.close()
            parts = [unpack_lenient_result(block) for block in blocks]
        else:
            lenient_worker: Callable[
                [Any],
                Tuple[List[DeviceDayRecord], Dict[str, DeviceSummary], DegradationReport],
            ] = (_lenient_shard_columnar if columnar else _lenient_shard)
            parts = map_shards(
                lenient_worker,
                shards,
                n_workers,
                context=context,
                deadline_s=shard_deadline_s,
                retry_policy=retry_policy,
                health=health,
            )
        day_records = [record for part, _, _ in parts for record in part]
        day_records.sort(key=lambda r: (r.device_id, r.day))
        summaries = _merge_summaries([part for _, part, _ in parts])
        report = DegradationReport()
        for _, _, partial in parts:
            report = report.merge(partial)
        # Batch classification with fallback runs in the parent so the
        # poisoned-batch semantics stay exactly serial (a poisoned shard
        # must degrade the whole batch, not just its shard).
        classifications = _lenient_classify_stage(summaries, classifier, report)
        report.n_devices_ok = len(classifications)
        return day_records, summaries, classifications, report

    if exchange is not None:
        try:
            built_blocks = map_shards(
                _build_shard_block,
                exchange.descriptors,
                n_workers,
                context=context,
                deadline_s=shard_deadline_s,
                retry_policy=retry_policy,
                health=health,
            )
        finally:
            exchange.close()
        built = [unpack_build_result(block) for block in built_blocks]
    else:
        build_worker: Callable[
            [Any],
            Tuple[List[DeviceDayRecord], Dict[str, DeviceSummary], Set[Tuple[str, str]]],
        ] = (_build_shard_columnar if columnar else _build_shard)
        built = map_shards(
            build_worker,
            shards,
            n_workers,
            context=context,
            deadline_s=shard_deadline_s,
            retry_policy=retry_policy,
            health=health,
        )
    day_records = [record for part, _, _ in built for record in part]
    day_records.sort(key=lambda r: (r.device_id, r.day))
    summaries = _merge_summaries([part for _, part, _ in built])
    global_keys: Set[Tuple[str, str]] = set()
    for _, _, keys in built:
        global_keys.update(keys)
    if exchange is not None:
        packed_payloads = [
            pack_classify_payload(part, global_keys) for _, part, _ in built if part
        ]
        classified_blocks = map_shards(
            _classify_shard_block,
            packed_payloads,
            n_workers,
            context=context,
            deadline_s=shard_deadline_s,
            retry_policy=retry_policy,
            health=health,
        )
        classified = [unpack_classifications(block) for block in classified_blocks]
    else:
        classify_payloads = [(part, global_keys) for _, part, _ in built if part]
        classified = map_shards(
            _classify_shard,
            classify_payloads,
            n_workers,
            context=context,
            deadline_s=shard_deadline_s,
            retry_policy=retry_policy,
            health=health,
        )
    classifications = _serial_order_classifications(classified, summaries)
    return day_records, summaries, classifications, None
