"""The one audited process-pool layer in the repository.

Everything that fans work out across processes goes through
:func:`map_shards`; lint rule ``PERF001`` bans ``multiprocessing`` /
``ProcessPoolExecutor`` use anywhere else in ``src/`` so parallelism
stays behind this single seam.

Worker functions receive their shard as the sole argument and read any
shared, read-only state through :func:`get_context` — the context object
is pickled **once per worker** (via the pool initializer) instead of
once per task, which matters because the shared state (TAC catalog,
sector catalog, operator registry) dwarfs a typical shard payload.

``n_workers <= 1`` never creates a pool: the shards run in-process, in
order, with the context installed around the calls — the degenerate case
costs nothing and behaves identically, which keeps ``workers=1`` an
exact fallback.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, TypeVar

S = TypeVar("S")
R = TypeVar("R")

#: Per-process shared context installed by the pool initializer (or, for
#: in-process runs, around the map_shards call).  Read via get_context().
_CONTEXT: Optional[Any] = None


def get_context() -> Any:
    """The shared read-only context installed for the current worker.

    Raises ``RuntimeError`` when called outside a :func:`map_shards`
    run — worker functions must not be invoked standalone.
    """
    if _CONTEXT is None:
        raise RuntimeError(
            "no worker context installed; call through map_shards(context=...)"
        )
    return _CONTEXT


def _install_context(context: Any) -> None:
    """Pool initializer: stash the shared context in this process."""
    global _CONTEXT
    _CONTEXT = context


def map_shards(
    fn: Callable[[S], R],
    shards: Sequence[S],
    n_workers: int,
    context: Any = None,
) -> List[R]:
    """Apply ``fn`` to every shard, in shard order, across ``n_workers``.

    ``fn`` must be a module-level (picklable) function.  Results are
    returned in shard order regardless of completion order, so callers
    can merge deterministically.  With ``n_workers <= 1`` the shards run
    serially in this process — no pool is created.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if n_workers == 1 or len(shards) <= 1:
        previous = _CONTEXT
        _install_context(context)
        try:
            return [fn(shard) for shard in shards]
        finally:
            _install_context(previous)
    with ProcessPoolExecutor(
        max_workers=min(n_workers, len(shards)),
        initializer=_install_context,
        initargs=(context,),
    ) as pool:
        return list(pool.map(fn, shards))
