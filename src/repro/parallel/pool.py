"""The one audited process-pool layer in the repository.

Everything that fans work out across processes goes through
:func:`map_shards`; lint rule ``PERF001`` bans ``multiprocessing`` /
``ProcessPoolExecutor`` use anywhere else in ``src/`` so parallelism
stays behind this single seam.

Worker functions receive their shard as the sole argument and read any
shared, read-only state through :func:`get_context` — the context object
is pickled **once per worker** (via the pool initializer) instead of
once per task, which matters because the shared state (TAC catalog,
sector catalog, operator registry) dwarfs a typical shard payload.

``n_workers <= 1`` never creates a pool: the shards run in-process, in
order, with the context installed around the calls — the degenerate case
costs nothing and behaves identically, which keeps ``workers=1`` an
exact fallback.

Worker-failure recovery
-----------------------

A multi-day run must survive a *bad process*, not just bad data.  The
seam therefore waits on each shard with a deadline (a hung worker
becomes a shard failure instead of stalling the run forever) and treats
``BrokenProcessPool`` — a worker SIGKILLed or OOMed mid-shard — as
recoverable: already-finished shards are harvested, the pool is rebuilt,
and **only the failed shard's work is re-submitted**, under the
sanctioned :class:`~repro.faults.retry.RetryPolicy`.  A run of
consecutive pool failures trips a circuit breaker that degrades the
remaining shards to in-process execution (correct, merely slower);
per-shard retry exhaustion does the same for that one shard so the real
error, if any, surfaces undisturbed.  Every recovery step is recorded in
the caller's :class:`~repro.parallel.health.RunHealth` — recovery is
never silent.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

from repro.faults.retry import RetryPolicy
from repro.parallel.health import (
    BREAKER_TRIP,
    BROKEN_POOL,
    DEADLINE,
    IN_PROCESS,
    RETRY,
    RunHealth,
    ShardIncident,
)

S = TypeVar("S")
R = TypeVar("R")

#: Default per-shard wait deadline (seconds) for pipeline stages; a
#: shard that produces nothing for this long is declared failed and
#: re-executed rather than stalling the run.
DEFAULT_SHARD_DEADLINE_S = 300.0

#: Consecutive pool failures (across shards) before the circuit breaker
#: opens and the remaining shards degrade to in-process execution.
DEFAULT_BREAKER_THRESHOLD = 3

#: Pool re-submission schedule.  ``jitter=0`` keeps recovery fully
#: deterministic (no RNG draw); the delays are *recorded*, never slept —
#: rebuilding a local pool needs no pacing, but the schedule must stay
#: auditable in the health report.
DEFAULT_POOL_RETRY = RetryPolicy(
    base_delay_s=1.0, multiplier=2.0, max_delay_s=60.0, jitter=0.0, max_attempts=3
)

#: Per-process shared context installed by the pool initializer (or, for
#: in-process runs, around the map_shards call).  Read via get_context().
_CONTEXT: Optional[Any] = None


def get_context() -> Any:
    """The shared read-only context installed for the current worker.

    Raises ``RuntimeError`` when called outside a :func:`map_shards`
    run — worker functions must not be invoked standalone.
    """
    if _CONTEXT is None:
        raise RuntimeError(
            "no worker context installed; call through map_shards(context=...)"
        )
    return _CONTEXT


def _install_context(context: Any) -> None:
    """Pool initializer: stash the shared context in this process."""
    global _CONTEXT
    _CONTEXT = context


def _note(health: Optional[RunHealth], incident: ShardIncident) -> None:
    if health is not None:
        health.record(incident)


def _run_in_process(
    fn: Callable[[S], R], shard: S, context: Any
) -> R:
    """Run one shard in the parent, context installed around the call."""
    previous = _CONTEXT
    _install_context(context)
    try:
        return fn(shard)
    finally:
        _install_context(previous)


def map_shards(
    fn: Callable[[S], R],
    shards: Sequence[S],
    n_workers: int,
    context: Any = None,
    deadline_s: Optional[float] = None,
    retry_policy: Optional[RetryPolicy] = None,
    health: Optional[RunHealth] = None,
    breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
) -> List[R]:
    """Apply ``fn`` to every shard, in shard order, across ``n_workers``.

    ``fn`` must be a module-level (picklable) function.  Results are
    returned in shard order regardless of completion order, so callers
    can merge deterministically.  With ``n_workers <= 1`` the shards run
    serially in this process — no pool is created.

    ``deadline_s`` bounds the wait on each shard; a shard that exceeds
    it (hung worker) counts as a shard failure.  Worker death
    (``BrokenProcessPool``) and deadline hits are recovered by rebuilding
    the pool and re-submitting **only the unfinished shards**, governed
    by ``retry_policy`` (default :data:`DEFAULT_POOL_RETRY`); after
    ``breaker_threshold`` consecutive pool failures, or when one shard
    exhausts its retry budget, execution degrades to in-process.  All
    recovery events are recorded on ``health`` when given.  Ordinary
    exceptions raised *by the task itself* propagate unchanged — they
    are the caller's bug, not a process failure.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if breaker_threshold < 1:
        raise ValueError(f"breaker_threshold must be >= 1, got {breaker_threshold}")
    if n_workers == 1 or len(shards) <= 1:
        previous = _CONTEXT
        _install_context(context)
        try:
            return [fn(shard) for shard in shards]
        finally:
            _install_context(previous)

    policy = retry_policy if retry_policy is not None else DEFAULT_POOL_RETRY
    # Only consulted when the policy jitters; the default is jitter-free
    # so recovery schedules are bit-reproducible.
    rng = np.random.default_rng(0)
    results: Dict[int, R] = {}
    pending: List[int] = list(range(len(shards)))
    attempts: Dict[int, int] = {index: 0 for index in pending}
    consecutive_failures = 0
    breaker_open = False

    while pending:
        if breaker_open:
            for index in pending:
                _note(
                    health,
                    ShardIncident(
                        index, IN_PROCESS, attempts[index], "circuit breaker open"
                    ),
                )
                results[index] = _run_in_process(fn, shards[index], context)
            pending = []
            break

        failed: Optional[Tuple[int, str, str]] = None
        pool = ProcessPoolExecutor(
            max_workers=min(n_workers, len(pending)),
            initializer=_install_context,
            initargs=(context,),
        )
        try:
            futures = {index: pool.submit(fn, shards[index]) for index in pending}
            for index in pending:
                try:
                    results[index] = futures[index].result(timeout=deadline_s)
                except FuturesTimeout:
                    failed = (index, DEADLINE, f"no result within {deadline_s}s")
                    break
                except BrokenProcessPool as exc:
                    failed = (index, BROKEN_POOL, f"{type(exc).__name__}: {exc}")
                    break
            if failed is not None:
                # Harvest shards that *did* finish cleanly before the
                # failure so their work is never repeated.
                for other in pending:
                    if other in results:
                        continue
                    future = futures[other]
                    if (
                        future.done()
                        and not future.cancelled()
                        and future.exception() is None
                    ):
                        results[other] = future.result()
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

        if failed is None:
            pending = []
            break

        index, kind, detail = failed
        attempt = attempts[index]
        attempts[index] = attempt + 1
        consecutive_failures += 1
        _note(health, ShardIncident(index, kind, attempt, detail))
        if consecutive_failures >= breaker_threshold:
            breaker_open = True
            _note(
                health,
                ShardIncident(
                    index,
                    BREAKER_TRIP,
                    attempt,
                    f"{consecutive_failures} consecutive pool failures",
                ),
            )
        elif attempts[index] >= policy.max_attempts:
            # This one shard is out of pool retries: run it in the
            # parent so a persistent task error surfaces undisturbed.
            _note(
                health,
                ShardIncident(index, IN_PROCESS, attempt, "retry budget exhausted"),
            )
            results[index] = _run_in_process(fn, shards[index], context)
            consecutive_failures = 0
        else:
            delay = policy.delay_s(attempt, rng)
            _note(
                health,
                ShardIncident(
                    index,
                    RETRY,
                    attempt,
                    "resubmitting unfinished shards to a fresh pool",
                    backoff_s=delay,
                ),
            )
        pending = [i for i in pending if i not in results]

    return [results[i] for i in range(len(shards))]
