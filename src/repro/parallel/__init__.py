"""Deterministic sharded execution of the pipeline's hot stages.

The subsystem has four layers:

- :mod:`repro.parallel.sharding` — pure shard-by-device assignment
  (CRC-32 of the device ID, stable across processes and runs);
- :mod:`repro.parallel.pool` — the repository's only process-pool seam
  (:func:`map_shards`), enforced by lint rule ``PERF001``, with
  per-shard deadlines, broken-pool recovery and a circuit breaker;
- :mod:`repro.parallel.health` — the typed :class:`RunHealth` report
  every recovery action is recorded in;
- :mod:`repro.parallel.executor` — the pipeline-specific fan-out and
  the order-normalizing merge that makes sharded output byte-identical
  to a serial :func:`repro.pipeline.run_pipeline` at any worker count;
- :mod:`repro.parallel.transport` — the zero-copy shard exchange:
  columnar shards park in shared-memory segments (or RPCK-framed bytes
  as the portable fallback) and workers attach column buffers via tiny
  descriptors instead of unpickling per-row dataclasses.

Callers normally reach this through ``run_pipeline(..., n_workers=N)``
or the CLI's ``--jobs``; the pieces are exported for tests and for the
streaming simulator's per-day sharded generation.
"""

from repro.parallel.executor import run_stages_sharded
from repro.parallel.health import RunHealth, ShardIncident
from repro.parallel.pool import (
    DEFAULT_BREAKER_THRESHOLD,
    DEFAULT_POOL_RETRY,
    DEFAULT_SHARD_DEADLINE_S,
    get_context,
    map_shards,
)
from repro.parallel.sharding import (
    shard_columnar_records,
    shard_items,
    shard_mno_records,
    shard_of,
)
from repro.parallel.transport import (
    TRANSPORT_RPCK,
    TRANSPORT_SHM,
    RpckShardDescriptor,
    ShardExchange,
    ShmShardDescriptor,
    attach_shard,
    cleanup_stale_segments,
    publish_shards,
    select_transport,
)

__all__ = [
    "DEFAULT_BREAKER_THRESHOLD",
    "DEFAULT_POOL_RETRY",
    "DEFAULT_SHARD_DEADLINE_S",
    "RpckShardDescriptor",
    "RunHealth",
    "ShardExchange",
    "ShardIncident",
    "ShmShardDescriptor",
    "TRANSPORT_RPCK",
    "TRANSPORT_SHM",
    "attach_shard",
    "cleanup_stale_segments",
    "get_context",
    "map_shards",
    "publish_shards",
    "run_stages_sharded",
    "select_transport",
    "shard_columnar_records",
    "shard_items",
    "shard_mno_records",
    "shard_of",
]
