"""Typed health reporting for the resilient pool seam.

A multi-day run at the paper's scale *will* lose workers — OOM kills,
node drains, hung shards.  :func:`repro.parallel.pool.map_shards`
recovers from those without failing the run, but recovery must never be
silent: every deadline hit, broken pool, retry, circuit-breaker trip and
in-process fallback is recorded here as a :class:`ShardIncident`, and
the aggregate :class:`RunHealth` rides on the pipeline result
(``PipelineResult.health``) so operators can tell a clean run from one
that limped home.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

#: A shard's wait exceeded its deadline (the hung-worker case).
DEADLINE = "deadline"
#: The pool itself died (worker SIGKILLed / OOMed mid-shard).
BROKEN_POOL = "broken-pool"
#: A failed shard was resubmitted to a fresh pool under the retry policy.
RETRY = "retry"
#: Consecutive pool failures crossed the breaker threshold.
BREAKER_TRIP = "breaker-trip"
#: A shard ran in the parent process instead of a pool.
IN_PROCESS = "in-process"
#: A checkpointed unit failed CRC/format validation and was re-executed.
TORN_CHECKPOINT = "torn-checkpoint"
#: The service ingest queue crossed its high watermark (shedding began).
QUEUE_SATURATION = "queue-saturation"
#: One ingest batch was rejected with a typed overload rejection.
OVERLOAD_SHED = "overload-shed"
#: A supervised background task crashed and was restarted.
TASK_RESTART = "task-restart"
#: A durable snapshot/sync cycle failed (detail carries the error); routine
#: successful snapshots are gauges on ``ServiceHealth``, not incidents.
SNAPSHOT = "snapshot"

INCIDENT_KINDS = (
    DEADLINE,
    BROKEN_POOL,
    RETRY,
    BREAKER_TRIP,
    IN_PROCESS,
    TORN_CHECKPOINT,
    QUEUE_SATURATION,
    OVERLOAD_SHED,
    TASK_RESTART,
    SNAPSHOT,
)

#: A storage operation failed (ENOSPC/EIO/fsync/rename); detail carries
#: the error, ``op`` the operation.  Transient faults that retried away
#: still leave one of these per failed attempt.
STORAGE_FAULT = "storage-fault"
#: Lenient degradation: a unit's persistence exhausted its retries and
#: the unit was dropped from the catalog fold (re-executed on resume).
UNIT_QUARANTINED = "unit-quarantined"
#: Free disk crossed the daemon's low watermark; ingest is being shed
#: until it recovers past the resume watermark (one incident/episode).
DISK_PRESSURE = "disk-pressure"
#: The scrubber classified damage in a store (detail carries the unit
#: and damage class).
SCRUB_DAMAGE = "scrub-damage"

STORAGE_INCIDENT_KINDS = (
    STORAGE_FAULT,
    UNIT_QUARANTINED,
    DISK_PRESSURE,
    SCRUB_DAMAGE,
)

#: Storage operations an incident can name.
STORAGE_OPS = ("write", "read", "fsync", "rename", "scrub")


@dataclass(frozen=True)
class ShardIncident:
    """One recovery-relevant event observed while running a shard.

    ``attempt`` is the 0-based pool attempt for that shard at the time
    of the incident; ``backoff_s`` is the (never-slept, policy-drawn)
    delay recorded for :data:`RETRY` incidents so the schedule stays
    auditable.
    """

    shard_index: int
    kind: str
    attempt: int = 0
    detail: str = ""
    backoff_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in INCIDENT_KINDS:
            raise ValueError(f"unknown incident kind {self.kind!r}")

    def __str__(self) -> str:
        suffix = f" ({self.detail})" if self.detail else ""
        return f"shard {self.shard_index}: {self.kind} attempt={self.attempt}{suffix}"


@dataclass(frozen=True)
class StorageIncident:
    """One storage-layer event: a fault, a quarantine, disk pressure.

    Parallel to :class:`ShardIncident` but keyed by the operation and
    path rather than a shard index — a storage fault on the journal or
    manifest has no shard.  ``attempt`` is the 0-based retry attempt at
    the time of the incident.
    """

    kind: str
    op: str
    path: str = ""
    detail: str = ""
    attempt: int = 0

    def __post_init__(self) -> None:
        if self.kind not in STORAGE_INCIDENT_KINDS:
            raise ValueError(f"unknown storage incident kind {self.kind!r}")
        if self.op not in STORAGE_OPS:
            raise ValueError(f"unknown storage op {self.op!r}")

    def __str__(self) -> str:
        suffix = f" ({self.detail})" if self.detail else ""
        return f"storage {self.op} [{self.path}]: {self.kind}{suffix}"


@dataclass
class RunHealth:
    """Aggregate recovery record for one run (possibly many pool calls).

    ``ok`` means the run needed no recovery at all; a run that finished
    after retries is *complete* but not *clean*, and the distinction is
    the whole point of this report.
    """

    deadline_hits: int = 0
    broken_pools: int = 0
    retries: int = 0
    torn_checkpoints: int = 0
    queue_saturations: int = 0
    shed_batches: int = 0
    task_restarts: int = 0
    snapshots: int = 0
    storage_faults: int = 0
    units_quarantined: int = 0
    disk_pressure_events: int = 0
    scrub_damage_events: int = 0
    breaker_tripped: bool = False
    in_process_shards: List[int] = field(default_factory=list)
    incidents: List[ShardIncident] = field(default_factory=list)
    storage_incidents: List[StorageIncident] = field(default_factory=list)

    def record(self, incident: ShardIncident) -> None:
        """Append one incident and fold it into the counters."""
        self.incidents.append(incident)
        if incident.kind == DEADLINE:
            self.deadline_hits += 1
        elif incident.kind == BROKEN_POOL:
            self.broken_pools += 1
        elif incident.kind == RETRY:
            self.retries += 1
        elif incident.kind == BREAKER_TRIP:
            self.breaker_tripped = True
        elif incident.kind == IN_PROCESS:
            self.in_process_shards.append(incident.shard_index)
        elif incident.kind == TORN_CHECKPOINT:
            self.torn_checkpoints += 1
        elif incident.kind == QUEUE_SATURATION:
            self.queue_saturations += 1
        elif incident.kind == OVERLOAD_SHED:
            self.shed_batches += 1
        elif incident.kind == TASK_RESTART:
            self.task_restarts += 1
        elif incident.kind == SNAPSHOT:
            self.snapshots += 1

    def record_storage(self, incident: StorageIncident) -> None:
        """Append one storage incident and fold it into the counters."""
        self.storage_incidents.append(incident)
        if incident.kind == STORAGE_FAULT:
            self.storage_faults += 1
        elif incident.kind == UNIT_QUARANTINED:
            self.units_quarantined += 1
        elif incident.kind == DISK_PRESSURE:
            self.disk_pressure_events += 1
        elif incident.kind == SCRUB_DAMAGE:
            self.scrub_damage_events += 1

    @property
    def ok(self) -> bool:
        return not self.incidents and not self.storage_incidents

    def merge(self, other: Optional["RunHealth"]) -> "RunHealth":
        """Combine two reports (e.g. across stages or days) into a new one."""
        if other is None:
            return self
        merged = RunHealth()
        for incident in self.incidents + other.incidents:
            merged.record(incident)
        for storage in self.storage_incidents + other.storage_incidents:
            merged.record_storage(storage)
        return merged

    def summary(self) -> str:
        if self.ok:
            return "healthy: no recovery events"
        parts = [
            f"{self.deadline_hits} deadline hit(s)",
            f"{self.broken_pools} broken pool(s)",
            f"{self.retries} retr(y/ies)",
            f"{self.torn_checkpoints} torn checkpoint(s)",
        ]
        if self.queue_saturations:
            parts.append(f"{self.queue_saturations} queue saturation(s)")
        if self.shed_batches:
            parts.append(f"{self.shed_batches} shed batch(es)")
        if self.task_restarts:
            parts.append(f"{self.task_restarts} task restart(s)")
        if self.snapshots:
            parts.append(f"{self.snapshots} snapshot failure(s)")
        if self.storage_faults:
            parts.append(f"{self.storage_faults} storage fault(s)")
        if self.units_quarantined:
            parts.append(f"{self.units_quarantined} unit(s) quarantined")
        if self.disk_pressure_events:
            parts.append(f"{self.disk_pressure_events} disk pressure episode(s)")
        if self.scrub_damage_events:
            parts.append(f"{self.scrub_damage_events} scrub damage finding(s)")
        if self.breaker_tripped:
            parts.append("circuit breaker tripped")
        if self.in_process_shards:
            parts.append(f"in-process shards {sorted(set(self.in_process_shards))}")
        return "; ".join(parts)
