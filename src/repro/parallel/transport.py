"""Zero-copy columnar shard exchange across the process-pool seam.

Shipping shards as pickled row lists made the parallel plane *slower*
than serial: every ``RadioEvent``/``ServiceRecord`` dataclass was
serialized, copied through a pipe, and re-validated per row.  This
module replaces that with bulk column transport:

- **shm** (POSIX default): the parent lays each shard's interned column
  block into a ``multiprocessing.shared_memory`` segment — one *pools*
  segment holding the shared vocabularies plus one small *data* segment
  per shard — and ships workers a tiny :class:`ShmShardDescriptor`
  (two segment names).  A worker attaches, bulk-copies the framed block
  out in one ``memcpy``, and rebuilds the ``array`` columns with zero
  per-row work; the vocabulary is decoded once per worker and cached.
- **rpck** (fallback): each shard rides the pool pipe as one
  self-contained CRC-framed byte block (:mod:`repro.columnar.blocks`,
  the durable-checkpoint codec) inside a :class:`RpckShardDescriptor`.
  Chosen automatically on Windows, where the POSIX unlink-based segment
  lifecycle does not hold, or via ``REPRO_TRANSPORT=rpck``.

Results come back the same way in spirit: workers return **packed
column/summary blocks** (:func:`pack_build_result` and friends), never
row-by-row pickled dataclasses.

Segment lifecycle: names are deterministic —
``rsx{pid:x}-{seq:x}-{role}`` with ``seq`` a per-process counter — so a
crashed run's leftovers are attributable to their owner pid and
:func:`cleanup_stale_segments` can sweep them.  The owning
:class:`ShardExchange` unlinks every segment in ``close()`` (callers
hold it in a ``finally``); if the parent is SIGKILLed first, its
``multiprocessing`` resource tracker — shared by the pool workers —
unlinks anything still registered at process teardown.  A SIGKILLed
*worker* leaks nothing: segments belong to the parent.
"""

from __future__ import annotations

import contextlib
import itertools
import os
import sys
from array import array
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.cellular.geo import GeoPoint
from repro.cellular.rats import RAT, RadioFlags
from repro.cellular.tac_db import DeviceModel, DeviceOS, GSMALabel
from repro.columnar.blocks import (
    CheckpointCorruption,
    block_length,
    build_block,
    pack_pools,
    pack_shard_block,
    read_block,
    unpack_pools,
    unpack_shard_block,
)
from repro.columnar.store import (
    ColumnPools,
    ColumnarRadioEvents,
    ColumnarServiceRecords,
    StringPool,
)
from repro.core.catalog import DeviceDayRecord, DeviceSummary
from repro.core.classifier import Classification, ClassificationStep, ClassLabel
from repro.core.mobility import MobilityMetrics
from repro.core.roaming import RoamingLabel, SimOrigin, VisitedSide
from repro.devices.device import IoTVertical
from repro.pipeline import DegradationReport, StageFailure

#: Environment override for transport selection (``shm`` or ``rpck``).
TRANSPORT_ENV_FLAG = "REPRO_TRANSPORT"
TRANSPORT_SHM = "shm"
TRANSPORT_RPCK = "rpck"
TRANSPORTS = (TRANSPORT_SHM, TRANSPORT_RPCK)

#: Shared-memory segment name prefix ("repro shard exchange").
SEGMENT_PREFIX = "rsx"

#: Where POSIX shared-memory segments appear as files (leak checks).
SHM_DIR = "/dev/shm"

_EXCHANGE_SEQ = itertools.count()

#: Worker-side cache of decoded pool vocabularies, keyed by segment
#: name.  Names are unique per exchange, so an entry can never go
#: stale; the cache only saves re-decoding the (large) vocabulary for
#: every shard a worker processes within one exchange.
_POOL_CACHE: "OrderedDict[str, ColumnPools]" = OrderedDict()
_POOL_CACHE_MAX = 4

# -- enum index tables (definition order is the wire order) ------------------

_SIM_ORIGINS = tuple(SimOrigin)
_VISITED_SIDES = tuple(VisitedSide)
_CLASS_LABELS = tuple(ClassLabel)
_CLASS_STEPS = tuple(ClassificationStep)
_VERTICALS = tuple(IoTVertical)
_DEVICE_OSES = tuple(DeviceOS)
_GSMA_LABELS = tuple(GSMALabel)
_RATS = tuple(RAT)

_SIM_ORIGIN_INDEX = {member: index for index, member in enumerate(_SIM_ORIGINS)}
_VISITED_SIDE_INDEX = {member: index for index, member in enumerate(_VISITED_SIDES)}
_CLASS_LABEL_INDEX = {member: index for index, member in enumerate(_CLASS_LABELS)}
_CLASS_STEP_INDEX = {member: index for index, member in enumerate(_CLASS_STEPS)}
_VERTICAL_INDEX = {member: index for index, member in enumerate(_VERTICALS)}
_DEVICE_OS_INDEX = {member: index for index, member in enumerate(_DEVICE_OSES)}
_GSMA_LABEL_INDEX = {member: index for index, member in enumerate(_GSMA_LABELS)}

#: A sentinel for "no value" in id/index columns (tac, model, vertical…).
_NONE = -1


# -- transport selection -----------------------------------------------------

def select_transport(transport: Optional[str] = None) -> str:
    """Resolve the effective transport: explicit > env > platform auto.

    Windows always resolves to ``rpck``: the exchange's segment
    lifecycle (create → attach → unlink, with ``/dev/shm`` sweeps for
    crashed owners) is POSIX semantics, so even an explicit ``shm``
    request falls back there.
    """
    mode = transport
    if mode is None:
        mode = os.environ.get(TRANSPORT_ENV_FLAG, "").strip().lower() or None
    if mode is None:
        mode = TRANSPORT_SHM
    if mode not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {mode!r}: expected one of {TRANSPORTS}"
        )
    if mode == TRANSPORT_SHM and sys.platform == "win32":
        return TRANSPORT_RPCK
    return mode


# -- descriptors and the owning exchange -------------------------------------

@dataclass(frozen=True)
class ShmShardDescriptor:
    """A shard parked in shared memory: (pools segment, data segment)."""

    pools_segment: str
    data_segment: str


@dataclass(frozen=True)
class RpckShardDescriptor:
    """A self-contained RPCK-framed shard block riding the pool pipe."""

    payload: bytes


ShardDescriptor = Union[ShmShardDescriptor, RpckShardDescriptor]

#: One shard of the columnar plane: (radio events, service records).
ColumnarShard = Tuple[ColumnarRadioEvents, ColumnarServiceRecords]


class ShardExchange:
    """Owns every segment published for one sharded fan-out.

    Create via :func:`publish_shards`; submit ``descriptors`` through
    ``map_shards``; call :meth:`close` (in a ``finally``) once results
    are in to unlink all owned segments.  Safe to close twice.
    """

    def __init__(self, transport: str) -> None:
        self.transport = transport
        self.descriptors: List[ShardDescriptor] = []
        self._segments: List[shared_memory.SharedMemory] = []
        #: Bytes parked in shared-memory segments (shm transport).
        self.segment_nbytes = 0
        #: Bytes crossing the pool pipe inside descriptors (rpck).
        self.payload_nbytes = 0

    def _create_segment(self, role: str, seq: int, block: bytes) -> str:
        name = f"{SEGMENT_PREFIX}{os.getpid():x}-{seq:x}-{role}"
        try:
            segment = shared_memory.SharedMemory(
                name=name, create=True, size=len(block)
            )
        except FileExistsError:
            # A recycled pid's crashed run left a stale segment behind
            # under our deterministic name; it provably is not ours
            # (the per-process counter never repeats), so reclaim it.
            stale = shared_memory.SharedMemory(name=name)
            stale.close()
            stale.unlink()
            segment = shared_memory.SharedMemory(
                name=name, create=True, size=len(block)
            )
        segment.buf[:len(block)] = block
        self._segments.append(segment)
        self.segment_nbytes += len(block)
        return name

    def close(self) -> None:
        """Unlink every owned segment (idempotent)."""
        for segment in self._segments:
            # Best-effort teardown: a racing stale-sweep may already
            # have removed the file, and close cannot fail usefully.
            with contextlib.suppress(OSError):
                segment.close()
            with contextlib.suppress(FileNotFoundError):
                segment.unlink()
        self._segments.clear()

    def __enter__(self) -> "ShardExchange":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def publish_shards(
    shards: Sequence[ColumnarShard],
    transport: Optional[str] = None,
) -> ShardExchange:
    """Park ``shards`` for worker attachment; returns the owning exchange.

    With the shm transport the shared pool vocabularies are packed once
    into a pools segment and each shard's columns into a per-shard data
    segment; descriptors carry only the two segment names.  With rpck,
    each descriptor carries the self-contained framed block itself.
    """
    mode = select_transport(transport)
    exchange = ShardExchange(mode)
    try:
        if mode == TRANSPORT_SHM and shards:
            seq = next(_EXCHANGE_SEQ)
            pools_segment = exchange._create_segment(
                "p", seq, pack_pools(shards[0][0].pools)
            )
            for index, (events, records) in enumerate(shards):
                data_segment = exchange._create_segment(
                    f"s{index:x}",
                    seq,
                    pack_shard_block(events, records, include_pools=False),
                )
                exchange.descriptors.append(
                    ShmShardDescriptor(pools_segment, data_segment)
                )
        else:
            for events, records in shards:
                block = pack_shard_block(events, records, include_pools=True)
                exchange.payload_nbytes += len(block)
                exchange.descriptors.append(RpckShardDescriptor(block))
    except BaseException:
        exchange.close()
        raise
    return exchange


def _read_segment(name: str) -> bytes:
    """Bulk-copy the framed block out of a segment (one memcpy)."""
    segment = shared_memory.SharedMemory(name=name)
    try:
        # Segments may be page-padded past the block's end; the frame
        # records the exact length.
        return bytes(segment.buf[: block_length(segment.buf)])
    finally:
        segment.close()


def _attached_pools(name: str) -> ColumnPools:
    pools = _POOL_CACHE.get(name)
    if pools is None:
        pools = unpack_pools(_read_segment(name))
        _POOL_CACHE[name] = pools
        while len(_POOL_CACHE) > _POOL_CACHE_MAX:
            _POOL_CACHE.popitem(last=False)
    else:
        _POOL_CACHE.move_to_end(name)
    return pools


def attach_shard(descriptor: ShardDescriptor) -> ColumnarShard:
    """Worker side: rebuild a shard's columnar stores from a descriptor."""
    if isinstance(descriptor, RpckShardDescriptor):
        return unpack_shard_block(descriptor.payload)
    pools = _attached_pools(descriptor.pools_segment)
    return unpack_shard_block(_read_segment(descriptor.data_segment), pools)


# -- crash-leak sweep --------------------------------------------------------

def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - alive, other user
        return True
    return True


def owner_pid(segment_name: str) -> Optional[int]:
    """The owning pid encoded in an exchange segment name, if valid."""
    if not segment_name.startswith(SEGMENT_PREFIX):
        return None
    pid_hex = segment_name[len(SEGMENT_PREFIX):].split("-", 1)[0]
    try:
        return int(pid_hex, 16)
    except ValueError:
        return None


def cleanup_stale_segments(shm_dir: str = SHM_DIR) -> List[str]:
    """Unlink exchange segments whose owning process is dead.

    Normal cleanup is :meth:`ShardExchange.close` (or, on parent crash,
    the shared resource tracker).  This sweep is the belt-and-braces
    path for the remaining corner — e.g. a tracker itself SIGKILLed —
    and for tests asserting the leak contract.  Returns the unlinked
    segment names.
    """
    removed: List[str] = []
    try:
        names = sorted(os.listdir(shm_dir))
    except OSError:
        return removed
    for name in names:
        pid = owner_pid(name)
        if pid is None or _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(shm_dir, name))
        except OSError:
            continue
        removed.append(name)
    return removed


# -- packed result blocks ----------------------------------------------------
#
# Workers return results as framed column blocks too: numeric fields as
# raw array buffers, strings interned into a per-block vocabulary,
# frozensets as (length, flat ids) pairs, enums as indices into the
# definition-order tables above.  Round-trips are exact (floats travel
# as 8-byte doubles, never text), so the serial-vs-sharded byte-equality
# contract survives the codec.

_NamedArrays = List[Tuple[str, array]]


def _array_chunks(named: _NamedArrays) -> Tuple[List[List[Any]], List[bytes]]:
    specs: List[List[Any]] = []
    chunks: List[bytes] = []
    for name, column in named:
        data = column.tobytes()
        specs.append([name, column.typecode, len(data)])
        chunks.append(data)
    return specs, chunks


def _arrays_from(
    specs: Sequence[Sequence[Any]], body: bytes, offset: int
) -> Tuple[Dict[str, array], int]:
    columns: Dict[str, array] = {}
    for name, typecode, nbytes in specs:
        column = array(typecode)
        column.frombytes(body[offset:offset + nbytes])
        offset += nbytes
        columns[name] = column
    return columns, offset


def _pack_frozenset(
    values: Iterable[str],
    lengths: array,
    flat: array,
    intern: Any,
) -> None:
    ordered = sorted(values)
    lengths.append(len(ordered))
    flat.extend(map(intern, ordered))


def _record_arrays(
    records: Sequence[DeviceDayRecord], strings: StringPool
) -> _NamedArrays:
    dev = array("q")
    day = array("q")
    sim = array("q")
    n_events = array("q")
    n_failed = array("q")
    n_calls = array("q")
    voice_minutes = array("d")
    n_data = array("q")
    bytes_total = array("q")
    radio = array("b")
    voice = array("b")
    data_plane = array("b")
    home = array("b")
    visited_len = array("q")
    visited_flat = array("q")
    apns_len = array("q")
    apns_flat = array("q")
    mob_flag = array("b")
    mob_lat = array("d")
    mob_lon = array("d")
    mob_gyration = array("d")
    mob_sectors = array("q")
    intern = strings.intern
    for record in records:
        dev.append(intern(record.device_id))
        day.append(record.day)
        sim.append(intern(record.sim_plmn))
        n_events.append(record.n_events)
        n_failed.append(record.n_failed_events)
        n_calls.append(record.n_calls)
        voice_minutes.append(record.voice_minutes)
        n_data.append(record.n_data_sessions)
        bytes_total.append(record.bytes_total)
        radio.append(record.radio_flags.mask)
        voice.append(record.voice_flags.mask)
        data_plane.append(record.data_flags.mask)
        home.append(1 if record.on_home_network else 0)
        _pack_frozenset(record.visited_plmns, visited_len, visited_flat, intern)
        _pack_frozenset(record.apns, apns_len, apns_flat, intern)
        mobility = record.mobility
        if mobility is None:
            mob_flag.append(0)
        else:
            mob_flag.append(1)
            mob_lat.append(mobility.centroid.lat)
            mob_lon.append(mobility.centroid.lon)
            mob_gyration.append(mobility.gyration_km)
            mob_sectors.append(mobility.n_sectors)
    return [
        ("r_dev", dev),
        ("r_day", day),
        ("r_sim", sim),
        ("r_events", n_events),
        ("r_failed", n_failed),
        ("r_calls", n_calls),
        ("r_voice_min", voice_minutes),
        ("r_data", n_data),
        ("r_bytes", bytes_total),
        ("r_radio", radio),
        ("r_voice", voice),
        ("r_data_flags", data_plane),
        ("r_home", home),
        ("r_visited_len", visited_len),
        ("r_visited_flat", visited_flat),
        ("r_apns_len", apns_len),
        ("r_apns_flat", apns_flat),
        ("r_mob_flag", mob_flag),
        ("r_mob_lat", mob_lat),
        ("r_mob_lon", mob_lon),
        ("r_mob_gyration", mob_gyration),
        ("r_mob_sectors", mob_sectors),
    ]


def _unpack_sets(
    lengths: array, flat: array, strings: Sequence[str]
) -> List[Any]:
    sets: List[Any] = []
    offset = 0
    for count in lengths:
        sets.append(
            frozenset(strings[flat[i]] for i in range(offset, offset + count))
        )
        offset += count
    return sets


def _day_records_from(
    columns: Dict[str, array], strings: Sequence[str]
) -> List[DeviceDayRecord]:
    visited_sets = _unpack_sets(
        columns["r_visited_len"], columns["r_visited_flat"], strings
    )
    apn_sets = _unpack_sets(columns["r_apns_len"], columns["r_apns_flat"], strings)
    records: List[DeviceDayRecord] = []
    mob_offset = 0
    mob_lat = columns["r_mob_lat"]
    mob_lon = columns["r_mob_lon"]
    mob_gyration = columns["r_mob_gyration"]
    mob_sectors = columns["r_mob_sectors"]
    for i in range(len(columns["r_dev"])):
        mobility: Optional[MobilityMetrics] = None
        if columns["r_mob_flag"][i]:
            mobility = MobilityMetrics(
                centroid=GeoPoint(mob_lat[mob_offset], mob_lon[mob_offset]),
                gyration_km=mob_gyration[mob_offset],
                n_sectors=mob_sectors[mob_offset],
            )
            mob_offset += 1
        records.append(
            DeviceDayRecord(
                device_id=strings[columns["r_dev"][i]],
                day=columns["r_day"][i],
                sim_plmn=strings[columns["r_sim"][i]],
                visited_plmns=visited_sets[i],
                n_events=columns["r_events"][i],
                n_failed_events=columns["r_failed"][i],
                n_calls=columns["r_calls"][i],
                voice_minutes=columns["r_voice_min"][i],
                n_data_sessions=columns["r_data"][i],
                bytes_total=columns["r_bytes"][i],
                apns=apn_sets[i],
                radio_flags=RadioFlags(columns["r_radio"][i]),
                voice_flags=RadioFlags(columns["r_voice"][i]),
                data_flags=RadioFlags(columns["r_data_flags"][i]),
                mobility=mobility,
                on_home_network=bool(columns["r_home"][i]),
            )
        )
    return records


def _encode_model(model: DeviceModel) -> List[Any]:
    bands_mask = 0
    for index, rat in enumerate(_RATS):
        if rat in model.bands:
            bands_mask |= 1 << index
    return [
        model.tac,
        model.manufacturer,
        model.brand,
        model.model_name,
        _DEVICE_OS_INDEX[model.os],
        bands_mask,
        _GSMA_LABEL_INDEX[model.label],
    ]


def _decode_model(entry: Sequence[Any]) -> DeviceModel:
    tac, manufacturer, brand, model_name, os_index, bands_mask, label_index = entry
    bands = frozenset(
        rat for index, rat in enumerate(_RATS) if bands_mask >> index & 1
    )
    return DeviceModel(
        tac=tac,
        manufacturer=manufacturer,
        brand=brand,
        model_name=model_name,
        os=_DEVICE_OSES[os_index],
        bands=bands,
        label=_GSMA_LABELS[label_index],
    )


def _summary_arrays(
    summaries: Iterable[DeviceSummary],
    strings: StringPool,
    models: List[DeviceModel],
    model_index: Dict[DeviceModel, int],
) -> _NamedArrays:
    dev = array("q")
    sim = array("q")
    label_sim = array("b")
    label_visited = array("b")
    active_days = array("q")
    n_events = array("q")
    n_failed = array("q")
    n_calls = array("q")
    voice_minutes = array("d")
    n_data = array("q")
    bytes_total = array("q")
    apns_len = array("q")
    apns_flat = array("q")
    visited_len = array("q")
    visited_flat = array("q")
    radio = array("b")
    voice = array("b")
    data_plane = array("b")
    tac = array("q")
    model_ids = array("q")
    gyration_flag = array("b")
    gyration = array("d")
    intern = strings.intern
    for summary in summaries:
        dev.append(intern(summary.device_id))
        sim.append(intern(summary.sim_plmn))
        label_sim.append(_SIM_ORIGIN_INDEX[summary.label.sim])
        label_visited.append(_VISITED_SIDE_INDEX[summary.label.visited])
        active_days.append(summary.active_days)
        n_events.append(summary.n_events)
        n_failed.append(summary.n_failed_events)
        n_calls.append(summary.n_calls)
        voice_minutes.append(summary.voice_minutes)
        n_data.append(summary.n_data_sessions)
        bytes_total.append(summary.bytes_total)
        _pack_frozenset(summary.apns, apns_len, apns_flat, intern)
        _pack_frozenset(summary.visited_plmns, visited_len, visited_flat, intern)
        radio.append(summary.radio_flags.mask)
        voice.append(summary.voice_flags.mask)
        data_plane.append(summary.data_flags.mask)
        tac.append(_NONE if summary.tac is None else summary.tac)
        model = summary.model
        if model is None:
            model_ids.append(_NONE)
        else:
            hit = model_index.get(model)
            if hit is None:
                hit = len(models)
                model_index[model] = hit
                models.append(model)
            model_ids.append(hit)
        if summary.mean_gyration_km is None:
            gyration_flag.append(0)
        else:
            gyration_flag.append(1)
            gyration.append(summary.mean_gyration_km)
    return [
        ("s_dev", dev),
        ("s_sim", sim),
        ("s_label_sim", label_sim),
        ("s_label_visited", label_visited),
        ("s_active", active_days),
        ("s_events", n_events),
        ("s_failed", n_failed),
        ("s_calls", n_calls),
        ("s_voice_min", voice_minutes),
        ("s_data", n_data),
        ("s_bytes", bytes_total),
        ("s_apns_len", apns_len),
        ("s_apns_flat", apns_flat),
        ("s_visited_len", visited_len),
        ("s_visited_flat", visited_flat),
        ("s_radio", radio),
        ("s_voice", voice),
        ("s_data_flags", data_plane),
        ("s_tac", tac),
        ("s_model", model_ids),
        ("s_gyration_flag", gyration_flag),
        ("s_gyration", gyration),
    ]


def _summaries_from(
    columns: Dict[str, array],
    strings: Sequence[str],
    models: Sequence[DeviceModel],
) -> Dict[str, DeviceSummary]:
    apn_sets = _unpack_sets(columns["s_apns_len"], columns["s_apns_flat"], strings)
    visited_sets = _unpack_sets(
        columns["s_visited_len"], columns["s_visited_flat"], strings
    )
    summaries: Dict[str, DeviceSummary] = {}
    gyration_offset = 0
    gyration = columns["s_gyration"]
    for i in range(len(columns["s_dev"])):
        mean_gyration: Optional[float] = None
        if columns["s_gyration_flag"][i]:
            mean_gyration = gyration[gyration_offset]
            gyration_offset += 1
        tac_value = columns["s_tac"][i]
        model_id = columns["s_model"][i]
        device_id = strings[columns["s_dev"][i]]
        summaries[device_id] = DeviceSummary(
            device_id=device_id,
            sim_plmn=strings[columns["s_sim"][i]],
            label=RoamingLabel(
                sim=_SIM_ORIGINS[columns["s_label_sim"][i]],
                visited=_VISITED_SIDES[columns["s_label_visited"][i]],
            ),
            active_days=columns["s_active"][i],
            n_events=columns["s_events"][i],
            n_failed_events=columns["s_failed"][i],
            n_calls=columns["s_calls"][i],
            voice_minutes=columns["s_voice_min"][i],
            n_data_sessions=columns["s_data"][i],
            bytes_total=columns["s_bytes"][i],
            apns=apn_sets[i],
            visited_plmns=visited_sets[i],
            radio_flags=RadioFlags(columns["s_radio"][i]),
            voice_flags=RadioFlags(columns["s_voice"][i]),
            data_flags=RadioFlags(columns["s_data_flags"][i]),
            tac=None if tac_value == _NONE else tac_value,
            model=None if model_id == _NONE else models[model_id],
            mean_gyration_km=mean_gyration,
        )
    return summaries


def _report_header(report: DegradationReport) -> Dict[str, Any]:
    if report.ingest is not None:
        raise ValueError(
            "shard-level DegradationReports never carry an ingest report"
        )
    return {
        "total": report.n_devices_total,
        "ok": report.n_devices_ok,
        "stages": [
            [stage, int(count)]
            for stage, count in report.n_failed_by_stage.items()
        ],
        "exemplars": [
            [failure.device_id, failure.stage, failure.error]
            for failure in report.exemplars
        ],
        "fallback": bool(report.classifier_fallback),
    }


def _report_from(header: Dict[str, Any]) -> DegradationReport:
    report = DegradationReport(
        n_devices_total=header["total"],
        n_devices_ok=header["ok"],
        classifier_fallback=header["fallback"],
    )
    for stage, count in header["stages"]:
        report.n_failed_by_stage[stage] = count
    report.exemplars.extend(
        StageFailure(device_id=device_id, stage=stage, error=error)
        for device_id, stage, error in header["exemplars"]
    )
    return report


def _pack_catalog_block(
    kind: str,
    records: Sequence[DeviceDayRecord],
    summaries: Dict[str, DeviceSummary],
    extra_header: Dict[str, Any],
) -> bytes:
    strings = StringPool()
    models: List[DeviceModel] = []
    model_index: Dict[DeviceModel, int] = {}
    named = _record_arrays(records, strings)
    named += _summary_arrays(summaries.values(), strings, models, model_index)
    specs, chunks = _array_chunks(named)
    header: Dict[str, Any] = {"kind": kind, "columns": specs}
    header.update(extra_header)
    header["models"] = [_encode_model(model) for model in models]
    header["strings"] = list(strings.strings)
    return build_block(header, chunks)


def _unpack_catalog_block(
    data: bytes, kind: str
) -> Tuple[Dict[str, Any], List[DeviceDayRecord], Dict[str, DeviceSummary]]:
    header, body, offset = read_block(data)
    if header.get("kind") != kind:
        raise CheckpointCorruption(
            f"expected a {kind} block, got kind {header.get('kind')!r}"
        )
    columns, _ = _arrays_from(header["columns"], body, offset)
    strings = header["strings"]
    models = [_decode_model(entry) for entry in header["models"]]
    records = _day_records_from(columns, strings)
    summaries = _summaries_from(columns, strings, models)
    return header, records, summaries


def pack_build_result(
    records: Sequence[DeviceDayRecord],
    summaries: Dict[str, DeviceSummary],
    m2m_keys: Set[Tuple[str, str]],
) -> bytes:
    """Strict-mode worker result: catalog + summaries + step-1 keys."""
    return _pack_catalog_block(
        "build_result",
        records,
        summaries,
        {"m2m_keys": [list(key) for key in sorted(m2m_keys)]},
    )


def unpack_build_result(
    data: bytes,
) -> Tuple[List[DeviceDayRecord], Dict[str, DeviceSummary], Set[Tuple[str, str]]]:
    """Decode a :func:`pack_build_result` block."""
    header, records, summaries = _unpack_catalog_block(data, "build_result")
    m2m_keys = {(key[0], key[1]) for key in header["m2m_keys"]}
    return records, summaries, m2m_keys


def pack_lenient_result(
    records: Sequence[DeviceDayRecord],
    summaries: Dict[str, DeviceSummary],
    report: DegradationReport,
) -> bytes:
    """Lenient-mode worker result: catalog + summaries + degradation."""
    return _pack_catalog_block(
        "lenient_result", records, summaries, {"report": _report_header(report)}
    )


def unpack_lenient_result(
    data: bytes,
) -> Tuple[List[DeviceDayRecord], Dict[str, DeviceSummary], DegradationReport]:
    """Decode a :func:`pack_lenient_result` block."""
    header, records, summaries = _unpack_catalog_block(data, "lenient_result")
    return records, summaries, _report_from(header["report"])


def pack_classify_payload(
    summaries: Dict[str, DeviceSummary],
    global_keys: Set[Tuple[str, str]],
) -> bytes:
    """Classify-stage payload: one shard's summaries + global evidence."""
    return _pack_catalog_block(
        "classify_payload",
        (),
        summaries,
        {"global_keys": [list(key) for key in sorted(global_keys)]},
    )


def unpack_classify_payload(
    data: bytes,
) -> Tuple[Dict[str, DeviceSummary], Set[Tuple[str, str]]]:
    """Decode a :func:`pack_classify_payload` block."""
    header, _, summaries = _unpack_catalog_block(data, "classify_payload")
    global_keys = {(key[0], key[1]) for key in header["global_keys"]}
    return summaries, global_keys


def pack_classifications(classifications: Dict[str, Classification]) -> bytes:
    """Classify-stage worker result, preserving dict insertion order."""
    strings = StringPool()
    dev = array("q")
    labels = array("b")
    steps = array("b")
    verticals = array("b")
    keywords = array("q")
    intern = strings.intern
    for device_id, cls in classifications.items():
        dev.append(intern(device_id))
        labels.append(_CLASS_LABEL_INDEX[cls.label])
        steps.append(_CLASS_STEP_INDEX[cls.step])
        verticals.append(
            _NONE if cls.vertical is None else _VERTICAL_INDEX[cls.vertical]
        )
        keywords.append(
            _NONE if cls.matched_keyword is None else intern(cls.matched_keyword)
        )
    specs, chunks = _array_chunks(
        [
            ("c_dev", dev),
            ("c_label", labels),
            ("c_step", steps),
            ("c_vertical", verticals),
            ("c_keyword", keywords),
        ]
    )
    header = {
        "kind": "classifications",
        "columns": specs,
        "strings": list(strings.strings),
    }
    return build_block(header, chunks)


def unpack_classifications(data: bytes) -> Dict[str, Classification]:
    """Decode a :func:`pack_classifications` block."""
    header, body, offset = read_block(data)
    if header.get("kind") != "classifications":
        raise CheckpointCorruption(
            f"expected a classifications block, got kind {header.get('kind')!r}"
        )
    columns, _ = _arrays_from(header["columns"], body, offset)
    strings = header["strings"]
    classifications: Dict[str, Classification] = {}
    verticals = columns["c_vertical"]
    keywords = columns["c_keyword"]
    for i in range(len(columns["c_dev"])):
        vertical_id = verticals[i]
        keyword_id = keywords[i]
        classifications[strings[columns["c_dev"][i]]] = Classification(
            label=_CLASS_LABELS[columns["c_label"][i]],
            step=_CLASS_STEPS[columns["c_step"][i]],
            vertical=None if vertical_id == _NONE else _VERTICALS[vertical_id],
            matched_keyword=None if keyword_id == _NONE else strings[keyword_id],
        )
    return classifications
