"""Behaviour profiles: the calibrated per-segment parameter bundles.

A :class:`BehaviorProfile` bundles everything the MNO simulator needs to
roll one device forward: its traffic model template, mobility kind,
activity (presence) pattern, and service propensities (does it ever use
voice? data?).  :func:`default_profiles` is the calibration table — the
place where the paper's reported marginals (Figs. 7-12) are encoded as
generative parameters.

Calibration anchors (from the paper):

* inbound M2M devices are active ~9 days median vs 2 days for inbound
  smartphones (Fig. 7) → visitor stay lengths;
* M2M devices are stationary, <20% above 1 km gyration (Fig. 8) →
  stationary mobility with cell-reselection jitter;
* 24.5% of M2M devices use no data, 27.5% no voice (Fig. 9) →
  propensities;
* M2M signaling ≪ smartphone signaling; feature phones lowest (Fig. 10);
* connected cars look like roaming smartphones — mobile, chatty
  (Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Dict, Optional

import numpy as np

from repro.devices.device import DeviceClass, IoTVertical
from repro.devices.traffic_models import DiurnalShape, TrafficModel


class MobilityKind(str, Enum):
    """Which mobility model the simulator instantiates for the device."""

    STATIONARY = "stationary"
    COMMUTER = "commuter"
    VEHICULAR = "vehicular"
    INTERNATIONAL = "international"


class PresenceKind(str, Enum):
    """How the device's active days are laid out over the window.

    RESIDENT devices live in the country and are potentially active every
    day; VISITOR devices (inbound roamers) arrive at some day and stay
    for a sampled duration — the mechanism behind Fig. 7's inbound/native
    split.
    """

    RESIDENT = "resident"
    VISITOR = "visitor"


@dataclass(frozen=True)
class PresencePattern:
    """Presence/activity parameters.

    For RESIDENT: active each day with ``p_active_daily``; a fraction
    ``deploying`` of devices instead *arrive* uniformly during the window
    (the paper's ongoing SMIP rollout).  For VISITOR: arrival day is
    uniform, stay length is geometric with mean ``stay_mean_days``.
    """

    kind: PresenceKind
    p_active_daily: float = 0.95
    stay_mean_days: float = 3.0
    deploying: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.p_active_daily <= 1.0:
            raise ValueError("p_active_daily must be in (0, 1]")
        if self.stay_mean_days <= 0:
            raise ValueError("stay_mean_days must be positive")
        if not 0.0 <= self.deploying <= 1.0:
            raise ValueError("deploying must be in [0, 1]")

    def sample_active_days(
        self, window_days: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Return the sorted array of day indices the device is active."""
        if window_days <= 0:
            raise ValueError("window_days must be positive")
        if self.kind is PresenceKind.RESIDENT:
            first_day = 0
            if self.deploying > 0 and rng.random() < self.deploying:
                first_day = int(rng.integers(window_days))
            days = np.arange(first_day, window_days)
            mask = rng.random(len(days)) < self.p_active_daily
            active = days[mask]
        else:
            arrival = int(rng.integers(window_days))
            # Sub-day mean stays clamp to "one day" (p capped at 1).
            stay_p = min(1.0, 1.0 / self.stay_mean_days)
            stay = max(1, int(rng.geometric(stay_p)))
            days = np.arange(arrival, min(window_days, arrival + stay))
            mask = rng.random(len(days)) < self.p_active_daily
            active = days[mask]
        if len(active) == 0:
            # Every observed device is active at least one day by
            # construction (otherwise it would not be in the dataset).
            fallback = (
                int(rng.integers(window_days))
                if self.kind is PresenceKind.VISITOR
                else window_days - 1
            )
            active = np.array([fallback])
        return active


@dataclass(frozen=True)
class BehaviorProfile:
    """Everything needed to synthesize one device's behaviour."""

    name: str
    device_class: DeviceClass
    traffic: TrafficModel
    mobility: MobilityKind
    presence: PresencePattern
    vertical: Optional[IoTVertical] = None
    p_voice: float = 1.0
    p_data: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_voice <= 1.0 or not 0.0 <= self.p_data <= 1.0:
            raise ValueError("propensities must be in [0, 1]")
        if self.device_class is DeviceClass.M2M and self.vertical is None:
            raise ValueError(f"profile {self.name}: M2M profile needs a vertical")

    def with_presence(self, presence: PresencePattern) -> "BehaviorProfile":
        return replace(self, presence=presence)


def default_profiles() -> Dict[str, BehaviorProfile]:
    """The calibrated profile table used by the MNO population builder."""
    resident = PresencePattern(PresenceKind.RESIDENT, p_active_daily=0.85)
    always_on = PresencePattern(PresenceKind.RESIDENT, p_active_daily=0.97)
    tourist = PresencePattern(PresenceKind.VISITOR, stay_mean_days=3.0)
    roaming_iot = PresencePattern(
        PresenceKind.VISITOR, stay_mean_days=11.0, p_active_daily=0.9
    )

    profiles = [
        BehaviorProfile(
            name="smartphone_resident",
            device_class=DeviceClass.SMART,
            traffic=TrafficModel(
                signaling_per_day=14.0,
                calls_per_day=3.0,
                data_sessions_per_day=6.0,
                data_mb_mu=2.5,  # median ~12 MB/session
                data_mb_sigma=1.2,
                diurnal=DiurnalShape.HUMAN,
            ),
            mobility=MobilityKind.COMMUTER,
            presence=resident,
            p_voice=0.97,
            p_data=0.99,
        ),
        BehaviorProfile(
            name="smartphone_tourist",
            device_class=DeviceClass.SMART,
            traffic=TrafficModel(
                signaling_per_day=16.0,
                calls_per_day=1.5,
                # Bill-shock fear: roamers use much less data (Fig. 10).
                data_sessions_per_day=3.0,
                data_mb_mu=1.5,
                data_mb_sigma=1.3,
                diurnal=DiurnalShape.HUMAN,
            ),
            mobility=MobilityKind.VEHICULAR,
            presence=tourist,
            p_voice=0.9,
            p_data=0.95,
        ),
        BehaviorProfile(
            name="feature_phone",
            device_class=DeviceClass.FEAT,
            traffic=TrafficModel(
                signaling_per_day=3.0,
                calls_per_day=2.0,
                data_sessions_per_day=0.4,
                data_mb_mu=-2.0,
                data_mb_sigma=1.0,
                diurnal=DiurnalShape.HUMAN,
            ),
            mobility=MobilityKind.COMMUTER,
            presence=resident,
            p_voice=0.83,
            # 56.8% of feature phones generate no data at all (Fig. 9).
            p_data=0.43,
        ),
        BehaviorProfile(
            name="smart_meter_native",
            device_class=DeviceClass.M2M,
            vertical=IoTVertical.SMART_METER,
            traffic=TrafficModel(
                signaling_per_day=0.6,
                calls_per_day=0.02,
                data_sessions_per_day=2.0,
                data_mb_mu=-4.0,  # ~20 kB/day telemetry
                data_mb_sigma=0.6,
                diurnal=DiurnalShape.NIGHTLY_BATCH,
                intensity_sigma=0.3,
            ),
            mobility=MobilityKind.STATIONARY,
            # 73% active the whole period; ongoing rollout adds arrivals.
            presence=PresencePattern(
                PresenceKind.RESIDENT, p_active_daily=0.97, deploying=0.2
            ),
            # SMS-style wakeups ride the CS plane: "voice" in the broad
            # sense of the paper's footnote.
            p_voice=0.75,
            p_data=0.98,
        ),
        BehaviorProfile(
            name="smart_meter_roaming",
            device_class=DeviceClass.M2M,
            vertical=IoTVertical.SMART_METER,
            traffic=TrafficModel(
                # Roaming SMIP generates ~10x the signaling of native
                # meters (Fig. 11-right).
                signaling_per_day=6.0,
                calls_per_day=0.02,
                data_sessions_per_day=2.0,
                data_mb_mu=-4.0,
                data_mb_sigma=0.6,
                diurnal=DiurnalShape.NIGHTLY_BATCH,
                intensity_sigma=0.4,
            ),
            mobility=MobilityKind.STATIONARY,
            # Free to reattach to any UK operator: short presence spells.
            presence=PresencePattern(
                PresenceKind.VISITOR, stay_mean_days=9.0, p_active_daily=0.95
            ),
            p_voice=0.70,
            p_data=0.95,
        ),
        BehaviorProfile(
            name="connected_car",
            device_class=DeviceClass.M2M,
            vertical=IoTVertical.CONNECTED_CAR,
            traffic=TrafficModel(
                signaling_per_day=30.0,
                calls_per_day=0.1,
                data_sessions_per_day=5.0,
                data_mb_mu=1.0,
                data_mb_sigma=1.0,
                diurnal=DiurnalShape.HUMAN,
            ),
            mobility=MobilityKind.VEHICULAR,
            presence=roaming_iot,
            p_voice=0.5,
            p_data=0.97,
        ),
        BehaviorProfile(
            name="wearable",
            device_class=DeviceClass.M2M,
            vertical=IoTVertical.WEARABLE,
            traffic=TrafficModel(
                signaling_per_day=6.0,
                calls_per_day=0.2,
                data_sessions_per_day=2.0,
                data_mb_mu=-1.0,
                data_mb_sigma=1.0,
                diurnal=DiurnalShape.HUMAN,
            ),
            mobility=MobilityKind.COMMUTER,
            presence=roaming_iot,
            p_voice=0.5,
            p_data=0.9,
        ),
        BehaviorProfile(
            name="payment_terminal",
            device_class=DeviceClass.M2M,
            vertical=IoTVertical.PAYMENT,
            traffic=TrafficModel(
                signaling_per_day=3.0,
                calls_per_day=0.05,
                data_sessions_per_day=4.0,
                data_mb_mu=-3.5,
                data_mb_sigma=0.7,
                diurnal=DiurnalShape.HUMAN,
                intensity_sigma=0.3,
            ),
            mobility=MobilityKind.STATIONARY,
            presence=roaming_iot,
            p_voice=0.6,
            p_data=0.99,
        ),
        BehaviorProfile(
            name="logistics_tracker",
            device_class=DeviceClass.M2M,
            vertical=IoTVertical.LOGISTICS,
            traffic=TrafficModel(
                signaling_per_day=10.0,
                calls_per_day=0.02,
                data_sessions_per_day=2.0,
                data_mb_mu=-3.0,
                data_mb_sigma=0.8,
                diurnal=DiurnalShape.FLAT,
            ),
            mobility=MobilityKind.INTERNATIONAL,
            presence=PresencePattern(
                PresenceKind.VISITOR, stay_mean_days=8.0, p_active_daily=0.85
            ),
            p_voice=0.5,
            p_data=0.95,
        ),
        BehaviorProfile(
            name="m2m_voice_only",
            device_class=DeviceClass.M2M,
            vertical=IoTVertical.OTHER,
            # Security/elevator applications: voice-style signaling only,
            # never any data — the population behind both the "24.5% of
            # M2M use no data" observation and the m2m-maybe class
            # (no APN is ever observed for them).
            traffic=TrafficModel(
                signaling_per_day=2.0,
                calls_per_day=0.5,
                data_sessions_per_day=0.0,
                diurnal=DiurnalShape.FLAT,
                intensity_sigma=0.3,
            ),
            mobility=MobilityKind.STATIONARY,
            presence=always_on,
            p_voice=1.0,
            p_data=0.0,
        ),
    ]
    return {profile.name: profile for profile in profiles}
