"""Device substrate: device identities, behavioural profiles and models.

A device in this library couples an identity (SIM + equipment), a ground
truth class (smartphone / feature phone / M2M, with an IoT vertical for
the latter), and behaviour models for mobility and traffic.  The
simulators draw populations of these and roll their behaviour forward to
produce the raw records both of the paper's datasets contain.

Ground-truth classes exist only inside the simulator; exported datasets
never carry them.  The classification pipeline in :mod:`repro.core` must
re-derive them from observables, and :mod:`repro.core.validation` scores
it against the truth kept here.
"""

from repro.devices.device import Device, DeviceClass, IoTVertical, SimProvenance
from repro.devices.mobility_models import (
    CommuterMobility,
    InternationalMobility,
    MobilityModel,
    StationaryMobility,
    VehicularMobility,
)
from repro.devices.traffic_models import DiurnalShape, TrafficModel
from repro.devices.profiles import BehaviorProfile, default_profiles

__all__ = [
    "BehaviorProfile",
    "CommuterMobility",
    "Device",
    "DeviceClass",
    "DiurnalShape",
    "InternationalMobility",
    "IoTVertical",
    "MobilityModel",
    "SimProvenance",
    "StationaryMobility",
    "TrafficModel",
    "VehicularMobility",
    "default_profiles",
]
