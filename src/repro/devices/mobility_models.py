"""Mobility models: where a device is over the course of a day.

The radius-of-gyration analysis (Fig. 8) and the connected-cars-vs-meters
contrast (Fig. 12) are driven entirely by how devices move between cell
sectors.  Each model yields a day's worth of (position, dwell-weight)
visits; the simulator snaps positions to the serving operator's nearest
sectors.

* :class:`StationaryMobility` — smart meters, POS terminals: one fixed
  site, with occasional cell re-selection jitter (the paper notes some
  meters show >1 km gyration "likely due to cell reselection, rather
  than actual movements").
* :class:`CommuterMobility` — resident smartphone users: home and work
  anchors a few km apart plus noise.
* :class:`VehicularMobility` — connected cars, logistics: long daily
  trajectories across the country.
* :class:`InternationalMobility` — a vehicular pattern that also hops
  between countries, for border-crossing fleets.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.cellular.geo import GeoPoint, offset_km

Visit = Tuple[GeoPoint, float]  # (position, dwell weight)


class MobilityModel(abc.ABC):
    """Strategy producing a day's sector-level visits for one device."""

    @abc.abstractmethod
    def visits_for_day(self, day: int, rng: np.random.Generator) -> List[Visit]:
        """Return the day's (position, dwell-weight) list, weights > 0."""


def _jitter(point: GeoPoint, sigma_km: float, rng: np.random.Generator) -> GeoPoint:
    east, north = rng.normal(0.0, sigma_km, size=2)
    return offset_km(point, float(east), float(north))


@dataclass
class StationaryMobility(MobilityModel):
    """Fixed installation with optional cell-reselection jitter.

    ``reselection_prob`` is the chance that, on a given day, the device
    is also served briefly by a neighbouring site ``reselection_km``
    away — the artefact that puts a small tail on the meters' gyration.
    """

    anchor: GeoPoint
    reselection_prob: float = 0.1
    reselection_km: float = 2.0

    def visits_for_day(self, day: int, rng: np.random.Generator) -> List[Visit]:
        visits: List[Visit] = [(self.anchor, 23.0)]
        if rng.random() < self.reselection_prob:
            neighbour = _jitter(self.anchor, self.reselection_km, rng)
            visits.append((neighbour, 1.0))
        return visits


@dataclass
class CommuterMobility(MobilityModel):
    """Two anchors (home/work) with commute-time noise."""

    home: GeoPoint
    work: GeoPoint
    noise_km: float = 1.0

    def visits_for_day(self, day: int, rng: np.random.Generator) -> List[Visit]:
        visits: List[Visit] = [
            (_jitter(self.home, self.noise_km, rng), 14.0),
            (_jitter(self.work, self.noise_km, rng), 8.0),
        ]
        # Occasional errand elsewhere.
        if rng.random() < 0.3:
            errand = _jitter(self.home, self.noise_km * 5.0, rng)
            visits.append((errand, 2.0))
        return visits


@dataclass
class VehicularMobility(MobilityModel):
    """Random-waypoint trajectory: ``legs`` hops of ~``leg_km`` per day."""

    start: GeoPoint
    leg_km: float = 40.0
    legs: int = 5

    def visits_for_day(self, day: int, rng: np.random.Generator) -> List[Visit]:
        if self.legs < 1:
            raise ValueError("legs must be >= 1")
        position = self.start
        visits: List[Visit] = []
        dwell = 24.0 / (self.legs + 1)
        for _ in range(self.legs + 1):
            visits.append((position, dwell))
            heading = rng.random() * 2.0 * math.pi
            distance = float(rng.exponential(self.leg_km))
            position = offset_km(
                position, distance * math.cos(heading), distance * math.sin(heading)
            )
        return visits


@dataclass
class InternationalMobility(MobilityModel):
    """Vehicular movement that migrates between country anchors.

    ``country_anchors`` are candidate bases (e.g. country centroids along
    a freight corridor); each day the device either keeps touring near
    its current anchor or jumps to the next one with ``hop_prob``.
    """

    country_anchors: Sequence[GeoPoint]
    hop_prob: float = 0.15
    leg_km: float = 60.0

    def __post_init__(self) -> None:
        if not self.country_anchors:
            raise ValueError("need at least one country anchor")
        self._anchor_index = 0

    @property
    def current_anchor_index(self) -> int:
        return self._anchor_index

    def visits_for_day(self, day: int, rng: np.random.Generator) -> List[Visit]:
        if len(self.country_anchors) > 1 and rng.random() < self.hop_prob:
            self._anchor_index = (self._anchor_index + 1) % len(self.country_anchors)
        anchor = self.country_anchors[self._anchor_index]
        tour = VehicularMobility(start=anchor, leg_km=self.leg_km, legs=4)
        return tour.visits_for_day(day, rng)
