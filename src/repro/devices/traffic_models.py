"""Traffic models: how much a device signals, calls and transfers.

The paper's traffic analysis (§6, Fig. 10) contrasts three device classes
across three dimensions — radio-resource signaling events, voice calls
and data bytes.  :class:`TrafficModel` is the per-device generative model
for one day of those quantities; its parameters are what the population
profiles calibrate.

Counts are Poisson with a device-specific rate multiplier drawn once per
device (lognormal), producing the heavy-tailed per-device distributions
the paper observes (mean 267 signaling records but a 130k-message tail).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

import numpy as np


class DiurnalShape(str, Enum):
    """Intra-day intensity shape.

    HUMAN peaks in waking hours (phone traffic); FLAT is constant
    (machine telemetry); NIGTHLY_BATCH spikes off-peak (meters reporting
    on a schedule) — prior work [18] found exactly this divergence
    between M2M and phone diurnal patterns.
    """

    HUMAN = "human"
    FLAT = "flat"
    NIGHTLY_BATCH = "nightly_batch"


def diurnal_weight(shape: DiurnalShape, hour: float) -> float:
    """Relative intensity at ``hour`` in [0, 24); integrates to ~24."""
    if not 0.0 <= hour < 24.0:
        raise ValueError(f"hour out of range: {hour}")
    if shape is DiurnalShape.FLAT:
        return 1.0
    if shape is DiurnalShape.HUMAN:
        # Low overnight, broad daytime plateau peaking late afternoon.
        return 1.0 + 0.9 * math.sin((hour - 9.0) / 24.0 * 2.0 * math.pi)
    if shape is DiurnalShape.NIGHTLY_BATCH:
        # Sharp reporting window around 02:00.
        return 0.25 + 8.0 * math.exp(-((hour - 2.0) % 24.0 - 0.0) ** 2 / 2.0)
    raise ValueError(f"unknown diurnal shape {shape}")


def diurnal_weights(shape: DiurnalShape, hours: np.ndarray) -> np.ndarray:
    """Vectorized :func:`diurnal_weight` over an array of hours."""
    if shape is DiurnalShape.FLAT:
        return np.ones_like(hours)
    if shape is DiurnalShape.HUMAN:
        return 1.0 + 0.9 * np.sin((hours - 9.0) / 24.0 * 2.0 * np.pi)
    if shape is DiurnalShape.NIGHTLY_BATCH:
        return 0.25 + 8.0 * np.exp(-(((hours - 2.0) % 24.0) ** 2) / 2.0)
    raise ValueError(f"unknown diurnal shape {shape}")


def sample_event_hours(
    count: int, shape: DiurnalShape, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``count`` event hours-of-day following the diurnal shape.

    Rejection sampling against the shape's envelope; cheap because the
    envelopes are bounded.
    """
    if count <= 0:
        return np.empty(0)
    envelope = {
        DiurnalShape.FLAT: 1.0,
        DiurnalShape.HUMAN: 1.9,
        DiurnalShape.NIGHTLY_BATCH: 8.25,
    }[shape]
    hours = np.empty(count)
    filled = 0
    while filled < count:
        batch = max(16, 2 * (count - filled))
        candidates = rng.random(batch) * 24.0
        accept = rng.random(batch) * envelope <= diurnal_weights(shape, candidates)
        accepted = candidates[accept][: count - filled]
        hours[filled : filled + len(accepted)] = accepted
        filled += len(accepted)
    return hours


@dataclass
class TrafficModel:
    """Per-day traffic generator for one device.

    Rates are per-day means for an *average* device of the profile; the
    device-specific ``intensity`` multiplier (drawn in
    :meth:`materialize`) spreads the population into a heavy tail.

    ``data_mb_mu``/``data_mb_sigma`` parameterize a lognormal for the
    day's transferred megabytes (when any data activity happens).
    """

    signaling_per_day: float
    calls_per_day: float
    data_sessions_per_day: float
    data_mb_mu: float = 0.0
    data_mb_sigma: float = 1.0
    diurnal: DiurnalShape = DiurnalShape.HUMAN
    intensity_sigma: float = 0.6
    intensity: float = 1.0

    def __post_init__(self) -> None:
        for name in ("signaling_per_day", "calls_per_day", "data_sessions_per_day"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.intensity <= 0:
            raise ValueError("intensity must be positive")

    def materialize(self, rng: np.random.Generator) -> "TrafficModel":
        """Return a copy with a device-specific intensity drawn.

        Lognormal with unit median; ``intensity_sigma`` controls the
        spread (0 gives a homogeneous population).
        """
        intensity = float(np.exp(rng.normal(0.0, self.intensity_sigma)))
        return TrafficModel(
            signaling_per_day=self.signaling_per_day,
            calls_per_day=self.calls_per_day,
            data_sessions_per_day=self.data_sessions_per_day,
            data_mb_mu=self.data_mb_mu,
            data_mb_sigma=self.data_mb_sigma,
            diurnal=self.diurnal,
            intensity_sigma=self.intensity_sigma,
            intensity=intensity,
        )

    # -- per-day draws -----------------------------------------------------

    def draw_signaling_count(self, rng: np.random.Generator) -> int:
        return int(rng.poisson(self.signaling_per_day * self.intensity))

    def draw_call_count(self, rng: np.random.Generator) -> int:
        return int(rng.poisson(self.calls_per_day * self.intensity))

    def draw_data_sessions(self, rng: np.random.Generator) -> int:
        return int(rng.poisson(self.data_sessions_per_day * self.intensity))

    def draw_session_bytes(self, rng: np.random.Generator) -> int:
        """Bytes for one data session (lognormal megabytes)."""
        mb = float(np.exp(rng.normal(self.data_mb_mu, self.data_mb_sigma)))
        return max(1, int(mb * 1_000_000))

    def draw_call_duration_s(self, rng: np.random.Generator) -> float:
        """Call duration: exponential, 90 s mean."""
        return float(rng.exponential(90.0))

    def event_timestamps(
        self, day: int, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Timestamps (seconds since epoch) for ``count`` events on ``day``."""
        hours = sample_event_hours(count, self.diurnal, rng)
        return day * 86400.0 + np.sort(hours) * 3600.0
