"""The device model: identity, ground-truth class and behaviour hooks.

``Device`` is the unit both simulators iterate over.  It binds together
the SIM (IMSI + issuing operator), the equipment (IMEI/TAC + catalog
model), the ground-truth class and vertical, and the behaviour models
the simulator rolls forward.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.cellular.identifiers import IMEI, IMSI, hash_device_id
from repro.cellular.operators import Operator
from repro.cellular.tac_db import DeviceModel


class DeviceClass(str, Enum):
    """Ground-truth device class (the classifier's target)."""

    SMART = "smart"
    FEAT = "feat"
    M2M = "m2m"


class IoTVertical(str, Enum):
    """The IoT vertical an M2M device serves.

    The paper analyses smart meters and connected cars in depth (§7) and
    names several more (wearables, logistics, payment) in passing; we
    model all of them so the verticals bench has realistic contrast.
    """

    SMART_METER = "smart_meter"
    CONNECTED_CAR = "connected_car"
    WEARABLE = "wearable"
    PAYMENT = "payment"
    LOGISTICS = "logistics"
    OTHER = "other"


class SimProvenance(str, Enum):
    """Who issued the device's SIM, relative to the observing MNO.

    This is the ground-truth counterpart of the roaming label's X
    component (§4.2): Home MNO, hosted Virtual operator, National
    competitor, or International operator.
    """

    HOME = "H"
    MVNO = "V"
    NATIONAL = "N"
    INTERNATIONAL = "I"


@dataclass
class Device:
    """A simulated device: identity plus ground truth.

    ``device_id`` is the one-way hash of the IMSI, matching the
    anonymization of the paper's datasets.  ``behavior`` keys into the
    profile table of :mod:`repro.devices.profiles`; the simulator
    resolves it to concrete mobility/traffic models.
    """

    imsi: IMSI
    imei: IMEI
    model: Optional[DeviceModel]
    home_operator: Operator
    device_class: DeviceClass
    vertical: Optional[IoTVertical] = None
    provenance: SimProvenance = SimProvenance.HOME
    behavior: str = "default"
    device_id: str = field(init=False)

    def __post_init__(self) -> None:
        if self.imsi.plmn != self.home_operator.plmn:
            raise ValueError(
                f"IMSI PLMN {self.imsi.plmn} does not match home operator "
                f"{self.home_operator.name} ({self.home_operator.plmn})"
            )
        if self.device_class is DeviceClass.M2M and self.vertical is None:
            raise ValueError("M2M devices must declare a vertical")
        if self.device_class is not DeviceClass.M2M and self.vertical is not None:
            raise ValueError(f"{self.device_class.value} devices have no vertical")
        if self.model is not None and self.imei.tac != self.model.tac:
            raise ValueError(
                f"IMEI TAC {self.imei.tac} does not match catalog model TAC "
                f"{self.model.tac}"
            )
        self.device_id = hash_device_id(str(self.imsi))

    @property
    def sim_plmn(self) -> str:
        return str(self.home_operator.plmn)

    @property
    def tac(self) -> int:
        return self.imei.tac

    @property
    def is_m2m(self) -> bool:
        return self.device_class is DeviceClass.M2M

    def __repr__(self) -> str:
        vertical = f", vertical={self.vertical.value}" if self.vertical else ""
        return (
            f"Device({self.device_id}, class={self.device_class.value}{vertical}, "
            f"home={self.home_operator.name})"
        )
