"""Columnar data plane: struct-of-arrays event storage with interning.

The row-oriented pipeline allocates one frozen dataclass per record and
hashes the same small string vocabulary (device IDs, PLMNs, APNs) once
per row.  This package stores each record stream as parallel ``array``
columns with dictionary-encoded strings instead, which is what lets the
catalog kernel scan interned int columns
(:meth:`repro.core.catalog.CatalogBuilder.build_from_columns`) and the
sharded executor exchange column blocks rather than row lists.

Everything here is stdlib-only (the ``array`` module); ``from_rows`` /
``to_rows`` round-trip exactly, so the columnar plane is a drop-in
alternative, never a fork, of the row plane.
"""

from repro.columnar.store import (
    NULL_ID,
    ColumnPools,
    ColumnarRadioEvents,
    ColumnarServiceRecords,
    StringPool,
    from_record_streams,
)

__all__ = [
    "NULL_ID",
    "ColumnPools",
    "ColumnarRadioEvents",
    "ColumnarServiceRecords",
    "StringPool",
    "from_record_streams",
]
