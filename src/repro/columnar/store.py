"""Struct-of-arrays event storage with string interning (stdlib only).

The row-oriented data plane allocates one frozen dataclass per record and
re-hashes the same handful of strings (device IDs, PLMNs, APNs) millions
of times.  This module is the columnar alternative: each record stream
becomes a bundle of parallel ``array`` columns — numeric fields stored
unboxed, string fields dictionary-encoded as integer ids into a shared
:class:`StringPool`.  Scans touch flat C buffers and compare small ints;
the catalog kernel (:meth:`repro.core.catalog.CatalogBuilder.
build_from_columns`) runs on these columns directly.

Layout notes:

- ``day`` is derived from the timestamp (``ts // 86400``) but cached as
  its own column at ingest — the catalog groups by day on every scan, so
  paying the division once per row at append time removes it from every
  subsequent scan.
- Enum-valued fields (interface, message type, result code, service
  type) are stored as indices into the canonical append-only orders
  exported by :mod:`repro.signaling` (``RADIO_INTERFACES``,
  ``MESSAGE_TYPES``, ``RESULT_CODES``, ``SERVICE_TYPES``).
- TACs are already numeric in the row schema and need no interning; they
  are stored as a plain integer column.
- ``from_rows``/``to_rows`` round-trip exactly, so every existing
  row-oriented consumer keeps working; ``select`` slices a store by row
  index while sharing the pools, which is how the sharded executor
  exchanges interned column blocks instead of row lists.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.signaling.cdr import SERVICE_TYPES, ServiceRecord
from repro.signaling.events import RADIO_INTERFACES, RadioEvent
from repro.signaling.procedures import MESSAGE_TYPES, RESULT_CODES

#: Sentinel id for a NULL string (e.g. a voice CDR's absent APN).
NULL_ID = -1

#: A column buffer: a materialized ``array``, or (on a zero-copy
#: attached store) a typed ``memoryview`` over an mmap'd block.
Column = Union["array[int]", "array[float]", memoryview]

_INTERFACE_INDEX = {member: index for index, member in enumerate(RADIO_INTERFACES)}
_MESSAGE_INDEX = {member: index for index, member in enumerate(MESSAGE_TYPES)}
_RESULT_INDEX = {member: index for index, member in enumerate(RESULT_CODES)}
_SERVICE_INDEX = {member: index for index, member in enumerate(SERVICE_TYPES)}


class StringPool:
    """Interning dictionary: string -> dense int id, first-seen order.

    Ids are assigned sequentially from 0 in interning order and are
    never reassigned, so any id handed out stays valid for the pool's
    lifetime (including across :meth:`merge_from` calls, which only
    append).  Interning is idempotent: the same string always returns
    the same id.
    """

    __slots__ = ("_ids", "_strings")

    def __init__(self, strings: Optional[Iterable[str]] = None) -> None:
        self._ids: Dict[str, int] = {}
        self._strings: List[str] = []
        if strings is not None:
            for text in strings:
                self.intern(text)

    def intern(self, text: str) -> int:
        """Id for ``text``, assigning the next dense id on first sight."""
        ids = self._ids
        hit = ids.get(text)
        if hit is not None:
            return hit
        new_id = len(self._strings)
        ids[text] = new_id
        self._strings.append(text)
        return new_id

    def intern_optional(self, text: Optional[str]) -> int:
        """Like :meth:`intern`, mapping None to :data:`NULL_ID`."""
        return NULL_ID if text is None else self.intern(text)

    def id_of(self, text: str) -> int:
        """Id of an already-interned string (KeyError when absent)."""
        return self._ids[text]

    def lookup(self, string_id: int) -> str:
        """The string behind ``string_id`` (IndexError when unknown)."""
        return self._strings[string_id]

    def lookup_optional(self, string_id: int) -> Optional[str]:
        """Like :meth:`lookup`, mapping :data:`NULL_ID` back to None."""
        return None if string_id == NULL_ID else self._strings[string_id]

    @property
    def strings(self) -> Tuple[str, ...]:
        """Every interned string, in id order."""
        return tuple(self._strings)

    def merge_from(self, other: "StringPool") -> List[int]:
        """Absorb ``other``'s vocabulary; return the id remap table.

        Existing ids in ``self`` are untouched (stable across merges);
        strings new to ``self`` get fresh ids appended.  The returned
        list maps each of ``other``'s ids to its id in ``self``, so a
        column encoded against ``other`` can be re-encoded with one
        indexed pass.
        """
        return [self.intern(text) for text in other._strings]

    def __contains__(self, text: object) -> bool:
        return text in self._ids

    def __len__(self) -> int:
        return len(self._strings)

    def __repr__(self) -> str:
        return f"StringPool({len(self)} strings)"


@dataclass
class ColumnPools:
    """The interning dictionaries one columnar dataset shares.

    One pool per string domain: device IDs, PLMNs (SIM and visited share
    a vocabulary), and APNs.  TACs are numeric end to end and never pass
    through a pool.
    """

    devices: StringPool = field(default_factory=StringPool)
    plmns: StringPool = field(default_factory=StringPool)
    apns: StringPool = field(default_factory=StringPool)


def _select(column: Column, indices: Sequence[int]) -> array:
    # map() over the bound __getitem__ stays in C for the whole gather,
    # which is measurably faster than a generator with an index loop.
    # Zero-copy attached stores carry memoryview columns, which spell
    # their typecode ``format``.
    typecode = getattr(column, "typecode", None) or column.format
    return array(typecode, map(column.__getitem__, indices))


class ColumnarRadioEvents:
    """Struct-of-arrays storage for :class:`RadioEvent` streams.

    Columns (parallel, one entry per event): ``device_ids`` /
    ``sim_plmns`` interned, ``timestamps`` / ``days`` / ``tacs`` /
    ``sector_ids`` numeric, ``interfaces`` / ``event_types`` /
    ``results`` enum indices.
    """

    __slots__ = (
        "pools",
        "device_ids",
        "timestamps",
        "days",
        "sim_plmns",
        "tacs",
        "sector_ids",
        "interfaces",
        "event_types",
        "results",
    )

    def __init__(self, pools: Optional[ColumnPools] = None) -> None:
        self.pools = pools if pools is not None else ColumnPools()
        self.device_ids = array("q")
        self.timestamps = array("d")
        self.days = array("q")
        self.sim_plmns = array("q")
        self.tacs = array("q")
        self.sector_ids = array("q")
        self.interfaces = array("b")
        self.event_types = array("b")
        self.results = array("b")

    # -- ingestion -----------------------------------------------------------

    def append(self, event: RadioEvent) -> None:
        """Encode one row onto the columns."""
        pools = self.pools
        self.device_ids.append(pools.devices.intern(event.device_id))
        timestamp = event.timestamp
        self.timestamps.append(timestamp)
        self.days.append(int(timestamp // 86400.0))
        self.sim_plmns.append(pools.plmns.intern(event.sim_plmn))
        self.tacs.append(event.tac)
        self.sector_ids.append(event.sector_id)
        self.interfaces.append(_INTERFACE_INDEX[event.interface])
        self.event_types.append(_MESSAGE_INDEX[event.event_type])
        self.results.append(_RESULT_INDEX[event.result])

    @classmethod
    def from_rows(
        cls,
        events: Iterable[RadioEvent],
        pools: Optional[ColumnPools] = None,
    ) -> "ColumnarRadioEvents":
        """Encode a row stream (preserving order) into a new store."""
        store = cls(pools)
        append = store.append
        for event in events:
            append(event)
        return store

    # -- row materialization -------------------------------------------------

    def row(self, index: int) -> RadioEvent:
        """Materialize one row back into its dataclass form."""
        pools = self.pools
        return RadioEvent(
            device_id=pools.devices.lookup(self.device_ids[index]),
            timestamp=self.timestamps[index],
            sim_plmn=pools.plmns.lookup(self.sim_plmns[index]),
            tac=self.tacs[index],
            sector_id=self.sector_ids[index],
            interface=RADIO_INTERFACES[self.interfaces[index]],
            event_type=MESSAGE_TYPES[self.event_types[index]],
            result=RESULT_CODES[self.results[index]],
        )

    def rows_at(self, indices: Iterable[int]) -> List[RadioEvent]:
        """Materialize the rows at ``indices``, in the given order.

        Batched: pool string tables and column buffers are hoisted into
        locals once, so each row costs one dataclass construction plus
        plain list indexing — no per-row method dispatch or pool lookup.
        """
        devices = self.pools.devices._strings
        plmns = self.pools.plmns._strings
        device_ids = self.device_ids
        timestamps = self.timestamps
        sim_plmns = self.sim_plmns
        tacs = self.tacs
        sector_ids = self.sector_ids
        interfaces = self.interfaces
        event_types = self.event_types
        results = self.results
        return [
            RadioEvent(
                device_id=devices[device_ids[i]],
                timestamp=timestamps[i],
                sim_plmn=plmns[sim_plmns[i]],
                tac=tacs[i],
                sector_id=sector_ids[i],
                interface=RADIO_INTERFACES[interfaces[i]],
                event_type=MESSAGE_TYPES[event_types[i]],
                result=RESULT_CODES[results[i]],
            )
            for i in indices
        ]

    def to_rows(self) -> List[RadioEvent]:
        """Materialize every row, in storage order (exact round-trip)."""
        return self.rows_at(range(len(self)))

    def iter_rows(self) -> Iterator[RadioEvent]:
        for i in range(len(self)):
            yield self.row(i)

    # -- slicing -------------------------------------------------------------

    def extend_from(
        self,
        other: "ColumnarRadioEvents",
        indices: Optional[Sequence[int]] = None,
    ) -> None:
        """Append ``other``'s rows (or the rows at ``indices``) onto self.

        Interned columns are re-encoded through the id remap tables from
        :meth:`StringPool.merge_from` unless the stores already share
        pools, so concatenating shards encoded against per-shard pools
        is one indexed pass per column — no row materialization.
        ``other`` may be a zero-copy attached store (memoryview columns,
        e.g. over an mmap'd spill file): only ``self``'s columns mutate,
        and the copied values outlive ``other``'s backing buffer.
        """
        if other.pools is self.pools:
            dev_map: Optional[List[int]] = None
            plmn_map: Optional[List[int]] = None
        else:
            dev_map = self.pools.devices.merge_from(other.pools.devices)
            plmn_map = self.pools.plmns.merge_from(other.pools.plmns)
        devices = other.device_ids if indices is None else map(
            other.device_ids.__getitem__, indices
        )
        plmns = other.sim_plmns if indices is None else map(
            other.sim_plmns.__getitem__, indices
        )
        self.device_ids.extend(
            devices if dev_map is None else map(dev_map.__getitem__, devices)
        )
        self.sim_plmns.extend(
            plmns if plmn_map is None else map(plmn_map.__getitem__, plmns)
        )
        for name in (
            "timestamps", "days", "tacs", "sector_ids",
            "interfaces", "event_types", "results",
        ):
            column = getattr(other, name)
            getattr(self, name).extend(
                column if indices is None else map(column.__getitem__, indices)
            )

    def select(self, indices: Sequence[int]) -> "ColumnarRadioEvents":
        """A new store holding the rows at ``indices``, sharing pools."""
        out = ColumnarRadioEvents(self.pools)
        out.device_ids = _select(self.device_ids, indices)
        out.timestamps = _select(self.timestamps, indices)
        out.days = _select(self.days, indices)
        out.sim_plmns = _select(self.sim_plmns, indices)
        out.tacs = _select(self.tacs, indices)
        out.sector_ids = _select(self.sector_ids, indices)
        out.interfaces = _select(self.interfaces, indices)
        out.event_types = _select(self.event_types, indices)
        out.results = _select(self.results, indices)
        return out

    def __len__(self) -> int:
        return len(self.device_ids)

    @property
    def nbytes(self) -> int:
        """Total column buffer size in bytes (excludes the pools)."""
        return sum(
            len(column) * column.itemsize
            for column in (
                self.device_ids,
                self.timestamps,
                self.days,
                self.sim_plmns,
                self.tacs,
                self.sector_ids,
                self.interfaces,
                self.event_types,
                self.results,
            )
        )

    def __repr__(self) -> str:
        return f"ColumnarRadioEvents({len(self)} rows, {self.nbytes} column bytes)"


class ColumnarServiceRecords:
    """Struct-of-arrays storage for :class:`ServiceRecord` streams.

    ``apns`` uses :data:`NULL_ID` for voice CDRs (which carry no APN);
    ``services`` indexes the canonical ``SERVICE_TYPES`` order.
    """

    __slots__ = (
        "pools",
        "device_ids",
        "timestamps",
        "days",
        "sim_plmns",
        "visited_plmns",
        "services",
        "durations",
        "bytes_totals",
        "apns",
    )

    def __init__(self, pools: Optional[ColumnPools] = None) -> None:
        self.pools = pools if pools is not None else ColumnPools()
        self.device_ids = array("q")
        self.timestamps = array("d")
        self.days = array("q")
        self.sim_plmns = array("q")
        self.visited_plmns = array("q")
        self.services = array("b")
        self.durations = array("d")
        self.bytes_totals = array("q")
        self.apns = array("q")

    # -- ingestion -----------------------------------------------------------

    def append(self, record: ServiceRecord) -> None:
        """Encode one row onto the columns."""
        pools = self.pools
        self.device_ids.append(pools.devices.intern(record.device_id))
        timestamp = record.timestamp
        self.timestamps.append(timestamp)
        self.days.append(int(timestamp // 86400.0))
        self.sim_plmns.append(pools.plmns.intern(record.sim_plmn))
        self.visited_plmns.append(pools.plmns.intern(record.visited_plmn))
        self.services.append(_SERVICE_INDEX[record.service])
        self.durations.append(record.duration_s)
        self.bytes_totals.append(record.bytes_total)
        self.apns.append(pools.apns.intern_optional(record.apn))

    @classmethod
    def from_rows(
        cls,
        records: Iterable[ServiceRecord],
        pools: Optional[ColumnPools] = None,
    ) -> "ColumnarServiceRecords":
        """Encode a row stream (preserving order) into a new store."""
        store = cls(pools)
        append = store.append
        for record in records:
            append(record)
        return store

    # -- row materialization -------------------------------------------------

    def row(self, index: int) -> ServiceRecord:
        """Materialize one row back into its dataclass form."""
        pools = self.pools
        return ServiceRecord(
            device_id=pools.devices.lookup(self.device_ids[index]),
            timestamp=self.timestamps[index],
            sim_plmn=pools.plmns.lookup(self.sim_plmns[index]),
            visited_plmn=pools.plmns.lookup(self.visited_plmns[index]),
            service=SERVICE_TYPES[self.services[index]],
            duration_s=self.durations[index],
            bytes_total=self.bytes_totals[index],
            apn=pools.apns.lookup_optional(self.apns[index]),
        )

    def rows_at(self, indices: Iterable[int]) -> List[ServiceRecord]:
        """Materialize the rows at ``indices``, in the given order.

        Batched like :meth:`ColumnarRadioEvents.rows_at`: one dataclass
        construction per row over hoisted locals.  The APN null check
        stays inline (``NULL_ID`` maps back to None).
        """
        devices = self.pools.devices._strings
        plmns = self.pools.plmns._strings
        apn_strings = self.pools.apns._strings
        device_ids = self.device_ids
        timestamps = self.timestamps
        sim_plmns = self.sim_plmns
        visited_plmns = self.visited_plmns
        services = self.services
        durations = self.durations
        bytes_totals = self.bytes_totals
        apns = self.apns
        return [
            ServiceRecord(
                device_id=devices[device_ids[i]],
                timestamp=timestamps[i],
                sim_plmn=plmns[sim_plmns[i]],
                visited_plmn=plmns[visited_plmns[i]],
                service=SERVICE_TYPES[services[i]],
                duration_s=durations[i],
                bytes_total=bytes_totals[i],
                apn=None if apns[i] == NULL_ID else apn_strings[apns[i]],
            )
            for i in indices
        ]

    def to_rows(self) -> List[ServiceRecord]:
        """Materialize every row, in storage order (exact round-trip)."""
        return self.rows_at(range(len(self)))

    def iter_rows(self) -> Iterator[ServiceRecord]:
        for i in range(len(self)):
            yield self.row(i)

    # -- slicing -------------------------------------------------------------

    def extend_from(
        self,
        other: "ColumnarServiceRecords",
        indices: Optional[Sequence[int]] = None,
    ) -> None:
        """Append ``other``'s rows (or the rows at ``indices``) onto self.

        Columnar twin of :meth:`ColumnarRadioEvents.extend_from`; the
        APN column remaps through :data:`NULL_ID` unchanged (a voice
        CDR's absent APN is null in every vocabulary).
        """
        if other.pools is self.pools:
            dev_map: Optional[List[int]] = None
            plmn_map: Optional[List[int]] = None
            apn_map: Optional[List[int]] = None
        else:
            dev_map = self.pools.devices.merge_from(other.pools.devices)
            plmn_map = self.pools.plmns.merge_from(other.pools.plmns)
            apn_map = self.pools.apns.merge_from(other.pools.apns)
        row_range: Sequence[int] = (
            range(len(other)) if indices is None else indices
        )
        devices = map(other.device_ids.__getitem__, row_range)
        sims = map(other.sim_plmns.__getitem__, row_range)
        visited = map(other.visited_plmns.__getitem__, row_range)
        apns = map(other.apns.__getitem__, row_range)
        if dev_map is None:
            self.device_ids.extend(devices)
            self.sim_plmns.extend(sims)
            self.visited_plmns.extend(visited)
            self.apns.extend(apns)
        else:
            assert plmn_map is not None and apn_map is not None
            self.device_ids.extend(map(dev_map.__getitem__, devices))
            self.sim_plmns.extend(map(plmn_map.__getitem__, sims))
            self.visited_plmns.extend(map(plmn_map.__getitem__, visited))
            self.apns.extend(
                apn_map[apn] if apn != NULL_ID else NULL_ID for apn in apns
            )
        for name in ("timestamps", "days", "services", "durations", "bytes_totals"):
            column = getattr(other, name)
            getattr(self, name).extend(
                column if indices is None else map(column.__getitem__, indices)
            )

    def select(self, indices: Sequence[int]) -> "ColumnarServiceRecords":
        """A new store holding the rows at ``indices``, sharing pools."""
        out = ColumnarServiceRecords(self.pools)
        out.device_ids = _select(self.device_ids, indices)
        out.timestamps = _select(self.timestamps, indices)
        out.days = _select(self.days, indices)
        out.sim_plmns = _select(self.sim_plmns, indices)
        out.visited_plmns = _select(self.visited_plmns, indices)
        out.services = _select(self.services, indices)
        out.durations = _select(self.durations, indices)
        out.bytes_totals = _select(self.bytes_totals, indices)
        out.apns = _select(self.apns, indices)
        return out

    def __len__(self) -> int:
        return len(self.device_ids)

    @property
    def nbytes(self) -> int:
        """Total column buffer size in bytes (excludes the pools)."""
        return sum(
            len(column) * column.itemsize
            for column in (
                self.device_ids,
                self.timestamps,
                self.days,
                self.sim_plmns,
                self.visited_plmns,
                self.services,
                self.durations,
                self.bytes_totals,
                self.apns,
            )
        )

    def __repr__(self) -> str:
        return f"ColumnarServiceRecords({len(self)} rows, {self.nbytes} column bytes)"


def from_record_streams(
    radio_events: Iterable[RadioEvent],
    service_records: Iterable[ServiceRecord],
    pools: Optional[ColumnPools] = None,
) -> Tuple[ColumnarRadioEvents, ColumnarServiceRecords]:
    """Encode both MNO record streams against one shared pool set."""
    shared = pools if pools is not None else ColumnPools()
    events = ColumnarRadioEvents.from_rows(radio_events, shared)
    records = ColumnarServiceRecords.from_rows(service_records, shared)
    return events, records
