"""CRC-framed column-block primitives shared by checkpoints and transport.

Both the durable checkpoint store (:mod:`repro.runtime.serialize`) and
the zero-copy shard exchange (:mod:`repro.parallel.transport`) move
columnar stores as a single framed byte block: a JSON header describing
pool vocabularies and column layout, followed by each column's raw
``array`` buffer.  This module owns the shared primitives — framing,
column chunking, pool encode/decode — so the two consumers cannot drift
apart on the wire format.

Framing (format version |BLOCK_VERSION|)::

    MAGIC (4) | version u32 | crc32(body) u32 | len(body) u64 | body
    body = header_len u32 | header JSON (utf-8) | column buffers

The CRC covers the whole body, so a torn write (truncated file, partial
rename source) or bit rot is detected before a single row is decoded —
:class:`CheckpointCorruption` is raised, never a silently-wrong block.
Shared-memory segments may be page-padded past the block's end, so
:func:`block_length` recovers the exact framed length for consumers
that read from a buffer larger than the block itself.
"""

from __future__ import annotations

import json
import struct
import zlib
from array import array
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.columnar.store import (
    ColumnPools,
    ColumnarRadioEvents,
    ColumnarServiceRecords,
    StringPool,
)

MAGIC = b"RPCK"
BLOCK_VERSION = 1

_FRAME = struct.Struct("<4sIIQ")
_HEADER_LEN = struct.Struct("<I")

#: Column storage order, fixed per format version.  Mirrors the
#: ``__slots__`` of the columnar stores minus ``pools``.
RADIO_COLUMNS = (
    "device_ids",
    "timestamps",
    "days",
    "sim_plmns",
    "tacs",
    "sector_ids",
    "interfaces",
    "event_types",
    "results",
)
SERVICE_COLUMNS = (
    "device_ids",
    "timestamps",
    "days",
    "sim_plmns",
    "visited_plmns",
    "services",
    "durations",
    "bytes_totals",
    "apns",
)


class CheckpointError(RuntimeError):
    """Base class for durable-run checkpoint failures."""


class CheckpointCorruption(CheckpointError):
    """A persisted payload failed checksum or format validation."""


# -- framing -----------------------------------------------------------------

def build_block(header: Dict[str, Any], chunks: Sequence[bytes]) -> bytes:
    """Frame ``header`` (JSON, key order preserved) plus raw buffers."""
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    body = b"".join([_HEADER_LEN.pack(len(header_bytes)), header_bytes, *chunks])
    frame = _FRAME.pack(MAGIC, BLOCK_VERSION, zlib.crc32(body), len(body))
    return frame + body


def _validate_frame(data: Union[bytes, memoryview]) -> Tuple[int, int]:
    """Validate magic/version; return the recorded (crc, body length)."""
    if len(data) < _FRAME.size:
        raise CheckpointCorruption(
            f"block too short for frame ({len(data)} bytes)"
        )
    magic, version, crc, body_len = _FRAME.unpack_from(data)
    if magic != MAGIC:
        raise CheckpointCorruption(f"bad magic {bytes(magic)!r}")
    if version != BLOCK_VERSION:
        raise CheckpointCorruption(
            f"block version {version} != supported {BLOCK_VERSION}"
        )
    return int(crc), int(body_len)


def block_length(data: Union[bytes, memoryview]) -> int:
    """Exact framed length of the block at the start of ``data``.

    Lets a consumer slice a block out of an oversized buffer (a
    page-padded shared-memory segment) before strict decoding.
    """
    _, body_len = _validate_frame(data)
    return _FRAME.size + body_len


def read_block(data: bytes) -> Tuple[Dict[str, Any], bytes, int]:
    """Validate a framed block; return (header, body, buffers offset).

    Strict about length: trailing bytes beyond the recorded body length
    are corruption (a torn or concatenated write), exactly as the
    durable checkpoint store requires.
    """
    crc, body_len = _validate_frame(data)
    body = data[_FRAME.size:]
    if len(body) != body_len:
        raise CheckpointCorruption(
            f"torn block: body holds {len(body)} of {body_len} bytes"
        )
    if zlib.crc32(body) != crc:
        raise CheckpointCorruption("block checksum mismatch")
    (header_len,) = _HEADER_LEN.unpack_from(body)
    offset = _HEADER_LEN.size
    header = json.loads(body[offset:offset + header_len].decode("utf-8"))
    return header, body, offset + header_len


def read_block_view(data: memoryview) -> Tuple[Dict[str, Any], memoryview, int]:
    """:func:`read_block` over a borrowed buffer, without copying the body.

    Same validation (magic, version, strict length, CRC over the whole
    body) but the returned body is a ``memoryview`` slice of ``data`` —
    typically an ``mmap`` — so column buffers can be attached zero-copy.
    The caller owns the buffer's lifetime: every view derived from the
    returned body must be released before the backing mmap is closed.
    """
    crc, body_len = _validate_frame(data)
    if len(data) - _FRAME.size != body_len:
        raise CheckpointCorruption(
            f"torn block: body holds {len(data) - _FRAME.size} of {body_len} bytes"
        )
    body = data[_FRAME.size:]
    try:
        if zlib.crc32(body) != crc:
            raise CheckpointCorruption("block checksum mismatch")
        (header_len,) = _HEADER_LEN.unpack_from(body)
        offset = _HEADER_LEN.size
        header_view = body[offset:offset + header_len]
        try:
            header = json.loads(bytes(header_view).decode("utf-8"))
        finally:
            header_view.release()
    except BaseException:
        # The raised exception's traceback would otherwise keep this
        # view alive past the caller's cleanup, blocking mmap.close().
        body.release()
        raise
    return header, body, offset + header_len


# -- column chunking ---------------------------------------------------------

ColumnSpec = List[Any]  # [name, typecode, nbytes] in the JSON header


def column_chunks(
    store: Union[ColumnarRadioEvents, ColumnarServiceRecords],
    names: Sequence[str],
) -> Tuple[List[ColumnSpec], List[bytes]]:
    """Spec rows and raw buffers for ``store``'s columns, in order."""
    specs: List[ColumnSpec] = []
    chunks: List[bytes] = []
    for name in names:
        column: array = getattr(store, name)
        data = column.tobytes()
        specs.append([name, column.typecode, len(data)])
        chunks.append(data)
    return specs, chunks


def load_column_chunks(
    store: Union[ColumnarRadioEvents, ColumnarServiceRecords],
    specs: Sequence[ColumnSpec],
    body: bytes,
    offset: int,
) -> int:
    """Rehydrate columns from ``body`` at ``offset``; return new offset."""
    for name, typecode, nbytes in specs:
        column = array(typecode)
        column.frombytes(body[offset:offset + nbytes])
        offset += nbytes
        setattr(store, name, column)
    return offset


def load_column_views(
    store: Union[ColumnarRadioEvents, ColumnarServiceRecords],
    specs: Sequence[ColumnSpec],
    body: memoryview,
    offset: int,
) -> int:
    """Attach columns as typed views over ``body``; return new offset.

    The zero-copy twin of :func:`load_column_chunks`: each column
    becomes ``body[off:off+nbytes].cast(typecode)`` — a typed
    ``memoryview`` over the caller's buffer (typically an mmap'd spill
    file) instead of a materialized ``array``.  Attached stores support
    the read path (``len``, indexing/``zip`` scans, ``nbytes``,
    ``rows_at``/``to_rows``); mutation requires copying out first (see
    ``extend_from`` on the stores).  Every attached view must be
    released before the backing buffer is closed.
    """
    for name, typecode, nbytes in specs:
        chunk = body[offset:offset + nbytes]
        offset += nbytes
        try:
            setattr(store, name, chunk.cast(typecode))
        except BaseException:
            # Don't let the traceback pin the un-cast slice: the caller
            # must be able to close the backing mmap after cleanup.
            chunk.release()
            raise
    return offset


# -- pool vocabularies -------------------------------------------------------

def pools_header(pools: ColumnPools) -> Dict[str, List[str]]:
    """The JSON-serializable vocabulary of a pool set, in id order."""
    return {
        "devices": list(pools.devices.strings),
        "plmns": list(pools.plmns.strings),
        "apns": list(pools.apns.strings),
    }


def pools_from_header(header: Dict[str, List[str]]) -> ColumnPools:
    """Rebuild a pool set from :func:`pools_header` output."""
    return ColumnPools(
        devices=StringPool(header["devices"]),
        plmns=StringPool(header["plmns"]),
        apns=StringPool(header["apns"]),
    )


def pack_pools(pools: ColumnPools) -> bytes:
    """A framed block holding only pool vocabularies (no columns)."""
    return build_block({"kind": "pools", "pools": pools_header(pools)}, ())


def unpack_pools(data: bytes) -> ColumnPools:
    """Decode a :func:`pack_pools` block."""
    header, _, _ = read_block(data)
    if header.get("kind") != "pools":
        raise CheckpointCorruption(
            f"expected a pools block, got kind {header.get('kind')!r}"
        )
    return pools_from_header(header["pools"])


# -- shard column blocks -----------------------------------------------------

def pack_shard_block(
    events: ColumnarRadioEvents,
    records: ColumnarServiceRecords,
    include_pools: bool,
) -> bytes:
    """Frame one shard's columns, optionally self-contained.

    With ``include_pools=True`` the pool vocabularies ride in the
    header (self-contained fallback transport); with ``False`` the
    block holds columns only and decoding requires the exchange's
    shared pools block.
    """
    radio_spec, radio_chunks = column_chunks(events, RADIO_COLUMNS)
    service_spec, service_chunks = column_chunks(records, SERVICE_COLUMNS)
    header: Dict[str, Any] = {"kind": "shard"}
    if include_pools:
        header["pools"] = pools_header(events.pools)
    header["radio"] = radio_spec
    header["service"] = service_spec
    return build_block(header, [*radio_chunks, *service_chunks])


def unpack_shard_block(
    data: bytes,
    pools: Optional[ColumnPools] = None,
) -> Tuple[ColumnarRadioEvents, ColumnarServiceRecords]:
    """Decode a shard block against ``pools`` (or its embedded pools)."""
    header, body, offset = read_block(data)
    if header.get("kind") != "shard":
        raise CheckpointCorruption(
            f"expected a shard block, got kind {header.get('kind')!r}"
        )
    if pools is None:
        if "pools" not in header:
            raise CheckpointCorruption(
                "shard block has no embedded pools and none were supplied"
            )
        pools = pools_from_header(header["pools"])
    events = ColumnarRadioEvents(pools)
    offset = load_column_chunks(events, header["radio"], body, offset)
    records = ColumnarServiceRecords(pools)
    load_column_chunks(records, header["service"], body, offset)
    return events, records
