"""JSONL serialization for the three record types, with resilient ingest.

Datasets are expensive to generate at scale, so the record streams can
be written once and re-read by any analysis.  JSON Lines keeps the
format greppable and append-friendly; every record type serializes to a
flat dict of primitives.

Reading has two modes.  **Strict** (the default, and what the plain
``read_*`` functions do) raises on the first bad row, with the file and
line number in the error — an analysis should never silently run on a
partially-read dataset.  **Lenient** (``ingest_*`` with
``lenient=True``) quarantines bad rows into a typed
:class:`IngestReport` instead, classifying each error as

* ``parse`` — the line is not JSON at all (torn writes, truncation);
* ``schema`` — valid JSON that does not match the codec (missing field,
  unknown enum value, uncoercible type);
* ``semantic`` — a well-formed row whose values violate the record
  invariants (negative timestamp, malformed PLMN).

The taxonomy mirrors :class:`repro.faults.plan.CorruptionKind`, so every
fault the injection layer can put into a file lands in exactly one
bucket here.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Tuple,
    TypeVar,
    Union,
)

from repro.signaling.cdr import ServiceRecord, ServiceType
from repro.signaling.events import RadioEvent, RadioInterface
from repro.signaling.procedures import MessageType, ResultCode, SignalingTransaction

PathLike = Union[str, Path]

R = TypeVar("R")

#: How much of a bad raw line an IngestError keeps for debugging.
_EXCERPT_CHARS = 80


class IngestErrorKind(str, Enum):
    """Which layer rejected a quarantined row."""

    PARSE = "parse"
    SCHEMA = "schema"
    SEMANTIC = "semantic"


@dataclass(frozen=True)
class IngestError:
    """One quarantined row: where it was, why it was rejected."""

    path: str
    line_no: int
    kind: IngestErrorKind
    message: str
    excerpt: str = ""

    def __str__(self) -> str:
        return f"{self.path}:{self.line_no}: [{self.kind.value}] {self.message}"


@dataclass
class IngestReport:
    """Outcome of reading one (or several merged) JSONL files.

    ``n_rows`` counts physical non-blank lines; ``n_ok`` the rows that
    became records.  ``coverage`` is the fraction that survived — the
    number an analysis should report alongside any result computed from
    a lenient read.
    """

    path: str = ""
    n_rows: int = 0
    n_ok: int = 0
    errors: List[IngestError] = field(default_factory=list)

    @property
    def n_quarantined(self) -> int:
        return len(self.errors)

    @property
    def ok(self) -> bool:
        """True when nothing was quarantined."""
        return not self.errors

    @property
    def coverage(self) -> float:
        """Fraction of rows successfully ingested (1.0 for empty files)."""
        if self.n_rows == 0:
            return 1.0
        return self.n_ok / self.n_rows

    @property
    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for error in self.errors:
            counts[error.kind.value] = counts.get(error.kind.value, 0) + 1
        return dict(sorted(counts.items()))

    def merge(self, other: "IngestReport") -> "IngestReport":
        """Combine two file reports into one (paths joined with ``+``)."""
        return IngestReport(
            path=f"{self.path}+{other.path}" if self.path and other.path
            else (self.path or other.path),
            n_rows=self.n_rows + other.n_rows,
            n_ok=self.n_ok + other.n_ok,
            errors=[*self.errors, *other.errors],
        )


def _located(exc: BaseException, path: str, line_no: int) -> BaseException:
    """The same error, re-raised with its file location attached."""
    where = f"[{path}:{line_no}]"
    if isinstance(exc, json.JSONDecodeError):
        return json.JSONDecodeError(f"{exc.msg} {where}", exc.doc, exc.pos)
    if isinstance(exc, KeyError):
        missing = exc.args[0] if exc.args else "?"
        return KeyError(f"missing field {missing!r} {where}")
    return type(exc)(f"{exc} {where}")


def _iter_lines(path: PathLike) -> Iterator[Tuple[int, str]]:
    """(line_no, stripped line) for every non-blank line of a file."""
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.strip()
            if line:
                yield line_no, line


def write_jsonl(path: PathLike, rows: Iterable[Dict]) -> int:
    """Write dict rows to a JSONL file; returns the row count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: PathLike) -> Iterator[Dict]:
    """Yield dict rows from a JSONL file, skipping blank lines.

    Strict: a malformed line raises ``json.JSONDecodeError`` with the
    file and line number appended to the message.
    """
    for line_no, line in _iter_lines(path):
        try:
            yield json.loads(line)
        except json.JSONDecodeError as exc:
            raise _located(exc, str(path), line_no) from exc


def ingest_jsonl(
    path: PathLike, lenient: bool = False
) -> Tuple[List[Dict], IngestReport]:
    """Read raw dict rows with a report (parse-level taxonomy only)."""
    report = IngestReport(path=str(path))
    rows: List[Dict] = []
    for line_no, line in _iter_lines(path):
        report.n_rows += 1
        try:
            rows.append(json.loads(line))
            report.n_ok += 1
        except json.JSONDecodeError as exc:
            if not lenient:
                raise _located(exc, report.path, line_no) from exc
            report.errors.append(
                IngestError(
                    path=report.path,
                    line_no=line_no,
                    kind=IngestErrorKind.PARSE,
                    message=exc.msg,
                    excerpt=line[:_EXCERPT_CHARS],
                )
            )
    return rows, report


def _ingest(
    path: PathLike,
    fields_of: Callable[[Dict], Dict[str, Any]],
    construct: Callable[..., R],
    lenient: bool,
) -> Tuple[List[R], IngestReport]:
    """The shared strict/lenient codec read loop.

    The two-stage build separates the taxonomy: ``fields_of`` failures
    (missing key, enum lookup, type coercion) are *schema* errors;
    ``construct`` failures (the record's own ``__post_init__``
    validation) are *semantic* errors.
    """
    report = IngestReport(path=str(path))
    records: List[R] = []
    for line_no, line in _iter_lines(path):
        report.n_rows += 1
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            if not lenient:
                raise _located(exc, report.path, line_no) from exc
            report.errors.append(
                IngestError(
                    path=report.path,
                    line_no=line_no,
                    kind=IngestErrorKind.PARSE,
                    message=exc.msg,
                    excerpt=line[:_EXCERPT_CHARS],
                )
            )
            continue
        try:
            fields = fields_of(row)
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            if not lenient:
                raise _located(exc, report.path, line_no) from exc
            report.errors.append(
                IngestError(
                    path=report.path,
                    line_no=line_no,
                    kind=IngestErrorKind.SCHEMA,
                    message=str(exc),
                    excerpt=line[:_EXCERPT_CHARS],
                )
            )
            continue
        try:
            records.append(construct(**fields))
            report.n_ok += 1
        except (ValueError, TypeError, AttributeError) as exc:
            if not lenient:
                raise _located(exc, report.path, line_no) from exc
            # A ValueError out of the constructor is the record's own
            # invariant check (semantic); TypeError/AttributeError mean a
            # wrongly-typed value slipped past coercion (still schema).
            kind = (
                IngestErrorKind.SEMANTIC
                if isinstance(exc, ValueError)
                else IngestErrorKind.SCHEMA
            )
            report.errors.append(
                IngestError(
                    path=report.path,
                    line_no=line_no,
                    kind=kind,
                    message=str(exc),
                    excerpt=line[:_EXCERPT_CHARS],
                )
            )
    return records, report


# -- SignalingTransaction ----------------------------------------------------

def transaction_to_dict(txn: SignalingTransaction) -> Dict:
    """Flatten a SignalingTransaction into a JSON-ready dict."""
    return {
        "device_id": txn.device_id,
        "ts": txn.timestamp,
        "sim_plmn": txn.sim_plmn,
        "visited_plmn": txn.visited_plmn,
        "type": txn.message_type.value,
        "result": txn.result.value,
    }


def _transaction_fields(row: Dict) -> Dict[str, Any]:
    return {
        "device_id": row["device_id"],
        "timestamp": float(row["ts"]),
        "sim_plmn": row["sim_plmn"],
        "visited_plmn": row["visited_plmn"],
        "message_type": MessageType(row["type"]),
        "result": ResultCode(row["result"]),
    }


def transaction_from_dict(row: Dict) -> SignalingTransaction:
    """Rebuild a SignalingTransaction from its dict form."""
    return SignalingTransaction(**_transaction_fields(row))


def write_transactions(path: PathLike, txns: Iterable[SignalingTransaction]) -> int:
    """Write transactions as JSONL; returns the row count."""
    return write_jsonl(path, (transaction_to_dict(t) for t in txns))


def ingest_transactions(
    path: PathLike, lenient: bool = False
) -> Tuple[List[SignalingTransaction], IngestReport]:
    """Read transactions; lenient mode quarantines bad rows."""
    return _ingest(path, _transaction_fields, SignalingTransaction, lenient)


def read_transactions(path: PathLike) -> List[SignalingTransaction]:
    """Read a JSONL file of transactions (strict)."""
    return ingest_transactions(path)[0]


# -- RadioEvent ---------------------------------------------------------------

def radio_event_to_dict(event: RadioEvent) -> Dict:
    """Flatten a RadioEvent into a JSON-ready dict."""
    return {
        "device_id": event.device_id,
        "ts": event.timestamp,
        "sim_plmn": event.sim_plmn,
        "tac": event.tac,
        "sector": event.sector_id,
        "iface": event.interface.value,
        "type": event.event_type.value,
        "result": event.result.value,
    }


def _radio_event_fields(row: Dict) -> Dict[str, Any]:
    return {
        "device_id": row["device_id"],
        "timestamp": float(row["ts"]),
        "sim_plmn": row["sim_plmn"],
        "tac": int(row["tac"]),
        "sector_id": int(row["sector"]),
        "interface": RadioInterface(row["iface"]),
        "event_type": MessageType(row["type"]),
        "result": ResultCode(row["result"]),
    }


def radio_event_from_dict(row: Dict) -> RadioEvent:
    """Rebuild a RadioEvent from its dict form."""
    return RadioEvent(**_radio_event_fields(row))


def write_radio_events(path: PathLike, events: Iterable[RadioEvent]) -> int:
    """Write radio events as JSONL; returns the row count."""
    return write_jsonl(path, (radio_event_to_dict(e) for e in events))


def ingest_radio_events(
    path: PathLike, lenient: bool = False
) -> Tuple[List[RadioEvent], IngestReport]:
    """Read radio events; lenient mode quarantines bad rows."""
    return _ingest(path, _radio_event_fields, RadioEvent, lenient)


def read_radio_events(path: PathLike) -> List[RadioEvent]:
    """Read a JSONL file of radio events (strict)."""
    return ingest_radio_events(path)[0]


# -- ServiceRecord --------------------------------------------------------------

def service_record_to_dict(record: ServiceRecord) -> Dict:
    """Flatten a ServiceRecord into a JSON-ready dict."""
    return {
        "device_id": record.device_id,
        "ts": record.timestamp,
        "sim_plmn": record.sim_plmn,
        "visited_plmn": record.visited_plmn,
        "service": record.service.value,
        "duration_s": record.duration_s,
        "bytes": record.bytes_total,
        "apn": record.apn,
    }


def _service_record_fields(row: Dict) -> Dict[str, Any]:
    return {
        "device_id": row["device_id"],
        "timestamp": float(row["ts"]),
        "sim_plmn": row["sim_plmn"],
        "visited_plmn": row["visited_plmn"],
        "service": ServiceType(row["service"]),
        "duration_s": float(row["duration_s"]),
        "bytes_total": int(row["bytes"]),
        "apn": row.get("apn"),
    }


def service_record_from_dict(row: Dict) -> ServiceRecord:
    """Rebuild a ServiceRecord from its dict form."""
    return ServiceRecord(**_service_record_fields(row))


def write_service_records(path: PathLike, records: Iterable[ServiceRecord]) -> int:
    """Write service records as JSONL; returns the row count."""
    return write_jsonl(path, (service_record_to_dict(r) for r in records))


def ingest_service_records(
    path: PathLike, lenient: bool = False
) -> Tuple[List[ServiceRecord], IngestReport]:
    """Read service records; lenient mode quarantines bad rows."""
    return _ingest(path, _service_record_fields, ServiceRecord, lenient)


def read_service_records(path: PathLike) -> List[ServiceRecord]:
    """Read a JSONL file of service records (strict)."""
    return ingest_service_records(path)[0]
