"""JSONL serialization for the three record types.

Datasets are expensive to generate at scale, so the record streams can
be written once and re-read by any analysis.  JSON Lines keeps the
format greppable and append-friendly; every record type serializes to a
flat dict of primitives.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Union

from repro.signaling.cdr import ServiceRecord, ServiceType
from repro.signaling.events import RadioEvent, RadioInterface
from repro.signaling.procedures import MessageType, ResultCode, SignalingTransaction

PathLike = Union[str, Path]


def write_jsonl(path: PathLike, rows: Iterable[Dict]) -> int:
    """Write dict rows to a JSONL file; returns the row count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: PathLike) -> Iterator[Dict]:
    """Yield dict rows from a JSONL file, skipping blank lines."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


# -- SignalingTransaction ----------------------------------------------------

def transaction_to_dict(txn: SignalingTransaction) -> Dict:
    """Flatten a SignalingTransaction into a JSON-ready dict."""
    return {
        "device_id": txn.device_id,
        "ts": txn.timestamp,
        "sim_plmn": txn.sim_plmn,
        "visited_plmn": txn.visited_plmn,
        "type": txn.message_type.value,
        "result": txn.result.value,
    }


def transaction_from_dict(row: Dict) -> SignalingTransaction:
    """Rebuild a SignalingTransaction from its dict form."""
    return SignalingTransaction(
        device_id=row["device_id"],
        timestamp=float(row["ts"]),
        sim_plmn=row["sim_plmn"],
        visited_plmn=row["visited_plmn"],
        message_type=MessageType(row["type"]),
        result=ResultCode(row["result"]),
    )


def write_transactions(path: PathLike, txns: Iterable[SignalingTransaction]) -> int:
    """Write transactions as JSONL; returns the row count."""
    return write_jsonl(path, (transaction_to_dict(t) for t in txns))


def read_transactions(path: PathLike) -> List[SignalingTransaction]:
    """Read a JSONL file of transactions."""
    return [transaction_from_dict(row) for row in read_jsonl(path)]


# -- RadioEvent ---------------------------------------------------------------

def radio_event_to_dict(event: RadioEvent) -> Dict:
    """Flatten a RadioEvent into a JSON-ready dict."""
    return {
        "device_id": event.device_id,
        "ts": event.timestamp,
        "sim_plmn": event.sim_plmn,
        "tac": event.tac,
        "sector": event.sector_id,
        "iface": event.interface.value,
        "type": event.event_type.value,
        "result": event.result.value,
    }


def radio_event_from_dict(row: Dict) -> RadioEvent:
    """Rebuild a RadioEvent from its dict form."""
    return RadioEvent(
        device_id=row["device_id"],
        timestamp=float(row["ts"]),
        sim_plmn=row["sim_plmn"],
        tac=int(row["tac"]),
        sector_id=int(row["sector"]),
        interface=RadioInterface(row["iface"]),
        event_type=MessageType(row["type"]),
        result=ResultCode(row["result"]),
    )


def write_radio_events(path: PathLike, events: Iterable[RadioEvent]) -> int:
    """Write radio events as JSONL; returns the row count."""
    return write_jsonl(path, (radio_event_to_dict(e) for e in events))


def read_radio_events(path: PathLike) -> List[RadioEvent]:
    """Read a JSONL file of radio events."""
    return [radio_event_from_dict(row) for row in read_jsonl(path)]


# -- ServiceRecord --------------------------------------------------------------

def service_record_to_dict(record: ServiceRecord) -> Dict:
    """Flatten a ServiceRecord into a JSON-ready dict."""
    return {
        "device_id": record.device_id,
        "ts": record.timestamp,
        "sim_plmn": record.sim_plmn,
        "visited_plmn": record.visited_plmn,
        "service": record.service.value,
        "duration_s": record.duration_s,
        "bytes": record.bytes_total,
        "apn": record.apn,
    }


def service_record_from_dict(row: Dict) -> ServiceRecord:
    """Rebuild a ServiceRecord from its dict form."""
    return ServiceRecord(
        device_id=row["device_id"],
        timestamp=float(row["ts"]),
        sim_plmn=row["sim_plmn"],
        visited_plmn=row["visited_plmn"],
        service=ServiceType(row["service"]),
        duration_s=float(row["duration_s"]),
        bytes_total=int(row["bytes"]),
        apn=row.get("apn"),
    )


def write_service_records(path: PathLike, records: Iterable[ServiceRecord]) -> int:
    """Write service records as JSONL; returns the row count."""
    return write_jsonl(path, (service_record_to_dict(r) for r in records))


def read_service_records(path: PathLike) -> List[ServiceRecord]:
    """Read a JSONL file of service records."""
    return [service_record_from_dict(row) for row in read_jsonl(path)]
