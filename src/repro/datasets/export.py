"""CSV export/import of the devices-catalog — the paper's data product.

The daily devices-catalog (§4.1) is what the MNO's measurement pipeline
actually materializes each day; analysts work from it, not from raw
events.  This module round-trips both catalog levels through CSV so the
expensive build can be done once and shared:

* :func:`write_day_records` / :func:`read_day_records` — the daily rows;
* :func:`write_summaries` / :func:`read_summaries` — whole-window
  per-device aggregates (mobility metrics flattened to centroid/gyration
  columns; the TAC join is re-resolvable from the ``tac`` column).

Set-valued fields (APNs, visited PLMNs) are encoded with ``|`` —
guaranteed absent from APN strings and PLMNs.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.cellular.geo import GeoPoint
from repro.cellular.rats import RadioFlags
from repro.cellular.tac_db import TACDatabase
from repro.core.catalog import DeviceDayRecord, DeviceSummary
from repro.core.mobility import MobilityMetrics
from repro.core.roaming import RoamingLabel

PathLike = Union[str, Path]

_SET_SEP = "|"

DAY_COLUMNS = [
    "device_id", "day", "sim_plmn", "visited_plmns", "n_events",
    "n_failed_events", "n_calls", "voice_minutes", "n_data_sessions",
    "bytes_total", "apns", "radio_flags", "voice_flags", "data_flags",
    "centroid_lat", "centroid_lon", "gyration_km", "n_sectors",
    "on_home_network",
]

SUMMARY_COLUMNS = [
    "device_id", "sim_plmn", "label", "active_days", "n_events",
    "n_failed_events", "n_calls", "voice_minutes", "n_data_sessions",
    "bytes_total", "apns", "visited_plmns", "radio_flags", "voice_flags",
    "data_flags", "tac", "mean_gyration_km",
]


def _encode_set(values: Iterable[str]) -> str:
    return _SET_SEP.join(sorted(values))


def _decode_set(text: str) -> frozenset:
    return frozenset(part for part in text.split(_SET_SEP) if part)


def write_day_records(path: PathLike, records: Iterable[DeviceDayRecord]) -> int:
    """Write daily catalog rows to CSV; returns the row count."""
    count = 0
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(DAY_COLUMNS)
        for r in records:
            mobility = r.mobility
            writer.writerow([
                r.device_id, r.day, r.sim_plmn, _encode_set(r.visited_plmns),
                r.n_events, r.n_failed_events, r.n_calls,
                f"{r.voice_minutes:.4f}", r.n_data_sessions, r.bytes_total,
                _encode_set(r.apns), r.radio_flags.mask, r.voice_flags.mask,
                r.data_flags.mask,
                f"{mobility.centroid.lat:.6f}" if mobility else "",
                f"{mobility.centroid.lon:.6f}" if mobility else "",
                f"{mobility.gyration_km:.4f}" if mobility else "",
                mobility.n_sectors if mobility else "",
                int(r.on_home_network),
            ])
            count += 1
    return count


def read_day_records(path: PathLike) -> List[DeviceDayRecord]:
    """Read daily catalog rows back from CSV."""
    records: List[DeviceDayRecord] = []
    with open(path, "r", newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames != DAY_COLUMNS:
            raise ValueError(f"unexpected day-record columns: {reader.fieldnames}")
        for row in reader:
            mobility: Optional[MobilityMetrics] = None
            if row["centroid_lat"]:
                mobility = MobilityMetrics(
                    centroid=GeoPoint(
                        float(row["centroid_lat"]), float(row["centroid_lon"])
                    ),
                    gyration_km=float(row["gyration_km"]),
                    n_sectors=int(row["n_sectors"]),
                )
            records.append(
                DeviceDayRecord(
                    device_id=row["device_id"],
                    day=int(row["day"]),
                    sim_plmn=row["sim_plmn"],
                    visited_plmns=_decode_set(row["visited_plmns"]),
                    n_events=int(row["n_events"]),
                    n_failed_events=int(row["n_failed_events"]),
                    n_calls=int(row["n_calls"]),
                    voice_minutes=float(row["voice_minutes"]),
                    n_data_sessions=int(row["n_data_sessions"]),
                    bytes_total=int(row["bytes_total"]),
                    apns=_decode_set(row["apns"]),
                    radio_flags=RadioFlags(int(row["radio_flags"])),
                    voice_flags=RadioFlags(int(row["voice_flags"])),
                    data_flags=RadioFlags(int(row["data_flags"])),
                    mobility=mobility,
                    on_home_network=bool(int(row["on_home_network"])),
                )
            )
    return records


def write_summaries(path: PathLike, summaries: Iterable[DeviceSummary]) -> int:
    """Write whole-window device summaries to CSV."""
    count = 0
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(SUMMARY_COLUMNS)
        for s in summaries:
            writer.writerow([
                s.device_id, s.sim_plmn, str(s.label), s.active_days,
                s.n_events, s.n_failed_events, s.n_calls,
                f"{s.voice_minutes:.4f}", s.n_data_sessions, s.bytes_total,
                _encode_set(s.apns), _encode_set(s.visited_plmns),
                s.radio_flags.mask, s.voice_flags.mask, s.data_flags.mask,
                s.tac if s.tac is not None else "",
                f"{s.mean_gyration_km:.4f}" if s.mean_gyration_km is not None else "",
            ])
            count += 1
    return count


def read_summaries(
    path: PathLike, tac_db: Optional[TACDatabase] = None
) -> Dict[str, DeviceSummary]:
    """Read summaries back, optionally re-joining the TAC catalog."""
    summaries: Dict[str, DeviceSummary] = {}
    with open(path, "r", newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames != SUMMARY_COLUMNS:
            raise ValueError(f"unexpected summary columns: {reader.fieldnames}")
        for row in reader:
            tac = int(row["tac"]) if row["tac"] else None
            summaries[row["device_id"]] = DeviceSummary(
                device_id=row["device_id"],
                sim_plmn=row["sim_plmn"],
                label=RoamingLabel.parse(row["label"]),
                active_days=int(row["active_days"]),
                n_events=int(row["n_events"]),
                n_failed_events=int(row["n_failed_events"]),
                n_calls=int(row["n_calls"]),
                voice_minutes=float(row["voice_minutes"]),
                n_data_sessions=int(row["n_data_sessions"]),
                bytes_total=int(row["bytes_total"]),
                apns=_decode_set(row["apns"]),
                visited_plmns=_decode_set(row["visited_plmns"]),
                radio_flags=RadioFlags(int(row["radio_flags"])),
                voice_flags=RadioFlags(int(row["voice_flags"])),
                data_flags=RadioFlags(int(row["data_flags"])),
                tac=tac,
                model=tac_db.lookup(tac) if (tac_db and tac is not None) else None,
                mean_gyration_km=(
                    float(row["mean_gyration_km"])
                    if row["mean_gyration_km"]
                    else None
                ),
            )
    return summaries
