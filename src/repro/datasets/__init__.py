"""Dataset containers and serialization.

The two datasets of the paper — the M2M-platform signaling trace (§3.1)
and the visited-MNO trace (§4.1) — are represented by
:class:`M2MDataset` and :class:`MNODataset`.  Both are plain containers
of the record types defined in :mod:`repro.signaling`, plus the side
tables (TAC catalog, sector catalogs, ground truth) an analysis needs.

:mod:`repro.datasets.io` round-trips records through JSONL so datasets
can be generated once and re-analysed offline.
"""

from repro.datasets.containers import GroundTruthEntry, M2MDataset, MNODataset
from repro.datasets.export import (
    read_day_records,
    read_summaries,
    write_day_records,
    write_summaries,
)
from repro.datasets.privacy import assert_clean, scan_export_dir, scan_file
from repro.datasets.sampling import sample_devices, sample_transactions
from repro.datasets.io import (
    IngestError,
    IngestErrorKind,
    IngestReport,
    ingest_jsonl,
    ingest_radio_events,
    ingest_service_records,
    ingest_transactions,
    read_jsonl,
    read_radio_events,
    read_service_records,
    read_transactions,
    write_jsonl,
    write_radio_events,
    write_service_records,
    write_transactions,
)

__all__ = [
    "GroundTruthEntry",
    "IngestError",
    "IngestErrorKind",
    "IngestReport",
    "assert_clean",
    "ingest_jsonl",
    "ingest_radio_events",
    "ingest_service_records",
    "ingest_transactions",
    "read_day_records",
    "read_summaries",
    "sample_devices",
    "sample_transactions",
    "scan_export_dir",
    "scan_file",
    "write_day_records",
    "write_summaries",
    "M2MDataset",
    "MNODataset",
    "read_jsonl",
    "read_radio_events",
    "read_service_records",
    "read_transactions",
    "write_jsonl",
    "write_radio_events",
    "write_service_records",
    "write_transactions",
]
