"""Privacy lint for exported datasets — the ethics appendix, executable.

The paper's Appendix A: "Raw data has been reviewed and validated by the
operators with respect to GDPR compliance (e.g., no identifier can be
associated to person), and all analysis performed report on aggregated
metrics only."  Our simulators hash every subscriber identifier before
it reaches a record; this module is the automated review step that
keeps it that way:

* :func:`scan_text` — find identifier-shaped leaks in any text: 15-digit
  strings that Luhn-validate (IMEI-like) or start with a known MCC
  (IMSI-like), plus MSISDN-ish international numbers;
* :func:`scan_file` / :func:`scan_export_dir` — run the lint over
  JSONL/CSV exports before they leave the machine.

A PLMN (5-6 digits) is *not* personal data — network codes stay in the
clear, exactly as the paper's records do.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import List, Set, Union

from repro.cellular.countries import default_countries
from repro.cellular.identifiers import luhn_is_valid, mcc_of

PathLike = Union[str, Path]

#: Any run of exactly 15 digits is identifier-shaped (IMSI/IMEI length).
_FIFTEEN_DIGITS = re.compile(r"(?<!\d)(\d{15})(?!\d)")

#: International MSISDN-ish pattern: + and 11-14 digits.
_MSISDN = re.compile(r"\+\d{11,14}")

_KNOWN_MCCS: Set[int] = {country.mcc for country in default_countries()}


@dataclass(frozen=True)
class PrivacyFinding:
    """One potential identifier leak."""

    kind: str          # "imei", "imsi", "msisdn", "id15"
    value: str
    line_number: int
    source: str

    def redacted(self) -> str:
        """The value with the tail masked, safe to print in reports."""
        return self.value[:5] + "*" * (len(self.value) - 5)


def _classify_fifteen(digits: str) -> str:
    if luhn_is_valid(digits):
        return "imei"
    if mcc_of(digits) in _KNOWN_MCCS:
        return "imsi"
    return "id15"


def _is_standalone(line: str, start: int, end: int) -> bool:
    """True when the digit run is a standalone token.

    Rejects runs embedded in hex identifiers (letter neighbours) and in
    decimal numbers (a ``.`` neighbour — float timestamps can carry
    15-digit fractions).
    """
    before = line[start - 1] if start > 0 else ""
    after = line[end] if end < len(line) else ""
    for neighbour in (before, after):
        if neighbour.isalnum() or neighbour == ".":
            return False
    return True


def scan_text(
    text: str, source: str = "<text>", start_line: int = 1
) -> List[PrivacyFinding]:
    """Scan text for identifier-shaped content."""
    findings: List[PrivacyFinding] = []
    for offset, line in enumerate(text.splitlines()):
        line_number = start_line + offset
        for match in _FIFTEEN_DIGITS.finditer(line):
            if not _is_standalone(line, match.start(1), match.end(1)):
                continue
            digits = match.group(1)
            findings.append(
                PrivacyFinding(
                    kind=_classify_fifteen(digits),
                    value=digits,
                    line_number=line_number,
                    source=source,
                )
            )
        for match in _MSISDN.finditer(line):
            findings.append(
                PrivacyFinding(
                    kind="msisdn",
                    value=match.group(0),
                    line_number=line_number,
                    source=source,
                )
            )
    return findings


def scan_file(path: PathLike) -> List[PrivacyFinding]:
    """Lint one exported file."""
    path = Path(path)
    return scan_text(path.read_text(encoding="utf-8"), source=str(path))


def scan_export_dir(
    directory: PathLike, patterns: tuple = ("*.jsonl", "*.csv", "*.json")
) -> List[PrivacyFinding]:
    """Lint every export in a directory tree."""
    directory = Path(directory)
    findings: List[PrivacyFinding] = []
    for pattern in patterns:
        for path in sorted(directory.rglob(pattern)):
            findings.extend(scan_file(path))
    return findings


def assert_clean(findings: List[PrivacyFinding]) -> None:
    """Raise with a redacted summary when any finding exists."""
    if not findings:
        return
    lines = [
        f"  {f.source}:{f.line_number} {f.kind} {f.redacted()}"
        for f in findings[:20]
    ]
    raise ValueError(
        f"privacy lint found {len(findings)} identifier-shaped value(s):\n"
        + "\n".join(lines)
    )
