"""Dataset sampling: modelling the probes' partial view (§3.1).

The paper is explicit that its platform trace is "a sampled view of
world-wide M2M infrastructure traffic".  Sampling strategy matters:

* **transaction sampling** keeps each record independently — it
  preserves aggregate rates but *biases per-device statistics* (a
  device's observed count shrinks by the rate, and quiet devices drop
  out entirely);
* **device sampling** keeps whole devices — per-device distributions
  survive, population counts scale.

Both are implemented so analyses can quantify how robust their
statistics are to the probes' view (see the sampling bench/tests).
"""

from __future__ import annotations

from typing import Dict, Set

import numpy as np

from repro.datasets.containers import M2MDataset


def sample_transactions(
    dataset: M2MDataset, rate: float, seed: int = 0
) -> M2MDataset:
    """Keep each transaction independently with probability ``rate``.

    Ground truth is restricted to devices that survive (a device with no
    sampled transaction is invisible to any analysis).
    """
    if not 0.0 < rate <= 1.0:
        raise ValueError("sampling rate must be in (0, 1]")
    rng = np.random.default_rng(seed)
    keep = rng.random(len(dataset.transactions)) < rate
    kept = [t for t, k in zip(dataset.transactions, keep) if k]
    surviving: Set[str] = {t.device_id for t in kept}
    return M2MDataset(
        transactions=kept,
        window_days=dataset.window_days,
        hmno_isos=list(dataset.hmno_isos),
        ground_truth={
            d: g for d, g in dataset.ground_truth.items() if d in surviving
        },
    )


def sample_devices(dataset: M2MDataset, rate: float, seed: int = 0) -> M2MDataset:
    """Keep each device (with all its transactions) with probability
    ``rate`` — the bias-free way to thin a trace."""
    if not 0.0 < rate <= 1.0:
        raise ValueError("sampling rate must be in (0, 1]")
    rng = np.random.default_rng(seed)
    devices = sorted(dataset.device_ids)
    keep_mask = rng.random(len(devices)) < rate
    kept_devices: Set[str] = {
        d for d, keep in zip(devices, keep_mask) if keep
    }
    kept = [t for t in dataset.transactions if t.device_id in kept_devices]
    return M2MDataset(
        transactions=kept,
        window_days=dataset.window_days,
        hmno_isos=list(dataset.hmno_isos),
        ground_truth={
            d: g for d, g in dataset.ground_truth.items() if d in kept_devices
        },
    )


def per_device_count_bias(
    original: M2MDataset, sampled: M2MDataset
) -> Dict[str, float]:
    """Observed-over-true transaction-count ratio per surviving device.

    Under device sampling every ratio is 1.0; under transaction sampling
    the ratios concentrate around the sampling rate — the bias an
    analyst must correct for before comparing against Fig. 3.
    """
    true_counts: Dict[str, int] = {}
    for txn in original.transactions:
        true_counts[txn.device_id] = true_counts.get(txn.device_id, 0) + 1
    observed: Dict[str, int] = {}
    for txn in sampled.transactions:
        observed[txn.device_id] = observed.get(txn.device_id, 0) + 1
    return {
        device: observed[device] / true_counts[device]
        for device in observed
        if true_counts.get(device)
    }
