"""Dataset containers: the in-memory form of the paper's two datasets."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.cellular.operators import Operator
from repro.cellular.sectors import SectorCatalog
from repro.cellular.tac_db import TACDatabase
from repro.devices.device import DeviceClass, IoTVertical, SimProvenance
from repro.signaling.cdr import ServiceRecord
from repro.signaling.events import RadioEvent
from repro.signaling.procedures import SignalingTransaction


@dataclass(frozen=True)
class GroundTruthEntry:
    """Simulator-side truth for one device (never visible to pipelines).

    Used only by :mod:`repro.core.validation` to score the classifier,
    and by benches to report per-segment statistics.
    """

    device_id: str
    device_class: DeviceClass
    provenance: SimProvenance
    vertical: Optional[IoTVertical] = None
    profile: str = ""
    home_country_iso: str = ""
    smip_native: bool = False
    smip_roaming: bool = False


@dataclass
class M2MDataset:
    """The M2M-platform signaling dataset (§3.1).

    ``transactions`` is the full record stream; ``window_days`` the
    observation length (11 in the paper); ``hmno_isos`` the home
    countries of the platform's SIM-issuing operators.
    """

    transactions: List[SignalingTransaction]
    window_days: int
    hmno_isos: List[str]
    ground_truth: Dict[str, GroundTruthEntry] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.window_days <= 0:
            raise ValueError("window_days must be positive")

    @property
    def device_ids(self) -> Set[str]:
        return {t.device_id for t in self.transactions}

    @property
    def n_devices(self) -> int:
        return len(self.device_ids)

    @property
    def n_transactions(self) -> int:
        return len(self.transactions)

    def for_sim_mcc(self, mcc: int) -> List[SignalingTransaction]:
        """Transactions of devices whose SIM belongs to ``mcc``."""
        return [t for t in self.transactions if t.sim_mcc == mcc]


@dataclass
class MNODataset:
    """The visited-MNO dataset (§4.1): 22 days of everything the probes saw.

    ``radio_events`` cover every device attached to the MNO's radio
    network (no outbound roamers); ``service_records`` (CDR/xDR) also
    cover outbound roamers.  ``sector_catalog`` maps sector IDs to
    coordinates; ``tac_db`` is the GSMA-style catalog; ``observer`` is
    the MNO under study.
    """

    observer: Operator
    radio_events: List[RadioEvent]
    service_records: List[ServiceRecord]
    tac_db: TACDatabase
    sector_catalog: SectorCatalog
    window_days: int
    ground_truth: Dict[str, GroundTruthEntry] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.window_days <= 0:
            raise ValueError("window_days must be positive")

    @property
    def device_ids(self) -> Set[str]:
        ids = {e.device_id for e in self.radio_events}
        ids.update(r.device_id for r in self.service_records)
        return ids

    @property
    def n_devices(self) -> int:
        return len(self.device_ids)

    def summary(self) -> Dict[str, int]:
        """Quick size counts, for logging and sanity checks."""
        return {
            "devices": self.n_devices,
            "radio_events": len(self.radio_events),
            "service_records": len(self.service_records),
            "window_days": self.window_days,
            "sectors": len(self.sector_catalog),
            "tac_models": len(self.tac_db),
        }
