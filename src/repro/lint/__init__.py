"""``repro.lint`` — AST-based static analysis enforcing simulation invariants.

The reproduction substitutes proprietary operator traces with seeded,
deterministic simulators, so the scientific claims rest on invariants that
ordinary linters do not know about: every random draw must flow from a
seeded ``numpy`` Generator, simulators must never read the wall clock, and
identifier parsing must go through :mod:`repro.cellular.identifiers` rather
than ad-hoc string slicing.  This package checks those invariants (plus a
few general hygiene rules) over the source tree::

    python -m repro.lint src                 # exit code = number of findings
    python -m repro.lint src --format json   # machine-readable output
    python -m repro.lint src --select ID001  # run a subset of rules
    python -m repro.lint --list-rules        # rule catalog

Findings on a line can be suppressed with an inline comment::

    mccs = imsi[:3]  # repro: noqa[ID001]

A suppression that never fires is itself reported (``NOQA001``) so stale
exemptions cannot accumulate.  See ``docs/STATIC_ANALYSIS.md`` for the
full rule catalog.
"""

from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.dataflow import ScopeDataflow
from repro.lint.engine import (
    FileContext,
    Finding,
    LintResult,
    Rule,
    Severity,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.project import (
    IndexCache,
    ModuleIndex,
    ProjectIndex,
    build_module_index,
    module_name_for,
)
from repro.lint.registry import all_rules, get_rule, register_rule
from repro.lint.sarif import render_sarif

__all__ = [
    "FileContext",
    "Finding",
    "IndexCache",
    "LintResult",
    "ModuleIndex",
    "ProjectIndex",
    "Rule",
    "ScopeDataflow",
    "Severity",
    "all_rules",
    "apply_baseline",
    "build_module_index",
    "get_rule",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "module_name_for",
    "register_rule",
    "render_sarif",
    "write_baseline",
]
