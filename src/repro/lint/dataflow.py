"""Intraprocedural dataflow queries for lint rules.

The DET/SEAM rule families need answers a bare AST walk cannot give:
*is this expression's iteration order deterministic?*, *is this name
bound to a set?*, *is this variable mutated after line N?*.  A
:class:`ScopeDataflow` is built once per scope (function or module body)
and answers those queries from a two-pass flow-insensitive analysis of
the scope's assignments — deliberately simple, always terminating, and
conservative in the right direction: a name is only called a set when
the evidence is structural (set literal/comprehension, ``set()`` /
``frozenset()`` call, a set-typed annotation, or an expression over
names already known to be sets).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.lint.project import MUTATING_METHODS

ScopeNode = Union[ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]

#: Annotation heads that mark a parameter or variable as set-typed.
_SET_ANNOTATIONS = ("Set", "FrozenSet", "MutableSet", "AbstractSet", "set", "frozenset")

#: Calls returning sets regardless of their arguments.
_SET_FACTORIES = ("set", "frozenset")

#: Set methods that return another set.
_SET_RETURNING_METHODS = (
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
)

#: Calls whose result order is filesystem- or environment-dependent.
_FS_ORDER_CALLS = ("listdir", "iterdir", "glob", "rglob", "scandir")

#: Calls that impose a deterministic order on any iterable.
_ORDERING_CALLS = ("sorted", "range")

#: Calls that *preserve* their argument's iteration order, so iterating
#: their result is exactly as (non)deterministic as the argument.
_ORDER_PRESERVING_CALLS = ("list", "tuple", "enumerate", "reversed", "iter", "zip")


def _annotation_is_set(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    head = annotation
    if isinstance(head, ast.Subscript):
        head = head.value
    if isinstance(head, ast.Attribute):
        return head.attr in _SET_ANNOTATIONS
    if isinstance(head, ast.Name):
        return head.id in _SET_ANNOTATIONS
    if isinstance(head, ast.Constant) and isinstance(head.value, str):
        text = head.value.split("[", 1)[0].rsplit(".", 1)[-1].strip()
        return text in _SET_ANNOTATIONS
    return False


class ScopeDataflow:
    """Flow-insensitive facts about one scope's local names."""

    def __init__(self, scope: ScopeNode) -> None:
        self.scope = scope
        self.set_names: Set[str] = set()
        self.lambda_names: Set[str] = set()
        self.nested_function_names: Set[str] = set()
        #: name -> linenos where the name's value is mutated in place or
        #: rebound (``x.append(...)``, ``x[k] = v``, ``x += ...``).
        self.mutation_lines: Dict[str, List[int]] = {}
        self._collect_params()
        # Two passes so chained assignments (``a = set(); b = a | c``)
        # converge without a full fixpoint.
        for _ in range(2):
            self._collect_assignments()
        self._collect_mutations()

    # -- construction ---------------------------------------------------------

    def _own_statements(self) -> List[ast.stmt]:
        body = getattr(self.scope, "body", [])
        return body if isinstance(body, list) else []

    def _walk_own(self):
        """Walk the scope's body without descending into nested scopes."""
        stack: List[ast.AST] = list(self._own_statements())
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                    continue
                stack.append(child)

    def _collect_params(self) -> None:
        if isinstance(self.scope, ast.Module):
            return
        args = self.scope.args
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            if _annotation_is_set(getattr(arg, "annotation", None)):
                self.set_names.add(arg.arg)

    def _collect_assignments(self) -> None:
        for node in self._walk_own():
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name) and _annotation_is_set(node.annotation):
                    self.set_names.add(node.target.id)
                if node.value is None:
                    continue
                value, targets = node.value, [node.target]
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.nested_function_names.add(node.name)
                continue
            else:
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if isinstance(value, ast.Lambda):
                    self.lambda_names.add(target.id)
                if self.expression_is_set(value):
                    self.set_names.add(target.id)
                elif target.id in self.set_names and not self._preserves_set(value):
                    # Rebound to something that is not a set: retract.
                    self.set_names.discard(target.id)

    def _preserves_set(self, value: ast.expr) -> bool:
        return self.expression_is_set(value)

    def _collect_mutations(self) -> None:
        for node in self._walk_own():
            name: Optional[str] = None
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATING_METHODS
                    and isinstance(func.value, ast.Name)
                ):
                    name = func.value.id
            elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
                name = node.target.id
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    base = target
                    while isinstance(base, (ast.Subscript, ast.Attribute)):
                        base = base.value
                    if isinstance(base, ast.Name) and base is not target:
                        self.mutation_lines.setdefault(base.id, []).append(node.lineno)
            if name is not None:
                self.mutation_lines.setdefault(name, []).append(node.lineno)

    # -- queries --------------------------------------------------------------

    def expression_is_set(self, expr: ast.expr) -> bool:
        """Structural evidence that ``expr`` evaluates to a set."""
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in self.set_names
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.expression_is_set(expr.left) or self.expression_is_set(expr.right)
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id in _SET_FACTORIES:
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_RETURNING_METHODS
                and self.expression_is_set(func.value)
            ):
                return True
        return False

    def unordered_reason(self, expr: ast.expr) -> Optional[str]:
        """Why iterating ``expr`` has no deterministic order, or ``None``.

        Sets and frozensets iterate in hash order (randomized across
        processes for strings); directory listings iterate in
        filesystem order.  Anything wrapped in ``sorted(...)`` — or any
        other explicit ordering — is fine.
        """
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id in _ORDERING_CALLS:
                return None
            if (
                isinstance(func, ast.Name)
                and func.id in _ORDER_PRESERVING_CALLS
                and expr.args
            ):
                return self.unordered_reason(expr.args[0])
            if isinstance(func, ast.Attribute) and func.attr in _FS_ORDER_CALLS:
                return f"{func.attr}() yields entries in filesystem order"
            if isinstance(func, ast.Name) and func.id in _FS_ORDER_CALLS:
                return f"{func.id}() yields entries in filesystem order"
        if self.expression_is_set(expr):
            return "set iteration order follows hash order"
        return None

    def mutated_after(self, name: str, lineno: int) -> Optional[int]:
        """First line > ``lineno`` where ``name`` is mutated, if any."""
        later = [line for line in self.mutation_lines.get(name, ()) if line > lineno]
        return min(later) if later else None

    def is_local_callable(self, name: str) -> bool:
        """True when ``name`` is a lambda or a function nested in this scope."""
        return name in self.lambda_names or name in self.nested_function_names


def comprehension_iters(node: ast.AST) -> List[Tuple[ast.expr, int, int]]:
    """(iterable, line, col) for every generator clause of a comprehension."""
    out: List[Tuple[ast.expr, int, int]] = []
    for comp in getattr(node, "generators", []):
        out.append((comp.iter, comp.iter.lineno, comp.iter.col_offset))
    return out
