"""SARIF 2.1.0 rendering so findings surface as GitHub PR annotations.

SARIF (Static Analysis Results Interchange Format) is the one format
GitHub's code-scanning UI ingests natively: uploading the document via
``github/codeql-action/upload-sarif`` renders every finding as an inline
annotation on the pull request diff, with the rule's help text attached.
Only the small subset of the (large) SARIF schema that GitHub reads is
emitted: the tool driver with per-rule metadata, and one ``result`` per
finding with a physical location.

The document is deterministic for a given :class:`LintResult` — keys
are sorted and findings arrive pre-sorted from the engine — so the file
can be diffed and cached like any other build artifact.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lint.engine import Finding, LintResult, Severity
from repro.lint.registry import all_rules

#: SARIF spec version emitted; GitHub code scanning requires 2.1.0.
SARIF_VERSION = "2.1.0"

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: repro.lint severity -> SARIF result level.
_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _rule_descriptor(rule) -> Dict[str, object]:
    descriptor: Dict[str, object] = {
        "id": rule.rule_id,
        "name": rule.name,
        "shortDescription": {"text": rule.summary},
        "defaultConfiguration": {"level": _LEVELS[rule.severity]},
    }
    if rule.fix_hint:
        descriptor["help"] = {"text": f"fix: {rule.fix_hint}"}
    return descriptor


def _result(finding: Finding) -> Dict[str, object]:
    message = finding.message
    if finding.fix_hint:
        message = f"{message} (fix: {finding.fix_hint})"
    return {
        "ruleId": finding.rule_id,
        "level": _LEVELS[finding.severity],
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": max(finding.line, 1),
                        # SARIF columns are 1-based; engine columns 0-based.
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }


def render_sarif(result: LintResult) -> str:
    """The SARIF document for a lint run (stable key order)."""
    rules: List[Dict[str, object]] = [_rule_descriptor(r) for r in all_rules()]
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lint",
                        "informationUri": "docs/STATIC_ANALYSIS.md",
                        "rules": rules,
                    }
                },
                "results": [_result(f) for f in result.findings],
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
