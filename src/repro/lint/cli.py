"""Command-line front end: ``python -m repro.lint [paths] [options]``.

The exit code is the number of (unbaselined) findings capped at 100, so
shell pipelines and CI can gate on it directly; ``--format json`` emits
a schema-stable document for tooling and ``--format sarif`` (alias:
``--output sarif``) emits SARIF 2.1.0 for GitHub PR annotations.

Whole-program flags: ``--cache DIR`` keeps content-hash keyed index
shards and findings between runs so CI re-analyzes only changed modules;
``--baseline FILE`` subtracts the checked-in finding budget and
``--update-baseline`` rewrites it (the ratchet).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.engine import LintResult, lint_paths
from repro.lint.registry import all_rules
from repro.lint.sarif import render_sarif

#: Exit codes above this are reserved (128+ = signals), so cap there.
MAX_EXIT_CODE = 100

#: Version of the ``--format json`` schema; bump on breaking change.
JSON_SCHEMA_VERSION = 1


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for ``python -m repro.lint``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Whole-program static analysis enforcing the reproduction's "
            "simulation invariants."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        "--output",
        dest="format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        help=(
            "incremental cache directory: index shards and findings are "
            "keyed on content hashes, so warm runs re-analyze only "
            "changed modules"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "baseline/ratchet file: accepted findings are subtracted "
            "from the report and the exit code"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "rewrite --baseline FILE to accept exactly the current "
            "findings, then exit 0"
        ),
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="append cache/index statistics to text output",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _split_ids(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [token.strip() for token in raw.split(",") if token.strip()]


def render_text(result: LintResult, suppressed: int = 0, stats: bool = False) -> str:
    """Human-readable report: one block per finding plus a summary line."""
    blocks = [finding.render_text() for finding in result.findings]
    summary = (
        f"{len(result.findings)} finding(s) in {result.files_checked} file(s)"
    )
    if result.findings:
        by_rule = ", ".join(
            f"{rule_id}×{count}"
            for rule_id, count in result.counts_by_rule.items()
        )
        summary += f" [{by_rule}]"
    if suppressed:
        summary += f" ({suppressed} baselined)"
    blocks.append(summary)
    if stats:
        blocks.append(
            f"index: {len(result.indexed_modules)} module(s) rebuilt, "
            f"{len(result.cached_modules)} from cache; "
            f"{result.files_reanalyzed} file(s) re-analyzed"
        )
    return "\n".join(blocks)


def render_json(result: LintResult) -> str:
    """Schema-stable JSON report (see ``JSON_SCHEMA_VERSION``)."""
    document = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "findings": [finding.render_json() for finding in result.findings],
        "summary": {
            "total": len(result.findings),
            "by_rule": result.counts_by_rule,
        },
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_rule_catalog() -> str:
    """The ``--list-rules`` catalog: id, severity, name, summary, fix."""
    lines = []
    for rule in all_rules():
        lines.append(
            f"{rule.rule_id:<10} {rule.severity.value:<8} {rule.name}"
        )
        lines.append(f"{'':10} {rule.summary}")
        if rule.fix_hint:
            lines.append(f"{'':10} fix: {rule.fix_hint}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the exit code (= findings, capped)."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rule_catalog())
        return 0

    if args.update_baseline and not args.baseline:
        parser.error("--update-baseline requires --baseline FILE")

    try:
        result = lint_paths(
            args.paths,
            select=_split_ids(args.select),
            ignore=_split_ids(args.ignore),
            cache_dir=args.cache,
        )
    except ValueError as exc:
        parser.error(str(exc))
    except OSError as exc:
        parser.error(f"cannot read {exc.filename or ''}: {exc.strerror or exc}")

    if args.update_baseline:
        write_baseline(result.findings, args.baseline)
        print(
            f"baseline updated: {args.baseline} accepts "
            f"{len(result.findings)} finding(s)"
        )
        return 0

    suppressed = 0
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except ValueError as exc:
            parser.error(str(exc))
        result.findings, suppressed = apply_baseline(result.findings, baseline)

    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result, suppressed=suppressed, stats=args.stats))
    return min(len(result.findings), MAX_EXIT_CODE)


if __name__ == "__main__":
    sys.exit(main())
