"""DET003 — float accumulation in an order the program does not control.

Float addition is not associative: ``(a + b) + c != a + (b + c)`` in
general, so summing the *same* numbers in a different order produces
different bytes.  That only matters when the order is itself
nondeterministic — which is exactly what iterating a set (hash order)
or a directory listing (filesystem order) gives you.  The two hazards
the rule flags, on any path that can reach serialized/merged output:

* ``sum(<unordered iterable>)`` — including generator expressions whose
  innermost iterable is unordered;
* ``acc += ...`` inside a loop over an unordered iterable.

Fixes, in order of preference: iterate ``sorted(...)`` so the
accumulation order is pinned; or use ``math.fsum`` (exact, hence
order-independent) when sorting is too expensive.  Integer counting is
exempt — integer addition is associative — when the accumulated
expression is a literal ``1``/integer constant.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator, Optional, Tuple

from repro.lint.engine import FileContext, Finding, Rule, Severity
from repro.lint.registry import register_rule


def _unordered_sum_arg(call: ast.Call, flow) -> Optional[str]:
    """Reason the ``sum(...)`` argument iterates in nondeterministic order."""
    if not (isinstance(call.func, ast.Name) and call.func.id == "sum"):
        return None
    if not call.args:
        return None
    arg = call.args[0]
    if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
        if _is_integer_count(arg.elt):
            return None  # sum(1 for ...) is order-independent counting
        for comp in arg.generators:
            reason = flow.unordered_reason(comp.iter)
            if reason is not None:
                return reason
        return None
    return flow.unordered_reason(arg)


def _is_integer_count(expr: ast.expr) -> bool:
    """True for ``+= 1``-style counting, which is order-independent."""
    return isinstance(expr, ast.Constant) and isinstance(expr.value, int)


@register_rule
class FloatAccumulationOrder(Rule):
    """DET003 — order-sensitive accumulation over an unordered iterable."""

    rule_id: ClassVar[str] = "DET003"
    name: ClassVar[str] = "float-accumulation-order"
    severity: ClassVar[Severity] = Severity.ERROR
    summary: ClassVar[str] = (
        "accumulation over an unordered iterable: float addition is not "
        "associative, so hash/filesystem order changes the result bytes"
    )
    fix_hint: ClassVar[str] = (
        "iterate sorted(...) to pin the accumulation order, or use "
        "math.fsum (exact, order-independent) for float sums"
    )
    node_types: ClassVar[Tuple[type, ...]] = (ast.Call, ast.For)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_serialized_reachable(node):
            return
        flow = ctx.dataflow_for(node)
        if isinstance(node, ast.Call):
            reason = _unordered_sum_arg(node, flow)
            if reason is not None:
                yield self.finding_at(
                    ctx,
                    node,
                    message=f"sum() over an unordered iterable ({reason})",
                )
            return
        assert isinstance(node, ast.For)
        reason = flow.unordered_reason(node.iter)
        if reason is None:
            return
        for stmt in node.body:
            for inner in ast.walk(stmt):
                if (
                    isinstance(inner, ast.AugAssign)
                    and isinstance(inner.op, (ast.Add, ast.Sub, ast.Mult))
                    and not _is_integer_count(inner.value)
                ):
                    yield self.finding_at(
                        ctx,
                        inner,
                        message=(
                            f"accumulation inside a loop whose {reason}; "
                            "the running total's rounding depends on visit "
                            "order"
                        ),
                    )
