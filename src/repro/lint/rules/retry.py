"""Retry hygiene: simulators must model retries, not improvise them.

An ad-hoc ``while``/``for`` loop that catches an exception and tries
again hides two things the reproduction cares about: the *backoff
schedule* (reattach storms are a measured phenomenon — §3/§7 — not an
implementation detail) and the *randomness source* (unseeded jitter
makes traces unreplayable).  Inside the simulation packages every retry
must go through :mod:`repro.faults.retry`, whose
:class:`~repro.faults.retry.RetryPolicy` draws jitter from an explicit
seeded RNG.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator, List, Tuple, Union

from repro.lint.engine import FileContext, Finding, Rule, Severity
from repro.lint.registry import register_rule

_SIM_PACKAGES: Tuple[str, ...] = ("mno", "platform_m2m", "signaling", "devices")

_LoopNode = Union[ast.For, ast.AsyncFor, ast.While]

#: Statement types that open a new retry scope: a Continue/Break inside
#: one of these no longer refers to the loop under inspection.
_SCOPE_BREAKERS = (
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
)


def _direct_statements(body: List[ast.stmt]) -> Iterator[ast.stmt]:
    """Statements whose control flow still belongs to the enclosing loop.

    Recurses through ``if``/``with``/``try`` blocks but stops at nested
    loops and function/class definitions — a ``try`` in a nested loop
    retries *that* loop, not the one being inspected.
    """
    for stmt in body:
        yield stmt
        if isinstance(stmt, _SCOPE_BREAKERS):
            continue
        for child_body in (
            getattr(stmt, "body", None),
            getattr(stmt, "orelse", None),
            getattr(stmt, "finalbody", None),
        ):
            if child_body:
                yield from _direct_statements(child_body)
        for handler in getattr(stmt, "handlers", []) or []:
            yield from _direct_statements(handler.body)


def _contains_loop_jump(body: List[ast.stmt], jump_type: type) -> bool:
    """True when ``body`` contains a Continue/Break targeting this loop."""
    for stmt in _direct_statements(body):
        if isinstance(stmt, jump_type):
            return True
    return False


def _contains_raise(body: List[ast.stmt]) -> bool:
    return any(isinstance(stmt, ast.Raise) for stmt in _direct_statements(body))


@register_rule
class AdHocRetryLoop(Rule):
    """RETRY001 — hand-rolled retry loop instead of repro.faults.retry."""

    rule_id: ClassVar[str] = "RETRY001"
    name: ClassVar[str] = "ad-hoc-retry-loop"
    severity: ClassVar[Severity] = Severity.ERROR
    summary: ClassVar[str] = (
        "ad-hoc retry loop in a simulation package: backoff is unmodeled "
        "and jitter unseeded"
    )
    fix_hint: ClassVar[str] = (
        "use repro.faults.retry (RetryPolicy with backoff_schedule or "
        "call_with_retry) so the schedule is explicit and drawn from a "
        "seeded RNG"
    )
    node_types: ClassVar[Tuple[type, ...]] = (ast.For, ast.AsyncFor, ast.While)

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package(*_SIM_PACKAGES)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, (ast.For, ast.AsyncFor, ast.While))
        for stmt in _direct_statements(node.body):
            if not isinstance(stmt, ast.Try):
                continue
            if not stmt.handlers:
                continue
            if self._calls_retry_helper(stmt, ctx):
                continue
            if self._is_retry(stmt):
                yield self.finding_at(ctx, stmt)

    def _is_retry(self, try_node: ast.Try) -> bool:
        """True for the two canonical hand-rolled retry shapes.

        Either a handler explicitly ``continue``s the loop, or the try
        body ``break``s out on success while a handler swallows the
        failure and falls through to the next iteration.
        """
        for handler in try_node.handlers:
            if _contains_loop_jump(handler.body, ast.Continue):
                return True
        if _contains_loop_jump(try_node.body, ast.Break):
            for handler in try_node.handlers:
                if not _contains_raise(handler.body) and not _contains_loop_jump(
                    handler.body, ast.Break
                ):
                    return True
        return False

    def _calls_retry_helper(self, try_node: ast.Try, ctx: FileContext) -> bool:
        """Escape hatch: the try already delegates to repro.faults.retry."""
        for sub in ast.walk(try_node):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if isinstance(func, ast.Name):
                if ctx.from_imports.get(func.id, "").startswith("repro.faults"):
                    return True
            elif isinstance(func, ast.Attribute):
                if "faults.retry" in ast.unparse(func):
                    return True
        return False
