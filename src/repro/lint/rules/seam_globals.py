"""SEAM002 — worker functions reading shared mutable module globals.

A function shipped across the :func:`repro.parallel.pool.map_shards`
seam executes in a forked/spawned worker whose module globals are a
*copy* frozen at pool-creation (spawn: re-import) time.  If a worker
function reads a module-level mutable container that anything in the
project mutates, the parent's mutations are invisible to pooled workers
but perfectly visible to the in-process fallback — the two execution
modes compute different answers from the same code.  (The sanctioned
channel for shared read-only state is ``map_shards(context=...)`` +
:func:`repro.parallel.pool.get_context`, which pickles the context once
per worker, explicitly.)

Worker functions are discovered interprocedurally: the project index
records every function whose *name* is passed to ``map_shards`` anywhere
in the project, so a worker defined in ``repro.parallel.executor`` and
submitted from ``repro.runtime.run`` is still checked.  Module-level
constants that nothing mutates (frozen lookup tables) are fine; the rule
fires only when a mutation site exists somewhere in the project.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator, Set, Tuple

from repro.lint.engine import FileContext, Finding, Rule, Severity
from repro.lint.registry import register_rule


@register_rule
class WorkerGlobalRead(Rule):
    """SEAM002 — pool worker reads a mutated module-level container."""

    rule_id: ClassVar[str] = "SEAM002"
    name: ClassVar[str] = "worker-reads-mutable-global"
    severity: ClassVar[Severity] = Severity.ERROR
    summary: ClassVar[str] = (
        "pool worker function reads a module-level mutable container "
        "that is mutated elsewhere: pooled and in-process runs diverge"
    )
    fix_hint: ClassVar[str] = (
        "thread shared state through map_shards(context=...) and "
        "get_context(), or make the global an immutable constant"
    )
    node_types: ClassVar[Tuple[type, ...]] = (ast.FunctionDef, ast.AsyncFunctionDef)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        if not self._is_worker(node, ctx):
            return
        hazardous = self._hazardous_globals(ctx)
        if not hazardous:
            return
        params = {
            a.arg
            for a in node.args.args + node.args.posonlyargs + node.args.kwonlyargs
        }
        assigned = {
            t.id
            for inner in ast.walk(node)
            if isinstance(inner, ast.Assign)
            for t in inner.targets
            if isinstance(t, ast.Name)
        }
        shadowed = params | assigned
        seen: Set[str] = set()
        for inner in ast.walk(node):
            if not isinstance(inner, ast.Name) or not isinstance(inner.ctx, ast.Load):
                continue
            name = inner.id
            if name in shadowed or name in seen or name not in hazardous:
                continue
            seen.add(name)
            yield self.finding_at(
                ctx,
                inner,
                message=(
                    f"worker function {node.name!r} reads module global "
                    f"{name!r}, a mutable container mutated elsewhere in the "
                    "project; pooled workers see a stale copy"
                ),
            )

    def _is_worker(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef", ctx: FileContext
    ) -> bool:
        """True when this module-level function crosses the pool seam.

        Nested functions can't be seam workers (SEAM001 flags them at
        the call site), so only top-level definitions are considered.
        """
        if ctx.function_qualname(node) is not None:
            return False
        return node.name in ctx.worker_qualnames()

    def _hazardous_globals(self, ctx: FileContext) -> Set[str]:
        """Local names of this module's mutable, somewhere-mutated globals."""
        project = ctx.project
        mutated = project.mutated_globals
        prefix = f"{ctx.module_name}."
        return {
            full[len(prefix):]
            for full in project.mutable_globals
            if full.startswith(prefix) and full in mutated
        }
