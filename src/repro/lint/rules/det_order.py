"""DET002 — ``id()`` / ``hash()`` dependent ordering and keying.

CPython's ``id()`` is an address — different every run — and ``hash()``
of a string is salted per process (``PYTHONHASHSEED``).  Sorting by
either, or keying an output mapping on either, produces output that can
never be byte-identical across the serial/sharded/resume planes:

* ``sorted(xs, key=id)`` / ``xs.sort(key=lambda x: hash(x))`` — the
  order is an accident of the allocator or the hash salt;
* ``{id(obj): ...}`` / ``d[hash(key)] = ...`` — the keys themselves
  differ between processes, so any serialized form diverges;
* ``list({...})`` / ``list(set(...))`` — materializes hash order
  directly into an ordered container.

Sort-key findings fire everywhere (there is no legitimate use in this
codebase); bare ``id()``/``hash()`` value uses are only flagged on
paths that can reach serialized/merged output, as resolved by the
project call graph.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator, Optional, Tuple

from repro.lint.engine import FileContext, Finding, Rule, Severity
from repro.lint.registry import register_rule

_NONDET_BUILTINS = ("id", "hash")


def _contains_nondet_call(expr: ast.expr) -> Optional[str]:
    """Name of the first ``id``/``hash`` call inside ``expr``, if any."""
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _NONDET_BUILTINS
        ):
            return node.func.id
    return None


def _sort_key_argument(call: ast.Call) -> Optional[ast.expr]:
    """The ``key=`` argument of a ``sorted(...)`` / ``.sort(...)`` call."""
    func = call.func
    is_sort = (isinstance(func, ast.Name) and func.id == "sorted") or (
        isinstance(func, ast.Attribute) and func.attr == "sort"
    )
    if not is_sort:
        return None
    for kw in call.keywords:
        if kw.arg == "key":
            return kw.value
    return None


@register_rule
class HashOrderDependence(Rule):
    """DET002 — ordering or keying on id()/hash(), or list(set(...))."""

    rule_id: ClassVar[str] = "DET002"
    name: ClassVar[str] = "id-hash-order-dependence"
    severity: ClassVar[Severity] = Severity.ERROR
    summary: ClassVar[str] = (
        "id()/hash() drives an ordering or output key: both differ per "
        "process, so output bytes can never be reproducible"
    )
    fix_hint: ClassVar[str] = (
        "sort/key on a stable domain attribute (device_id, day, rule id) "
        "instead of id()/hash(); use sorted(...) to materialize sets"
    )
    node_types: ClassVar[Tuple[type, ...]] = (ast.Call, ast.Dict, ast.Assign)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            yield from self._visit_call(node, ctx)
        elif isinstance(node, ast.Dict):
            yield from self._visit_dict_display(node, ctx)
        elif isinstance(node, ast.Assign):
            yield from self._visit_assign(node, ctx)

    def _visit_call(self, call: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        key = _sort_key_argument(call)
        if key is not None:
            builtin = _contains_nondet_call(key) or (
                key.id if isinstance(key, ast.Name) and key.id in _NONDET_BUILTINS else None
            )
            if builtin is not None:
                yield self.finding_at(
                    ctx,
                    call,
                    message=(
                        f"sort key uses {builtin}(): the resulting order is "
                        "an accident of the allocator/hash salt, never "
                        "reproducible across runs"
                    ),
                )
                return
        # list(<set expression>) materializes hash order.
        func = call.func
        if (
            isinstance(func, ast.Name)
            and func.id == "list"
            and len(call.args) == 1
            and ctx.in_serialized_reachable(call)
        ):
            flow = ctx.dataflow_for(call)
            if flow.expression_is_set(call.args[0]):
                yield self.finding_at(
                    ctx,
                    call,
                    message=(
                        "list(<set>) materializes hash order into an ordered "
                        "container on a serialized path; use sorted(...)"
                    ),
                )

    def _visit_dict_display(self, node: ast.Dict, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_serialized_reachable(node):
            return
        for key in node.keys:
            if key is None:
                continue
            builtin = _contains_nondet_call(key)
            if builtin is not None:
                yield self.finding_at(
                    ctx,
                    key,
                    message=(
                        f"dict keyed on {builtin}(): the key differs per "
                        "process, so any serialized or merged form diverges"
                    ),
                )

    def _visit_assign(self, node: ast.Assign, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_serialized_reachable(node):
            return
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                builtin = _contains_nondet_call(target.slice)
                if builtin is not None:
                    yield self.finding_at(
                        ctx,
                        target,
                        message=(
                            f"mapping keyed on {builtin}(): the key differs "
                            "per process, so any serialized or merged form "
                            "diverges"
                        ),
                    )
