"""RNG discipline: every random draw must flow from a seeded Generator.

The whole reproduction is built on deterministic simulators; a single
``import random`` or ``np.random.seed()`` call re-introduces hidden
global state and silently breaks run-to-run reproducibility.
"""

from __future__ import annotations

import ast
from typing import ClassVar, FrozenSet, Iterator, Tuple

from repro.lint.engine import FileContext, Finding, Rule, Severity
from repro.lint.registry import register_rule

#: numpy legacy global-state API (``np.random.<fn>``); ``default_rng``,
#: ``Generator`` and ``SeedSequence`` are the sanctioned entry points.
_GLOBAL_STATE_FNS: FrozenSet[str] = frozenset(
    {
        "seed",
        "random",
        "rand",
        "randn",
        "randint",
        "random_sample",
        "random_integers",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
        "poisson",
        "exponential",
        "binomial",
        "lognormal",
        "zipf",
        "beta",
        "gamma",
        "pareto",
        "standard_normal",
        "get_state",
        "set_state",
    }
)


@register_rule
class StdlibRandomImport(Rule):
    """RNG001 — the stdlib ``random`` module is banned in ``repro``."""

    rule_id: ClassVar[str] = "RNG001"
    name: ClassVar[str] = "stdlib-random-import"
    severity: ClassVar[Severity] = Severity.ERROR
    summary: ClassVar[str] = "stdlib `random` is banned: it is hidden global state"
    fix_hint: ClassVar[str] = (
        "draw from a numpy Generator created with "
        "np.random.default_rng(seed) and threaded in from the config"
    )
    node_types: ClassVar[Tuple[type, ...]] = (ast.Import, ast.ImportFrom)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield self.finding_at(ctx, node)
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module is not None:
                if node.module == "random" or node.module.startswith("random."):
                    yield self.finding_at(ctx, node)


@register_rule
class NumpyGlobalStateRNG(Rule):
    """RNG002 — numpy's legacy global-state RNG API is banned."""

    rule_id: ClassVar[str] = "RNG002"
    name: ClassVar[str] = "numpy-global-rng"
    severity: ClassVar[Severity] = Severity.ERROR
    summary: ClassVar[str] = (
        "numpy global-state RNG call (np.random.<fn>) is banned"
    )
    fix_hint: ClassVar[str] = (
        "use a Generator instance: rng = np.random.default_rng(seed); rng.<fn>(...)"
    )
    node_types: ClassVar[Tuple[type, ...]] = (ast.Attribute, ast.ImportFrom)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module == "numpy.random":
                for alias in node.names:
                    if alias.name in _GLOBAL_STATE_FNS:
                        yield self.finding_at(
                            ctx,
                            node,
                            message=(
                                f"importing numpy.random.{alias.name} "
                                "(global-state RNG API) is banned"
                            ),
                        )
            return
        assert isinstance(node, ast.Attribute)
        if node.attr not in _GLOBAL_STATE_FNS:
            return
        value = node.value
        # np.random.<fn> — value is Attribute(random) over a numpy alias.
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in ctx.numpy_aliases
        ):
            yield self.finding_at(
                ctx,
                node,
                message=f"np.random.{node.attr} uses numpy's hidden global RNG state",
            )


@register_rule
class UnseededDefaultRng(Rule):
    """RNG003 — ``default_rng()`` without a seed is nondeterministic."""

    rule_id: ClassVar[str] = "RNG003"
    name: ClassVar[str] = "unseeded-default-rng"
    severity: ClassVar[Severity] = Severity.ERROR
    summary: ClassVar[str] = (
        "default_rng() called without a seed: entropy comes from the OS"
    )
    fix_hint: ClassVar[str] = (
        "pass the seed from the run config: np.random.default_rng(config.seed)"
    )
    node_types: ClassVar[Tuple[type, ...]] = (ast.Call,)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if node.args or node.keywords:
            return
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "default_rng" and ctx.resolves_to(
                func.id, "numpy.random.default_rng"
            ):
                yield self.finding_at(ctx, node)
        elif isinstance(func, ast.Attribute) and func.attr == "default_rng":
            value = func.value
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in ctx.numpy_aliases
            ):
                yield self.finding_at(ctx, node)
