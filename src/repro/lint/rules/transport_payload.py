"""PERF003 — row-list payloads crossing the ``map_shards`` seam.

The shard exchange is columnar: shards travel as interned column blocks
(shared-memory segments or RPCK-framed bytes via
:mod:`repro.parallel.transport`), so a worker attaches buffers instead
of unpickling one dataclass per row.  Submitting per-row dataclass
lists (``List[RadioEvent]`` / ``List[ServiceRecord]``) as ``map_shards``
payloads reintroduces exactly the per-row pickling cost that made the
parallel plane slower than serial.

Only the **designated fallback seams** may ship rows: the executor's
row-plane branch (``repro/parallel/executor.py``) and the durable
driver's unit protocol (``repro/runtime/run.py``), both of which
document why.  Everywhere else the rule flags

- a direct ``shard_mno_records(...)`` argument to ``map_shards``,
- a name bound to ``shard_mno_records(...)`` anywhere in the module,
- a name whose annotation mentions ``RadioEvent``/``ServiceRecord``.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Dict, Iterator, Optional, Set, Tuple

from repro.lint.engine import FileContext, Finding, Rule, Severity
from repro.lint.registry import register_rule

#: The row-plane sharder: its output is row-list shard payloads.
_ROW_SHARDER = "shard_mno_records"

#: Row dataclasses whose presence in a payload annotation marks it.
_ROW_TYPES = ("RadioEvent", "ServiceRecord")

#: Modules allowed to ship row payloads (documented fallback seams).
_FALLBACK_MODULES = (
    "repro/parallel/executor.py",
    "repro/runtime/run.py",
)


def _call_name(call: ast.Call) -> str:
    """The called name, unwrapping one attribute level."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _payload_arg(call: ast.Call) -> Optional[ast.expr]:
    """The shards argument of a ``map_shards(fn, shards, ...)`` call."""
    if len(call.args) >= 2:
        return call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "shards":
            return keyword.value
    return None


@register_rule
class RowPayloadAcrossSeam(Rule):
    """PERF003 — per-row dataclass lists submitted to ``map_shards``."""

    rule_id: ClassVar[str] = "PERF003"
    name: ClassVar[str] = "row-payload-across-pool-seam"
    severity: ClassVar[Severity] = Severity.ERROR
    summary: ClassVar[str] = (
        "per-row dataclass list shipped as a map_shards payload: the "
        "transport seam is columnar"
    )
    fix_hint: ClassVar[str] = (
        "shard with shard_columnar_records and publish through "
        "repro.parallel.transport.publish_shards (descriptors in, "
        "packed blocks out); row payloads belong only to the "
        "designated fallback seams"
    )
    node_types: ClassVar[Tuple[type, ...]] = (ast.Call,)

    def __init__(self) -> None:
        self._scanned = False
        #: names bound to a ``shard_mno_records(...)`` call result.
        self._row_names: Set[str] = set()
        #: names whose annotation mentions a row dataclass.
        self._annotated: Dict[str, str] = {}
        self._reported: Set[Tuple[int, int]] = set()

    def applies_to(self, ctx: FileContext) -> bool:
        return not any(ctx.is_module(tail) for tail in _FALLBACK_MODULES)

    def _scan_module(self, ctx: FileContext) -> None:
        if self._scanned:
            return
        self._scanned = True
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign):
                value = node.value
                if isinstance(value, ast.Call) and _call_name(value) == _ROW_SHARDER:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self._row_names.add(target.id)
            elif isinstance(node, ast.AnnAssign):
                target = node.target
                if not isinstance(target, ast.Name):
                    continue
                annotation = ast.unparse(node.annotation)
                for row_type in _ROW_TYPES:
                    if row_type in annotation:
                        self._annotated[target.id] = row_type
                        break
                if (
                    isinstance(node.value, ast.Call)
                    and _call_name(node.value) == _ROW_SHARDER
                ):
                    self._row_names.add(target.id)

    def _payload_problem(self, payload: ast.expr) -> Optional[str]:
        if isinstance(payload, ast.Call) and _call_name(payload) == _ROW_SHARDER:
            return f"payload is {_ROW_SHARDER}(...) row-list shards"
        if isinstance(payload, ast.Name):
            if payload.id in self._row_names:
                return (
                    f"payload {payload.id!r} is bound to "
                    f"{_ROW_SHARDER}(...) row-list shards"
                )
            row_type = self._annotated.get(payload.id)
            if row_type is not None:
                return (
                    f"payload {payload.id!r} is annotated as per-row "
                    f"{row_type} lists"
                )
        return None

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if _call_name(node) != "map_shards":
            return
        payload = _payload_arg(node)
        if payload is None:
            return
        self._scan_module(ctx)
        problem = self._payload_problem(payload)
        if problem is None:
            return
        site = (node.lineno, node.col_offset)
        if site in self._reported:
            return
        self._reported.add(site)
        yield self.finding_at(ctx, node, message=problem)
