"""Identifier hygiene: no ad-hoc slicing of PLMN/IMSI/IMEI strings.

Numbering-plan structure (3-digit MCC, 2-or-3-digit MNC, 8-digit TAC…)
is encoded exactly once, in :mod:`repro.cellular.identifiers`.  A stray
``plmn[:3]`` elsewhere silently hard-codes an assumption (say, 2-digit
MNCs) that the helpers already get right.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator, Tuple

from repro.lint.engine import FileContext, Finding, Rule, Severity
from repro.lint.registry import register_rule

#: Substrings of variable/attribute names that mark an identifier string.
_IDENTIFIER_MARKERS: Tuple[str, ...] = (
    "plmn",
    "imsi",
    "imei",
    "mccmnc",
    "msisdn",
)


def _terminal_name(value: ast.AST) -> str:
    """The rightmost simple name of an expression, lowercased.

    ``summary.sim_plmn`` -> ``sim_plmn``; calls/subscripts yield ``""``.
    """
    if isinstance(value, ast.Attribute):
        return value.attr.lower()
    if isinstance(value, ast.Name):
        return value.id.lower()
    return ""


def _is_int_constant(node: object) -> bool:
    return isinstance(node, ast.Constant) and type(node.value) is int


@register_rule
class IdentifierSlicing(Rule):
    """ID001 — slicing identifier strings outside cellular/identifiers.py."""

    rule_id: ClassVar[str] = "ID001"
    name: ClassVar[str] = "identifier-slicing"
    severity: ClassVar[Severity] = Severity.ERROR
    summary: ClassVar[str] = (
        "ad-hoc slicing of a PLMN/IMSI/IMEI string re-encodes numbering-plan "
        "structure"
    )
    fix_hint: ClassVar[str] = (
        "parse with repro.cellular.identifiers (PLMN.parse / IMSI.parse / "
        "mcc_of / plmn_candidates) instead of slicing"
    )
    node_types: ClassVar[Tuple[type, ...]] = (ast.Subscript,)

    def applies_to(self, ctx: FileContext) -> bool:
        # The one module allowed to know the digit layout.
        return not ctx.is_module("cellular/identifiers.py")

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Subscript)
        name = _terminal_name(node.value)
        if not name or not any(marker in name for marker in _IDENTIFIER_MARKERS):
            return
        # Only slices with literal digit positions count: a plain index
        # (`ranges[0]`, `by_plmn[key]`) is container access, not
        # numbering-plan parsing.
        slc = node.slice
        if isinstance(slc, ast.Slice):
            bounds = (slc.lower, slc.upper, slc.step)
            if any(_is_int_constant(b) for b in bounds):
                yield self.finding_at(
                    ctx,
                    node,
                    message=(
                        f"`{name}[...]` slices an identifier string by digit "
                        "position"
                    ),
                )
