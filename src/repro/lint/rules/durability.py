"""Durability hygiene: checkpoint and bench artifacts must be written atomically.

A durable artifact — a checkpoint block, run manifest, journal, or a
bench baseline that gates CI — read back after a crash must be either
the old version or the new one, never a torn half.  A bare
``open(path, "w")`` / ``Path.write_text`` gives no such guarantee: the
process can die between the ``write`` and the implicit close, leaving a
truncated file that a later run will happily parse into silent wrong
results.  :mod:`repro.runtime` owns the sanctioned discipline
(temp file → fsync → ``os.replace`` → directory fsync, CRC-framed
payloads); everything else must route artifact writes through
:func:`repro.runtime.checkpoint.atomic_write_bytes` /
``atomic_write_text``.

The rule keys on the *name* of what is being written: a path expression
mentioning ``checkpoint``/``ckpt``, ``manifest``, ``journal`` or
``baseline`` is a durable artifact.  Ordinary exports (CSV, JSONL,
reports) are out of scope.

Interprocedural tracking: wrappers used to launder a torn write past
the name check — ``def save(path): path.write_text(...)`` called as
``save(manifest_path)`` — are resolved through the project index.
:attr:`~repro.lint.project.ProjectIndex.raw_writer_params` is the
fixpoint of parameter positions that flow (through any chain of helper
calls) into a raw ``open(..., "w")`` / ``write_text`` / ``write_bytes``;
a call site passing an artifact-named expression into such a position is
flagged exactly like a direct write.  Wrappers that route through
``repro.runtime.atomic_write_*`` never enter that fixpoint, so the same
call site with an atomic helper is clean.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator, Optional, Tuple

from repro.lint.engine import FileContext, Finding, Rule, Severity
from repro.lint.registry import register_rule

#: Substrings (lowercased) that mark a path expression as a durable
#: artifact.  Matching on the expression text keys the rule on intent —
#: ``manifest_path.write_text(...)`` — not on runtime values.
_ARTIFACT_MARKERS: Tuple[str, ...] = (
    "checkpoint",
    "ckpt",
    "manifest",
    "journal",
    "baseline",
)

#: ``open`` modes that mutate the target file.
_WRITE_MODES = ("w", "a", "x", "+")

_WRITE_METHODS = ("write_text", "write_bytes")


def _mentions_artifact(node: ast.AST) -> bool:
    text = ast.unparse(node).lower()
    return any(marker in text for marker in _ARTIFACT_MARKERS)


def _open_mode(call: ast.Call) -> Optional[str]:
    """The literal mode of an ``open()`` call, or None when unknown."""
    mode_node: Optional[ast.expr] = None
    if len(call.args) >= 2:
        mode_node = call.args[1]
    else:
        for kw in call.keywords:
            if kw.arg == "mode":
                mode_node = kw.value
    if mode_node is None:
        return "r"
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        return mode_node.value
    return None


@register_rule
class NonAtomicArtifactWrite(Rule):
    """DUR001 — durable artifact written without the atomic discipline."""

    rule_id: ClassVar[str] = "DUR001"
    name: ClassVar[str] = "non-atomic-artifact-write"
    severity: ClassVar[Severity] = Severity.ERROR
    summary: ClassVar[str] = (
        "checkpoint/bench artifact written non-atomically: a crash "
        "mid-write leaves a torn file that parses as silent wrong results"
    )
    fix_hint: ClassVar[str] = (
        "route the write through repro.runtime (atomic_write_bytes / "
        "atomic_write_text: temp file, fsync, os.replace)"
    )
    node_types: ClassVar[Tuple[type, ...]] = (ast.Call,)

    def applies_to(self, ctx: FileContext) -> bool:
        # repro.runtime IS the atomic writer; its internals are the one
        # place allowed to touch artifact files directly.
        return not ctx.in_package("runtime")

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            if not node.args or not _mentions_artifact(node.args[0]):
                return
            mode = _open_mode(node)
            if mode is None or any(flag in mode for flag in _WRITE_MODES):
                yield self.finding_at(ctx, node)
            return
        if isinstance(func, ast.Attribute) and func.attr in _WRITE_METHODS:
            if self._is_atomic_helper(func.value, ctx):
                return
            if _mentions_artifact(func.value):
                yield self.finding_at(ctx, node)
            return
        yield from self._check_wrapper_call(node, ctx)

    def _check_wrapper_call(
        self, call: ast.Call, ctx: FileContext
    ) -> Iterator[Finding]:
        """Artifact-named argument flowing into a raw-writing helper."""
        resolved = ctx.resolve_call(call)
        if resolved is None or resolved.startswith("*."):
            return
        raw_params = ctx.project.raw_writer_params
        for target in ctx.project.resolve_function(resolved):
            if target.startswith("repro.runtime"):
                # The sanctioned atomic writers necessarily touch files;
                # routing through them is the fix, not a finding.
                continue
            positions = raw_params.get(target)
            if not positions:
                continue
            for position in sorted(positions):
                if position >= len(call.args):
                    continue
                arg = call.args[position]
                if _mentions_artifact(arg):
                    helper = target.rsplit(".", 1)[-1]
                    yield self.finding_at(
                        ctx,
                        call,
                        message=(
                            f"durable artifact passed to {helper}(), which "
                            "writes it non-atomically: a crash mid-write "
                            "leaves a torn file"
                        ),
                    )
            return  # one resolution is enough; avoid duplicate findings

    def _is_atomic_helper(self, receiver: ast.expr, ctx: FileContext) -> bool:
        """Escape hatch for names bound to the sanctioned runtime writers."""
        if isinstance(receiver, ast.Name):
            return ctx.from_imports.get(receiver.id, "").startswith("repro.runtime")
        return False
