"""SEAM001 — unsafe values shipped across the process-pool seam.

:func:`repro.parallel.pool.map_shards` is the one audited fan-out seam
(PERF001 bans every other pool).  Two call-site mistakes break its
contract silently:

* **Unpicklable task functions.**  A lambda, or a function defined
  inside the calling function, cannot be pickled by name; the pool
  raises only at submit time in a worker — or worse, works under
  ``n_workers=1`` (no pickling) and explodes in production.  The
  `speedup_workers_4 ≈ 0.23` pickling seam being rewritten makes this a
  place where "works on my laptop" and "works sharded" genuinely differ.
* **Mutation after submit.**  ``map_shards(fn, shards, ...)`` pickles
  its arguments at submit time in the pooled path, but the in-process
  fallback (``n_workers=1``, circuit breaker open, retry exhaustion)
  shares them by reference.  Mutating ``shards``/``context`` after the
  call makes the two execution modes see *different* inputs — the exact
  class of divergence the byte-equality suite exists to rule out.

The rule flags lambdas and locally-defined functions passed as the task,
and any argument variable mutated later in the calling function.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator, Tuple

from repro.lint.engine import FileContext, Finding, Rule, Severity
from repro.lint.registry import register_rule

_SEAM_NAMES = ("map_shards",)


def _is_seam_call(call: ast.Call, ctx: FileContext) -> bool:
    resolved = ctx.resolve_call(call)
    if resolved is None:
        return False
    return resolved in _SEAM_NAMES or any(
        resolved.endswith(f".{name}") for name in _SEAM_NAMES
    )


@register_rule
class SeamCaptureSafety(Rule):
    """SEAM001 — unpicklable task or post-submit mutation at the seam."""

    rule_id: ClassVar[str] = "SEAM001"
    name: ClassVar[str] = "pool-seam-capture"
    severity: ClassVar[Severity] = Severity.ERROR
    summary: ClassVar[str] = (
        "value shipped across the process-pool seam is not "
        "picklable-by-construction or is mutated after submit"
    )
    fix_hint: ClassVar[str] = (
        "pass a module-level function to map_shards and treat its "
        "arguments as frozen once submitted (finish all mutation first)"
    )
    node_types: ClassVar[Tuple[type, ...]] = (ast.Call,)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if not _is_seam_call(node, ctx):
            return
        flow = ctx.dataflow_for(node)
        if node.args:
            fn_arg = node.args[0]
            if isinstance(fn_arg, ast.Lambda):
                yield self.finding_at(
                    ctx,
                    fn_arg,
                    message=(
                        "lambda passed across the pool seam: lambdas do not "
                        "pickle, so this works in-process and dies sharded"
                    ),
                )
            elif isinstance(fn_arg, ast.Name) and flow.is_local_callable(fn_arg.id):
                yield self.finding_at(
                    ctx,
                    fn_arg,
                    message=(
                        f"locally-defined function {fn_arg.id!r} passed across "
                        "the pool seam: only module-level functions pickle by "
                        "name"
                    ),
                )
        seam_args = list(node.args[1:]) + [
            kw.value for kw in node.keywords if kw.arg in ("shards", "context")
        ]
        for arg in seam_args:
            if not isinstance(arg, ast.Name):
                continue
            mutated_at = flow.mutated_after(arg.id, node.lineno)
            if mutated_at is not None:
                yield self.finding_at(
                    ctx,
                    arg,
                    message=(
                        f"{arg.id!r} is mutated on line {mutated_at} after "
                        "being submitted across the pool seam: the pooled "
                        "path pickled the old value, the in-process fallback "
                        "sees the new one"
                    ),
                )
