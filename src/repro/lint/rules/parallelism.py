"""Process-pool containment: all fan-out goes through ``repro.parallel``.

The sharded-merge guarantees (byte-identical output at any worker
count) hold only because every pool in the codebase is the audited seam
in :mod:`repro.parallel.pool` — a raw ``ProcessPoolExecutor`` or
``multiprocessing`` pool elsewhere would fan work out without the
deterministic sharding, context-once pickling, and shard-order result
collection that seam provides.  Outside the ``parallel`` package, both
are banned.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator, Tuple

from repro.lint.engine import FileContext, Finding, Rule, Severity
from repro.lint.registry import register_rule


@register_rule
class ProcessPoolOutsideParallel(Rule):
    """PERF001 — no raw process pools outside ``repro.parallel``."""

    rule_id: ClassVar[str] = "PERF001"
    name: ClassVar[str] = "process-pool-outside-parallel"
    severity: ClassVar[Severity] = Severity.ERROR
    summary: ClassVar[str] = (
        "raw process pool outside repro.parallel: bypasses the "
        "deterministic sharding seam"
    )
    fix_hint: ClassVar[str] = (
        "fan out through repro.parallel.pool.map_shards (shard with "
        "repro.parallel.sharding) instead of creating a pool directly"
    )
    node_types: ClassVar[Tuple[type, ...]] = (
        ast.Import,
        ast.ImportFrom,
        ast.Attribute,
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.in_package("parallel")

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "multiprocessing" or alias.name.startswith(
                    "multiprocessing."
                ):
                    yield self.finding_at(
                        ctx, node, message=f"import of {alias.name}"
                    )
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "multiprocessing" or module.startswith("multiprocessing."):
                yield self.finding_at(ctx, node, message=f"import from {module}")
            elif module == "concurrent.futures":
                for alias in node.names:
                    if alias.name == "ProcessPoolExecutor":
                        yield self.finding_at(
                            ctx,
                            node,
                            message="import of concurrent.futures.ProcessPoolExecutor",
                        )
        elif isinstance(node, ast.Attribute):
            if node.attr == "ProcessPoolExecutor":
                yield self.finding_at(
                    ctx, node, message="use of ProcessPoolExecutor attribute"
                )
