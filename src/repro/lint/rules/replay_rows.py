"""PERF004 — row materialization on the replay/fold data paths.

The durable driver and the catalog daemon fold columnar blocks into the
catalog directly: :func:`repro.runtime.run.run_durable_pipeline`
concatenates decoded shard stores with ``extend_from`` and the daemon's
WAL replay partitions blocks by the cached ``days`` column.  Calling
``.to_rows()`` / ``.iter_rows()`` on one of those stores inside
``repro/runtime/`` or ``repro/service/`` re-materializes a dataclass
per row — exactly the decode → rows → re-encode round-trip the columnar
fold deleted, and at paper scale it is the difference between a shard
window of resident memory and the whole population.

Row materialization stays legitimate at *boundaries* — query responses,
adapters handing rows to row-oriented consumers, tests.  Inside these
two packages no such boundary exists today, so any new call site is
either a performance regression or a deliberate adapter that must be
designated: add its module to ``_FALLBACK_MODULES`` with a justifying
comment, or suppress the single line with ``# noqa: PERF004`` and a
reason.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator, Tuple

from repro.lint.engine import FileContext, Finding, Rule, Severity
from repro.lint.registry import register_rule

#: The store methods that materialize one dataclass per row.
_MATERIALIZERS = frozenset({"to_rows", "iter_rows"})

#: Modules designated as row boundaries (documented adapters).  Empty
#: today: the out-of-core refactor removed every materialization from
#: the replay paths; list a module here only with a comment saying why
#: its rows are a boundary, not a fold input.
_FALLBACK_MODULES: Tuple[str, ...] = ()


@register_rule
class RowMaterializationInReplayPath(Rule):
    """PERF004 — ``to_rows``/``iter_rows`` in runtime/service replay code."""

    rule_id: ClassVar[str] = "PERF004"
    name: ClassVar[str] = "row-materialization-in-replay-path"
    severity: ClassVar[Severity] = Severity.ERROR
    summary: ClassVar[str] = (
        "columnar store materialized to rows inside a replay/fold path: "
        "the catalog folds columns directly"
    )
    fix_hint: ClassVar[str] = (
        "fold the columns with extend_from/select and pass the stores "
        "to CatalogBuilder.update; materialize rows only at documented "
        "boundaries (designate the module or noqa the line with a reason)"
    )
    node_types: ClassVar[Tuple[type, ...]] = (ast.Call,)

    def applies_to(self, ctx: FileContext) -> bool:
        if not ctx.in_package("runtime", "service"):
            return False
        return not any(ctx.is_module(tail) for tail in _FALLBACK_MODULES)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in _MATERIALIZERS:
            return
        yield self.finding_at(
            ctx,
            node,
            message=(
                f".{func.attr}() materializes one dataclass per row on a "
                "replay path"
            ),
        )
